/**
 * @file
 * Export to Stim's text formats.
 *
 * The paper's evaluation runs on (a modified) Stim; our simulator is
 * self-contained, but emitting the generated circuits in Stim's
 * circuit language and the extracted error models in Stim's detector-
 * error-model (.dem) language lets downstream users cross-validate
 * against the reference ecosystem (stim + PyMatching) and reuse the
 * circuits elsewhere.
 *
 * Supported subset: exactly the gates the IR defines (R, M, MR, H, CX,
 * X_ERROR, DEPOLARIZE1/2, TICK, DETECTOR, OBSERVABLE_INCLUDE).
 * Detector measurement references are converted from this library's
 * absolute record indices to Stim's relative rec[-k] lookbacks.
 */

#ifndef ASTREA_INTEROP_STIM_EXPORT_HH
#define ASTREA_INTEROP_STIM_EXPORT_HH

#include <string>

#include "circuit/circuit.hh"
#include "dem/error_model.hh"

namespace astrea
{

/** Render a circuit in Stim's circuit language. */
std::string toStimCircuit(const Circuit &circuit);

/** Render an error model in Stim's detector-error-model language. */
std::string toStimDem(const ErrorModel &model);

/** Write text to a file; fatal() on failure. */
void writeTextFile(const std::string &path, const std::string &text);

} // namespace astrea

#endif // ASTREA_INTEROP_STIM_EXPORT_HH
