#include "interop/stim_export.hh"

#include <cstdio>

#include "common/logging.hh"

namespace astrea
{

namespace
{

std::string
formatProbArg(double p)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "(%.10g)", p);
    return buf;
}

void
appendTargets(std::string &out, const std::vector<uint32_t> &targets)
{
    for (auto t : targets) {
        out += ' ';
        out += std::to_string(t);
    }
}

} // namespace

std::string
toStimCircuit(const Circuit &circuit)
{
    std::string out;
    uint32_t measurements_so_far = 0;

    for (const auto &op : circuit.instructions()) {
        switch (op.type) {
          case GateType::R:
            out += "R";
            appendTargets(out, op.targets);
            break;
          case GateType::M:
            out += "M";
            appendTargets(out, op.targets);
            measurements_so_far +=
                static_cast<uint32_t>(op.targets.size());
            break;
          case GateType::MR:
            out += "MR";
            appendTargets(out, op.targets);
            measurements_so_far +=
                static_cast<uint32_t>(op.targets.size());
            break;
          case GateType::H:
            out += "H";
            appendTargets(out, op.targets);
            break;
          case GateType::CX:
            out += "CX";
            appendTargets(out, op.targets);
            break;
          case GateType::XError:
            out += "X_ERROR" + formatProbArg(op.arg);
            appendTargets(out, op.targets);
            break;
          case GateType::ZError:
            out += "Z_ERROR" + formatProbArg(op.arg);
            appendTargets(out, op.targets);
            break;
          case GateType::Depolarize1:
            out += "DEPOLARIZE1" + formatProbArg(op.arg);
            appendTargets(out, op.targets);
            break;
          case GateType::Depolarize2:
            out += "DEPOLARIZE2" + formatProbArg(op.arg);
            appendTargets(out, op.targets);
            break;
          case GateType::Detector: {
            out += "DETECTOR";
            for (auto m : op.targets) {
                // Absolute record index -> Stim's relative lookback.
                ASTREA_CHECK(m < measurements_so_far,
                             "detector references future measurement");
                out += " rec[-" +
                       std::to_string(measurements_so_far - m) + "]";
            }
            break;
          }
          case GateType::ObservableInclude: {
            out += "OBSERVABLE_INCLUDE(" +
                   std::to_string(static_cast<uint32_t>(op.arg)) + ")";
            for (auto m : op.targets) {
                ASTREA_CHECK(m < measurements_so_far,
                             "observable references future "
                             "measurement");
                out += " rec[-" +
                       std::to_string(measurements_so_far - m) + "]";
            }
            break;
          }
          case GateType::Tick:
            out += "TICK";
            break;
        }
        out += '\n';
    }
    return out;
}

std::string
toStimDem(const ErrorModel &model)
{
    std::string out;
    for (const auto &mech : model.mechanisms()) {
        char head[48];
        std::snprintf(head, sizeof(head), "error(%.10g)",
                      mech.probability);
        out += head;
        for (auto d : mech.detectors) {
            out += " D";
            out += std::to_string(d);
        }
        uint64_t mask = mech.observables;
        while (mask) {
            int b = __builtin_ctzll(mask);
            mask &= mask - 1;
            out += " L";
            out += std::to_string(b);
        }
        out += '\n';
    }
    return out;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open " + path + " for writing");
    if (std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
        std::fclose(f);
        fatal("short write to " + path);
    }
    if (std::fclose(f) != 0)
        fatal("error closing " + path);
}

} // namespace astrea
