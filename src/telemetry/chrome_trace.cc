#include "telemetry/chrome_trace.hh"

#include <atomic>
#include <chrono>
#include <memory>

#include "common/env.hh"
#include "common/logging.hh"
#include "telemetry/json.hh"

namespace astrea
{
namespace telemetry
{

namespace
{

std::chrono::steady_clock::time_point
traceEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

std::atomic<uint32_t> g_next_tid{1};

} // namespace

double
traceNowUs()
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - traceEpoch())
        .count();
}

uint32_t
traceThreadId()
{
    thread_local uint32_t tid =
        g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
{
    if (path.empty())
        return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr)
        fatal("cannot open chrome trace file: " + path);
    traceEpoch();  // Pin the epoch no later than the first event.
    std::fputs("[\n", file_);
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    finalize();
}

void
ChromeTraceWriter::finalize()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr)
        return;
    std::fputs("\n]\n", file_);
    std::fclose(file_);
    file_ = nullptr;
}

void
ChromeTraceWriter::emit(const char *name, char phase, double ts_us,
                        const double *counter_value,
                        const double *dur_us)
{
    JsonWriter w;
    w.beginObject()
        .kv("name", name)
        .kv("cat", "astrea")
        .kv("ph", std::string(1, phase))
        .kv("ts", ts_us)
        .kv("pid", uint64_t{1})
        .kv("tid", uint64_t{traceThreadId()});
    if (dur_us != nullptr)
        w.kv("dur", *dur_us);
    if (phase == 'i')
        w.kv("s", "t");  // Thread-scoped instant.
    if (counter_value != nullptr) {
        w.key("args").beginObject().kv("value", *counter_value)
            .endObject();
    }
    w.endObject();

    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr)
        return;
    if (!first_)
        std::fputs(",\n", file_);
    first_ = false;
    const std::string &line = w.str();
    std::fwrite(line.data(), 1, line.size(), file_);
    events_++;
}

void
ChromeTraceWriter::begin(const char *name)
{
    emit(name, 'B', traceNowUs(), nullptr, nullptr);
}

void
ChromeTraceWriter::end(const char *name)
{
    emit(name, 'E', traceNowUs(), nullptr, nullptr);
}

void
ChromeTraceWriter::counter(const char *name, double value)
{
    emit(name, 'C', traceNowUs(), &value, nullptr);
}

void
ChromeTraceWriter::instant(const char *name)
{
    emit(name, 'i', traceNowUs(), nullptr, nullptr);
}

namespace
{

std::mutex g_chrome_mu;
std::unique_ptr<ChromeTraceWriter> g_chrome;
bool g_chrome_initialized = false;
/** Fast-path cache so hot loops can poll tracing without the mutex. */
std::atomic<ChromeTraceWriter *> g_chrome_ptr{nullptr};
std::atomic<uint64_t> g_chrome_gen{0};

} // namespace

ChromeTraceWriter *
globalChromeTrace()
{
    std::lock_guard<std::mutex> lock(g_chrome_mu);
    if (!g_chrome_initialized) {
        g_chrome_initialized = true;
        std::string path = env::getString("ASTREA_CHROME_TRACE", "");
        if (!path.empty())
            g_chrome = std::make_unique<ChromeTraceWriter>(path);
        g_chrome_ptr.store(g_chrome.get(), std::memory_order_release);
    }
    return g_chrome.get();
}

ChromeTraceWriter *
globalChromeTraceFast()
{
    static bool primed = (globalChromeTrace(), true);
    (void)primed;
    return g_chrome_ptr.load(std::memory_order_acquire);
}

uint64_t
globalChromeTraceGeneration()
{
    return g_chrome_gen.load(std::memory_order_acquire);
}

void
setGlobalChromeTraceFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_chrome_mu);
    g_chrome_initialized = true;
    // Unpublish before finalizing so racing fast-path readers never
    // see a writer that is mid-close.
    g_chrome_ptr.store(nullptr, std::memory_order_release);
    g_chrome.reset();
    if (!path.empty())
        g_chrome = std::make_unique<ChromeTraceWriter>(path);
    g_chrome_gen.fetch_add(1, std::memory_order_acq_rel);
    g_chrome_ptr.store(g_chrome.get(), std::memory_order_release);
}

} // namespace telemetry
} // namespace astrea
