#include "telemetry/scoped_timer.hh"

#include <vector>

#include "telemetry/export.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace astrea
{
namespace telemetry
{

namespace
{

thread_local std::vector<std::string> tl_span_stack;

} // namespace

ScopedTimer::ScopedTimer(const std::string &name)
    : start_(std::chrono::steady_clock::now())
{
    if (tl_span_stack.empty()) {
        path_ = name;
    } else {
        path_ = tl_span_stack.back() + "/" + name;
    }
    tl_span_stack.push_back(path_);
}

ScopedTimer::~ScopedTimer()
{
    double ns = elapsedNs();
    tl_span_stack.pop_back();
    MetricsRegistry::global().latency("span." + path_).record(ns);
    if (TraceWriter *trace = globalTrace()) {
        JsonWriter w;
        w.beginObject()
            .kv("type", "span")
            .kv("path", path_)
            .kv("ns", ns)
            .endObject();
        trace->line(w.str());
    }
}

double
ScopedTimer::elapsedNs() const
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(now - start_)
        .count();
}

std::string
ScopedTimer::currentPath()
{
    return tl_span_stack.empty() ? std::string()
                                 : tl_span_stack.back();
}

size_t
ScopedTimer::currentDepth()
{
    return tl_span_stack.size();
}

} // namespace telemetry
} // namespace astrea
