#include "telemetry/scoped_timer.hh"

#include <vector>

#include "telemetry/chrome_trace.hh"
#include "telemetry/export.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace astrea
{
namespace telemetry
{

namespace
{

thread_local std::vector<std::string> tl_span_stack;

} // namespace

ScopedTimer::ScopedTimer(const std::string &name)
{
    if (tl_span_stack.empty()) {
        path_ = name;
        nameOffset_ = 0;
    } else {
        path_ = tl_span_stack.back() + "/" + name;
        nameOffset_ = path_.size() - name.size();
    }
    tl_span_stack.push_back(path_);
    if ((chrome_ = globalChromeTraceFast()) != nullptr) {
        chromeGen_ = globalChromeTraceGeneration();
        chrome_->begin(path_.c_str() + nameOffset_);
    }
    start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    double ns = elapsedNs();
    // Close the Chrome slice only on the writer that opened it, so a
    // trace reconfigured mid-span never sees an unmatched "E". The
    // generation check defends against a replacement writer allocated
    // at the freed writer's address.
    if (chrome_ != nullptr && chrome_ == globalChromeTraceFast() &&
        chromeGen_ == globalChromeTraceGeneration())
        chrome_->end(path_.c_str() + nameOffset_);
    tl_span_stack.pop_back();
    MetricsRegistry::global().latency("span." + path_).record(ns);
    if (TraceWriter *trace = globalTrace()) {
        JsonWriter w;
        w.beginObject()
            .kv("type", "span")
            .kv("path", path_)
            .kv("ns", ns)
            .endObject();
        trace->line(w.str());
    }
}

double
ScopedTimer::elapsedNs() const
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(now - start_)
        .count();
}

std::string
ScopedTimer::currentPath()
{
    return tl_span_stack.empty() ? std::string()
                                 : tl_span_stack.back();
}

size_t
ScopedTimer::currentDepth()
{
    return tl_span_stack.size();
}

} // namespace telemetry
} // namespace astrea
