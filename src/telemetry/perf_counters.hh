/**
 * @file
 * Hardware performance-counter attribution for the decode path.
 *
 * Wall-clock telemetry (telemetry.hh) says *that* a stage is slow;
 * this module says *why*: a perf_event_open(2) wrapper reads one
 * grouped set of counters — cycles, instructions, LLC loads/misses,
 * branch misses and task-clock — around RAII-scoped sections of the
 * decode path, and accumulates the deltas into per-stage totals from
 * which IPC, LLC-miss rate and cycles/shot are derived.
 *
 * Design constraints, in order:
 *
 *  - Zero steady-state allocations. A PerfSection is a stack object
 *    holding one fixed-size reading; the per-thread counter group is
 *    a fixed array of fds opened once; accumulation is relaxed
 *    fetch_adds into static atomics. tests/alloc_test.cc stays green
 *    with sections compiled into the hot path.
 *  - Graceful degradation. Containers and locked-down kernels refuse
 *    perf_event_open (EPERM/EACCES under perf_event_paranoid, ENOENT
 *    with no PMU, e.g. most VMs); the first failure latches a
 *    process-wide "unavailable" state with a one-time warning, and
 *    every subsequent section is a cheap no-op. CI exercises both
 *    paths (ASTREA_PERF_FORCE_UNAVAILABLE=1 forces this one).
 *  - Bounded overhead. A live section costs two group read(2)s
 *    (~1-2 us), which would dwarf a ~456 ns decode if taken every
 *    shot. Per-decode *stage* sections are therefore sampled one in
 *    ASTREA_PERF_STAGE_STRIDE decodes (default 64) via
 *    perfSampleThisDecode(); per-batch sections amortize over the
 *    whole batch and always measure.
 *
 * Master switch: ASTREA_PERF_COUNTERS=1 or --perf-counters on the
 * bench/CLI binaries (setPerfCountersEnabled()). Off by default:
 * disabled sections are one predicted branch.
 */

#ifndef ASTREA_TELEMETRY_PERF_COUNTERS_HH
#define ASTREA_TELEMETRY_PERF_COUNTERS_HH

#include <cstddef>
#include <cstdint>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/prometheus.hh"

namespace astrea
{
namespace telemetry
{

/** Decode-path stages counters are attributed to. */
enum class PerfStage : uint8_t
{
    Gather = 0,   ///< LWT/tile gather: weight-table loads.
    Matching,     ///< Matching kernel (HW6 units / SIMD tables).
    Verdict,      ///< Verdict/finishing: pair loop, obs mask.
    Window,       ///< Windowed-decoder assembly and commit.
    Batch,        ///< One whole Decoder::decodeBatch call.
};

constexpr size_t kPerfStageCount = 5;

/** Lowercase stable stage name ("gather", ..., "batch"). */
const char *perfStageName(PerfStage stage);

/** One raw reading (or delta) of the counter group. */
struct PerfReading
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llcLoads = 0;
    uint64_t llcMisses = 0;
    uint64_t branchMisses = 0;
    uint64_t taskClockNs = 0;
    /** Multiplexing diagnostics (PERF_FORMAT_TOTAL_TIME_*). */
    uint64_t timeEnabledNs = 0;
    uint64_t timeRunningNs = 0;
};

/** Accumulated totals for one stage, with derived ratios. */
struct PerfStageTotals
{
    uint64_t sections = 0;  ///< Measured sections folded in.
    uint64_t shots = 0;     ///< Shots those sections covered.
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llcLoads = 0;
    uint64_t llcMisses = 0;
    uint64_t branchMisses = 0;
    uint64_t taskClockNs = 0;

    /** Instructions per cycle; 0 when nothing was measured. */
    double ipc() const;
    /** LLC misses / LLC loads in [0, 1]; 0 when unmeasured. */
    double llcMissRate() const;
    /** Cycles per covered shot; 0 when unmeasured. */
    double cyclesPerShot() const;
    /** Branch misses per thousand instructions. */
    double branchMissesPerKiloInsn() const;
};

/** Master switch (ASTREA_PERF_COUNTERS / --perf-counters). */
bool perfCountersEnabled();
void setPerfCountersEnabled(bool on);

/**
 * True once some thread successfully opened the counter group; false
 * either before any attempt or after the process-wide unavailable
 * state latched. Pair with perfUnavailableReason() for the latter.
 */
bool perfCountersAvailable();

/** Human-readable reason counters are unavailable ("" otherwise). */
const char *perfUnavailableReason();

/**
 * Stage-section sampling gate: true for one decode in
 * ASTREA_PERF_STAGE_STRIDE (per thread), false whenever counters are
 * disabled. Callers pass the result as PerfSection's `live` flag so
 * an unsampled decode costs one branch per section.
 */
bool perfSampleThisDecode();

/** Configured stage-sampling stride (>= 1). */
uint64_t perfStageStride();

/**
 * RAII counter section: reads the calling thread's group at
 * construction and destruction and folds the delta (attributed to
 * `stage`, covering `shots` shots) into the stage totals. With
 * live == false, or counters disabled/unavailable, both ends are
 * no-ops. Never allocates.
 *
 * trace_spans controls the decode-trace hook: by default the section
 * doubles as a trace span boundary. Bucket-level sections in the wide
 * decode path pass false — counter attribution still covers the whole
 * bucket, but per-shot spans are emitted separately via
 * DecodeTracer::recordStage() so each trace attributes its own lane,
 * not the bucket envelope.
 */
class PerfSection
{
  public:
    explicit PerfSection(PerfStage stage, uint64_t shots = 1,
                         bool live = true, bool trace_spans = true);
    ~PerfSection();

    PerfSection(const PerfSection &) = delete;
    PerfSection &operator=(const PerfSection &) = delete;

    /** Whether this section is actually measuring. */
    bool live() const { return live_; }

  private:
    PerfStage stage_;
    uint64_t shots_;
    bool live_ = false;
    bool traceSpans_ = true;
    PerfReading start_;
};

/**
 * Fold one measured delta into a stage's totals. PerfSection's
 * destructor goes through this; tests feed synthetic deltas to pin
 * the derived-metric math without needing a PMU.
 */
void addPerfSample(PerfStage stage, const PerfReading &delta,
                   uint64_t shots);

/** Point-in-time copy of one stage's totals. */
PerfStageTotals perfStageTotals(PerfStage stage);

/** Zero every stage's totals (per-result bench sections). */
void resetPerfTotals();

/**
 * Test hook: close this thread's group, unlatch availability, zero
 * totals and re-read the ASTREA_PERF_* environment knobs.
 */
void resetPerfForTest();

/**
 * Publish derived per-stage gauges into the registry (int64 units:
 * ipc in milli, llc-miss rate in ppm, cycles/shot rounded), plus
 * perf.available. Idempotent — gauges are set, not added.
 */
void publishPerfMetrics(MetricsRegistry &registry);

/**
 * Append the astrea_perf_* Prometheus families:
 * astrea_perf_available always; per-stage raw counters and derived
 * gauges (ipc, llc_miss_rate, cycles_per_shot) once available.
 */
void writePerfPrometheus(PrometheusWriter &w);

/**
 * Append one JSON object (caller already wrote the key):
 * {"counters_enabled","available","reason","stage_stride",
 *  "ipc","llc_miss_rate","cycles_per_shot",   // Batch-stage headline
 *  "stages":{<name>:{raw totals + derived}}}
 * The headline and per-stage entries are only emitted when counters
 * measured something, so consumers key off "available".
 */
void appendPerfJson(JsonWriter &w);

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_PERF_COUNTERS_HH
