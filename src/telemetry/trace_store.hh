/**
 * @file
 * Bounded lock-free trace store for tail-sampled per-decode traces.
 *
 * The tracer (telemetry/decode_trace.hh) records stage spans for every
 * decode; at decode completion a retention verdict keeps only the
 * interesting ones — slow, gave up, audit-sampled, or hit by the head
 * stride. Kept traces land here, in two places:
 *
 *  - a fixed-capacity ring of seqlock-published slots. Writers claim a
 *    slot with one fetch_add and publish with two release stores
 *    (odd = writing, even = stable); readers copy the payload and
 *    re-check the sequence, retrying torn reads. Nothing blocks and
 *    nothing allocates on the keep path — the slot array is allocated
 *    once at configure();
 *  - a per-latency-bucket exemplar table (the log2 buckets of
 *    telemetry/metrics.hh, the same geometry the /metrics latency
 *    histogram exposes). Each bucket pins a full copy of its
 *    worst-latency kept trace, so an OpenMetrics exemplar's trace id
 *    stays resolvable via /traces/<id> even after the ring evicted the
 *    slot. Exemplar updates are rare (only when a kept trace beats the
 *    bucket's current worst) and sit behind a mutex.
 *
 * Audit annotations arrive asynchronously (the auditor re-decodes on a
 * background pool): annotateAudit() attaches the weight gap through a
 * per-slot atomic side channel keyed by trace id, so it never disturbs
 * the seqlock protocol, and updates the exemplar copy under the mutex.
 *
 * The ring tolerates one theoretical race: a writer lapped by a full
 * ring rotation during its two-store publish window could interleave
 * with the lapping writer. With even modest capacities that requires
 * thousands of kept traces inside a ~100 ns memcpy; readers still
 * never see torn data (the sequence re-check fails), they just skip
 * the slot.
 */

#ifndef ASTREA_TELEMETRY_TRACE_STORE_HH
#define ASTREA_TELEMETRY_TRACE_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"

namespace astrea
{
namespace telemetry
{

class JsonWriter;
class PrometheusWriter;

/** /traces JSON schema version. */
constexpr uint64_t kTraceSchemaVersion = 1;

/** Spans a kept trace can carry inline; excess is counted, not kept. */
constexpr uint32_t kTraceMaxSpans = 24;

/** Defects a kept trace can carry inline (== audit sample cap). */
constexpr uint32_t kTraceMaxDefects = 64;

/** Decoder-name capacity, including the NUL. */
constexpr uint32_t kTraceDecoderLen = 32;

/** Retention-reason bits (StoredTrace::reasons). */
enum : uint8_t
{
    kTraceKeepSlow = 1u << 0,     ///< Latency above the tail threshold.
    kTraceKeepGiveUp = 1u << 1,   ///< Decoder gave up.
    kTraceKeepAudit = 1u << 2,    ///< Sampled into the audit queue.
    kTraceKeepStride = 1u << 3,   ///< Head-sampling stride hit.
    kTraceKeepError = 1u << 4,    ///< Logical error.
};

/** One stage interval, offsets relative to the batch start. */
struct TraceSpan
{
    uint8_t stage = 0;   ///< PerfStage value (perf_counters.hh).
    int32_t shot = -1;   ///< In-batch shot index; -1 = whole batch.
    uint32_t startNs = 0;
    uint32_t durNs = 0;
};

/** One kept trace: fixed-size so ring slots publish with a memcpy. */
struct StoredTrace
{
    uint64_t traceId = 0;
    uint64_t shot = 0;     ///< Worker-local shot number.
    uint32_t stream = 0;   ///< Worker / stream id.
    uint32_t hw = 0;
    char decoder[kTraceDecoderLen] = {};
    double latencyNs = 0.0;
    uint64_t cycles = 0;
    double matchingWeight = 0.0;
    uint64_t obsMask = 0;
    uint64_t actualObs = 0;
    bool gaveUp = false;
    bool logicalError = false;
    uint8_t reasons = 0;
    uint64_t captureSeq = 0;  ///< Flight-recorder capture id; 0 none.

    // Audit cross-link. `audited` is set synchronously when the shot
    // was enqueued for audit; the rest arrives via annotateAudit().
    bool audited = false;
    bool auditDone = false;
    bool auditMismatch = false;
    double auditGapDecades = 0.0;
    double oracleWeight = 0.0;
    uint64_t oracleObs = 0;

    uint32_t numSpans = 0;
    uint32_t droppedSpans = 0;
    TraceSpan spans[kTraceMaxSpans];
    uint32_t defects[kTraceMaxDefects] = {};
};

/** "ok", "give_up" or "logical_error". */
const char *traceOutcomeName(const StoredTrace &t);

/** Lowercase hex (16 digits) for a trace id. */
std::string traceIdHex(uint64_t id);

/** Parse a hex trace id ("0x" prefix optional); 0 on failure. */
uint64_t parseTraceIdHex(const std::string &s);

/** /traces index filters (all optional). */
struct TraceQuery
{
    double minNs = 0.0;      ///< Keep traces with latency >= minNs.
    std::string decoder;     ///< Exact decoder name; "" = any.
    std::string outcome;     ///< traceOutcomeName() value; "" = any.
    size_t limit = 100;
};

/** Bounded ring + exemplar table; see file comment. */
class TraceStore
{
  public:
    explicit TraceStore(size_t capacity = 1024);
    ~TraceStore();

    TraceStore(const TraceStore &) = delete;
    TraceStore &operator=(const TraceStore &) = delete;

    /**
     * (Re)size the ring and clear everything, counters included. Not
     * safe against concurrent keep() — call at service startup or from
     * tests, before decode workers run.
     */
    void configure(size_t capacity);

    /**
     * Install the run's context / decoder descriptions (pre-serialized
     * JSON objects, the same strings FlightRecorder::beginRun takes)
     * so a dumped trace embeds enough for `astrea_cli replay
     * --trace-id` to rebuild the decode.
     */
    void setRunInfo(std::string context_json, std::string decoder_json);

    /** One decode completed with tracing active. */
    void noteConsidered() { considered_.fetch_add(1, relaxed_); }
    /** ...and its retention verdict discarded it. */
    void noteDropped() { dropped_.fetch_add(1, relaxed_); }
    /** Spans lost to the per-trace cap or the tracer buffer. */
    void noteSpansDropped(uint64_t n)
    {
        if (n)
            spansDropped_.fetch_add(n, relaxed_);
    }

    /** Retain a trace: ring publish + exemplar update. Lock-free on
     *  the ring; takes the exemplar mutex only when this trace is the
     *  new worst of its latency bucket. Never allocates. */
    void keep(const StoredTrace &t);

    /**
     * Attach the asynchronous audit verdict to a kept trace, wherever
     * it still lives (ring slot, exemplar copy, or both). Returns true
     * if any copy was annotated.
     */
    bool annotateAudit(uint64_t trace_id, bool mismatch,
                       double gap_decades, double oracle_weight,
                       uint64_t oracle_obs, uint64_t capture_seq);

    /** Copy a trace out by id; ring first, then exemplar table.
     *  `out` may be null for a pure existence check. */
    bool find(uint64_t trace_id, StoredTrace *out) const;

    /** Ring contents, newest first, capped at limit. Allocates. */
    std::vector<StoredTrace> snapshot(size_t limit = SIZE_MAX) const;

    struct Counters
    {
        uint64_t considered = 0;
        uint64_t kept = 0;
        uint64_t dropped = 0;
        uint64_t evicted = 0;
        uint64_t spansDropped = 0;
        size_t occupancy = 0;
        size_t capacity = 0;
    };
    Counters counters() const;

    /** Latency-bucket exemplar (log2 bucket b of metrics.hh). */
    struct Exemplar
    {
        bool valid = false;
        uint64_t traceId = 0;
        double latencyNs = 0.0;
    };
    Exemplar exemplar(size_t bucket) const;

    /** Worst exemplar strictly above log2 bucket `bucket` (for the
     *  +Inf histogram bucket); invalid when none. */
    Exemplar exemplarAbove(size_t bucket) const;

    /** /traces index JSON (filtered, newest first). */
    std::string indexJson(const TraceQuery &q) const;

    /** /traces/<id> detail JSON; "" when the id is not resolvable. */
    std::string detailJson(uint64_t trace_id) const;

    /** Append astrea_trace_* families to a /metrics exposition. */
    void writeMetrics(PrometheusWriter &w) const;

    /** Write the /statusz "trace_store" object's key/value pairs into
     *  an already-open JSON object. */
    void writeStatusz(JsonWriter &w) const;

    /** The process-wide store the tracer publishes into. */
    static TraceStore &global();

  private:
    struct Slot;

    bool readSlot(size_t idx, StoredTrace *out) const;
    void appendSummaryJson(JsonWriter &w, const StoredTrace &t) const;
    void appendDetailJson(JsonWriter &w, const StoredTrace &t) const;

    static constexpr std::memory_order relaxed_ =
        std::memory_order_relaxed;

    std::unique_ptr<Slot[]> slots_;
    size_t capacity_ = 0;
    alignas(64) std::atomic<uint64_t> head_{0};

    std::atomic<uint64_t> considered_{0};
    std::atomic<uint64_t> kept_{0};
    std::atomic<uint64_t> dropped_{0};
    std::atomic<uint64_t> evicted_{0};
    std::atomic<uint64_t> spansDropped_{0};

    struct ExemplarSlot
    {
        bool valid = false;
        StoredTrace t;
    };
    mutable std::mutex exemplarMu_;
    ExemplarSlot exemplars_[kLatencyBuckets];

    mutable std::mutex runInfoMu_;
    std::string contextJson_;
    std::string decoderJson_;
};

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_TRACE_STORE_HH
