/**
 * @file
 * Thread-aware metrics registry: counters, gauges, integer histograms
 * and latency histograms, shared by every decoder and harness stage.
 *
 * The experiment harness fans shot loops out across worker threads, so
 * every metric is sharded: writers touch a cache-line-padded per-shard
 * atomic slot picked by a thread-local index, and readers merge the
 * shards on collect. Writes are relaxed atomics — the registry counts
 * events, it does not order them — which keeps a disabled-but-compiled
 * instrumentation site at one predicted branch and an enabled one at
 * one uncontended fetch_add.
 *
 * Metrics are registered on first use by name and are never erased, so
 * references returned by the lookup methods stay valid for the process
 * lifetime (the macro layer in telemetry.hh caches them in function-
 * local statics). reset() zeroes values in place without invalidating
 * references, which is what tests and multi-section benches need.
 */

#ifndef ASTREA_TELEMETRY_METRICS_HH
#define ASTREA_TELEMETRY_METRICS_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace astrea
{
namespace telemetry
{

/** Shard count; a small power of two balancing contention and merges. */
constexpr unsigned kShardCount = 16;

/** Stable per-thread shard slot in [0, kShardCount). */
unsigned shardIndex();

/** Global telemetry switch (ASTREA_TELEMETRY=1 or setEnabled()). */
bool enabled();
void setEnabled(bool on);

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        shards_[shardIndex()].v.fetch_add(n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    /** Merged total across shards. */
    uint64_t value() const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Shard, kShardCount> shards_;
};

/** Last-writer-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t n)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Record v if it exceeds the current value. */
    void recordMax(int64_t v);

    int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Merged view of an integer histogram. */
struct IntHistogramSnapshot
{
    std::vector<uint64_t> bins;  ///< Counts for keys 0..bins.size()-1.
    uint64_t overflow = 0;
    uint64_t total = 0;

    /** Largest key with a nonzero count (0 if empty). */
    size_t maxObserved() const;
};

/** Dense integer-keyed histogram with an overflow bin, sharded. */
class IntHistogram
{
  public:
    explicit IntHistogram(size_t max_key = 64);

    void
    add(size_t key, uint64_t n = 1)
    {
        auto &shard = shards_[shardIndex()];
        size_t slot = key < numBins_ ? key : numBins_;  // Overflow.
        shard.bins[slot].fetch_add(n, std::memory_order_relaxed);
    }

    size_t maxKey() const { return numBins_ - 1; }

    IntHistogramSnapshot snapshot() const;

    void reset();

  private:
    struct Shard
    {
        /** numBins_ dense bins plus one trailing overflow slot. */
        std::unique_ptr<std::atomic<uint64_t>[]> bins;
    };

    size_t numBins_;
    std::array<Shard, kShardCount> shards_;
};

/** Merged view of a latency histogram. */
struct LatencySnapshot
{
    uint64_t count = 0;
    double meanNs = 0.0;
    double minNs = 0.0;
    double maxNs = 0.0;
    double p50Ns = 0.0;
    double p90Ns = 0.0;
    double p99Ns = 0.0;
};

/** Log2 bucket count shared by LatencyMetric and the rolling windows. */
constexpr size_t kLatencyBuckets = 64;

/** Bucket index for a nanosecond sample: bit width of round(ns). */
size_t latencyBucketIndex(uint64_t ns);

/** Lower / upper edge of log2 latency bucket b, in ns. */
double latencyBucketLowNs(size_t b);
double latencyBucketHighNs(size_t b);

/**
 * Merged raw log2 bucket counts of a latency histogram, as needed by
 * the Prometheus exposition (cumulative `le` buckets) and the rolling
 * sub-window aggregation.
 */
struct LatencyBuckets
{
    std::array<uint64_t, kLatencyBuckets> bins{};
    uint64_t count = 0;
    uint64_t sumNs = 0;
    uint64_t minNs = 0;  ///< 0 when empty.
    uint64_t maxNs = 0;
};

/**
 * Percentile estimate over merged log2 bins: linear interpolation
 * inside the bucket, clamped to the observed min/max. Shared by
 * LatencyMetric and RollingLatency. pct in (0, 100].
 */
double percentileFromLatencyBins(const uint64_t *bins, size_t num_bins,
                                 uint64_t count, uint64_t min_ns,
                                 uint64_t max_ns, double pct);

/**
 * Log2-bucketed duration histogram (nanosecond samples), sharded.
 * Bucket b holds samples in [2^(b-1), 2^b) ns, so 64 buckets cover
 * everything from sub-nanosecond to ~584 years; percentile queries
 * interpolate within the bucket and clamp to the observed min/max.
 */
class LatencyMetric
{
  public:
    static constexpr size_t kBuckets = kLatencyBuckets;

    void record(double ns);

    LatencySnapshot snapshot() const;

    /** Merged raw bucket counts (Prometheus histogram exposition). */
    LatencyBuckets buckets() const;

    /** Percentile estimate in ns; pct in (0, 100]. */
    double percentileNs(double pct) const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::array<std::atomic<uint64_t>, kBuckets> bins{};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sumNs{0};
        std::atomic<uint64_t> minNs{UINT64_MAX};
        std::atomic<uint64_t> maxNs{0};
    };

    void mergedBins(std::array<uint64_t, kBuckets> &bins,
                    uint64_t &count, uint64_t &min_ns,
                    uint64_t &max_ns) const;

    std::array<Shard, kShardCount> shards_;
};

/**
 * Name-keyed registry of all metrics. Lookup registers on first use;
 * returned references are process-lifetime stable.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry used by the macro layer. */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    IntHistogram &intHistogram(const std::string &name,
                               size_t max_key = 64);
    LatencyMetric &latency(const std::string &name);

    /** Zero every metric in place (references stay valid). */
    void reset();

    std::map<std::string, uint64_t> counterValues() const;
    std::map<std::string, int64_t> gaugeValues() const;
    std::map<std::string, IntHistogramSnapshot> intHistogramValues()
        const;
    std::map<std::string, LatencySnapshot> latencyValues() const;
    /** Raw log2 bucket counts (Prometheus histogram exposition). */
    std::map<std::string, LatencyBuckets> latencyBucketValues() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<IntHistogram>> intHists_;
    std::map<std::string, std::unique_ptr<LatencyMetric>> latencies_;
};

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_METRICS_HH
