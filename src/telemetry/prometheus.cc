#include "telemetry/prometheus.hh"

#include <cmath>
#include <cstdio>

namespace astrea
{
namespace telemetry
{

namespace
{

/**
 * Format a sample value: integers without a decimal point, everything
 * else with enough digits to round-trip, NaN/Inf spelled the way the
 * exposition format expects.
 */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

std::string
renderLabels(const PromLabels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += promMetricName(k);
        out += "=\"";
        out += promEscapeLabel(v);
        out += "\"";
    }
    out += "}";
    return out;
}

} // namespace

std::string
promMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (size_t i = 0; i < name.size(); i++) {
        char c = name[i];
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  c == '_' || c == ':' ||
                  (i > 0 && c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    if (out.empty())
        out = "_";
    return out;
}

std::string
promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

PrometheusWriter &
PrometheusWriter::family(const std::string &name,
                         const std::string &type,
                         const std::string &help)
{
    out_ += "# HELP " + name + " " + help + "\n";
    out_ += "# TYPE " + name + " " + type + "\n";
    return *this;
}

PrometheusWriter &
PrometheusWriter::sample(const std::string &name, double value,
                         const PromLabels &labels)
{
    out_ += name + renderLabels(labels) + " " + formatValue(value) +
            "\n";
    return *this;
}

PrometheusWriter &
PrometheusWriter::sample(const std::string &name, uint64_t value,
                         const PromLabels &labels)
{
    out_ += name + renderLabels(labels) + " " +
            std::to_string(value) + "\n";
    return *this;
}

PrometheusWriter &
PrometheusWriter::counter(const std::string &name,
                          const std::string &help, uint64_t value)
{
    family(name, "counter", help);
    return sample(name, value);
}

PrometheusWriter &
PrometheusWriter::gauge(const std::string &name,
                        const std::string &help, double value)
{
    family(name, "gauge", help);
    return sample(name, value);
}

PrometheusWriter &
PrometheusWriter::histogram(
    const std::string &name, const std::string &help,
    const std::vector<std::pair<double, uint64_t>> &cumulative,
    uint64_t total_count, double sum)
{
    return histogram(name, help, cumulative, total_count, sum, {},
                     PromExemplar{});
}

PrometheusWriter &
PrometheusWriter::histogram(
    const std::string &name, const std::string &help,
    const std::vector<std::pair<double, uint64_t>> &cumulative,
    uint64_t total_count, double sum,
    const std::vector<PromExemplar> &exemplars,
    const PromExemplar &inf_exemplar)
{
    auto exemplarSuffix = [](const PromExemplar &e) {
        if (!e.valid)
            return std::string();
        return " # " + renderLabels(e.labels) + " " +
               formatValue(e.value);
    };

    family(name, "histogram", help);
    for (size_t i = 0; i < cumulative.size(); i++) {
        const auto &[le, cum] = cumulative[i];
        out_ += name + "_bucket" +
                renderLabels({{"le", formatValue(le)}}) + " " +
                std::to_string(cum);
        if (i < exemplars.size())
            out_ += exemplarSuffix(exemplars[i]);
        out_ += "\n";
    }
    out_ += name + "_bucket" + renderLabels({{"le", "+Inf"}}) + " " +
            std::to_string(total_count) +
            exemplarSuffix(inf_exemplar) + "\n";
    sample(name + "_sum", sum);
    sample(name + "_count", total_count);
    return *this;
}

namespace
{

std::string
counterName(const std::string &prefix, const std::string &name)
{
    std::string n = promMetricName(prefix + name);
    // Prometheus convention: counter families end in _total.
    if (n.size() < 6 || n.compare(n.size() - 6, 6, "_total") != 0)
        n += "_total";
    return n;
}

} // namespace

void
appendRegistryMetrics(PrometheusWriter &w,
                      const MetricsRegistry &registry,
                      const std::string &prefix)
{
    for (const auto &[name, v] : registry.counterValues()) {
        w.family(counterName(prefix, name), "counter",
                 "Astrea telemetry counter " + name);
        w.sample(counterName(prefix, name), v);
    }

    for (const auto &[name, v] : registry.gaugeValues()) {
        std::string n = promMetricName(prefix + name);
        w.family(n, "gauge", "Astrea telemetry gauge " + name);
        w.sample(n, static_cast<double>(v));
    }

    for (const auto &[name, snap] : registry.intHistogramValues()) {
        std::string n = promMetricName(prefix + name);
        std::vector<std::pair<double, uint64_t>> cumulative;
        uint64_t cum = 0;
        double sum = 0.0;
        size_t top = snap.maxObserved();
        for (size_t k = 0; k <= top && k < snap.bins.size(); k++) {
            cum += snap.bins[k];
            sum += static_cast<double>(k) *
                   static_cast<double>(snap.bins[k]);
            cumulative.emplace_back(static_cast<double>(k), cum);
        }
        // Overflow entries are >= bins.size(); credit their lowest
        // possible key so _sum stays a defensible lower bound.
        sum += static_cast<double>(snap.bins.size()) *
               static_cast<double>(snap.overflow);
        w.histogram(n, "Astrea telemetry histogram " + name,
                    cumulative, snap.total, sum);
    }

    for (const auto &[name, b] : registry.latencyBucketValues()) {
        std::string n = promMetricName(prefix + name);
        std::vector<std::pair<double, uint64_t>> cumulative;
        uint64_t cum = 0;
        size_t top = 0;
        for (size_t i = 0; i < kLatencyBuckets; i++) {
            if (b.bins[i])
                top = i;
        }
        for (size_t i = 0; i <= top; i++) {
            cum += b.bins[i];
            cumulative.emplace_back(latencyBucketHighNs(i), cum);
        }
        w.histogram(n, "Astrea latency histogram " + name + " (ns)",
                    cumulative, b.count,
                    static_cast<double>(b.sumNs));
    }
}

std::string
renderPrometheus(const MetricsRegistry &registry,
                 const std::string &prefix)
{
    PrometheusWriter w;
    appendRegistryMetrics(w, registry, prefix);
    return w.str();
}

} // namespace telemetry
} // namespace astrea
