/**
 * @file
 * Prometheus text exposition (format version 0.0.4) for the metrics
 * registry and the live decode service.
 *
 * Renders counters, gauges and histograms with `# HELP`/`# TYPE`
 * headers, sanitized metric names (the registry's dotted names become
 * underscore-separated, e.g. "stream.windows" -> "astrea_stream_
 * windows"), escaped label values, and cumulative `le` buckets whose
 * "+Inf" bucket equals `_count` — the contract tools/scrape_check.py
 * enforces in CI. Counter families get the conventional `_total`
 * suffix. Latency histograms keep their nanosecond unit: `le` edges
 * are the log2 bucket upper bounds in ns.
 */

#ifndef ASTREA_TELEMETRY_PROMETHEUS_HH
#define ASTREA_TELEMETRY_PROMETHEUS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hh"

namespace astrea
{
namespace telemetry
{

/** ("name", "value") pairs attached to a sample. */
using PromLabels = std::vector<std::pair<std::string, std::string>>;

/**
 * An OpenMetrics exemplar: ` # {labels} value` appended to a bucket
 * line. Only meaningful in the OpenMetrics exposition (the 0.0.4 text
 * format has no exemplar syntax); histogram() drops invalid ones.
 */
struct PromExemplar
{
    bool valid = false;
    PromLabels labels;   ///< e.g. {{"trace_id", "9f3a..."}}.
    double value = 0.0;  ///< The exemplar observation (ns here).
};

/** Sanitize to the metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]*. */
std::string promMetricName(const std::string &name);

/** Escape a label value (backslash, double quote, newline). */
std::string promEscapeLabel(const std::string &value);

/** Streaming exposition writer. */
class PrometheusWriter
{
  public:
    /** Emit "# HELP name text" and "# TYPE name type" for a family. */
    PrometheusWriter &family(const std::string &name,
                             const std::string &type,
                             const std::string &help);

    /** Emit one sample line; name must already be sanitized. */
    PrometheusWriter &sample(const std::string &name, double value,
                             const PromLabels &labels = {});
    PrometheusWriter &sample(const std::string &name, uint64_t value,
                             const PromLabels &labels = {});

    /** family() + one unlabelled sample. */
    PrometheusWriter &counter(const std::string &name,
                              const std::string &help, uint64_t value);
    PrometheusWriter &gauge(const std::string &name,
                            const std::string &help, double value);

    /**
     * Emit a full histogram family: cumulative (le_upper, cum_count)
     * buckets — strictly increasing le, non-decreasing counts — then
     * the implicit "+Inf" bucket, `_sum` and `_count`.
     */
    PrometheusWriter &
    histogram(const std::string &name, const std::string &help,
              const std::vector<std::pair<double, uint64_t>> &cumulative,
              uint64_t total_count, double sum);

    /**
     * histogram() with per-bucket exemplars: exemplars[i] rides on
     * cumulative[i]'s line, and `inf_exemplar` on the "+Inf" bucket.
     * Invalid (or missing trailing) exemplars emit plain lines, so
     * the OpenMetrics and 0.0.4 expositions stay line-for-line
     * comparable apart from the exemplar suffixes.
     */
    PrometheusWriter &histogram(
        const std::string &name, const std::string &help,
        const std::vector<std::pair<double, uint64_t>> &cumulative,
        uint64_t total_count, double sum,
        const std::vector<PromExemplar> &exemplars,
        const PromExemplar &inf_exemplar);

    const std::string &str() const { return out_; }

  private:
    std::string out_;
};

/**
 * Render every metric in the registry under the given prefix:
 * counters as `<prefix><name>_total`, gauges as gauges, integer
 * histograms as histograms with unit-width `le` edges (overflow folds
 * into "+Inf"), latency metrics as histograms with log2 `le` edges in
 * ns. For integer histograms the `_sum` is reconstructed from the
 * dense bins (overflow entries contribute their lowest possible key),
 * which under-counts by at most the overflow mass — exact whenever
 * nothing overflowed.
 */
void appendRegistryMetrics(PrometheusWriter &w,
                           const MetricsRegistry &registry,
                           const std::string &prefix = "astrea_");

/** Convenience: one-shot exposition of the registry. */
std::string renderPrometheus(const MetricsRegistry &registry,
                             const std::string &prefix = "astrea_");

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_PROMETHEUS_HH
