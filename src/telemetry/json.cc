#include "telemetry/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace astrea
{
namespace telemetry
{

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

void
JsonWriter::emitPrefix()
{
    if (afterKey_)
        return;  // The key() call already placed the comma.
    if (!levels_.empty() && levels_.back().any)
        out_ += ',';
}

void
JsonWriter::postValue()
{
    afterKey_ = false;
    if (!levels_.empty())
        levels_.back().any = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    emitPrefix();
    postValue();
    out_ += '{';
    levels_.push_back({'{', false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    ASTREA_CHECK(!levels_.empty() && levels_.back().type == '{' &&
                     !afterKey_,
                 "unbalanced endObject");
    levels_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    emitPrefix();
    postValue();
    out_ += '[';
    levels_.push_back({'[', false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    ASTREA_CHECK(!levels_.empty() && levels_.back().type == '[' &&
                     !afterKey_,
                 "unbalanced endArray");
    levels_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    ASTREA_CHECK(!levels_.empty() && levels_.back().type == '{' &&
                     !afterKey_,
                 "key() outside an object");
    if (levels_.back().any)
        out_ += ',';
    out_ += jsonQuote(k);
    out_ += ':';
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    emitPrefix();
    out_ += jsonQuote(v);
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    emitPrefix();
    out_ += buf;
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    emitPrefix();
    out_ += v ? "true" : "false";
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    emitPrefix();
    out_ += buf;
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    emitPrefix();
    out_ += buf;
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json_value)
{
    emitPrefix();
    out_ += json_value;
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    emitPrefix();
    out_ += "null";
    postValue();
    return *this;
}

const std::string &
JsonWriter::str() const
{
    ASTREA_CHECK(levels_.empty() && !afterKey_,
                 "JSON document left unbalanced");
    return out_;
}

} // namespace telemetry
} // namespace astrea
