/**
 * @file
 * Ring-of-sub-window aggregation for live-service metrics.
 *
 * Since-process-start counters answer "how much, ever"; a live decode
 * service needs "how much, lately" — request rates, deadline-miss
 * fractions and latency percentiles over the last N seconds. These
 * classes keep a ring of sub-window slots keyed by a caller-supplied
 * monotonic tick (the decode service uses seconds-since-start divided
 * by the sub-window length; tests drive the tick explicitly). A slot
 * is lazily recycled the first time a writer touches it with a newer
 * tick, so there is no maintenance thread, and reads simply sum the
 * slots whose tick falls inside the queried window.
 *
 * Writers are lock-free. Recycling parks the slot's tick on a
 * mid-recycle marker, zeroes the fields, then publishes the new tick
 * with release ordering; readers acquire-load the tick, so a snapshot
 * landing exactly on a sub-window boundary either skips the recycling
 * slot or sees it freshly zeroed — never the new tick paired with the
 * previous sub-window's counts (which used to double-count the slot).
 * Writers racing a recycler can still lose a handful of samples at
 * the boundary; these windows feed monitoring gauges, not accounting,
 * and that loss is bounded by one slot rotation per window.
 * Single-threaded use — which is what the unit tests do — is exact.
 */

#ifndef ASTREA_TELEMETRY_ROLLING_WINDOW_HH
#define ASTREA_TELEMETRY_ROLLING_WINDOW_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/metrics.hh"

namespace astrea
{
namespace telemetry
{

/** Event counter aggregated over the most recent sub-windows. */
class RollingCounter
{
  public:
    /** Ring of `slots` sub-windows (the full window length). */
    explicit RollingCounter(size_t slots = 15);

    /** Count n events in the sub-window `tick`. */
    void add(uint64_t tick, uint64_t n = 1);

    /**
     * Sum over the last `last_k` sub-windows ending at `tick`
     * (inclusive of the current, possibly partial, sub-window).
     * last_k = 0 means the whole ring.
     */
    uint64_t total(uint64_t tick, size_t last_k = 0) const;

    size_t slots() const { return slots_.size(); }

  private:
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> tick{kIdleTick};
        std::atomic<uint64_t> count{0};
    };

    static constexpr uint64_t kIdleTick = ~0ull;

    std::vector<Slot> slots_;
};

/**
 * Latency histogram aggregated over the most recent sub-windows, with
 * the same log2 bucket geometry as LatencyMetric so percentiles and
 * Prometheus `le` edges match the since-start histograms.
 */
class RollingLatency
{
  public:
    explicit RollingLatency(size_t slots = 15);

    void record(uint64_t tick, double ns);

    /** Samples in the last `last_k` sub-windows (0 = whole ring). */
    uint64_t count(uint64_t tick, size_t last_k = 0) const;

    /** Percentile over the last `last_k` sub-windows (0 = whole ring). */
    double percentileNs(uint64_t tick, double pct,
                        size_t last_k = 0) const;

    /** Merged bucket counts (Prometheus exposition of the window). */
    LatencyBuckets buckets(uint64_t tick, size_t last_k = 0) const;

    size_t slots() const { return slots_.size(); }

  private:
    struct alignas(64) Slot
    {
        std::atomic<uint64_t> tick{kIdleTick};
        std::array<std::atomic<uint64_t>, kLatencyBuckets> bins{};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sumNs{0};
        std::atomic<uint64_t> maxNs{0};
        std::atomic<uint64_t> minNs{UINT64_MAX};
    };

    static constexpr uint64_t kIdleTick = ~0ull;

    /** True if the slot's tick lies in (tick - k, tick]. */
    static bool inWindow(uint64_t slot_tick, uint64_t tick, size_t k);

    std::vector<Slot> slots_;
};

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_ROLLING_WINDOW_HH
