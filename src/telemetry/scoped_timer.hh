/**
 * @file
 * Scoped span timing for tracing decode stages.
 *
 * A ScopedTimer pushes its name onto a thread-local span stack on
 * construction and, on destruction, records the elapsed wall-clock time
 * into the global MetricsRegistry under "span.<path>", where <path> is
 * the '/'-joined nesting of enclosing spans ("experiment.run/decode").
 * When a JSONL trace file is configured (export.hh), each completed
 * span additionally appends a trace event; when a Chrome trace is
 * configured (chrome_trace.hh), the span emits matched "B"/"E"
 * duration events so it shows up as a slice on the thread's Perfetto
 * timeline.
 *
 * Spans are strictly scoped (RAII), so nesting always forms a proper
 * tree per thread; interleaving across threads is fine because the
 * stack is thread-local and the registry is thread-safe.
 */

#ifndef ASTREA_TELEMETRY_SCOPED_TIMER_HH
#define ASTREA_TELEMETRY_SCOPED_TIMER_HH

#include <chrono>
#include <string>

namespace astrea
{
namespace telemetry
{

class ChromeTraceWriter;

/** RAII span: times a scope and records it under the nested path. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const std::string &name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Elapsed time so far. */
    double elapsedNs() const;

    /** Full '/'-joined path of this span. */
    const std::string &path() const { return path_; }

    /**
     * The calling thread's current span path ("" outside any span).
     * Useful for tagging log lines and trace events with context.
     */
    static std::string currentPath();

    /** Nesting depth of the calling thread (0 outside any span). */
    static size_t currentDepth();

  private:
    std::string path_;
    /** Offset of this span's own name inside path_. */
    size_t nameOffset_ = 0;
    /** Chrome trace the "B" event went to (nullptr if none). */
    ChromeTraceWriter *chrome_ = nullptr;
    /** Trace generation at "B" time (guards writer replacement). */
    uint64_t chromeGen_ = 0;
    std::chrono::steady_clock::time_point start_;
};

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_SCOPED_TIMER_HH
