/**
 * @file
 * Minimal streaming JSON writer for telemetry exports.
 *
 * The bench reports and JSONL traces need machine-readable output, but
 * the repository has a no-external-dependency policy, so this is a
 * small hand-rolled writer: begin/end object/array with automatic
 * comma placement, string escaping, and finite-number handling
 * (NaN/Inf serialize as null, which every JSON parser accepts).
 * Balanced nesting is enforced with ASTREA_CHECK; the writer is for
 * trusted in-process callers, not arbitrary input.
 */

#ifndef ASTREA_TELEMETRY_JSON_HH
#define ASTREA_TELEMETRY_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace astrea
{
namespace telemetry
{

/** Escape a string for inclusion in JSON (adds surrounding quotes). */
std::string jsonQuote(const std::string &s);

/** Streaming JSON writer with automatic comma management. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint32_t v) { return value(uint64_t{v}); }
    JsonWriter &value(int32_t v) { return value(int64_t{v}); }
    JsonWriter &null();

    /**
     * Splice a pre-serialized JSON value verbatim in value position.
     * The caller vouches that the fragment is itself valid JSON (the
     * flight recorder embeds context objects serialized elsewhere).
     */
    JsonWriter &raw(const std::string &json_value);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** Finished document; checks that all containers were closed. */
    const std::string &str() const;

    bool balanced() const { return levels_.empty(); }

  private:
    struct Level
    {
        char type;  ///< '{' or '['.
        bool any;   ///< An element has been written at this level.
    };

    void emitPrefix();
    void postValue();

    std::string out_;
    std::vector<Level> levels_;
    bool afterKey_ = false;
};

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_JSON_HH
