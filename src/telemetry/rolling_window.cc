#include "telemetry/rolling_window.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace astrea
{
namespace telemetry
{

namespace
{

/**
 * Mid-recycle marker parked in a slot's tick while its fields are
 * being zeroed. Like kIdleTick it fails `slot_tick <= tick` for any
 * realistic tick, so readers exclude a slot that is mid-recycle
 * instead of attributing the previous sub-window's counts to the new
 * one.
 */
constexpr uint64_t kRecycleTick = ~0ull - 1;

/** True if slot_tick lies in the window (tick - k, tick]. */
bool
tickInWindow(uint64_t slot_tick, uint64_t tick, size_t k)
{
    // kIdleTick (~0) and kRecycleTick (~0 - 1) fail slot_tick <= tick
    // for any realistic tick.
    return slot_tick <= tick && slot_tick + k > tick;
}

} // namespace

RollingCounter::RollingCounter(size_t slots)
    : slots_(std::max<size_t>(1, slots))
{
}

void
RollingCounter::add(uint64_t tick, uint64_t n)
{
    Slot &s = slots_[tick % slots_.size()];
    uint64_t cur = s.tick.load(std::memory_order_acquire);
    if (cur != tick && cur != kRecycleTick) {
        // First writer of a new sub-window recycles the slot: park
        // the tick on the mid-recycle marker (readers skip the slot),
        // zero, then publish the new tick with release ordering. A
        // snapshot landing exactly on the boundary therefore never
        // sees the new tick paired with the previous sub-window's
        // count (which double-counted the recycling slot). Writers
        // racing the recycler can still lose a sample (see file
        // comment).
        if (s.tick.compare_exchange_strong(cur, kRecycleTick,
                                           std::memory_order_acq_rel)) {
            s.count.store(0, std::memory_order_relaxed);
            s.tick.store(tick, std::memory_order_release);
        }
    }
    s.count.fetch_add(n, std::memory_order_relaxed);
}

uint64_t
RollingCounter::total(uint64_t tick, size_t last_k) const
{
    size_t k = last_k == 0 ? slots_.size()
                           : std::min(last_k, slots_.size());
    uint64_t sum = 0;
    for (const Slot &s : slots_) {
        // Acquire pairs with the recycler's release-store: a slot
        // seen with a fresh tick is seen with its fields zeroed.
        if (tickInWindow(s.tick.load(std::memory_order_acquire), tick,
                         k))
            sum += s.count.load(std::memory_order_relaxed);
    }
    return sum;
}

RollingLatency::RollingLatency(size_t slots)
    : slots_(std::max<size_t>(1, slots))
{
}

bool
RollingLatency::inWindow(uint64_t slot_tick, uint64_t tick, size_t k)
{
    return tickInWindow(slot_tick, tick, k);
}

void
RollingLatency::record(uint64_t tick, double ns)
{
    if (ns < 0.0 || !std::isfinite(ns))
        ns = 0.0;
    uint64_t t = static_cast<uint64_t>(std::llround(ns));

    Slot &s = slots_[tick % slots_.size()];
    uint64_t cur = s.tick.load(std::memory_order_acquire);
    if (cur != tick && cur != kRecycleTick) {
        // Same recycle protocol as RollingCounter::add: mark, zero,
        // publish — so a boundary snapshot never merges the previous
        // sub-window's histogram into the new tick.
        if (s.tick.compare_exchange_strong(cur, kRecycleTick,
                                           std::memory_order_acq_rel)) {
            for (auto &b : s.bins)
                b.store(0, std::memory_order_relaxed);
            s.count.store(0, std::memory_order_relaxed);
            s.sumNs.store(0, std::memory_order_relaxed);
            s.maxNs.store(0, std::memory_order_relaxed);
            s.minNs.store(UINT64_MAX, std::memory_order_relaxed);
            s.tick.store(tick, std::memory_order_release);
        }
    }
    s.bins[latencyBucketIndex(t)].fetch_add(1,
                                            std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sumNs.fetch_add(t, std::memory_order_relaxed);

    uint64_t cur_min = s.minNs.load(std::memory_order_relaxed);
    while (t < cur_min &&
           !s.minNs.compare_exchange_weak(cur_min, t,
                                          std::memory_order_relaxed)) {
    }
    uint64_t cur_max = s.maxNs.load(std::memory_order_relaxed);
    while (t > cur_max &&
           !s.maxNs.compare_exchange_weak(cur_max, t,
                                          std::memory_order_relaxed)) {
    }
}

LatencyBuckets
RollingLatency::buckets(uint64_t tick, size_t last_k) const
{
    size_t k = last_k == 0 ? slots_.size()
                           : std::min(last_k, slots_.size());
    LatencyBuckets out;
    uint64_t min_ns = UINT64_MAX;
    for (const Slot &s : slots_) {
        if (!inWindow(s.tick.load(std::memory_order_acquire), tick, k))
            continue;
        for (size_t b = 0; b < kLatencyBuckets; b++)
            out.bins[b] += s.bins[b].load(std::memory_order_relaxed);
        out.count += s.count.load(std::memory_order_relaxed);
        out.sumNs += s.sumNs.load(std::memory_order_relaxed);
        min_ns = std::min(min_ns,
                          s.minNs.load(std::memory_order_relaxed));
        out.maxNs = std::max(out.maxNs,
                             s.maxNs.load(std::memory_order_relaxed));
    }
    out.minNs = out.count == 0 ? 0 : min_ns;
    if (out.count == 0)
        out.maxNs = 0;
    return out;
}

uint64_t
RollingLatency::count(uint64_t tick, size_t last_k) const
{
    size_t k = last_k == 0 ? slots_.size()
                           : std::min(last_k, slots_.size());
    uint64_t sum = 0;
    for (const Slot &s : slots_) {
        if (inWindow(s.tick.load(std::memory_order_acquire), tick, k))
            sum += s.count.load(std::memory_order_relaxed);
    }
    return sum;
}

double
RollingLatency::percentileNs(uint64_t tick, double pct,
                             size_t last_k) const
{
    LatencyBuckets b = buckets(tick, last_k);
    return percentileFromLatencyBins(b.bins.data(), kLatencyBuckets,
                                     b.count, b.minNs, b.maxNs, pct);
}

} // namespace telemetry
} // namespace astrea
