/**
 * @file
 * In-process sampling on-CPU profiler for the decode path.
 *
 * Counters (perf_counters.hh) say how expensive a stage is; this says
 * *where* the cycles go: a SIGPROF timer (setitimer(ITIMER_PROF))
 * fires on whichever thread is burning CPU time, and the signal
 * handler captures that thread's backtrace into a preallocated
 * lock-free sample ring. Post-collection, samples are symbolized
 * (dladdr + __cxa_demangle) and emitted either as collapsed/folded
 * stacks ("frame;frame;frame count" — flamegraph.pl / speedscope
 * input) or as speedscope's JSON file format.
 *
 * Signal-handler constraints (see DESIGN.md §13): the handler only
 * claims a ring slot with one fetch_add and calls backtrace(3).
 * glibc's backtrace lazily loads libgcc's unwinder on first use —
 * which malloc()s — so start() calls backtrace once *before*
 * installing the handler. No allocation, locking or symbolization
 * happens at signal time; when the ring is full, samples are dropped
 * and counted, never blocked on.
 *
 * ITIMER_PROF measures CPU time (user + system), so an idle process
 * produces no samples — by design: this is an on-CPU profiler.
 *
 * Wired to `astrea_cli serve` as /pprof/profile?seconds=N[&hz=H]
 * [&format=collapsed|speedscope] and to the benches via
 * --profile-out=PATH (bench_util.hh); tools/profile_report.py
 * summarizes either output.
 */

#ifndef ASTREA_TELEMETRY_SAMPLING_PROFILER_HH
#define ASTREA_TELEMETRY_SAMPLING_PROFILER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace astrea
{
namespace telemetry
{

/** Singleton sampling profiler; see file comment. */
class SamplingProfiler
{
  public:
    /** Ring capacity: samples kept per collection run. */
    static constexpr size_t kMaxSamples = 16384;
    /** Deepest stack recorded per sample. */
    static constexpr size_t kMaxFrames = 48;

    static SamplingProfiler &global();

    /**
     * Install the SIGPROF handler and start the profiling timer at
     * `hz` samples/second (clamped to [1, 1000]). False with *error
     * set when already running or the timer cannot be installed.
     * Does not clear previously collected samples — call clear().
     */
    bool start(unsigned hz, std::string *error = nullptr);

    /** Stop the timer and restore the previous SIGPROF disposition. */
    void stop();

    bool running() const { return running_.load(); }

    /** Samples captured (kept, excluding drops) so far. */
    size_t sampleCount() const;
    /** Samples dropped because the ring was full. */
    uint64_t droppedSamples() const;
    /** Discard collected samples (not allowed while running). */
    void clear();

    /**
     * Collapsed/folded stacks: one "frame;frame;... count" line per
     * distinct stack, root first, sorted by descending count. Empty
     * string when no samples were captured.
     */
    std::string collapsed() const;

    /** speedscope JSON (https://www.speedscope.app file format). */
    std::string speedscopeJson(const std::string &name = "astrea")
        const;

  private:
    SamplingProfiler();

    friend void samplingProfilerSignalHandler(int);
    void captureSample();

    struct Sample
    {
        std::atomic<uint32_t> depth{0};  ///< 0 while being written.
        void *pcs[kMaxFrames];
    };

    /**
     * Symbolize and fold the first sampleCount() ring entries into
     * (root-first frame list, count) pairs shared by collapsed() and
     * speedscopeJson().
     */
    std::vector<std::pair<std::vector<std::string>, uint64_t>>
    foldedStacks() const;

    std::vector<Sample> ring_;
    std::atomic<size_t> next_{0};
    std::atomic<uint64_t> dropped_{0};
    std::atomic<bool> running_{false};
    mutable std::mutex mu_;  ///< Serializes start/stop/clear.
};

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_SAMPLING_PROFILER_HH
