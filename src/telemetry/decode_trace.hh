/**
 * @file
 * Per-decode tracing: a thread-local span recorder with tail-based
 * retention (telemetry/trace_store.hh holds what survives).
 *
 * Every decode gets a TraceContext — a 64-bit trace id derived
 * deterministically from a seed and the shot number, the stream
 * (worker) id, the in-batch shot index and the decoder name — and the
 * existing PerfSection cut points (Gather/Matching/Verdict/Window/
 * Batch) double as span boundaries: perf_counters.cc calls
 * traceStageBegin()/traceStageEnd() unconditionally, so spans record
 * even when the hardware counters are off. Everything lands in a
 * preallocated per-thread buffer; with tracing inactive each hook is
 * one thread-local flag test, and with tracing active the per-span
 * cost is two steady_clock reads — cheap enough to leave on for every
 * decode in a serving fleet, and strictly allocation-free
 * (tests/alloc_test.cc holds the whole begin/decode/finish path to
 * zero steady-state allocations).
 *
 * Retention is decided at decode *completion* (tail-based sampling):
 * finishShot() keeps the trace only if it was slow (latency above the
 * configured threshold, or above the service's rolling p99 when the
 * threshold is 0/auto), gave up, produced a logical error, was
 * sampled into the audit queue, or hit the head-sampling stride.
 * Kept traces move into TraceStore::global(); everything else costs
 * nothing beyond the buffered spans being forgotten.
 *
 * Knobs (common/env.hh, overridable via ServeConfig / CLI flags):
 * ASTREA_TRACE (master switch), ASTREA_TRACE_TAIL_NS (0 = auto p99),
 * ASTREA_TRACE_STRIDE, ASTREA_TRACE_RING.
 */

#ifndef ASTREA_TELEMETRY_DECODE_TRACE_HH
#define ASTREA_TELEMETRY_DECODE_TRACE_HH

#include <cstdint>

#include "telemetry/perf_counters.hh"
#include "telemetry/trace_store.hh"

namespace astrea
{
namespace telemetry
{

/** Retention policy; process-wide (setTraceRetention). */
struct TraceRetentionConfig
{
    /** Master switch; beginBatch() is a no-op when false. */
    bool enabled = false;
    /** Keep traces slower than this; 0 = auto (rolling p99). */
    double tailThresholdNs = 0.0;
    /** Keep every Nth decode regardless; 0 disables head sampling. */
    uint64_t headStride = 8192;

    /** Overlay ASTREA_TRACE_* environment knobs onto base. */
    static TraceRetentionConfig fromEnv(TraceRetentionConfig base);
};

/** Install the process-wide retention policy. */
void setTraceRetention(const TraceRetentionConfig &cfg);

/** Current policy (lazily seeded from the environment). */
TraceRetentionConfig traceRetention();

/**
 * Publish the rolling p99 used as the slow threshold when
 * tailThresholdNs is 0 (the decode service refreshes this
 * periodically from its latency window).
 */
void setTraceAutoTailNs(double p99_ns);

/** Effective slow threshold: explicit if set, else the auto p99. */
double traceEffectiveTailNs();

/** Everything finishShot() needs to pass a retention verdict. */
struct TraceShotOutcome
{
    double latencyNs = 0.0;
    uint64_t cycles = 0;
    double matchingWeight = 0.0;
    uint64_t obsMask = 0;
    uint64_t actualObs = 0;
    bool gaveUp = false;
    bool logicalError = false;
    /** The shot was enqueued into the audit queue (offer() == true). */
    bool audited = false;
    /** Flight-recorder capture triggered by this shot; 0 = none. */
    uint64_t captureSeq = 0;
    const uint32_t *defects = nullptr;
    uint32_t hw = 0;
};

/**
 * Per-thread span recorder. Obtain with decodeTracer(); all methods
 * are wait-free and allocation-free.
 */
class DecodeTracer
{
  public:
    /** Spans the batch buffer holds before counting drops. */
    static constexpr uint32_t kBufSpans = 1024;
    /** Largest in-batch shot index with an exact span range. */
    static constexpr uint32_t kMaxBatchShots = 256;

    /**
     * Arm tracing for one decodeBatch call on this thread. seed makes
     * trace ids deterministic per (stream, shot): callers derive it
     * from the run seed and the worker index. A no-op (the whole
     * batch records nothing) when retention is disabled.
     */
    void beginBatch(uint32_t stream, uint64_t base_shot,
                    const char *decoder, uint64_t seed);

    /**
     * Mark the start of in-batch shot `shot_idx` (Decoder::decodeBatch
     * calls this before each decodeInto; the wide bucketed path calls
     * it per lane at verdict time). Shots may begin in any order —
     * beginning a new shot seals the previous shot's span range, so
     * bucketed decoding that visits shots out of batch order still
     * attributes every span to the right shot.
     */
    void shotBegin(uint32_t shot_idx);

    /** Stage hooks (PerfSection ctor/dtor). */
    void stageBegin(PerfStage stage);
    void stageEnd(PerfStage stage);

    /**
     * Append a completed span for the current shot from explicit
     * timestamps (traceClockNs()). The wide decode path measures
     * gather/matching per bucket lane while the kernels run
     * back-to-back, then replays the timestamps here once the lane's
     * shot is current — keeping each shot's spans contiguous without
     * a PerfSection per lane.
     */
    void recordStage(PerfStage stage, uint64_t t0_ns, uint64_t t1_ns);

    /** Deterministic trace id of in-batch shot `shot_idx`. */
    uint64_t shotId(uint32_t shot_idx) const;

    /**
     * Tail-retention verdict for one completed shot: returns the
     * trace id when the trace was kept (published to
     * TraceStore::global()), 0 when discarded or inactive.
     */
    uint64_t finishShot(uint32_t shot_idx, const TraceShotOutcome &o);

    /** Disarm and forget the batch's buffered spans. */
    void endBatch();

    bool active() const { return active_; }

  private:
    bool active_ = false;
    uint32_t stream_ = 0;
    uint64_t baseShot_ = 0;
    uint64_t seed_ = 0;
    char decoder_[kTraceDecoderLen] = {};
    uint64_t batchStartNs_ = 0;
    int32_t curShot_ = -1;

    // Cached retention policy, copied once per batch.
    double tailNs_ = 0.0;
    uint64_t stride_ = 0;
    uint64_t decodeNo_ = 0;  ///< Stride counter; survives batches.

    TraceSpan buf_[kBufSpans];
    uint32_t nBuf_ = 0;
    uint32_t droppedBuf_ = 0;
    uint32_t shotStart_[kMaxBatchShots] = {};
    /** Sealed by the NEXT shotBegin(); the current shot reads nBuf_. */
    uint32_t shotEnd_[kMaxBatchShots] = {};

    struct OpenSection
    {
        PerfStage stage;
        int32_t shot;
        uint64_t t0;
    };
    OpenSection open_[8];
    uint32_t depth_ = 0;

    TraceSpan batchSpan_;
    bool hasBatchSpan_ = false;
};

/** This thread's tracer. */
DecodeTracer &decodeTracer();

/**
 * Free-function hooks, cheap when tracing is inactive. Called from
 * PerfSection (perf_counters.cc) and Decoder::decodeBatch
 * (decoders/decoder.cc) so every decoder path emits spans without
 * knowing about the tracer.
 */
void traceStageBegin(PerfStage stage);
void traceStageEnd(PerfStage stage);
void traceShotBegin(uint32_t shot_idx);

/**
 * Monotonic timestamp in the tracer's clock domain, for
 * DecodeTracer::recordStage(). Callers should only bother when the
 * tracer is active.
 */
uint64_t traceClockNs();

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_DECODE_TRACE_HH
