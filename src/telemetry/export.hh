/**
 * @file
 * Telemetry exporters: full-registry JSON snapshots and an append-only
 * JSONL trace stream.
 *
 * The JSON snapshot serializes every metric in the registry — this is
 * what bench binaries embed in their --json-out reports, giving each
 * run a machine-readable record of the decoder's internal counters
 * (HW6 invocations, filter reductions, give-ups, queue occupancy, ...)
 * next to its headline numbers.
 *
 * The JSONL trace appends one self-contained JSON object per line:
 * span completions (scoped_timer.hh) and per-shot / per-stage events
 * emitted by the instrumented hot paths. One line per event keeps the
 * file greppable and streamable; writers are mutex-guarded so worker
 * threads never interleave partial lines. The process-wide trace is
 * configured with setGlobalTraceFile() or the ASTREA_TRACE_FILE
 * environment variable; per-shot events can be thinned with
 * ASTREA_TRACE_SAMPLE=N (keep every Nth shot).
 */

#ifndef ASTREA_TELEMETRY_EXPORT_HH
#define ASTREA_TELEMETRY_EXPORT_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace astrea
{
namespace telemetry
{

/**
 * Append the registry's full contents as one JSON object:
 * {"counters":{...},"gauges":{...},"int_histograms":{...},
 *  "latency_histograms":{...}}. Int histograms serialize sparsely
 * (only nonzero keys); latency histograms serialize as summary stats
 * including p50/p90/p99.
 */
void appendMetricsJson(JsonWriter &w, const MetricsRegistry &registry);

/** The registry as a standalone JSON document string. */
std::string metricsToJson(const MetricsRegistry &registry);

/** Write the registry snapshot to a file; fatal() on I/O failure. */
void writeMetricsJson(const MetricsRegistry &registry,
                      const std::string &path);

/** Mutex-guarded JSONL appender: one JSON object per line. */
class TraceWriter
{
  public:
    /** Opens (and truncates, unless append) the file; "" disables. */
    explicit TraceWriter(const std::string &path, bool append = false);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    bool ok() const { return file_ != nullptr; }
    uint64_t linesWritten() const { return lines_; }

    /** Append one pre-serialized JSON object as a line. */
    void line(const std::string &json_object);

  private:
    std::mutex mu_;
    std::FILE *file_ = nullptr;
    uint64_t lines_ = 0;
};

/**
 * The process-wide trace, or nullptr when tracing is off. Configured
 * lazily from ASTREA_TRACE_FILE on first call, or explicitly via
 * setGlobalTraceFile().
 */
TraceWriter *globalTrace();

/** globalTrace() without the mutex, for per-shot polling. */
TraceWriter *globalTraceFast();

/** (Re)configure the global trace; an empty path disables tracing. */
void setGlobalTraceFile(const std::string &path);

/**
 * Per-shot trace sampling stride (ASTREA_TRACE_SAMPLE, default 1 =
 * every shot). Hot loops emit shot events only when
 * shot_index % stride == 0. Invalid values (0, non-numeric, partial
 * parses) warn once and fall back to 1.
 */
uint64_t traceSampleStride();

/**
 * Parse a stride string: positive integers pass through; nullptr or
 * "" is the default 1; anything else (0, non-numeric, trailing
 * garbage) sets *invalid and returns the safe fallback 1. Exposed so
 * the validation is testable apart from the env-cached stride.
 */
uint64_t parseTraceStride(const char *text, bool *invalid);

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_EXPORT_HH
