#include "telemetry/json_value.hh"

#include <cctype>
#include <cstdlib>

namespace astrea
{
namespace telemetry
{

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            pos_++;
        }
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        pos_++;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'u': {
                    if (pos_ + 4 > s_.size())
                        return false;
                    // The writer only escapes control characters this
                    // way; decode the ASCII range and keep anything
                    // else verbatim.
                    std::string hex = s_.substr(pos_, 4);
                    char *end = nullptr;
                    long cp = std::strtol(hex.c_str(), &end, 16);
                    if (end != hex.c_str() + 4)
                        return false;
                    if (cp < 0x80)
                        out += static_cast<char>(cp);
                    else
                        out += "\\u" + hex;
                    pos_ += 4;
                    break;
                  }
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= s_.size())
            return false;
        pos_++;  // Closing quote.
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{') {
            pos_++;
            out.kind = JsonValue::Object;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                pos_++;
                return true;
            }
            while (true) {
                skipWs();
                std::string k;
                if (!parseString(k))
                    return false;
                skipWs();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return false;
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.obj[k] = v;
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (s_[pos_] == '}') {
                    pos_++;
                    return true;
                }
                return false;
            }
        }
        if (c == '[') {
            pos_++;
            out.kind = JsonValue::Array;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                pos_++;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.arr.push_back(v);
                skipWs();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    pos_++;
                    continue;
                }
                if (s_[pos_] == ']') {
                    pos_++;
                    return true;
                }
                return false;
            }
        }
        if (c == '"') {
            out.kind = JsonValue::String;
            return parseString(out.str);
        }
        if (c == 't') {
            out.kind = JsonValue::Bool;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Bool;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Null;
            return literal("null");
        }
        // Number.
        size_t start = pos_;
        if (s_[pos_] == '-')
            pos_++;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            pos_++;
        }
        if (pos_ == start)
            return false;
        out.kind = JsonValue::Number;
        try {
            out.num = std::stod(s_.substr(start, pos_ - start));
        } catch (...) {
            return false;
        }
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

} // namespace

const JsonValue &
JsonValue::operator[](const std::string &k) const
{
    static const JsonValue missing;
    auto it = obj.find(k);
    return it == obj.end() ? missing : it->second;
}

double
JsonValue::asNumber(double def) const
{
    return kind == Number ? num : def;
}

uint64_t
JsonValue::asUint(uint64_t def) const
{
    return kind == Number && num >= 0.0
               ? static_cast<uint64_t>(num)
               : def;
}

bool
JsonValue::asBool(bool def) const
{
    return kind == Bool ? b : def;
}

std::string
JsonValue::asString(std::string def) const
{
    return kind == String ? str : def;
}

bool
parseJson(const std::string &text, JsonValue &out)
{
    Parser p(text);
    return p.parse(out);
}

} // namespace telemetry
} // namespace astrea
