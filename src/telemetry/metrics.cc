#include "telemetry/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/env.hh"

namespace astrea
{
namespace telemetry
{

unsigned
shardIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned idx =
        next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
    return idx;
}

namespace
{

std::atomic<int> g_enabled{-1};  ///< -1 = uninitialized.

int
readEnabledFromEnv()
{
    return env::getBool("ASTREA_TELEMETRY", false) ? 1 : 0;
}

} // namespace

bool
enabled()
{
    int v = g_enabled.load(std::memory_order_relaxed);
    if (v < 0) {
        v = readEnabledFromEnv();
        int expected = -1;
        g_enabled.compare_exchange_strong(expected, v);
        v = g_enabled.load(std::memory_order_relaxed);
    }
    return v != 0;
}

void
setEnabled(bool on)
{
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const auto &s : shards_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (auto &s : shards_)
        s.v.store(0, std::memory_order_relaxed);
}

void
Gauge::recordMax(int64_t v)
{
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v,
                                     std::memory_order_relaxed)) {
    }
}

size_t
IntHistogramSnapshot::maxObserved() const
{
    for (size_t k = bins.size(); k-- > 0;) {
        if (bins[k])
            return k;
    }
    return 0;
}

IntHistogram::IntHistogram(size_t max_key) : numBins_(max_key + 1)
{
    for (auto &s : shards_) {
        // +1 trailing overflow slot; value-initialized to zero.
        s.bins =
            std::make_unique<std::atomic<uint64_t>[]>(numBins_ + 1);
    }
}

IntHistogramSnapshot
IntHistogram::snapshot() const
{
    IntHistogramSnapshot snap;
    snap.bins.assign(numBins_, 0);
    for (const auto &s : shards_) {
        for (size_t k = 0; k < numBins_; k++) {
            snap.bins[k] +=
                s.bins[k].load(std::memory_order_relaxed);
        }
        snap.overflow +=
            s.bins[numBins_].load(std::memory_order_relaxed);
    }
    for (uint64_t c : snap.bins)
        snap.total += c;
    snap.total += snap.overflow;
    return snap;
}

void
IntHistogram::reset()
{
    for (auto &s : shards_) {
        for (size_t k = 0; k <= numBins_; k++)
            s.bins[k].store(0, std::memory_order_relaxed);
    }
}

size_t
latencyBucketIndex(uint64_t ns)
{
    size_t b = static_cast<size_t>(std::bit_width(ns));  // 0..64.
    return b < kLatencyBuckets ? b : kLatencyBuckets - 1;
}

double
latencyBucketLowNs(size_t b)
{
    return b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
}

double
latencyBucketHighNs(size_t b)
{
    return b >= 63 ? std::ldexp(1.0, static_cast<int>(b))
                   : static_cast<double>(1ull << b);
}

double
percentileFromLatencyBins(const uint64_t *bins, size_t num_bins,
                          uint64_t count, uint64_t min_ns,
                          uint64_t max_ns, double pct)
{
    if (count == 0)
        return 0.0;

    uint64_t rank = static_cast<uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(count)));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;

    uint64_t cum = 0;
    for (size_t b = 0; b < num_bins; b++) {
        if (bins[b] == 0)
            continue;
        cum += bins[b];
        if (cum >= rank) {
            // Linear interpolation inside the bucket, clamped to the
            // observed extremes so tiny samples stay sane.
            double lo = latencyBucketLowNs(b);
            double hi = latencyBucketHighNs(b);
            double before = static_cast<double>(cum - bins[b]);
            double frac = (static_cast<double>(rank) - before) /
                          static_cast<double>(bins[b]);
            double est = lo + frac * (hi - lo);
            est = std::max(est, static_cast<double>(min_ns));
            est = std::min(est, static_cast<double>(max_ns));
            return est;
        }
    }
    return static_cast<double>(max_ns);
}

void
LatencyMetric::record(double ns)
{
    if (ns < 0.0 || !std::isfinite(ns))
        ns = 0.0;
    uint64_t t = static_cast<uint64_t>(std::llround(ns));
    auto &s = shards_[shardIndex()];
    s.bins[latencyBucketIndex(t)].fetch_add(1,
                                            std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sumNs.fetch_add(t, std::memory_order_relaxed);

    uint64_t cur = s.minNs.load(std::memory_order_relaxed);
    while (t < cur &&
           !s.minNs.compare_exchange_weak(cur, t,
                                          std::memory_order_relaxed)) {
    }
    cur = s.maxNs.load(std::memory_order_relaxed);
    while (t > cur &&
           !s.maxNs.compare_exchange_weak(cur, t,
                                          std::memory_order_relaxed)) {
    }
}

void
LatencyMetric::mergedBins(std::array<uint64_t, kBuckets> &bins,
                          uint64_t &count, uint64_t &min_ns,
                          uint64_t &max_ns) const
{
    bins.fill(0);
    count = 0;
    min_ns = UINT64_MAX;
    max_ns = 0;
    for (const auto &s : shards_) {
        for (size_t b = 0; b < kBuckets; b++)
            bins[b] += s.bins[b].load(std::memory_order_relaxed);
        count += s.count.load(std::memory_order_relaxed);
        min_ns = std::min(min_ns,
                          s.minNs.load(std::memory_order_relaxed));
        max_ns = std::max(max_ns,
                          s.maxNs.load(std::memory_order_relaxed));
    }
}

double
LatencyMetric::percentileNs(double pct) const
{
    std::array<uint64_t, kBuckets> bins;
    uint64_t count, min_ns, max_ns;
    mergedBins(bins, count, min_ns, max_ns);
    return percentileFromLatencyBins(bins.data(), kBuckets, count,
                                     min_ns, max_ns, pct);
}

LatencyBuckets
LatencyMetric::buckets() const
{
    LatencyBuckets out;
    uint64_t min_ns;
    mergedBins(out.bins, out.count, min_ns, out.maxNs);
    for (const auto &s : shards_)
        out.sumNs += s.sumNs.load(std::memory_order_relaxed);
    out.minNs = out.count == 0 ? 0 : min_ns;
    if (out.count == 0)
        out.maxNs = 0;
    return out;
}

LatencySnapshot
LatencyMetric::snapshot() const
{
    LatencySnapshot snap;
    uint64_t sum = 0;
    uint64_t min_ns = UINT64_MAX, max_ns = 0;
    for (const auto &s : shards_) {
        snap.count += s.count.load(std::memory_order_relaxed);
        sum += s.sumNs.load(std::memory_order_relaxed);
        min_ns = std::min(min_ns,
                          s.minNs.load(std::memory_order_relaxed));
        max_ns = std::max(max_ns,
                          s.maxNs.load(std::memory_order_relaxed));
    }
    if (snap.count == 0)
        return snap;
    snap.meanNs = static_cast<double>(sum) /
                  static_cast<double>(snap.count);
    snap.minNs = static_cast<double>(min_ns);
    snap.maxNs = static_cast<double>(max_ns);
    snap.p50Ns = percentileNs(50.0);
    snap.p90Ns = percentileNs(90.0);
    snap.p99Ns = percentileNs(99.0);
    return snap;
}

void
LatencyMetric::reset()
{
    for (auto &s : shards_) {
        for (auto &b : s.bins)
            b.store(0, std::memory_order_relaxed);
        s.count.store(0, std::memory_order_relaxed);
        s.sumNs.store(0, std::memory_order_relaxed);
        s.minNs.store(UINT64_MAX, std::memory_order_relaxed);
        s.maxNs.store(0, std::memory_order_relaxed);
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

IntHistogram &
MetricsRegistry::intHistogram(const std::string &name, size_t max_key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = intHists_[name];
    if (!slot)
        slot = std::make_unique<IntHistogram>(max_key);
    return *slot;
}

LatencyMetric &
MetricsRegistry::latency(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = latencies_[name];
    if (!slot)
        slot = std::make_unique<LatencyMetric>();
    return *slot;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : intHists_)
        h->reset();
    for (auto &[name, l] : latencies_)
        l->reset();
}

std::map<std::string, uint64_t>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, uint64_t> out;
    for (const auto &[name, c] : counters_)
        out[name] = c->value();
    return out;
}

std::map<std::string, int64_t>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, int64_t> out;
    for (const auto &[name, g] : gauges_)
        out[name] = g->value();
    return out;
}

std::map<std::string, IntHistogramSnapshot>
MetricsRegistry::intHistogramValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, IntHistogramSnapshot> out;
    for (const auto &[name, h] : intHists_)
        out[name] = h->snapshot();
    return out;
}

std::map<std::string, LatencySnapshot>
MetricsRegistry::latencyValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, LatencySnapshot> out;
    for (const auto &[name, l] : latencies_)
        out[name] = l->snapshot();
    return out;
}

std::map<std::string, LatencyBuckets>
MetricsRegistry::latencyBucketValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, LatencyBuckets> out;
    for (const auto &[name, l] : latencies_)
        out[name] = l->buckets();
    return out;
}

} // namespace telemetry
} // namespace astrea
