#include "telemetry/export.hh"

#include <cstdlib>
#include <memory>

#include "common/env.hh"
#include "common/logging.hh"

namespace astrea
{
namespace telemetry
{

void
appendMetricsJson(JsonWriter &w, const MetricsRegistry &registry)
{
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[name, v] : registry.counterValues())
        w.kv(name, v);
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, v] : registry.gaugeValues())
        w.kv(name, v);
    w.endObject();

    w.key("int_histograms").beginObject();
    for (const auto &[name, snap] : registry.intHistogramValues()) {
        w.key(name).beginObject();
        w.kv("total", snap.total);
        w.kv("overflow", snap.overflow);
        w.key("bins").beginObject();
        for (size_t k = 0; k < snap.bins.size(); k++) {
            if (snap.bins[k])
                w.kv(std::to_string(k), snap.bins[k]);
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();

    w.key("latency_histograms").beginObject();
    for (const auto &[name, snap] : registry.latencyValues()) {
        w.key(name).beginObject();
        w.kv("count", snap.count);
        w.kv("mean_ns", snap.meanNs);
        w.kv("min_ns", snap.minNs);
        w.kv("max_ns", snap.maxNs);
        w.kv("p50_ns", snap.p50Ns);
        w.kv("p90_ns", snap.p90Ns);
        w.kv("p99_ns", snap.p99Ns);
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

std::string
metricsToJson(const MetricsRegistry &registry)
{
    JsonWriter w;
    appendMetricsJson(w, registry);
    return w.str();
}

void
writeMetricsJson(const MetricsRegistry &registry,
                 const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot open metrics output file: " + path);
    std::string json = metricsToJson(registry);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

TraceWriter::TraceWriter(const std::string &path, bool append)
{
    if (path.empty())
        return;
    file_ = std::fopen(path.c_str(), append ? "a" : "w");
    if (file_ == nullptr)
        fatal("cannot open trace file: " + path);
}

TraceWriter::~TraceWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
TraceWriter::line(const std::string &json_object)
{
    if (file_ == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(json_object.data(), 1, json_object.size(), file_);
    std::fputc('\n', file_);
    lines_++;
}

namespace
{

std::mutex g_trace_mu;
std::unique_ptr<TraceWriter> g_trace;
bool g_trace_initialized = false;
/** Fast-path cache so hot loops can poll tracing without the mutex. */
std::atomic<TraceWriter *> g_trace_ptr{nullptr};

} // namespace

TraceWriter *
globalTrace()
{
    std::lock_guard<std::mutex> lock(g_trace_mu);
    if (!g_trace_initialized) {
        g_trace_initialized = true;
        std::string path = env::getString("ASTREA_TRACE_FILE", "");
        if (!path.empty())
            g_trace = std::make_unique<TraceWriter>(path);
        g_trace_ptr.store(g_trace.get(), std::memory_order_release);
    }
    return g_trace.get();
}

TraceWriter *
globalTraceFast()
{
    static bool primed = (globalTrace(), true);  // Lazy env init once.
    (void)primed;
    return g_trace_ptr.load(std::memory_order_acquire);
}

void
setGlobalTraceFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_trace_mu);
    g_trace_initialized = true;
    if (path.empty())
        g_trace.reset();
    else
        g_trace = std::make_unique<TraceWriter>(path);
    g_trace_ptr.store(g_trace.get(), std::memory_order_release);
}

uint64_t
parseTraceStride(const char *text, bool *invalid)
{
    if (invalid != nullptr)
        *invalid = false;
    if (text == nullptr || text[0] == '\0')
        return 1;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    // Reject partial parses ("2x"), non-numeric input, negatives
    // (strtoull silently wraps "-2" to a huge stride) and 0: a zero
    // stride would make shot_index % stride divide by zero, and a
    // garbage value silently disabling sampling is worse than loud.
    if (end == text || *end != '\0' || v == 0 || text[0] == '-') {
        if (invalid != nullptr)
            *invalid = true;
        return 1;
    }
    return static_cast<uint64_t>(v);
}

uint64_t
traceSampleStride()
{
    static uint64_t stride = [] {
        // parseTraceStride keeps its bespoke validation (a zero or
        // garbage stride must fall back to 1, loudly); only the getenv
        // itself routes through the env helper.
        const char *env = env::raw("ASTREA_TRACE_SAMPLE");
        bool invalid = false;
        uint64_t v = parseTraceStride(env, &invalid);
        if (invalid) {
            warn("ASTREA_TRACE_SAMPLE='" + std::string(env) +
                 "' is not a positive integer; sampling every shot "
                 "(stride 1)");
        }
        return v;
    }();
    return stride;
}

} // namespace telemetry
} // namespace astrea
