/**
 * @file
 * Compile-time-cheap instrumentation macros for the decode hot paths.
 *
 * Each macro site costs one relaxed atomic load (the enabled flag) and
 * one predicted branch when telemetry is off, and a single sharded
 * relaxed fetch_add when on; the metric handle is resolved once per
 * site and cached in a function-local static. Building with
 * -DASTREA_TELEMETRY_DISABLED compiles every site out entirely for
 * zero-cost paranoia builds.
 *
 * The metric name must be a string literal (or at least live for the
 * program's duration and be the same string on every execution of the
 * site): it is only read the first time the site executes.
 */

#ifndef ASTREA_TELEMETRY_TELEMETRY_HH
#define ASTREA_TELEMETRY_TELEMETRY_HH

#include <optional>

#include "telemetry/metrics.hh"
#include "telemetry/scoped_timer.hh"

#define ASTREA_TELEMETRY_CAT2(a, b) a##b
#define ASTREA_TELEMETRY_CAT(a, b) ASTREA_TELEMETRY_CAT2(a, b)

#ifndef ASTREA_TELEMETRY_DISABLED

/** Add n to the named counter. */
#define ASTREA_COUNTER_ADD(name, n)                                       \
    do {                                                                  \
        if (::astrea::telemetry::enabled()) {                             \
            static ::astrea::telemetry::Counter &astrea_tel_c =           \
                ::astrea::telemetry::MetricsRegistry::global().counter(   \
                    name);                                                \
            astrea_tel_c.add(n);                                          \
        }                                                                 \
    } while (0)

/** Increment the named counter by one. */
#define ASTREA_COUNTER_INC(name) ASTREA_COUNTER_ADD(name, 1)

/** Set the named gauge. */
#define ASTREA_GAUGE_SET(name, v)                                         \
    do {                                                                  \
        if (::astrea::telemetry::enabled()) {                             \
            static ::astrea::telemetry::Gauge &astrea_tel_g =             \
                ::astrea::telemetry::MetricsRegistry::global().gauge(     \
                    name);                                                \
            astrea_tel_g.set(v);                                          \
        }                                                                 \
    } while (0)

/** Raise the named gauge to v if v exceeds it (high-water mark). */
#define ASTREA_GAUGE_MAX(name, v)                                         \
    do {                                                                  \
        if (::astrea::telemetry::enabled()) {                             \
            static ::astrea::telemetry::Gauge &astrea_tel_g =             \
                ::astrea::telemetry::MetricsRegistry::global().gauge(     \
                    name);                                                \
            astrea_tel_g.recordMax(v);                                    \
        }                                                                 \
    } while (0)

/** Count the integer key in the named histogram (default 64 bins). */
#define ASTREA_HIST_ADD(name, key)                                        \
    do {                                                                  \
        if (::astrea::telemetry::enabled()) {                             \
            static ::astrea::telemetry::IntHistogram &astrea_tel_h =      \
                ::astrea::telemetry::MetricsRegistry::global()            \
                    .intHistogram(name);                                  \
            astrea_tel_h.add(key);                                        \
        }                                                                 \
    } while (0)

/** Count the integer key n times (bulk form for batched paths). */
#define ASTREA_HIST_ADD_N(name, key, n)                                   \
    do {                                                                  \
        if (::astrea::telemetry::enabled()) {                             \
            static ::astrea::telemetry::IntHistogram &astrea_tel_h =      \
                ::astrea::telemetry::MetricsRegistry::global()            \
                    .intHistogram(name);                                  \
            astrea_tel_h.add(key, n);                                     \
        }                                                                 \
    } while (0)

/** Record a duration sample (ns) in the named latency histogram. */
#define ASTREA_LATENCY_NS(name, ns)                                       \
    do {                                                                  \
        if (::astrea::telemetry::enabled()) {                             \
            static ::astrea::telemetry::LatencyMetric &astrea_tel_l =     \
                ::astrea::telemetry::MetricsRegistry::global().latency(   \
                    name);                                                \
            astrea_tel_l.record(ns);                                      \
        }                                                                 \
    } while (0)

/** Time the enclosing scope as a nested span (scoped_timer.hh). */
#define ASTREA_SPAN(name)                                                 \
    std::optional<::astrea::telemetry::ScopedTimer>                       \
        ASTREA_TELEMETRY_CAT(astrea_tel_span_, __LINE__);                 \
    if (::astrea::telemetry::enabled())                                   \
        ASTREA_TELEMETRY_CAT(astrea_tel_span_, __LINE__).emplace(name)

#else  // ASTREA_TELEMETRY_DISABLED

#define ASTREA_COUNTER_ADD(name, n) ((void)0)
#define ASTREA_COUNTER_INC(name) ((void)0)
#define ASTREA_GAUGE_SET(name, v) ((void)0)
#define ASTREA_GAUGE_MAX(name, v) ((void)0)
#define ASTREA_HIST_ADD(name, key) ((void)0)
#define ASTREA_HIST_ADD_N(name, key, n) ((void)0)
#define ASTREA_LATENCY_NS(name, ns) ((void)0)
#define ASTREA_SPAN(name) ((void)0)

#endif // ASTREA_TELEMETRY_DISABLED

#endif // ASTREA_TELEMETRY_TELEMETRY_HH
