#include "telemetry/flight_recorder.hh"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/env.hh"
#include "common/logging.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace_store.hh"

namespace astrea
{
namespace telemetry
{

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1)
{
}

void
FlightRecorder::beginRun(std::string context_json,
                         std::string decoder_json)
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    contextJson_ = std::move(context_json);
    decoderJson_ = std::move(decoder_json);
}

void
FlightRecorder::setCapturePath(std::string path)
{
    std::lock_guard<std::mutex> lock(mu_);
    capturePath_ = std::move(path);
}

void
FlightRecorder::setCaptureDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mu_);
    captureDir_ = std::move(dir);
    captureDirSeq_ = 0;
    lastCaptureMs_ = -1;
}

void
FlightRecorder::setCaptureRateLimit(size_t max_files,
                                    uint64_t min_interval_ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    captureMaxFiles_ = max_files > 0 ? max_files : 1;
    captureMinIntervalMs_ = min_interval_ms;
}

size_t
FlightRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

uint64_t
FlightRecorder::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totalRecorded_;
}

uint64_t
FlightRecorder::capturesWritten() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capturesWritten_;
}

std::string
FlightRecorder::capturePathWritten() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capturePathWritten_;
}

uint64_t
FlightRecorder::capturesRateLimited() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capturesRateLimited_;
}

std::vector<DecodeRecord>
FlightRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {ring_.begin(), ring_.end()};
}

void
FlightRecorder::appendRecordJson(JsonWriter &w,
                                 const DecodeRecord &r) const
{
    w.beginObject();
    w.kv("shot", r.shot);
    w.kv("worker", uint64_t{r.worker});
    w.kv("hw", uint64_t{r.hw()});
    w.key("defects").beginArray();
    for (uint32_t d : r.defects)
        w.value(uint64_t{d});
    w.endArray();
    w.kv("obs_mask", r.obsMask);
    w.kv("actual_obs", r.actualObs);
    w.kv("gave_up", r.gaveUp);
    w.kv("logical_error", r.logicalError);
    w.kv("latency_ns", r.latencyNs);
    w.kv("cycles", r.cycles);
    w.kv("matching_weight", r.matchingWeight);
    if (r.traceId != 0)
        w.kv("trace_id", traceIdHex(r.traceId));
    if (r.audited) {
        w.key("audit").beginObject();
        w.kv("mismatch", r.auditMismatch);
        w.kv("oracle", r.oracleName);
        w.kv("quantized", r.oracleQuantized);
        w.kv("oracle_weight", r.oracleWeight);
        w.kv("oracle_obs", r.oracleObs);
        w.endObject();
    }
    w.endObject();
}

uint64_t
FlightRecorder::record(const DecodeRecord &r)
{
    std::string dump_path;
    std::string reason;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ring_.push_back(r);
        if (ring_.size() > capacity_)
            ring_.pop_front();
        totalRecorded_++;

        const bool trigger =
            r.gaveUp || r.logicalError || r.auditMismatch;
        if (trigger) {
            if (r.auditMismatch)
                reason = "audit_mismatch";
            else
                reason = r.gaveUp ? "give_up" : "logical_error";

            if (!captureDir_.empty()) {
                // Directory mode: numbered files, rate-limited so a
                // pathological run cannot flood the filesystem.
                const int64_t now_ms =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count();
                const bool spaced =
                    lastCaptureMs_ < 0 ||
                    now_ms - lastCaptureMs_ >=
                        static_cast<int64_t>(captureMinIntervalMs_);
                if (captureDirSeq_ < captureMaxFiles_ && spaced) {
                    char name[32];
                    std::snprintf(name, sizeof(name),
                                  "capture-%03llu.json",
                                  static_cast<unsigned long long>(
                                      captureDirSeq_));
                    dump_path = captureDir_ + "/" + name;
                    captureDirSeq_++;
                    lastCaptureMs_ = now_ms;
                } else {
                    capturesRateLimited_++;
                }
            } else if (!capturePath_.empty() &&
                       capturesWritten_ == 0) {
                dump_path = capturePath_;
            }
        }
    }
    if (!dump_path.empty() && dumpCapture(dump_path, &r, reason)) {
        std::lock_guard<std::mutex> lock(mu_);
        return capturesWritten_;
    }
    return 0;
}

bool
FlightRecorder::dumpCapture(const std::string &path,
                            const DecodeRecord *trigger,
                            const std::string &reason)
{
    JsonWriter w;
    {
        std::lock_guard<std::mutex> lock(mu_);
        w.beginObject();
        w.kv("capture_schema_version", kCaptureSchemaVersion);
        w.key("context");
        if (contextJson_.empty())
            w.beginObject().endObject();
        else
            w.raw(contextJson_);
        w.key("decoder");
        if (decoderJson_.empty())
            w.beginObject().endObject();
        else
            w.raw(decoderJson_);
        if (trigger != nullptr) {
            w.key("trigger").beginObject();
            w.kv("reason", reason);
            w.kv("shot", trigger->shot);
            w.kv("hw", uint64_t{trigger->hw()});
            w.endObject();
        } else {
            w.key("trigger").null();
        }
        w.key("records").beginArray();
        for (const DecodeRecord &r : ring_)
            appendRecordJson(w, r);
        w.endArray();
        w.endObject();
    }

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        error("flight recorder: cannot open capture file: " + path);
        return false;
    }
    const std::string &json = w.str();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);

    {
        std::lock_guard<std::mutex> lock(mu_);
        capturesWritten_++;
        capturePathWritten_ = path;
    }
    MetricsRegistry::global().counter("flight_recorder.captures").inc();
    if (ChromeTraceWriter *ct = globalChromeTraceFast())
        ct->instant("flight_recorder.capture");
    inform("flight recorder: wrote capture (" + reason + ") to " +
           path);
    return true;
}

namespace
{

std::atomic<int> g_fr_enabled{-1};  ///< -1 = not yet resolved.

} // namespace

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder *recorder = [] {
        size_t cap = static_cast<size_t>(
            env::getUint("ASTREA_FLIGHT_RECORDER_CAPACITY", 256, 1));
        auto *r = new FlightRecorder(cap);
        std::string path = env::getString("ASTREA_CAPTURE_PATH", "");
        if (!path.empty())
            r->setCapturePath(path);
        std::string dir = env::getString("ASTREA_CAPTURE_DIR", "");
        if (!dir.empty())
            r->setCaptureDir(dir);
        r->setCaptureRateLimit(
            static_cast<size_t>(
                env::getUint("ASTREA_CAPTURE_MAX_FILES", 32, 1)),
            env::getUint("ASTREA_CAPTURE_MIN_INTERVAL_MS", 1000));
        return r;
    }();
    return *recorder;
}

bool
FlightRecorder::globalEnabled()
{
    int v = g_fr_enabled.load(std::memory_order_relaxed);
    if (v >= 0)
        return v != 0;
    bool enabled = !env::getString("ASTREA_CAPTURE_PATH", "").empty() ||
                   !env::getString("ASTREA_CAPTURE_DIR", "").empty() ||
                   env::getBool("ASTREA_FLIGHT_RECORDER", false);
    g_fr_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
    return enabled;
}

void
FlightRecorder::setGlobalEnabled(bool on)
{
    g_fr_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

} // namespace telemetry
} // namespace astrea
