/**
 * @file
 * Chrome Trace Event / Perfetto timeline exporter.
 *
 * The JSONL trace (export.hh) is greppable but flat; answering "where
 * did this one slow decode spend its time?" needs a per-thread
 * timeline a human can open. This writer emits the Trace Event JSON
 * Array Format understood by chrome://tracing and ui.perfetto.dev:
 * duration events ("B"/"E") for every completed ScopedTimer span,
 * counter events ("C") for sampled quantities such as Astrea-G's
 * priority-queue occupancy, and instant events ("i") for point
 * incidents (give-ups, flight-recorder captures).
 *
 * Timestamps are microseconds on the process-wide steady clock, so
 * they are monotonic across threads; each thread gets a stable small
 * tid assigned on first event. Events from worker threads interleave
 * in the file and are sorted by the viewer. The writer streams events
 * to disk as they happen (mutex-guarded, one event per line inside
 * the JSON array) and finalizes the array when closed, so even an
 * aborted run leaves a file Perfetto can usually recover.
 *
 * Enable process-wide with ASTREA_CHROME_TRACE=path or
 * setGlobalChromeTraceFile(); bench binaries expose --chrome-trace.
 * Span events additionally require telemetry to be enabled (the
 * ASTREA_SPAN sites are gated on enabled()).
 */

#ifndef ASTREA_TELEMETRY_CHROME_TRACE_HH
#define ASTREA_TELEMETRY_CHROME_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace astrea
{
namespace telemetry
{

/** Microseconds since the process trace epoch (steady clock). */
double traceNowUs();

/** Stable small id for the calling thread (assigned on first use). */
uint32_t traceThreadId();

/** Streaming Trace Event JSON Array writer. */
class ChromeTraceWriter
{
  public:
    /** Opens the file and writes the array opener; "" disables. */
    explicit ChromeTraceWriter(const std::string &path);

    /** Finalizes the array and closes the file. */
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    bool ok() const { return file_ != nullptr; }
    uint64_t eventsWritten() const { return events_; }

    /** Begin a duration slice on the calling thread. */
    void begin(const char *name);
    /** End the most recent open slice on the calling thread. */
    void end(const char *name);
    /** Sample a named counter track. */
    void counter(const char *name, double value);
    /** Thread-scoped instant event. */
    void instant(const char *name);

    /** Close the array now (idempotent; also done by the destructor). */
    void finalize();

  private:
    void emit(const char *name, char phase, double ts_us,
              const double *counter_value, const double *dur_us);

    std::mutex mu_;
    std::FILE *file_ = nullptr;
    uint64_t events_ = 0;
    bool first_ = true;
};

/**
 * The process-wide Chrome trace, or nullptr when disabled. Configured
 * lazily from ASTREA_CHROME_TRACE on first call, or explicitly via
 * setGlobalChromeTraceFile().
 */
ChromeTraceWriter *globalChromeTrace();

/** globalChromeTrace() without the mutex, for hot-path polling. */
ChromeTraceWriter *globalChromeTraceFast();

/**
 * Monotone counter bumped on every global-trace reconfiguration. A
 * long-lived span remembers the generation along with the writer it
 * emitted "B" to; a matching pointer alone is not proof the writer
 * survived (a replacement can be allocated at the freed address), a
 * matching (pointer, generation) pair is.
 */
uint64_t globalChromeTraceGeneration();

/**
 * (Re)configure the global Chrome trace. An empty path finalizes and
 * disables; a new path finalizes any previous trace first.
 */
void setGlobalChromeTraceFile(const std::string &path);

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_CHROME_TRACE_HH
