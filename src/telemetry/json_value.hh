/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * The forensics tooling needs to read JSON back, not just write it:
 * the capture replayer re-decodes flight-recorder captures, and the
 * structural tests validate exporter output. The repository has a
 * no-external-dependency policy, so this is a small hand-rolled
 * parser covering the JSON this codebase itself emits (objects,
 * arrays, strings with the common escapes, finite numbers, literals).
 * It is for trusted tool input — capture files and test fixtures —
 * not adversarial data; depth and size limits are the caller's
 * problem.
 */

#ifndef ASTREA_TELEMETRY_JSON_VALUE_HH
#define ASTREA_TELEMETRY_JSON_VALUE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace astrea
{
namespace telemetry
{

/** Parsed JSON value: a tagged tree. */
struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    bool has(const std::string &k) const { return obj.count(k) != 0; }

    /** Member access; a shared Null value for missing keys. */
    const JsonValue &operator[](const std::string &k) const;

    /** Typed readers with defaults (Null/missing yields the default). */
    double asNumber(double def = 0.0) const;
    uint64_t asUint(uint64_t def = 0) const;
    bool asBool(bool def = false) const;
    std::string asString(std::string def = "") const;
};

/**
 * Parse a complete JSON document. Returns false on malformed input or
 * trailing garbage; out is unspecified in that case.
 */
bool parseJson(const std::string &text, JsonValue &out);

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_JSON_VALUE_HH
