#include "telemetry/sampling_profiler.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string_view>

#include "telemetry/json.hh"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <csignal>
#include <cstdlib>
#include <sys/time.h>
#endif

namespace astrea
{
namespace telemetry
{

namespace
{

#if defined(__linux__)
struct sigaction g_oldAction;
#endif

/** Best-effort symbol name for one pc (post-collection only). */
std::string
symbolizePc(void *pc)
{
#if defined(__linux__)
    Dl_info info;
    if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
        int status = 0;
        char *demangled = abi::__cxa_demangle(info.dli_sname, nullptr,
                                              nullptr, &status);
        if (status == 0 && demangled != nullptr) {
            std::string out(demangled);
            std::free(demangled);
            return out;
        }
        return info.dli_sname;
    }
    if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
        const char *base = std::strrchr(info.dli_fname, '/');
        base = base != nullptr ? base + 1 : info.dli_fname;
        char buf[256];
        std::snprintf(buf, sizeof(buf), "%s+%p", base,
                      reinterpret_cast<void *>(
                          reinterpret_cast<char *>(pc) -
                          reinterpret_cast<char *>(info.dli_fbase)));
        return buf;
    }
#endif
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%p", pc);
    return buf;
}

/**
 * Leading frames to drop: the capture machinery itself (handler,
 * possibly inlined captureSample) and the kernel signal trampoline
 * (__restore_rt), so folded stacks start at the interrupted frame.
 * Best-effort — an unrecognized prologue keeps every frame, which is
 * noisy but never wrong about the frames below it.
 */
size_t
signalPrologueFrames(void *const *pcs, size_t depth)
{
#if defined(__linux__)
    const size_t probe = std::min<size_t>(depth, 6);
    for (size_t i = 0; i < probe; i++) {
        Dl_info info;
        if (dladdr(pcs[i], &info) == 0 || info.dli_sname == nullptr)
            continue;
        const std::string_view name(info.dli_sname);
        if (name == "__restore_rt")
            return i + 1;
        // The handler tail-calls captureSample, so either symbol can
        // be the innermost surviving frame; the kernel trampoline
        // (often unsymbolized, so the __restore_rt probe misses it)
        // sits one frame above.
        if (name.find("samplingProfilerSignalHandler") !=
                std::string_view::npos ||
            name.find("captureSample") != std::string_view::npos) {
            return std::min<size_t>(depth, i + 2);
        }
    }
#else
    (void)pcs;
    (void)depth;
#endif
    return 0;
}

} // namespace

/**
 * SIGPROF entry point. Free function (not a lambda or member) so its
 * symbol shows up in dladdr for prologue stripping.
 */
void
samplingProfilerSignalHandler(int)
{
    SamplingProfiler::global().captureSample();
}

SamplingProfiler &
SamplingProfiler::global()
{
    static SamplingProfiler instance;
    return instance;
}

SamplingProfiler::SamplingProfiler() : ring_(kMaxSamples)
{
}

void
SamplingProfiler::captureSample()
{
#if defined(__linux__)
    // Async-signal-safe: one relaxed fetch_add to claim a slot, one
    // backtrace into preallocated storage. Full ring drops samples.
    if (!running_.load(std::memory_order_relaxed))
        return;
    const size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxSamples) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Sample &s = ring_[idx];
    int depth = ::backtrace(s.pcs, static_cast<int>(kMaxFrames));
    s.depth.store(depth > 0 ? static_cast<uint32_t>(depth) : 0,
                  std::memory_order_release);
#endif
}

bool
SamplingProfiler::start(unsigned hz, std::string *error)
{
#if !defined(__linux__)
    (void)hz;
    if (error != nullptr)
        *error = "sampling profiler requires Linux";
    return false;
#else
    std::lock_guard<std::mutex> lock(mu_);
    if (running_.load()) {
        if (error != nullptr)
            *error = "profiler already running";
        return false;
    }
    hz = std::clamp(hz, 1u, 1000u);

    // Force glibc to load libgcc's unwinder now: the first backtrace
    // call malloc()s, which must not happen inside the handler.
    void *warmup[4];
    ::backtrace(warmup, 4);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &samplingProfilerSignalHandler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, &g_oldAction) != 0) {
        if (error != nullptr)
            *error = "sigaction(SIGPROF) failed";
        return false;
    }

    running_.store(true);

    struct itimerval timer;
    timer.it_interval.tv_sec = hz == 1 ? 1 : 0;
    timer.it_interval.tv_usec =
        hz == 1 ? 0 : static_cast<long>(1000000 / hz);
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
        running_.store(false);
        sigaction(SIGPROF, &g_oldAction, nullptr);
        if (error != nullptr)
            *error = "setitimer(ITIMER_PROF) failed";
        return false;
    }
    return true;
#endif
}

void
SamplingProfiler::stop()
{
#if defined(__linux__)
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load())
        return;
    struct itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    sigaction(SIGPROF, &g_oldAction, nullptr);
    running_.store(false);
#endif
}

size_t
SamplingProfiler::sampleCount() const
{
    return std::min(next_.load(std::memory_order_relaxed),
                    kMaxSamples);
}

uint64_t
SamplingProfiler::droppedSamples() const
{
    return dropped_.load(std::memory_order_relaxed);
}

void
SamplingProfiler::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (running_.load())
        return;
    for (size_t i = 0; i < sampleCount(); i++)
        ring_[i].depth.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::vector<std::string>, uint64_t>>
SamplingProfiler::foldedStacks() const
{
    // Symbolization is cached per pc: a 2 s profile of a hot loop has
    // thousands of samples over a handful of distinct frames.
    std::map<void *, std::string> names;
    auto name_of = [&names](void *pc) -> const std::string & {
        auto it = names.find(pc);
        if (it == names.end())
            it = names.emplace(pc, symbolizePc(pc)).first;
        return it->second;
    };

    std::map<std::vector<std::string>, uint64_t> folded;
    const size_t count = sampleCount();
    for (size_t i = 0; i < count; i++) {
        const Sample &s = ring_[i];
        const uint32_t depth =
            s.depth.load(std::memory_order_acquire);
        if (depth == 0)
            continue;
        const size_t skip = signalPrologueFrames(s.pcs, depth);
        if (skip >= depth)
            continue;
        // backtrace() is leaf-first; collapsed stacks are root-first.
        std::vector<std::string> stack;
        stack.reserve(depth - skip);
        for (size_t f = depth; f > skip; f--)
            stack.push_back(name_of(s.pcs[f - 1]));
        folded[std::move(stack)]++;
    }

    std::vector<std::pair<std::vector<std::string>, uint64_t>> out(
        folded.begin(), folded.end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return out;
}

std::string
SamplingProfiler::collapsed() const
{
    std::string out;
    for (const auto &[stack, count] : foldedStacks()) {
        std::string line;
        for (size_t i = 0; i < stack.size(); i++) {
            if (i > 0)
                line += ';';
            line += stack[i];
        }
        line += ' ';
        line += std::to_string(count);
        line += '\n';
        out += line;
    }
    return out;
}

std::string
SamplingProfiler::speedscopeJson(const std::string &name) const
{
    const auto stacks = foldedStacks();

    // Deduplicate frames into the shared frame table.
    std::map<std::string, size_t> frame_index;
    std::vector<const std::string *> frames;
    for (const auto &[stack, count] : stacks) {
        (void)count;
        for (const std::string &f : stack) {
            auto [it, inserted] =
                frame_index.emplace(f, frames.size());
            if (inserted)
                frames.push_back(&it->first);
        }
    }

    uint64_t total = 0;
    for (const auto &[stack, count] : stacks)
        total += count;

    JsonWriter w;
    w.beginObject();
    w.kv("$schema",
         "https://www.speedscope.app/file-format-schema.json");
    w.key("shared").beginObject();
    w.key("frames").beginArray();
    for (const std::string *f : frames) {
        w.beginObject();
        w.kv("name", *f);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.key("profiles").beginArray();
    w.beginObject();
    w.kv("type", "sampled");
    w.kv("name", name);
    w.kv("unit", "none");
    w.kv("startValue", uint64_t{0});
    w.kv("endValue", total);
    w.key("samples").beginArray();
    for (const auto &[stack, count] : stacks) {
        (void)count;
        w.beginArray();
        for (const std::string &f : stack)
            w.value(static_cast<uint64_t>(frame_index.at(f)));
        w.endArray();
    }
    w.endArray();
    w.key("weights").beginArray();
    for (const auto &[stack, count] : stacks) {
        (void)stack;
        w.value(count);
    }
    w.endArray();
    w.endObject();
    w.endArray();
    w.kv("name", name);
    w.kv("activeProfileIndex", uint64_t{0});
    w.kv("exporter", "astrea");
    w.endObject();
    return w.str();
}

} // namespace telemetry
} // namespace astrea
