#include "telemetry/decode_trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>

#include "common/env.hh"

namespace astrea
{
namespace telemetry
{

namespace
{

std::atomic<bool> g_enabled{false};
std::atomic<double> g_tailNs{0.0};
std::atomic<uint64_t> g_stride{8192};
std::atomic<double> g_autoTailNs{0.0};
std::once_flag g_envOnce;

void
readEnvOnce()
{
    std::call_once(g_envOnce, [] {
        TraceRetentionConfig base;
        base.enabled = g_enabled.load(std::memory_order_relaxed);
        base.tailThresholdNs =
            g_tailNs.load(std::memory_order_relaxed);
        base.headStride = g_stride.load(std::memory_order_relaxed);
        TraceRetentionConfig cfg =
            TraceRetentionConfig::fromEnv(base);
        g_enabled.store(cfg.enabled, std::memory_order_relaxed);
        g_tailNs.store(cfg.tailThresholdNs,
                       std::memory_order_relaxed);
        g_stride.store(cfg.headStride, std::memory_order_relaxed);
    });
}

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** splitmix64: the standard 64-bit mix, good enough for trace ids. */
uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

thread_local DecodeTracer t_tracer;

} // namespace

TraceRetentionConfig
TraceRetentionConfig::fromEnv(TraceRetentionConfig base)
{
    base.enabled = env::getBool("ASTREA_TRACE", base.enabled);
    base.tailThresholdNs = env::getDouble("ASTREA_TRACE_TAIL_NS",
                                          base.tailThresholdNs);
    base.headStride =
        env::getUint("ASTREA_TRACE_STRIDE", base.headStride, 0);
    return base;
}

void
setTraceRetention(const TraceRetentionConfig &cfg)
{
    // Mark the environment as consumed: an explicit setter wins.
    std::call_once(g_envOnce, [] {});
    g_enabled.store(cfg.enabled, std::memory_order_relaxed);
    g_tailNs.store(cfg.tailThresholdNs, std::memory_order_relaxed);
    g_stride.store(cfg.headStride, std::memory_order_relaxed);
}

TraceRetentionConfig
traceRetention()
{
    readEnvOnce();
    TraceRetentionConfig cfg;
    cfg.enabled = g_enabled.load(std::memory_order_relaxed);
    cfg.tailThresholdNs = g_tailNs.load(std::memory_order_relaxed);
    cfg.headStride = g_stride.load(std::memory_order_relaxed);
    return cfg;
}

void
setTraceAutoTailNs(double p99_ns)
{
    g_autoTailNs.store(p99_ns, std::memory_order_relaxed);
}

double
traceEffectiveTailNs()
{
    readEnvOnce();
    const double explicit_ns =
        g_tailNs.load(std::memory_order_relaxed);
    return explicit_ns > 0.0
               ? explicit_ns
               : g_autoTailNs.load(std::memory_order_relaxed);
}

void
DecodeTracer::beginBatch(uint32_t stream, uint64_t base_shot,
                         const char *decoder, uint64_t seed)
{
    const TraceRetentionConfig cfg = traceRetention();
    active_ = cfg.enabled;
    if (!active_)
        return;
    stream_ = stream;
    baseShot_ = base_shot;
    seed_ = seed;
    std::strncpy(decoder_, decoder == nullptr ? "" : decoder,
                 sizeof(decoder_) - 1);
    decoder_[sizeof(decoder_) - 1] = '\0';
    batchStartNs_ = steadyNowNs();
    curShot_ = -1;
    // Empty ranges for shots that never begin (a finishShot() without
    // a shotBegin() must not inherit a stale range from a prior batch).
    std::memset(shotStart_, 0, sizeof(shotStart_));
    std::memset(shotEnd_, 0, sizeof(shotEnd_));
    nBuf_ = 0;
    droppedBuf_ = 0;
    depth_ = 0;
    hasBatchSpan_ = false;
    tailNs_ = traceEffectiveTailNs();
    stride_ = cfg.headStride;
}

void
DecodeTracer::shotBegin(uint32_t shot_idx)
{
    if (!active_)
        return;
    // Seal the previous shot's span range: the bucketed wide path
    // begins shots out of batch order, so each shot's extent has to be
    // pinned when the recorder moves on, not inferred from its
    // neighbor's start.
    if (curShot_ >= 0 &&
        curShot_ < static_cast<int32_t>(kMaxBatchShots))
        shotEnd_[curShot_] = nBuf_;
    curShot_ = static_cast<int32_t>(shot_idx);
    if (shot_idx < kMaxBatchShots) {
        shotStart_[shot_idx] = nBuf_;
        shotEnd_[shot_idx] = nBuf_;
    }
}

void
DecodeTracer::stageBegin(PerfStage stage)
{
    if (!active_)
        return;
    if (depth_ >= sizeof(open_) / sizeof(open_[0])) {
        droppedBuf_++;
        return;
    }
    open_[depth_++] = OpenSection{stage, curShot_, steadyNowNs()};
}

void
DecodeTracer::stageEnd(PerfStage stage)
{
    if (!active_ || depth_ == 0)
        return;
    // Sections are stack objects, so ends arrive in LIFO order; a
    // mismatch means the matching begin overflowed the stack.
    if (open_[depth_ - 1].stage != stage)
        return;
    const OpenSection sec = open_[--depth_];
    const uint64_t now = steadyNowNs();
    TraceSpan span;
    span.stage = static_cast<uint8_t>(stage);
    span.shot = sec.shot;
    span.startNs = static_cast<uint32_t>(
        sec.t0 > batchStartNs_ ? sec.t0 - batchStartNs_ : 0);
    span.durNs =
        static_cast<uint32_t>(now > sec.t0 ? now - sec.t0 : 0);
    if (stage == PerfStage::Batch && sec.shot < 0) {
        batchSpan_ = span;
        hasBatchSpan_ = true;
        return;
    }
    if (nBuf_ < kBufSpans)
        buf_[nBuf_++] = span;
    else
        droppedBuf_++;
}

void
DecodeTracer::recordStage(PerfStage stage, uint64_t t0_ns,
                          uint64_t t1_ns)
{
    if (!active_)
        return;
    TraceSpan span;
    span.stage = static_cast<uint8_t>(stage);
    span.shot = curShot_;
    span.startNs = static_cast<uint32_t>(
        t0_ns > batchStartNs_ ? t0_ns - batchStartNs_ : 0);
    span.durNs =
        static_cast<uint32_t>(t1_ns > t0_ns ? t1_ns - t0_ns : 0);
    if (nBuf_ < kBufSpans)
        buf_[nBuf_++] = span;
    else
        droppedBuf_++;
}

uint64_t
DecodeTracer::shotId(uint32_t shot_idx) const
{
    const uint64_t id = splitmix64(seed_ + baseShot_ + shot_idx);
    return id == 0 ? 1 : id;
}

uint64_t
DecodeTracer::finishShot(uint32_t shot_idx,
                         const TraceShotOutcome &o)
{
    if (!active_)
        return 0;
    TraceStore &store = TraceStore::global();
    store.noteConsidered();
    decodeNo_++;

    uint8_t reasons = 0;
    if (tailNs_ > 0.0 && o.latencyNs > tailNs_)
        reasons |= kTraceKeepSlow;
    if (o.gaveUp)
        reasons |= kTraceKeepGiveUp;
    if (o.logicalError)
        reasons |= kTraceKeepError;
    if (o.audited)
        reasons |= kTraceKeepAudit;
    if (stride_ > 0 && decodeNo_ % stride_ == 0)
        reasons |= kTraceKeepStride;
    if (reasons == 0) {
        store.noteDropped();
        return 0;
    }

    StoredTrace t;
    t.traceId = shotId(shot_idx);
    t.shot = baseShot_ + shot_idx;
    t.stream = stream_;
    t.hw = o.hw;
    std::memcpy(t.decoder, decoder_, sizeof(t.decoder));
    t.latencyNs = o.latencyNs;
    t.cycles = o.cycles;
    t.matchingWeight = o.matchingWeight;
    t.obsMask = o.obsMask;
    t.actualObs = o.actualObs;
    t.gaveUp = o.gaveUp;
    t.logicalError = o.logicalError;
    t.reasons = reasons;
    t.captureSeq = o.captureSeq;
    t.audited = o.audited;

    // The batch envelope first, then this shot's contiguous span
    // range (shotBegin() records where each shot's spans start).
    uint64_t dropped = 0;
    if (hasBatchSpan_)
        t.spans[t.numSpans++] = batchSpan_;
    if (shot_idx < kMaxBatchShots) {
        const uint32_t lo = shotStart_[shot_idx];
        const uint32_t hi =
            (static_cast<int32_t>(shot_idx) == curShot_)
                ? nBuf_
                : shotEnd_[shot_idx];
        for (uint32_t i = lo; i < hi && i < nBuf_; i++) {
            if (t.numSpans < kTraceMaxSpans)
                t.spans[t.numSpans++] = buf_[i];
            else
                dropped++;
        }
    } else if (shot_idx >= kMaxBatchShots) {
        dropped++;  // Beyond the per-shot range table.
    }
    t.droppedSpans = static_cast<uint32_t>(dropped);
    store.noteSpansDropped(dropped);

    const uint32_t ncopy = std::min(o.hw, kTraceMaxDefects);
    if (o.defects != nullptr && ncopy > 0)
        std::memcpy(t.defects, o.defects, ncopy * sizeof(uint32_t));

    store.keep(t);
    return t.traceId;
}

void
DecodeTracer::endBatch()
{
    if (active_ && droppedBuf_ > 0)
        TraceStore::global().noteSpansDropped(droppedBuf_);
    active_ = false;
    nBuf_ = 0;
    droppedBuf_ = 0;
    depth_ = 0;
    curShot_ = -1;
    hasBatchSpan_ = false;
}

DecodeTracer &
decodeTracer()
{
    return t_tracer;
}

void
traceStageBegin(PerfStage stage)
{
    t_tracer.stageBegin(stage);
}

void
traceStageEnd(PerfStage stage)
{
    t_tracer.stageEnd(stage);
}

void
traceShotBegin(uint32_t shot_idx)
{
    t_tracer.shotBegin(shot_idx);
}

uint64_t
traceClockNs()
{
    return steadyNowNs();
}

} // namespace telemetry
} // namespace astrea
