/**
 * @file
 * Decode flight recorder: a fixed-size ring buffer of recent decode
 * records that dumps a schema-versioned capture file when something
 * goes wrong (a logical error or a give-up).
 *
 * Aggregate percentiles cannot explain one bad decode. The recorder
 * keeps the last N decodes — syndrome defects, Hamming weight,
 * decoder verdict, latency — cheaply in memory; when a trigger record
 * arrives and a capture path is armed, it writes everything to a JSON
 * capture file that `astrea_cli replay` can re-decode exactly (the
 * decoders are deterministic functions of the weight table and the
 * defect list). The experiment context and decoder configuration are
 * stored as pre-serialized JSON strings set by the harness, keeping
 * this layer free of harness dependencies.
 *
 * Process-wide use: set ASTREA_CAPTURE_PATH=file.json (records and
 * arms a one-shot capture), ASTREA_CAPTURE_DIR=dir (records and dumps
 * sequentially numbered capture-NNN.json files, one per trigger,
 * rate-limited by ASTREA_CAPTURE_MAX_FILES / ASTREA_CAPTURE_MIN_
 * INTERVAL_MS so a pathological run cannot fill a disk), or
 * ASTREA_FLIGHT_RECORDER=1 (records without dumping, for programmatic
 * snapshots). The harness polls FlightRecorder::globalEnabled() per
 * worker chunk, so the hot loop pays one relaxed atomic load when the
 * recorder is off.
 *
 * Capture schema (capture_schema_version 1):
 *
 *   {
 *     "capture_schema_version": 1,
 *     "context": { ...ExperimentConfig... },
 *     "decoder": { "name": "Astrea-G", ...config... },
 *     "trigger": { "reason": "give_up"|"logical_error", "shot": S },
 *     "records": [ { "shot":..., "defects":[...], "obs_mask":...,
 *                    "actual_obs":..., "gave_up":..., ... }, ... ]
 *   }
 *
 * Records are ordered oldest to newest; the trigger record is last.
 */

#ifndef ASTREA_TELEMETRY_FLIGHT_RECORDER_HH
#define ASTREA_TELEMETRY_FLIGHT_RECORDER_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace astrea
{
namespace telemetry
{

class JsonWriter;

/** Current capture file schema version. */
constexpr uint64_t kCaptureSchemaVersion = 1;

/** One decoded shot, as remembered by the flight recorder. */
struct DecodeRecord
{
    uint64_t shot = 0;
    uint32_t worker = 0;
    std::vector<uint32_t> defects;  ///< Flipped-detector indices.
    uint64_t obsMask = 0;           ///< Decoder's predicted flips.
    uint64_t actualObs = 0;         ///< Ground-truth flips.
    bool gaveUp = false;
    bool logicalError = false;
    double latencyNs = 0.0;
    uint64_t cycles = 0;            ///< Modeled cycles (0 = software).
    double matchingWeight = 0.0;
    /** Tail-sampling trace id (telemetry/decode_trace.hh); 0 = none.
     *  Lets a capture record and a /traces entry name each other. */
    uint64_t traceId = 0;

    // Shadow-audit verdict (audit/auditor.hh), when this record came
    // through the accuracy auditor. auditMismatch records are capture
    // triggers: production's logical correction diverged from the
    // exact oracle's.
    bool audited = false;
    bool auditMismatch = false;
    std::string oracleName;        ///< "dp" or "mwpm".
    bool oracleQuantized = true;   ///< Oracle weight domain.
    double oracleWeight = 0.0;     ///< Oracle matching weight, decades.
    uint64_t oracleObs = 0;        ///< Oracle's predicted flips.

    uint32_t hw() const { return static_cast<uint32_t>(defects.size()); }
};

/** Thread-safe fixed-capacity ring of recent decode records. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(size_t capacity = 256);

    /**
     * Start a new recording run: clears the ring and installs the
     * context / decoder descriptions (pre-serialized JSON objects)
     * that a capture will embed.
     */
    void beginRun(std::string context_json, std::string decoder_json);

    /**
     * Arm one-shot capture dumping: the first trigger record after
     * arming writes the capture to this path. "" disarms.
     */
    void setCapturePath(std::string path);

    /**
     * Arm directory capture dumping: every trigger record writes a
     * sequentially numbered capture-NNN.json into dir (subject to the
     * rate limit), so repeated triggers in one run don't clobber each
     * other. Takes precedence over setCapturePath(). "" disarms.
     */
    void setCaptureDir(std::string dir);

    /**
     * Directory-mode rate limit: at most max_files captures per run,
     * at least min_interval_ms between consecutive captures.
     */
    void setCaptureRateLimit(size_t max_files,
                             uint64_t min_interval_ms);

    /**
     * Append a record; evicts the oldest when full. If the record is
     * a trigger (gave up, logical error, or audit mismatch) and a
     * capture is armed — one-shot path or directory mode — dumps a
     * capture file and returns its sequence number (1-based value of
     * capturesWritten() after the dump). Returns 0 when no capture
     * was written, so callers can cross-link traces to captures.
     */
    uint64_t record(const DecodeRecord &r);

    /** Write the current ring to a capture file; true on success. */
    bool dumpCapture(const std::string &path,
                     const DecodeRecord *trigger,
                     const std::string &reason);

    size_t capacity() const { return capacity_; }
    size_t size() const;
    uint64_t totalRecorded() const;  ///< Including evicted records.
    uint64_t capturesWritten() const;
    std::string capturePathWritten() const;
    /** Triggers suppressed by the directory-mode rate limit. */
    uint64_t capturesRateLimited() const;

    /** Ring contents, oldest first. */
    std::vector<DecodeRecord> snapshot() const;

    /** The process-wide recorder used by the harness hooks. */
    static FlightRecorder &global();

    /**
     * Whether the global recorder should receive records. Resolved
     * lazily from ASTREA_CAPTURE_PATH / ASTREA_FLIGHT_RECORDER on
     * first call; flip explicitly with setGlobalEnabled().
     */
    static bool globalEnabled();
    static void setGlobalEnabled(bool on);

  private:
    void appendRecordJson(JsonWriter &w, const DecodeRecord &r) const;

    mutable std::mutex mu_;
    size_t capacity_;
    std::deque<DecodeRecord> ring_;
    uint64_t totalRecorded_ = 0;
    std::string contextJson_;
    std::string decoderJson_;
    std::string capturePath_;
    std::string captureDir_;
    size_t captureMaxFiles_ = 32;
    uint64_t captureMinIntervalMs_ = 1000;
    uint64_t captureDirSeq_ = 0;
    int64_t lastCaptureMs_ = -1;
    uint64_t capturesRateLimited_ = 0;
    uint64_t capturesWritten_ = 0;
    std::string capturePathWritten_;
};

} // namespace telemetry
} // namespace astrea

#endif // ASTREA_TELEMETRY_FLIGHT_RECORDER_HH
