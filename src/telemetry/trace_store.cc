#include "telemetry/trace_store.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.hh"
#include "telemetry/decode_trace.hh"
#include "telemetry/json.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/prometheus.hh"

namespace astrea
{
namespace telemetry
{

/**
 * One ring slot. The payload is published under a per-slot sequence
 * (odd = write in progress, even = stable); the audit annotation is an
 * atomic side channel keyed by annId so the background auditor never
 * has to take part in the seqlock protocol.
 */
struct TraceStore::Slot
{
    std::atomic<uint64_t> seq{0};
    StoredTrace t;

    std::atomic<uint64_t> annId{0};
    std::atomic<uint32_t> annFlags{0};  ///< bit 0 done, bit 1 mismatch.
    std::atomic<double> annGap{0.0};
    std::atomic<double> annOracleWeight{0.0};
    std::atomic<uint64_t> annOracleObs{0};
    std::atomic<uint64_t> annCaptureSeq{0};
};

const char *
traceOutcomeName(const StoredTrace &t)
{
    if (t.gaveUp)
        return "give_up";
    return t.logicalError ? "logical_error" : "ok";
}

std::string
traceIdHex(uint64_t id)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

uint64_t
parseTraceIdHex(const std::string &s)
{
    if (s.empty())
        return 0;
    const char *p = s.c_str();
    if (s.size() > 2 && p[0] == '0' && (p[1] == 'x' || p[1] == 'X'))
        p += 2;
    char *end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 16);
    if (end == p || (end != nullptr && *end != '\0'))
        return 0;
    return static_cast<uint64_t>(v);
}

TraceStore::TraceStore(size_t capacity)
{
    configure(capacity);
}

TraceStore::~TraceStore() = default;

void
TraceStore::configure(size_t capacity)
{
    capacity_ = std::max<size_t>(1, capacity);
    slots_ = std::make_unique<Slot[]>(capacity_);
    head_.store(0, relaxed_);
    considered_.store(0, relaxed_);
    kept_.store(0, relaxed_);
    dropped_.store(0, relaxed_);
    evicted_.store(0, relaxed_);
    spansDropped_.store(0, relaxed_);
    std::lock_guard<std::mutex> lock(exemplarMu_);
    for (auto &e : exemplars_)
        e.valid = false;
}

void
TraceStore::setRunInfo(std::string context_json,
                       std::string decoder_json)
{
    std::lock_guard<std::mutex> lock(runInfoMu_);
    contextJson_ = std::move(context_json);
    decoderJson_ = std::move(decoder_json);
}

void
TraceStore::keep(const StoredTrace &t)
{
    kept_.fetch_add(1, relaxed_);
    const uint64_t pos = head_.fetch_add(1, relaxed_);
    if (pos >= capacity_)
        evicted_.fetch_add(1, relaxed_);

    Slot &s = slots_[pos % capacity_];
    s.seq.store(2 * pos + 1, std::memory_order_release);
    s.annId.store(0, relaxed_);
    s.t = t;
    s.seq.store(2 * pos + 2, std::memory_order_release);

    // Exemplar update: pin this trace if it is the new worst of its
    // latency bucket (ties keep the incumbent, so the table is stable
    // under a steady stream of equal-latency keeps).
    const size_t bucket = latencyBucketIndex(static_cast<uint64_t>(
        std::llround(std::max(0.0, t.latencyNs))));
    std::lock_guard<std::mutex> lock(exemplarMu_);
    ExemplarSlot &e = exemplars_[bucket];
    if (!e.valid || t.latencyNs > e.t.latencyNs) {
        e.valid = true;
        e.t = t;
    }
}

bool
TraceStore::readSlot(size_t idx, StoredTrace *out) const
{
    const Slot &s = slots_[idx];
    for (int attempt = 0; attempt < 4; attempt++) {
        const uint64_t before =
            s.seq.load(std::memory_order_acquire);
        if (before == 0 || (before & 1))
            return false;  // Never written, or write in progress.
        *out = s.t;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_acquire) == before) {
            // Merge the audit side channel if it belongs to this
            // payload generation.
            if (s.annId.load(std::memory_order_acquire) ==
                    out->traceId &&
                out->traceId != 0)
            {
                const uint32_t flags = s.annFlags.load(relaxed_);
                out->auditDone = (flags & 1u) != 0;
                out->auditMismatch = (flags & 2u) != 0;
                out->auditGapDecades = s.annGap.load(relaxed_);
                out->oracleWeight = s.annOracleWeight.load(relaxed_);
                out->oracleObs = s.annOracleObs.load(relaxed_);
                if (out->captureSeq == 0)
                    out->captureSeq = s.annCaptureSeq.load(relaxed_);
            }
            return true;
        }
    }
    return false;
}

bool
TraceStore::annotateAudit(uint64_t trace_id, bool mismatch,
                          double gap_decades, double oracle_weight,
                          uint64_t oracle_obs, uint64_t capture_seq)
{
    if (trace_id == 0)
        return false;
    bool annotated = false;

    const uint64_t head = head_.load(std::memory_order_acquire);
    const size_t n = std::min<uint64_t>(head, capacity_);
    for (size_t i = 0; i < n; i++) {
        Slot &s = slots_[i];
        const uint64_t before =
            s.seq.load(std::memory_order_acquire);
        if (before == 0 || (before & 1))
            continue;
        // Racy id peek is fine: a stale match is filtered by readers
        // re-checking annId against the payload they actually copied.
        if (s.t.traceId != trace_id)
            continue;
        s.annFlags.store((mismatch ? 2u : 0u) | 1u, relaxed_);
        s.annGap.store(gap_decades, relaxed_);
        s.annOracleWeight.store(oracle_weight, relaxed_);
        s.annOracleObs.store(oracle_obs, relaxed_);
        s.annCaptureSeq.store(capture_seq, relaxed_);
        s.annId.store(trace_id, std::memory_order_release);
        annotated = true;
    }

    std::lock_guard<std::mutex> lock(exemplarMu_);
    for (auto &e : exemplars_) {
        if (!e.valid || e.t.traceId != trace_id)
            continue;
        e.t.auditDone = true;
        e.t.auditMismatch = mismatch;
        e.t.auditGapDecades = gap_decades;
        e.t.oracleWeight = oracle_weight;
        e.t.oracleObs = oracle_obs;
        if (e.t.captureSeq == 0)
            e.t.captureSeq = capture_seq;
        annotated = true;
    }
    return annotated;
}

bool
TraceStore::find(uint64_t trace_id, StoredTrace *out) const
{
    if (trace_id == 0)
        return false;
    const uint64_t head = head_.load(std::memory_order_acquire);
    const size_t n = std::min<uint64_t>(head, capacity_);
    StoredTrace tmp;
    for (size_t i = 0; i < n; i++) {
        if (readSlot(i, &tmp) && tmp.traceId == trace_id) {
            if (out != nullptr)
                *out = tmp;
            return true;
        }
    }
    std::lock_guard<std::mutex> lock(exemplarMu_);
    for (const auto &e : exemplars_) {
        if (e.valid && e.t.traceId == trace_id) {
            if (out != nullptr)
                *out = e.t;
            return true;
        }
    }
    return false;
}

std::vector<StoredTrace>
TraceStore::snapshot(size_t limit) const
{
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(head, capacity_);
    std::vector<StoredTrace> out;
    out.reserve(static_cast<size_t>(std::min<uint64_t>(n, limit)));
    StoredTrace tmp;
    for (uint64_t k = 0; k < n && out.size() < limit; k++) {
        // Newest first: walk positions head-1 .. head-n.
        const uint64_t pos = head - 1 - k;
        if (readSlot(pos % capacity_, &tmp))
            out.push_back(tmp);
    }
    return out;
}

TraceStore::Counters
TraceStore::counters() const
{
    Counters c;
    c.considered = considered_.load(relaxed_);
    c.kept = kept_.load(relaxed_);
    c.dropped = dropped_.load(relaxed_);
    c.evicted = evicted_.load(relaxed_);
    c.spansDropped = spansDropped_.load(relaxed_);
    c.capacity = capacity_;
    c.occupancy = static_cast<size_t>(
        std::min<uint64_t>(head_.load(relaxed_), capacity_));
    return c;
}

TraceStore::Exemplar
TraceStore::exemplar(size_t bucket) const
{
    Exemplar ex;
    if (bucket >= kLatencyBuckets)
        return ex;
    std::lock_guard<std::mutex> lock(exemplarMu_);
    const ExemplarSlot &e = exemplars_[bucket];
    if (e.valid) {
        ex.valid = true;
        ex.traceId = e.t.traceId;
        ex.latencyNs = e.t.latencyNs;
    }
    return ex;
}

TraceStore::Exemplar
TraceStore::exemplarAbove(size_t bucket) const
{
    Exemplar ex;
    std::lock_guard<std::mutex> lock(exemplarMu_);
    for (size_t b = bucket + 1; b < kLatencyBuckets; b++) {
        const ExemplarSlot &e = exemplars_[b];
        if (e.valid &&
            (!ex.valid || e.t.latencyNs > ex.latencyNs))
        {
            ex.valid = true;
            ex.traceId = e.t.traceId;
            ex.latencyNs = e.t.latencyNs;
        }
    }
    return ex;
}

namespace
{

void
appendReasonsJson(JsonWriter &w, uint8_t reasons)
{
    w.beginArray();
    if (reasons & kTraceKeepSlow)
        w.value("slow");
    if (reasons & kTraceKeepGiveUp)
        w.value("give_up");
    if (reasons & kTraceKeepAudit)
        w.value("audit");
    if (reasons & kTraceKeepStride)
        w.value("stride");
    if (reasons & kTraceKeepError)
        w.value("logical_error");
    w.endArray();
}

} // namespace

void
TraceStore::appendSummaryJson(JsonWriter &w,
                              const StoredTrace &t) const
{
    w.beginObject();
    w.kv("trace_id", traceIdHex(t.traceId));
    w.kv("shot", t.shot);
    w.kv("stream", t.stream);
    w.kv("decoder", t.decoder);
    w.kv("hw", t.hw);
    w.kv("latency_ns", t.latencyNs);
    w.kv("outcome", traceOutcomeName(t));
    w.key("reasons");
    appendReasonsJson(w, t.reasons);
    w.kv("spans", uint64_t{t.numSpans});
    w.kv("audited", t.audited);
    if (t.auditDone) {
        w.kv("audit_mismatch", t.auditMismatch);
        w.kv("audit_weight_gap_decades", t.auditGapDecades);
    }
    w.endObject();
}

void
TraceStore::appendDetailJson(JsonWriter &w, const StoredTrace &t) const
{
    w.beginObject();
    w.kv("trace_schema_version", kTraceSchemaVersion);
    w.kv("trace_id", traceIdHex(t.traceId));
    w.kv("shot", t.shot);
    w.kv("stream", t.stream);
    w.kv("decoder", t.decoder);
    w.kv("hw", t.hw);
    w.kv("latency_ns", t.latencyNs);
    w.kv("cycles", t.cycles);
    w.kv("matching_weight", t.matchingWeight);
    w.kv("obs_mask", t.obsMask);
    w.kv("actual_obs", t.actualObs);
    w.kv("gave_up", t.gaveUp);
    w.kv("logical_error", t.logicalError);
    w.kv("outcome", traceOutcomeName(t));
    w.key("reasons");
    appendReasonsJson(w, t.reasons);
    w.kv("capture_seq", t.captureSeq);

    w.key("audit").beginObject();
    w.kv("sampled", t.audited);
    w.kv("done", t.auditDone);
    if (t.auditDone) {
        w.kv("mismatch", t.auditMismatch);
        w.kv("weight_gap_decades", t.auditGapDecades);
        w.kv("oracle_weight", t.oracleWeight);
        w.kv("oracle_obs", t.oracleObs);
    }
    w.endObject();

    w.key("spans").beginArray();
    for (uint32_t i = 0; i < t.numSpans && i < kTraceMaxSpans; i++) {
        const TraceSpan &sp = t.spans[i];
        w.beginObject();
        w.kv("stage",
             perfStageName(static_cast<PerfStage>(sp.stage)));
        w.kv("shot", int64_t{sp.shot});
        w.kv("start_ns", uint64_t{sp.startNs});
        w.kv("dur_ns", uint64_t{sp.durNs});
        w.endObject();
    }
    w.endArray();
    w.kv("dropped_spans", uint64_t{t.droppedSpans});

    w.key("defects").beginArray();
    for (uint32_t i = 0; i < t.hw && i < kTraceMaxDefects; i++)
        w.value(uint64_t{t.defects[i]});
    w.endArray();

    {
        std::lock_guard<std::mutex> lock(runInfoMu_);
        if (!contextJson_.empty())
            w.key("context").raw(contextJson_);
        if (!decoderJson_.empty())
            w.key("decoder_config").raw(decoderJson_);
    }
    w.endObject();
}

std::string
TraceStore::indexJson(const TraceQuery &q) const
{
    JsonWriter w;
    w.beginObject();
    w.kv("trace_schema_version", kTraceSchemaVersion);
    const Counters c = counters();
    w.kv("kept", c.kept);
    w.kv("occupancy", uint64_t{c.occupancy});
    w.key("traces").beginArray();
    size_t emitted = 0;
    for (const StoredTrace &t : snapshot()) {
        if (emitted >= q.limit)
            break;
        if (t.latencyNs < q.minNs)
            continue;
        if (!q.decoder.empty() && q.decoder != t.decoder)
            continue;
        if (!q.outcome.empty() && q.outcome != traceOutcomeName(t))
            continue;
        appendSummaryJson(w, t);
        emitted++;
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
TraceStore::detailJson(uint64_t trace_id) const
{
    StoredTrace t;
    if (!find(trace_id, &t))
        return "";
    JsonWriter w;
    appendDetailJson(w, t);
    return w.str();
}

void
TraceStore::writeMetrics(PrometheusWriter &w) const
{
    const Counters c = counters();
    const TraceRetentionConfig cfg = traceRetention();
    w.gauge("astrea_trace_enabled",
            "1 while per-decode tail tracing is active",
            cfg.enabled ? 1.0 : 0.0);
    w.counter("astrea_trace_considered_total",
              "Decodes completed with tracing active", c.considered);
    w.counter("astrea_trace_kept_total",
              "Traces retained by the tail-sampling verdict", c.kept);
    w.counter("astrea_trace_dropped_total",
              "Traces discarded by the tail-sampling verdict",
              c.dropped);
    w.counter("astrea_trace_evicted_total",
              "Kept traces overwritten by ring wraparound",
              c.evicted);
    w.counter("astrea_trace_spans_dropped_total",
              "Stage spans lost to per-trace span caps",
              c.spansDropped);
    w.gauge("astrea_trace_store_occupancy",
            "Traces currently resident in the ring",
            static_cast<double>(c.occupancy));
    w.gauge("astrea_trace_store_capacity", "Trace ring capacity",
            static_cast<double>(c.capacity));
    w.gauge("astrea_trace_tail_threshold_ns",
            "Effective slow-trace latency threshold (0 = auto p99 "
            "not yet established)",
            traceEffectiveTailNs());
    w.gauge("astrea_trace_head_stride",
            "Head-sampling stride (every Nth decode kept; 0 = off)",
            static_cast<double>(cfg.headStride));
}

void
TraceStore::writeStatusz(JsonWriter &w) const
{
    const Counters c = counters();
    const TraceRetentionConfig cfg = traceRetention();
    w.kv("enabled", cfg.enabled);
    w.kv("considered", c.considered);
    w.kv("kept", c.kept);
    w.kv("dropped", c.dropped);
    w.kv("evicted", c.evicted);
    w.kv("spans_dropped", c.spansDropped);
    w.kv("occupancy", uint64_t{c.occupancy});
    w.kv("capacity", uint64_t{c.capacity});
    w.kv("tail_threshold_ns", cfg.tailThresholdNs);
    w.kv("tail_effective_ns", traceEffectiveTailNs());
    w.kv("head_stride", cfg.headStride);
}

TraceStore &
TraceStore::global()
{
    static TraceStore store(static_cast<size_t>(env::getUint(
        "ASTREA_TRACE_RING", 1024, 1)));
    return store;
}

} // namespace telemetry
} // namespace astrea
