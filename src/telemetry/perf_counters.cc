#include "telemetry/perf_counters.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"
#include "telemetry/decode_trace.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace astrea
{
namespace telemetry
{

namespace
{

// ---------------------------------------------------------------------------
// Global state
//
// Availability is process-wide and latches: the first thread whose
// open attempt fails with EPERM/EACCES/ENOENT (or succeeds) decides
// for everyone, so a locked-down kernel costs one failed syscall per
// process, not one per thread or per section.

constexpr size_t kNumEvents = 6;

enum EventIndex
{
    kEvCycles = 0,
    kEvInstructions,
    kEvLlcLoads,
    kEvLlcMisses,
    kEvBranchMisses,
    kEvTaskClock,
};

std::atomic<bool> g_envRead{false};
std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_stride{64};
std::atomic<bool> g_forceUnavailable{false};

/** -1 unknown, 0 unavailable (latched), 1 available. */
std::atomic<int> g_avail{-1};
std::atomic<bool> g_warned{false};
char g_reason[192] = "";

struct StageAtomics
{
    std::atomic<uint64_t> sections{0};
    std::atomic<uint64_t> shots{0};
    std::atomic<uint64_t> cycles{0};
    std::atomic<uint64_t> instructions{0};
    std::atomic<uint64_t> llcLoads{0};
    std::atomic<uint64_t> llcMisses{0};
    std::atomic<uint64_t> branchMisses{0};
    std::atomic<uint64_t> taskClockNs{0};
};

StageAtomics g_totals[kPerfStageCount];

void
readEnvOnce()
{
    if (g_envRead.load(std::memory_order_acquire))
        return;
    // Read before publishing so a racing first caller either sees the
    // final values or redundantly recomputes the same ones.
    const bool enabled = env::getBool("ASTREA_PERF_COUNTERS", false);
    const uint64_t stride =
        env::getUint("ASTREA_PERF_STAGE_STRIDE", 64, 1);
    const bool force =
        env::getBool("ASTREA_PERF_FORCE_UNAVAILABLE", false);
    g_enabled.store(enabled, std::memory_order_relaxed);
    g_stride.store(stride, std::memory_order_relaxed);
    g_forceUnavailable.store(force, std::memory_order_relaxed);
    g_envRead.store(true, std::memory_order_release);
}

/** Latch process-wide unavailability (first reason wins) and warn. */
void
latchUnavailable(const char *what, int err)
{
    int expected = -1;
    if (!g_avail.compare_exchange_strong(expected, 0,
                                         std::memory_order_relaxed)) {
        return;  // Someone else already decided (either way).
    }
    if (err != 0) {
        std::snprintf(g_reason, sizeof(g_reason), "%s: %s", what,
                      std::strerror(err));
    } else {
        std::snprintf(g_reason, sizeof(g_reason), "%s", what);
    }
    if (!g_warned.exchange(true)) {
        warn(std::string("perf counters unavailable, hardware "
                         "attribution disabled: ") +
             g_reason);
    }
}

// ---------------------------------------------------------------------------
// Per-thread counter group

#if defined(__linux__)

long
perfEventOpen(struct perf_event_attr *attr, pid_t pid, int cpu,
              int group_fd, unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                   flags);
}

void
fillAttr(struct perf_event_attr *attr, uint32_t type, uint64_t config)
{
    std::memset(attr, 0, sizeof(*attr));
    attr->type = type;
    attr->size = sizeof(*attr);
    attr->config = config;
    // User-space only: works under perf_event_paranoid <= 2 (the
    // common default) without privileges, and the decode path is
    // user-space anyway.
    attr->exclude_kernel = 1;
    attr->exclude_hv = 1;
    attr->read_format = PERF_FORMAT_GROUP |
                        PERF_FORMAT_TOTAL_TIME_ENABLED |
                        PERF_FORMAT_TOTAL_TIME_RUNNING;
}

constexpr uint64_t kLlcLoadsConfig =
    PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
constexpr uint64_t kLlcMissesConfig =
    PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);

#endif // __linux__

/**
 * One thread's counter group: the leader (cycles) plus whichever of
 * the other five events this machine's PMU supports, all read with a
 * single read(2) in creation order. Fixed-size everything — opening
 * happens once per thread, reading allocates nothing.
 */
struct ThreadGroup
{
    int fds[kNumEvents];
    int eventOf[kNumEvents];  ///< EventIndex for each value slot.
    int nOpen = 0;
    bool tried = false;
    bool ok = false;

    ThreadGroup() { std::fill(fds, fds + kNumEvents, -1); }
    ~ThreadGroup() { closeAll(); }

    void
    closeAll()
    {
#if defined(__linux__)
        for (int i = 0; i < nOpen; i++) {
            if (fds[i] >= 0)
                ::close(fds[i]);
        }
#endif
        std::fill(fds, fds + kNumEvents, -1);
        nOpen = 0;
        tried = false;
        ok = false;
    }

    bool
    ensureOpen()
    {
        if (tried)
            return ok;
        tried = true;
        if (g_avail.load(std::memory_order_relaxed) == 0)
            return false;
        if (g_forceUnavailable.load(std::memory_order_relaxed)) {
            latchUnavailable(
                "forced off (ASTREA_PERF_FORCE_UNAVAILABLE)", 0);
            return false;
        }
#if !defined(__linux__)
        latchUnavailable("perf_event_open is Linux-only", 0);
        return false;
#else
        struct perf_event_attr attr;

        // The leader (cycles) must open: without it there is no IPC,
        // no cycles/shot, and nothing worth attributing.
        fillAttr(&attr, PERF_TYPE_HARDWARE,
                 PERF_COUNT_HW_CPU_CYCLES);
        long leader = perfEventOpen(&attr, 0, -1, -1, 0);
        if (leader < 0) {
            int err = errno;
            latchUnavailable(
                (err == EPERM || err == EACCES)
                    ? "perf_event_open(cycles) denied "
                      "(perf_event_paranoid?)"
                    : "perf_event_open(cycles) failed (no PMU?)",
                err);
            return false;
        }
        fds[nOpen] = static_cast<int>(leader);
        eventOf[nOpen] = kEvCycles;
        nOpen++;

        // The rest are best-effort: a VM without cache events still
        // yields cycles/instructions, and absent counters simply read
        // as zero in the totals.
        struct Optional
        {
            int event;
            uint32_t type;
            uint64_t config;
        };
        const Optional optional[] = {
            {kEvInstructions, PERF_TYPE_HARDWARE,
             PERF_COUNT_HW_INSTRUCTIONS},
            {kEvLlcLoads, PERF_TYPE_HW_CACHE, kLlcLoadsConfig},
            {kEvLlcMisses, PERF_TYPE_HW_CACHE, kLlcMissesConfig},
            {kEvBranchMisses, PERF_TYPE_HARDWARE,
             PERF_COUNT_HW_BRANCH_MISSES},
            {kEvTaskClock, PERF_TYPE_SOFTWARE,
             PERF_COUNT_SW_TASK_CLOCK},
        };
        for (const Optional &o : optional) {
            fillAttr(&attr, o.type, o.config);
            long fd = perfEventOpen(&attr, 0, -1,
                                    static_cast<int>(leader), 0);
            if (fd < 0)
                continue;
            fds[nOpen] = static_cast<int>(fd);
            eventOf[nOpen] = o.event;
            nOpen++;
        }

        int expected = -1;
        g_avail.compare_exchange_strong(expected, 1,
                                        std::memory_order_relaxed);
        ok = true;
        return true;
#endif
    }

    bool
    readInto(PerfReading &out) const
    {
#if !defined(__linux__)
        (void)out;
        return false;
#else
        // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
        // then one u64 per event in creation order.
        uint64_t buf[3 + kNumEvents];
        const size_t want = sizeof(uint64_t) *
                            (3 + static_cast<size_t>(nOpen));
        ssize_t n = ::read(fds[0], buf, want);
        if (n != static_cast<ssize_t>(want))
            return false;
        out = PerfReading{};
        out.timeEnabledNs = buf[1];
        out.timeRunningNs = buf[2];
        for (int i = 0; i < nOpen; i++) {
            const uint64_t v = buf[3 + i];
            switch (eventOf[i]) {
            case kEvCycles: out.cycles = v; break;
            case kEvInstructions: out.instructions = v; break;
            case kEvLlcLoads: out.llcLoads = v; break;
            case kEvLlcMisses: out.llcMisses = v; break;
            case kEvBranchMisses: out.branchMisses = v; break;
            case kEvTaskClock: out.taskClockNs = v; break;
            }
        }
        return true;
#endif
    }
};

ThreadGroup &
threadGroup()
{
    thread_local ThreadGroup group;
    return group;
}

uint64_t
sub(uint64_t end, uint64_t start)
{
    return end >= start ? end - start : 0;
}

double
ratio(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) /
                          static_cast<double>(den);
}

} // namespace

// ---------------------------------------------------------------------------
// Public API

const char *
perfStageName(PerfStage stage)
{
    switch (stage) {
    case PerfStage::Gather: return "gather";
    case PerfStage::Matching: return "matching";
    case PerfStage::Verdict: return "verdict";
    case PerfStage::Window: return "window";
    case PerfStage::Batch: return "batch";
    }
    return "unknown";
}

double
PerfStageTotals::ipc() const
{
    return ratio(instructions, cycles);
}

double
PerfStageTotals::llcMissRate() const
{
    return ratio(llcMisses, llcLoads);
}

double
PerfStageTotals::cyclesPerShot() const
{
    return ratio(cycles, shots);
}

double
PerfStageTotals::branchMissesPerKiloInsn() const
{
    return 1000.0 * ratio(branchMisses, instructions);
}

bool
perfCountersEnabled()
{
    readEnvOnce();
    return g_enabled.load(std::memory_order_relaxed);
}

void
setPerfCountersEnabled(bool on)
{
    readEnvOnce();
    g_enabled.store(on, std::memory_order_relaxed);
}

bool
perfCountersAvailable()
{
    return g_avail.load(std::memory_order_relaxed) == 1;
}

const char *
perfUnavailableReason()
{
    return g_avail.load(std::memory_order_relaxed) == 0 ? g_reason
                                                        : "";
}

uint64_t
perfStageStride()
{
    readEnvOnce();
    return g_stride.load(std::memory_order_relaxed);
}

bool
perfSampleThisDecode()
{
    if (!perfCountersEnabled())
        return false;
    thread_local uint64_t decode_no = 0;
    return decode_no++ % g_stride.load(std::memory_order_relaxed) ==
           0;
}

PerfSection::PerfSection(PerfStage stage, uint64_t shots, bool live,
                         bool trace_spans)
    : stage_(stage), shots_(shots), traceSpans_(trace_spans)
{
    // Span hook fires regardless of the perf live/enable flags: the
    // tracer decides for itself whether it is recording.
    if (traceSpans_)
        traceStageBegin(stage);
    if (!live || !perfCountersEnabled())
        return;
    ThreadGroup &g = threadGroup();
    if (!g.ensureOpen())
        return;
    live_ = g.readInto(start_);
}

PerfSection::~PerfSection()
{
    if (traceSpans_)
        traceStageEnd(stage_);
    if (!live_)
        return;
    PerfReading end;
    if (!threadGroup().readInto(end))
        return;
    PerfReading delta;
    delta.cycles = sub(end.cycles, start_.cycles);
    delta.instructions = sub(end.instructions, start_.instructions);
    delta.llcLoads = sub(end.llcLoads, start_.llcLoads);
    delta.llcMisses = sub(end.llcMisses, start_.llcMisses);
    delta.branchMisses = sub(end.branchMisses, start_.branchMisses);
    delta.taskClockNs = sub(end.taskClockNs, start_.taskClockNs);
    addPerfSample(stage_, delta, shots_);
}

void
addPerfSample(PerfStage stage, const PerfReading &delta,
              uint64_t shots)
{
    StageAtomics &t = g_totals[static_cast<size_t>(stage)];
    t.sections.fetch_add(1, std::memory_order_relaxed);
    t.shots.fetch_add(shots, std::memory_order_relaxed);
    t.cycles.fetch_add(delta.cycles, std::memory_order_relaxed);
    t.instructions.fetch_add(delta.instructions,
                             std::memory_order_relaxed);
    t.llcLoads.fetch_add(delta.llcLoads, std::memory_order_relaxed);
    t.llcMisses.fetch_add(delta.llcMisses,
                          std::memory_order_relaxed);
    t.branchMisses.fetch_add(delta.branchMisses,
                             std::memory_order_relaxed);
    t.taskClockNs.fetch_add(delta.taskClockNs,
                            std::memory_order_relaxed);
}

PerfStageTotals
perfStageTotals(PerfStage stage)
{
    const StageAtomics &t = g_totals[static_cast<size_t>(stage)];
    PerfStageTotals out;
    out.sections = t.sections.load(std::memory_order_relaxed);
    out.shots = t.shots.load(std::memory_order_relaxed);
    out.cycles = t.cycles.load(std::memory_order_relaxed);
    out.instructions = t.instructions.load(std::memory_order_relaxed);
    out.llcLoads = t.llcLoads.load(std::memory_order_relaxed);
    out.llcMisses = t.llcMisses.load(std::memory_order_relaxed);
    out.branchMisses = t.branchMisses.load(std::memory_order_relaxed);
    out.taskClockNs = t.taskClockNs.load(std::memory_order_relaxed);
    return out;
}

void
resetPerfTotals()
{
    for (StageAtomics &t : g_totals) {
        t.sections.store(0, std::memory_order_relaxed);
        t.shots.store(0, std::memory_order_relaxed);
        t.cycles.store(0, std::memory_order_relaxed);
        t.instructions.store(0, std::memory_order_relaxed);
        t.llcLoads.store(0, std::memory_order_relaxed);
        t.llcMisses.store(0, std::memory_order_relaxed);
        t.branchMisses.store(0, std::memory_order_relaxed);
        t.taskClockNs.store(0, std::memory_order_relaxed);
    }
}

void
resetPerfForTest()
{
    threadGroup().closeAll();
    resetPerfTotals();
    g_avail.store(-1, std::memory_order_relaxed);
    g_warned.store(false, std::memory_order_relaxed);
    g_reason[0] = '\0';
    g_envRead.store(false, std::memory_order_relaxed);
    readEnvOnce();
}

void
publishPerfMetrics(MetricsRegistry &registry)
{
    registry.gauge("perf.available")
        .set(perfCountersAvailable() ? 1 : 0);
    for (size_t i = 0; i < kPerfStageCount; i++) {
        const PerfStage stage = static_cast<PerfStage>(i);
        const PerfStageTotals t = perfStageTotals(stage);
        if (t.sections == 0)
            continue;
        const std::string base =
            std::string("perf.") + perfStageName(stage);
        registry.gauge(base + ".ipc_milli")
            .set(std::llround(1000.0 * t.ipc()));
        registry.gauge(base + ".llc_miss_rate_ppm")
            .set(std::llround(1e6 * t.llcMissRate()));
        registry.gauge(base + ".cycles_per_shot")
            .set(std::llround(t.cyclesPerShot()));
    }
}

void
writePerfPrometheus(PrometheusWriter &w)
{
    w.gauge("astrea_perf_available",
            "1 once hardware perf counters opened; 0 while disabled "
            "or unavailable",
            perfCountersAvailable() ? 1.0 : 0.0);
    if (!perfCountersAvailable())
        return;

    struct RawFamily
    {
        const char *name;
        const char *help;
        uint64_t PerfStageTotals::*field;
    };
    const RawFamily raw[] = {
        {"astrea_perf_sections_total", "Measured counter sections",
         &PerfStageTotals::sections},
        {"astrea_perf_shots_total",
         "Shots covered by measured sections",
         &PerfStageTotals::shots},
        {"astrea_perf_cycles_total", "CPU cycles",
         &PerfStageTotals::cycles},
        {"astrea_perf_instructions_total", "Retired instructions",
         &PerfStageTotals::instructions},
        {"astrea_perf_llc_loads_total", "Last-level-cache loads",
         &PerfStageTotals::llcLoads},
        {"astrea_perf_llc_misses_total", "Last-level-cache misses",
         &PerfStageTotals::llcMisses},
        {"astrea_perf_branch_misses_total", "Branch mispredictions",
         &PerfStageTotals::branchMisses},
        {"astrea_perf_task_clock_ns_total", "Task clock (ns)",
         &PerfStageTotals::taskClockNs},
    };

    PerfStageTotals totals[kPerfStageCount];
    for (size_t i = 0; i < kPerfStageCount; i++)
        totals[i] = perfStageTotals(static_cast<PerfStage>(i));

    for (const RawFamily &fam : raw) {
        w.family(fam.name, "counter", fam.help);
        for (size_t i = 0; i < kPerfStageCount; i++) {
            if (totals[i].sections == 0)
                continue;
            w.sample(fam.name, totals[i].*fam.field,
                     PromLabels{{"stage",
                                 perfStageName(
                                     static_cast<PerfStage>(i))}});
        }
    }

    struct DerivedFamily
    {
        const char *name;
        const char *help;
        double (PerfStageTotals::*fn)() const;
    };
    const DerivedFamily derived[] = {
        {"astrea_perf_ipc", "Instructions per cycle",
         &PerfStageTotals::ipc},
        {"astrea_perf_llc_miss_rate",
         "LLC misses / LLC loads in [0, 1]",
         &PerfStageTotals::llcMissRate},
        {"astrea_perf_cycles_per_shot", "CPU cycles per covered shot",
         &PerfStageTotals::cyclesPerShot},
        {"astrea_perf_branch_misses_per_kinsn",
         "Branch misses per thousand instructions",
         &PerfStageTotals::branchMissesPerKiloInsn},
    };
    for (const DerivedFamily &fam : derived) {
        w.family(fam.name, "gauge", fam.help);
        for (size_t i = 0; i < kPerfStageCount; i++) {
            if (totals[i].sections == 0)
                continue;
            w.sample(fam.name, (totals[i].*fam.fn)(),
                     PromLabels{{"stage",
                                 perfStageName(
                                     static_cast<PerfStage>(i))}});
        }
    }
}

void
appendPerfJson(JsonWriter &w)
{
    const bool available = perfCountersAvailable();
    w.beginObject();
    w.kv("counters_enabled", perfCountersEnabled());
    w.kv("available", available);
    if (!available && perfUnavailableReason()[0] != '\0')
        w.kv("reason", std::string(perfUnavailableReason()));
    w.kv("stage_stride", perfStageStride());

    if (available) {
        // Headline: the whole-decodeBatch attribution, the numbers
        // bench_compare.py gates (perf.ipc, perf.llc_miss_rate).
        const PerfStageTotals batch =
            perfStageTotals(PerfStage::Batch);
        if (batch.sections > 0) {
            w.kv("ipc", batch.ipc());
            w.kv("llc_miss_rate", batch.llcMissRate());
            w.kv("cycles_per_shot", batch.cyclesPerShot());
        }
    }

    w.key("stages").beginObject();
    for (size_t i = 0; i < kPerfStageCount; i++) {
        const PerfStage stage = static_cast<PerfStage>(i);
        const PerfStageTotals t = perfStageTotals(stage);
        if (t.sections == 0)
            continue;
        w.key(perfStageName(stage)).beginObject();
        w.kv("sections", t.sections);
        w.kv("shots", t.shots);
        w.kv("cycles", t.cycles);
        w.kv("instructions", t.instructions);
        w.kv("llc_loads", t.llcLoads);
        w.kv("llc_misses", t.llcMisses);
        w.kv("branch_misses", t.branchMisses);
        w.kv("task_clock_ns", t.taskClockNs);
        w.kv("ipc", t.ipc());
        w.kv("llc_miss_rate", t.llcMissRate());
        w.kv("cycles_per_shot", t.cyclesPerShot());
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace telemetry
} // namespace astrea
