/**
 * @file
 * Clique-style hierarchical decoder (paper Sec. 2.3.4).
 *
 * The Clique decoder (Ravi et al.) commits "trivial" error events with
 * a cheap local circuit and falls back to software MWPM for everything
 * else. We model the accuracy consequences: defects whose entire graph
 * neighborhood contains at most one other defect are committed locally
 * (pairing adjacent defect pairs, or sending an isolated defect to an
 * adjacent boundary), and only the residual defects go to the exact
 * matcher. Local commitments are greedy, so the decoder is slightly
 * less accurate than global MWPM — the effect Table 4 and Fig. 4
 * quantify. The latency model reflects the hierarchy: a fast path
 * (1 cycle at 250 MHz) when everything decodes locally, and the
 * measured software-MWPM time plus a round-trip penalty otherwise.
 */

#ifndef ASTREA_DECODERS_CLIQUE_DECODER_HH
#define ASTREA_DECODERS_CLIQUE_DECODER_HH

#include "decoders/decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "graph/decoding_graph.hh"
#include "graph/weight_table.hh"

namespace astrea
{

/** Local predecoder + software MWPM fallback. */
class CliqueDecoder : public Decoder
{
  public:
    CliqueDecoder(const DecodingGraph &graph,
                  const GlobalWeightTable &gwt)
        : graph_(graph), fallback_(gwt)
    {}

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;
    std::string name() const override { return "Clique+MWPM"; }

    /** Fraction of decodes fully handled by the local stage. */
    double localFraction() const;

  private:
    const DecodingGraph &graph_;
    MwpmDecoder fallback_;
    uint64_t decodes_ = 0;
    uint64_t localOnly_ = 0;
};

} // namespace astrea

#endif // ASTREA_DECODERS_CLIQUE_DECODER_HH
