/**
 * @file
 * Greedy nearest-pair decoder.
 *
 * The simplest hardware-friendly matcher, in the spirit of weighted
 * iterative greedy decoders (WIT-Greedy, ASPDAC'23, cited as [44] by
 * the paper): repeatedly commit the globally minimum-weight option —
 * either a defect-defect pair or a defect-boundary match — until no
 * defect remains. O(w^2 log w) per syndrome with no search at all,
 * which makes it a useful lower bar between "no decoding" and
 * Union-Find in the accuracy comparisons: greedy commits cannot be
 * revisited, so it loses to MWPM exactly on the crossing-chain
 * configurations the blossom algorithm untangles.
 */

#ifndef ASTREA_DECODERS_GREEDY_DECODER_HH
#define ASTREA_DECODERS_GREEDY_DECODER_HH

#include "decoders/decoder.hh"
#include "graph/weight_table.hh"

namespace astrea
{

/** Globally-greedy minimum-pair matcher. */
class GreedyDecoder : public Decoder
{
  public:
    explicit GreedyDecoder(const GlobalWeightTable &gwt) : gwt_(gwt) {}

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;
    std::string name() const override { return "Greedy"; }

  private:
    const GlobalWeightTable &gwt_;
};

} // namespace astrea

#endif // ASTREA_DECODERS_GREEDY_DECODER_HH
