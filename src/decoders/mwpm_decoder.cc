#include "decoders/mwpm_decoder.hh"

#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "matching/blossom.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

namespace
{

/** Fixed-point scale: micro-decades keep exact weights exact enough. */
constexpr double kScale = 1e6;

/** Weight used for structurally forbidden pairs. */
constexpr int64_t kForbidden = 1ll << 40;

int64_t
scaleWeight(double decades)
{
    if (!std::isfinite(decades))
        return kForbidden;
    int64_t w = static_cast<int64_t>(std::llround(decades * kScale));
    return w < kForbidden ? w : kForbidden;
}

} // namespace

void
MwpmDecoder::decodeInto(std::span<const uint32_t> defects,
                        DecodeResult &result, DecodeScratch &scratch)
{
    (void)scratch;  // Blossom's work arrays are not pooled (yet).
    result.reset();
    const int n = static_cast<int>(defects.size());
    if (n == 0)
        return;

    auto t0 = std::chrono::steady_clock::now();

    // Nodes 0..n-1 are the defects; nodes n..2n-1 are their private
    // boundary copies. Boundary copy i connects only to defect i (at
    // the defect's boundary weight) and to other boundary copies (at
    // zero weight).
    auto weight = [&](int i, int j) -> int64_t {
        bool i_real = i < n, j_real = j < n;
        if (i_real && j_real)
            return scaleWeight(gwt_.exactWeight(defects[i], defects[j]));
        if (!i_real && !j_real)
            return 0;
        int real = i_real ? i : j;
        int copy = (i_real ? j : i) - n;
        if (copy != real)
            return kForbidden;
        return scaleWeight(gwt_.exactWeight(defects[real],
                                            defects[real]));
    };

    auto mate = minWeightPerfectMatching(2 * n, weight);

    result.matchedPairs.reserve(static_cast<size_t>(n));
    double total = 0.0;
    for (int i = 0; i < n; i++) {
        int m = mate[i];
        if (m < n) {
            // Defect-defect pair; count it once.
            if (i < m) {
                result.obsMask ^= gwt_.pairObs(defects[i], defects[m]);
                total += gwt_.exactWeight(defects[i], defects[m]);
                result.matchedPairs.push_back({i, m});
            }
        } else {
            ASTREA_CHECK(m - n == i, "defect matched to foreign boundary");
            result.obsMask ^= gwt_.pairObs(defects[i], defects[i]);
            total += gwt_.exactWeight(defects[i], defects[i]);
            result.matchedPairs.push_back({i, -1});
        }
    }
    result.matchingWeight = total;

    auto t1 = std::chrono::steady_clock::now();
    result.latencyNs =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    ASTREA_COUNTER_INC("mwpm.decodes");
    ASTREA_LATENCY_NS("mwpm.decode_ns", result.latencyNs);
}

} // namespace astrea
