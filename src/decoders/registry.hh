/**
 * @file
 * DecoderRegistry: the single source of truth for decoder names.
 *
 * Decoder construction used to be duplicated across five layers (the
 * harness factories, the capture replayer, the decode service, the CLI
 * and per-bench lambdas), each with its own name strings and error
 * messages. The registry centralizes all of it: canonical names map to
 * factories taking one typed DecoderOptions struct, `listDecoders()`
 * exposes the metadata that `astrea_cli list-decoders` and the README
 * table print, and every "unknown decoder" error enumerates the same
 * list, so the accepted name sets can no longer drift apart.
 *
 * Canonical names:
 *
 *   astrea, astrea-g, mwpm (alias: blossom), union-find (alias: uf),
 *   clique, lut, greedy, and the windowed-<inner> wrapper prefix
 *   (windowed-astrea, windowed-mwpm, windowed-greedy — any inner that
 *   reports its matching).
 *
 * Display names (what Decoder::name() returns, e.g. "Astrea-G",
 * "Windowed(MWPM)") also resolve, which is how flight-recorder
 * captures reconstruct their decoder through makeFromDescription().
 */

#ifndef ASTREA_DECODERS_REGISTRY_HH
#define ASTREA_DECODERS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "astrea/astrea_decoder.hh"
#include "astrea/astrea_g_decoder.hh"
#include "circuit/circuit.hh"
#include "decoders/decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "graph/decoding_graph.hh"
#include "graph/weight_table.hh"
#include "stream/window_decoder.hh"
#include "telemetry/json_value.hh"

namespace astrea
{

/**
 * Everything a registry factory may need: the experiment context
 * pieces (borrowed, must outlive the decoder) plus per-decoder knobs.
 * Factories validate the pieces they actually require and error
 * otherwise.
 */
struct DecoderOptions
{
    /** Weight table (required by every decoder except union-find). */
    const GlobalWeightTable *gwt = nullptr;
    /** Decoding graph (required by union-find and clique). */
    const DecodingGraph *graph = nullptr;
    /** Per-detector metadata (required by windowed-* wrappers). */
    const std::vector<DetectorInfo> *detectorInfo = nullptr;
    /** Detector rounds incl. the final comparison round (windowed-*). */
    uint32_t totalRounds = 0;
    /** Code distance; enables Wth auto-resolution and window defaults. */
    uint32_t distance = 0;
    /** Physical error rate; enables Astrea-G Wth auto-resolution. */
    double physicalErrorRate = 0.0;

    AstreaConfig astrea;
    AstreaGConfig astreaG;
    UnionFindConfig unionFind;
    StreamingConfig streaming;
};

/** Broad decoder category, for listings. */
enum class DecoderKind
{
    Hardware,  ///< Modeled-cycle hardware design.
    Software,  ///< Wall-clock software baseline.
    Wrapper,   ///< Streaming wrapper around an inner decoder.
};

const char *decoderKindName(DecoderKind kind);

/** One listDecoders() row. */
struct DecoderInfo
{
    std::string name;  ///< Canonical registry name.
    std::vector<std::string> aliases;
    DecoderKind kind;
    std::string description;
};

/** Central decoder name -> factory mapping. */
class DecoderRegistry
{
  public:
    /** The process-wide registry (immutable, thread-safe). */
    static const DecoderRegistry &global();

    /** Every constructible name, wrapper variants included. */
    std::vector<DecoderInfo> listDecoders() const;

    /**
     * Resolve a canonical name, alias, display name (Decoder::name()
     * output such as "Astrea-G" or "Windowed(MWPM)"), or windowed-*
     * compound to its canonical registry name; "" when unknown.
     */
    std::string canonicalName(const std::string &name) const;

    /**
     * Build the named decoder. Returns nullptr and sets *error_out
     * (which enumerates the known names for unknown-name failures)
     * when the name is unknown or opts lacks a required context piece.
     */
    std::unique_ptr<Decoder> make(const std::string &name,
                                  const DecoderOptions &opts,
                                  std::string *error_out) const;

    /**
     * Rebuild a decoder from a capture's description: the display name
     * plus the describeConfig() JSON object. Knobs present in the JSON
     * override those in opts; absent ones keep opts' values (which is
     * how the replayer forces recordMatching on).
     */
    std::unique_ptr<Decoder>
    makeFromDescription(const std::string &display_name,
                        const telemetry::JsonValue &config,
                        const DecoderOptions &opts,
                        std::string *error_out) const;

    /** Comma-separated canonical names, for error messages. */
    std::string knownNamesText() const;

  private:
    DecoderRegistry() = default;
};

/**
 * Wrap an already-built inner decoder in the sliding-window streaming
 * decoder, using opts' window context (gwt, detectorInfo, totalRounds,
 * distance, streaming). The one WindowDecoder construction point.
 */
std::unique_ptr<Decoder> makeWindowedDecoder(const DecoderOptions &opts,
                                             std::unique_ptr<Decoder> inner);

/**
 * Convenience make() for call sites with a statically-known name:
 * fatals with the registry's error message instead of returning null.
 */
std::unique_ptr<Decoder> makeDecoder(const std::string &name,
                                     const DecoderOptions &opts);

} // namespace astrea

#endif // ASTREA_DECODERS_REGISTRY_HH
