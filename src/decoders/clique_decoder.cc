#include "decoders/clique_decoder.hh"

#include <algorithm>
#include <unordered_set>

namespace astrea
{

DecodeResult
CliqueDecoder::decode(const std::vector<uint32_t> &defects)
{
    decodes_++;
    DecodeResult result;
    if (defects.empty()) {
        localOnly_++;
        return result;
    }

    std::unordered_set<uint32_t> defect_set(defects.begin(),
                                            defects.end());
    std::unordered_set<uint32_t> committed;
    std::vector<uint32_t> residual;

    // Local stage: a defect is trivially decodable when its graph
    // neighborhood contains at most one other defect.
    for (auto d : defects) {
        if (committed.count(d))
            continue;
        int neighbor_defects = 0;
        uint32_t the_neighbor = 0;
        int neighbor_edge = -1;
        for (auto [edge_idx, other] : graph_.neighbors(d)) {
            if (other == kBoundaryNode)
                continue;
            if (defect_set.count(other) && !committed.count(other)) {
                neighbor_defects++;
                the_neighbor = other;
                neighbor_edge = static_cast<int>(edge_idx);
            }
        }
        if (neighbor_defects == 0) {
            // Isolated: send to the boundary if directly adjacent.
            int32_t be = graph_.boundaryEdge(d);
            if (be >= 0) {
                const GraphEdge &e = graph_.edges()[be];
                result.obsMask ^= e.obsMask;
                result.matchingWeight += e.weight;
                committed.insert(d);
            } else {
                residual.push_back(d);
            }
        } else if (neighbor_defects == 1) {
            // Check the neighbor also sees only this defect; then the
            // pair is an isolated error chain and can be committed.
            int back_defects = 0;
            for (auto [edge_idx, other] : graph_.neighbors(the_neighbor)) {
                (void)edge_idx;
                if (other != kBoundaryNode && defect_set.count(other) &&
                    !committed.count(other)) {
                    back_defects++;
                }
            }
            if (back_defects == 1) {
                const GraphEdge &e = graph_.edges()[neighbor_edge];
                result.obsMask ^= e.obsMask;
                result.matchingWeight += e.weight;
                committed.insert(d);
                committed.insert(the_neighbor);
            } else {
                residual.push_back(d);
            }
        } else {
            residual.push_back(d);
        }
    }

    if (residual.empty()) {
        localOnly_++;
        result.cycles = 1;
        result.latencyNs = cyclesToNs(result.cycles);
        return result;
    }

    // Fallback: global MWPM on the residual defects. The round trip to
    // the software decoder dominates the critical path; we charge the
    // measured matching time plus a fixed 1 us transport penalty, which
    // is what makes Clique non-real-time on hard events (Sec. 5.6).
    std::sort(residual.begin(), residual.end());
    DecodeResult fb = fallback_.decode(residual);
    result.obsMask ^= fb.obsMask;
    result.matchingWeight += fb.matchingWeight;
    result.latencyNs = fb.latencyNs + 1000.0;
    return result;
}

double
CliqueDecoder::localFraction() const
{
    if (decodes_ == 0)
        return 0.0;
    return static_cast<double>(localOnly_) /
           static_cast<double>(decodes_);
}

} // namespace astrea
