#include "decoders/clique_decoder.hh"

#include <algorithm>
#include <unordered_set>

namespace astrea
{

namespace
{

/** Per-scratch reusable sets and buffers for the local stage. */
struct CliqueScratch : DecodeScratch::Ext
{
    std::unordered_set<uint32_t> defectSet;
    std::unordered_set<uint32_t> committed;
    std::vector<uint32_t> residual;
    DecodeResult fallback;
};

} // namespace

void
CliqueDecoder::decodeInto(std::span<const uint32_t> defects,
                          DecodeResult &result, DecodeScratch &scratch)
{
    decodes_++;
    result.reset();
    if (defects.empty()) {
        localOnly_++;
        return;
    }

    CliqueScratch &s = scratch.ext<CliqueScratch>();
    auto &defect_set = s.defectSet;
    auto &committed = s.committed;
    auto &residual = s.residual;
    defect_set.clear();
    defect_set.insert(defects.begin(), defects.end());
    committed.clear();
    residual.clear();

    // Local stage: a defect is trivially decodable when its graph
    // neighborhood contains at most one other defect.
    for (auto d : defects) {
        if (committed.count(d))
            continue;
        int neighbor_defects = 0;
        uint32_t the_neighbor = 0;
        int neighbor_edge = -1;
        for (auto [edge_idx, other] : graph_.neighbors(d)) {
            if (other == kBoundaryNode)
                continue;
            if (defect_set.count(other) && !committed.count(other)) {
                neighbor_defects++;
                the_neighbor = other;
                neighbor_edge = static_cast<int>(edge_idx);
            }
        }
        if (neighbor_defects == 0) {
            // Isolated: send to the boundary if directly adjacent.
            int32_t be = graph_.boundaryEdge(d);
            if (be >= 0) {
                const GraphEdge &e = graph_.edges()[be];
                result.obsMask ^= e.obsMask;
                result.matchingWeight += e.weight;
                committed.insert(d);
            } else {
                residual.push_back(d);
            }
        } else if (neighbor_defects == 1) {
            // Check the neighbor also sees only this defect; then the
            // pair is an isolated error chain and can be committed.
            int back_defects = 0;
            for (auto [edge_idx, other] : graph_.neighbors(the_neighbor)) {
                (void)edge_idx;
                if (other != kBoundaryNode && defect_set.count(other) &&
                    !committed.count(other)) {
                    back_defects++;
                }
            }
            if (back_defects == 1) {
                const GraphEdge &e = graph_.edges()[neighbor_edge];
                result.obsMask ^= e.obsMask;
                result.matchingWeight += e.weight;
                committed.insert(d);
                committed.insert(the_neighbor);
            } else {
                residual.push_back(d);
            }
        } else {
            residual.push_back(d);
        }
    }

    if (residual.empty()) {
        localOnly_++;
        result.cycles = 1;
        result.latencyNs = cyclesToNs(result.cycles);
        return;
    }

    // Fallback: global MWPM on the residual defects. The round trip to
    // the software decoder dominates the critical path; we charge the
    // measured matching time plus a fixed 1 us transport penalty, which
    // is what makes Clique non-real-time on hard events (Sec. 5.6).
    std::sort(residual.begin(), residual.end());
    DecodeResult &fb = s.fallback;
    fallback_.decodeInto(residual, fb, scratch);
    result.obsMask ^= fb.obsMask;
    result.matchingWeight += fb.matchingWeight;
    result.latencyNs = fb.latencyNs + 1000.0;
}

double
CliqueDecoder::localFraction() const
{
    if (decodes_ == 0)
        return 0.0;
    return static_cast<double>(localOnly_) /
           static_cast<double>(decodes_);
}

} // namespace astrea
