/**
 * @file
 * Lookup-table decoder (the LILLIPUT proxy, paper Sec. 2.3.2).
 *
 * LILLIPUT programs a lookup table with the MWPM answer for every
 * possible syndrome, so its accuracy equals MWPM wherever the table
 * fits; the design fails to scale because a full table needs 2^l
 * entries for an l-bit syndrome vector. We model exactly that: a
 * memoizing decoder whose entries are filled by an exact matcher on
 * first sight (equivalent to reading a pre-programmed table), plus
 * accounting for both the entries actually touched and the 2^l bits a
 * real hardware table would require — the number that limits LILLIPUT
 * to d = 3 (and d = 5 with two rounds).
 */

#ifndef ASTREA_DECODERS_LUT_DECODER_HH
#define ASTREA_DECODERS_LUT_DECODER_HH

#include <algorithm>
#include <map>

#include "decoders/decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "graph/weight_table.hh"

namespace astrea
{

/** Memoized-MWPM lookup-table decoder. */
class LutDecoder : public Decoder
{
  public:
    explicit LutDecoder(const GlobalWeightTable &gwt)
        : syndromeBits_(gwt.size()), oracle_(gwt)
    {}

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;
    std::string name() const override { return "LUT(LILLIPUT)"; }

    /** Entries populated so far (reachable-syndrome working set). */
    size_t populatedEntries() const { return table_.size(); }

    /** log2 of the full hardware table's entry count (= l). */
    uint32_t fullTableAddressBits() const { return syndromeBits_; }

    /**
     * Whether a full hardware table is implementable: LILLIPUT-scale
     * designs cap out around 2^28 entries (paper Sec. 5.6).
     */
    bool hardwareFeasible() const { return syndromeBits_ <= 28; }

  private:
    /**
     * Transparent comparator so table hits can be probed with a
     * std::span key directly — no temporary std::vector per lookup,
     * which keeps the steady state (all hits) allocation-free.
     */
    struct DefectsLess
    {
        using is_transparent = void;
        bool
        operator()(std::span<const uint32_t> a,
                   std::span<const uint32_t> b) const
        {
            return std::lexicographical_compare(a.begin(), a.end(),
                                                b.begin(), b.end());
        }
    };

    uint32_t syndromeBits_;
    MwpmDecoder oracle_;
    /** defects -> (obsMask, matching weight). */
    std::map<std::vector<uint32_t>, std::pair<uint64_t, double>,
             DefectsLess>
        table_;
};

} // namespace astrea

#endif // ASTREA_DECODERS_LUT_DECODER_HH
