/**
 * @file
 * Idealized software MWPM decoder (the paper's baseline, Sec. 3.3).
 *
 * Solves the matching problem exactly with the blossom algorithm on
 * unquantized weights, using the standard boundary construction: each
 * of the n defects gets a private virtual boundary copy; boundary
 * copies are connected to each other at zero weight, so any subset of
 * defects can terminate on the boundary. Reported latency is measured
 * wall-clock time of the matching step (this is what Fig. 3 plots for
 * BlossomV).
 */

#ifndef ASTREA_DECODERS_MWPM_DECODER_HH
#define ASTREA_DECODERS_MWPM_DECODER_HH

#include "decoders/decoder.hh"
#include "graph/weight_table.hh"

namespace astrea
{

/** Exact software MWPM via blossom. */
class MwpmDecoder : public Decoder
{
  public:
    explicit MwpmDecoder(const GlobalWeightTable &gwt) : gwt_(gwt) {}

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;
    std::string name() const override { return "MWPM"; }

  private:
    const GlobalWeightTable &gwt_;
};

} // namespace astrea

#endif // ASTREA_DECODERS_MWPM_DECODER_HH
