#include "decoders/greedy_decoder.hh"

#include <algorithm>
#include <chrono>

namespace astrea
{

namespace
{

/** Candidate match: (weight, i, j) with j == i meaning boundary. */
struct Cand
{
    double weight;
    uint32_t i;
    uint32_t j;
    bool operator>(const Cand &o) const { return weight > o.weight; }
};

/** Per-scratch reusable candidate heap and used-flag buffers. */
struct GreedyScratch : DecodeScratch::Ext
{
    std::vector<Cand> heap;
    std::vector<uint8_t> used;
};

} // namespace

void
GreedyDecoder::decodeInto(std::span<const uint32_t> defects,
                          DecodeResult &result, DecodeScratch &scratch)
{
    result.reset();
    const size_t n = defects.size();
    if (n == 0)
        return;
    auto t0 = std::chrono::steady_clock::now();

    GreedyScratch &s = scratch.ext<GreedyScratch>();

    // Min-heap over the n + n(n-1)/2 candidates; the buffer is grown
    // once and reused across decodes. Sequential push_heap matches
    // std::priority_queue's insertion order exactly.
    auto &heap = s.heap;
    heap.clear();
    auto push = [&](Cand c) {
        heap.push_back(c);
        std::push_heap(heap.begin(), heap.end(), std::greater<Cand>{});
    };
    for (uint32_t i = 0; i < n; i++) {
        push({gwt_.exactWeight(defects[i], defects[i]), i, i});
        for (uint32_t j = i + 1; j < n; j++)
            push({gwt_.exactWeight(defects[i], defects[j]), i, j});
    }

    auto &used = s.used;
    used.assign(n, 0);
    result.matchedPairs.reserve((n + 1) / 2);
    size_t remaining = n;
    while (remaining > 0 && !heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<Cand>{});
        Cand c = heap.back();
        heap.pop_back();
        if (used[c.i] || (c.j != c.i && used[c.j]))
            continue;
        used[c.i] = 1;
        remaining--;
        if (c.j == c.i) {
            // Boundary match.
            result.obsMask ^= gwt_.pairObs(defects[c.i], defects[c.i]);
            result.matchingWeight +=
                gwt_.exactWeight(defects[c.i], defects[c.i]);
            result.matchedPairs.push_back(
                {static_cast<int32_t>(c.i), -1});
        } else {
            used[c.j] = 1;
            remaining--;
            result.obsMask ^= gwt_.pairObs(defects[c.i], defects[c.j]);
            result.matchingWeight +=
                gwt_.exactWeight(defects[c.i], defects[c.j]);
            result.matchedPairs.push_back(
                {static_cast<int32_t>(c.i),
                 static_cast<int32_t>(c.j)});
        }
    }

    auto t1 = std::chrono::steady_clock::now();
    result.latencyNs =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
}

} // namespace astrea
