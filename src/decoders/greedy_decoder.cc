#include "decoders/greedy_decoder.hh"

#include <algorithm>
#include <chrono>
#include <queue>

namespace astrea
{

DecodeResult
GreedyDecoder::decode(const std::vector<uint32_t> &defects)
{
    DecodeResult result;
    const size_t n = defects.size();
    if (n == 0)
        return result;
    auto t0 = std::chrono::steady_clock::now();

    // Candidate heap over (weight, i, j) with j == i meaning boundary.
    struct Cand
    {
        double weight;
        uint32_t i;
        uint32_t j;
        bool operator>(const Cand &o) const { return weight > o.weight; }
    };
    std::priority_queue<Cand, std::vector<Cand>, std::greater<Cand>> pq;
    for (uint32_t i = 0; i < n; i++) {
        pq.push({gwt_.exactWeight(defects[i], defects[i]), i, i});
        for (uint32_t j = i + 1; j < n; j++) {
            pq.push(
                {gwt_.exactWeight(defects[i], defects[j]), i, j});
        }
    }

    std::vector<uint8_t> used(n, 0);
    size_t remaining = n;
    while (remaining > 0 && !pq.empty()) {
        Cand c = pq.top();
        pq.pop();
        if (used[c.i] || (c.j != c.i && used[c.j]))
            continue;
        used[c.i] = 1;
        remaining--;
        if (c.j == c.i) {
            // Boundary match.
            result.obsMask ^= gwt_.pairObs(defects[c.i], defects[c.i]);
            result.matchingWeight +=
                gwt_.exactWeight(defects[c.i], defects[c.i]);
            result.matchedPairs.push_back(
                {static_cast<int32_t>(c.i), -1});
        } else {
            used[c.j] = 1;
            remaining--;
            result.obsMask ^= gwt_.pairObs(defects[c.i], defects[c.j]);
            result.matchingWeight +=
                gwt_.exactWeight(defects[c.i], defects[c.j]);
            result.matchedPairs.push_back(
                {static_cast<int32_t>(c.i),
                 static_cast<int32_t>(c.j)});
        }
    }

    auto t1 = std::chrono::steady_clock::now();
    result.latencyNs =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    return result;
}

} // namespace astrea
