#include "decoders/registry.hh"

#include "common/logging.hh"
#include "decoders/clique_decoder.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/lut_decoder.hh"
#include "decoders/mwpm_decoder.hh"

namespace astrea
{

namespace
{

constexpr const char *kWindowedPrefix = "windowed-";

bool
hasWindowedPrefix(const std::string &name)
{
    return name.rfind(kWindowedPrefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Per-decoder factories.

std::unique_ptr<Decoder>
makeAstrea(const DecoderOptions &o, std::string *err)
{
    if (o.gwt == nullptr) {
        *err = "astrea requires a weight table (DecoderOptions::gwt)";
        return nullptr;
    }
    return std::make_unique<AstreaDecoder>(*o.gwt, o.astrea);
}

std::unique_ptr<Decoder>
makeAstreaG(const DecoderOptions &o, std::string *err)
{
    if (o.gwt == nullptr) {
        *err = "astrea-g requires a weight table (DecoderOptions::gwt)";
        return nullptr;
    }
    AstreaGConfig c = o.astreaG;
    if (c.weightThresholdDecades <= 0.0 && o.distance > 0 &&
        o.physicalErrorRate > 0.0) {
        // The paper programs Wth from the target logical error rate;
        // resolve it for this experiment's regime.
        c.weightThresholdDecades =
            defaultWeightThreshold(o.distance, o.physicalErrorRate);
    }
    return std::make_unique<AstreaGDecoder>(*o.gwt, c);
}

std::unique_ptr<Decoder>
makeMwpm(const DecoderOptions &o, std::string *err)
{
    if (o.gwt == nullptr) {
        *err = "mwpm requires a weight table (DecoderOptions::gwt)";
        return nullptr;
    }
    return std::make_unique<MwpmDecoder>(*o.gwt);
}

std::unique_ptr<Decoder>
makeUnionFind(const DecoderOptions &o, std::string *err)
{
    if (o.graph == nullptr) {
        *err = "union-find requires a decoding graph "
               "(DecoderOptions::graph)";
        return nullptr;
    }
    return std::make_unique<UnionFindDecoder>(*o.graph, o.unionFind);
}

std::unique_ptr<Decoder>
makeClique(const DecoderOptions &o, std::string *err)
{
    if (o.graph == nullptr || o.gwt == nullptr) {
        *err = "clique requires a decoding graph and a weight table";
        return nullptr;
    }
    return std::make_unique<CliqueDecoder>(*o.graph, *o.gwt);
}

std::unique_ptr<Decoder>
makeLut(const DecoderOptions &o, std::string *err)
{
    if (o.gwt == nullptr) {
        *err = "lut requires a weight table (DecoderOptions::gwt)";
        return nullptr;
    }
    return std::make_unique<LutDecoder>(*o.gwt);
}

std::unique_ptr<Decoder>
makeGreedy(const DecoderOptions &o, std::string *err)
{
    if (o.gwt == nullptr) {
        *err = "greedy requires a weight table (DecoderOptions::gwt)";
        return nullptr;
    }
    return std::make_unique<GreedyDecoder>(*o.gwt);
}

// ---------------------------------------------------------------------------
// describeConfig() parsers (capture round-trip). Absent keys keep the
// knobs already in DecoderOptions, so callers can pre-set overrides
// the capture does not carry (e.g. recordMatching).

void
parseNone(const telemetry::JsonValue &dc, DecoderOptions &o)
{
    (void)dc;
    (void)o;
}

void
parseAstrea(const telemetry::JsonValue &dc, DecoderOptions &o)
{
    AstreaConfig &c = o.astrea;
    c.maxHammingWeight = static_cast<uint32_t>(
        dc["max_hamming_weight"].asUint(c.maxHammingWeight));
    c.quantizedWeights =
        dc["quantized_weights"].asBool(c.quantizedWeights);
    c.useEffectiveWeights =
        dc["use_effective_weights"].asBool(c.useEffectiveWeights);
}

void
parseAstreaG(const telemetry::JsonValue &dc, DecoderOptions &o)
{
    AstreaGConfig &c = o.astreaG;
    c.fetchWidth =
        static_cast<uint32_t>(dc["fetch_width"].asUint(c.fetchWidth));
    c.queueCapacity = static_cast<uint32_t>(
        dc["queue_capacity"].asUint(c.queueCapacity));
    // Captures store the resolved threshold, so no regime
    // re-resolution happens on replay.
    c.weightThresholdDecades =
        dc["weight_threshold_decades"].asNumber(c.weightThresholdDecades);
    c.cycleBudget = dc["cycle_budget"].asUint(c.cycleBudget);
    c.exhaustiveMaxHw = static_cast<uint32_t>(
        dc["exhaustive_max_hw"].asUint(c.exhaustiveMaxHw));
    c.maxDefects =
        static_cast<uint32_t>(dc["max_defects"].asUint(c.maxDefects));
    c.requeueContinuations =
        dc["requeue_continuations"].asBool(c.requeueContinuations);
}

void
parseUnionFind(const telemetry::JsonValue &dc, DecoderOptions &o)
{
    o.unionFind.weightedGrowth =
        dc["weighted_growth"].asBool(o.unionFind.weightedGrowth);
}

// ---------------------------------------------------------------------------
// The table.

struct Entry
{
    const char *name;
    std::vector<const char *> aliases;
    DecoderKind kind;
    const char *description;
    /** Fills DecodeResult::matchedPairs -> usable as a windowed inner. */
    bool reportsMatching;
    /** Decoder::name() outputs that resolve to this entry. */
    std::vector<const char *> displayNames;
    std::unique_ptr<Decoder> (*make)(const DecoderOptions &,
                                     std::string *);
    void (*parseConfig)(const telemetry::JsonValue &, DecoderOptions &);
};

const std::vector<Entry> &
entries()
{
    static const std::vector<Entry> table = {
        {"astrea", {}, DecoderKind::Hardware,
         "Brute-force MWPM over HW <= 10 syndromes, modeled FPGA "
         "cycles at 250 MHz (paper Sec. 5)",
         true, {"Astrea"}, makeAstrea, parseAstrea},
        {"astrea-g", {}, DecoderKind::Hardware,
         "Greedy filtered MWPM pipeline for high Hamming weights, "
         "exhaustive below HW 10 (paper Secs. 6-7)",
         false, {"Astrea-G"}, makeAstreaG, parseAstreaG},
        {"mwpm", {"blossom"}, DecoderKind::Software,
         "Exact software MWPM via the blossom algorithm (the paper's "
         "accuracy baseline)",
         true, {"MWPM"}, makeMwpm, parseNone},
        {"union-find", {"uf"}, DecoderKind::Software,
         "Union-Find decoder (Delfosse-Nickerson), the AFS accuracy "
         "proxy; weighted growth optional",
         false, {"UF(AFS)", "UF-weighted"}, makeUnionFind,
         parseUnionFind},
        {"clique", {}, DecoderKind::Software,
         "Local predecoder committing trivial chains, software-MWPM "
         "fallback for the rest (Clique proxy)",
         false, {"Clique+MWPM"}, makeClique, parseNone},
        {"lut", {}, DecoderKind::Hardware,
         "Memoized-MWPM lookup table answering in one access "
         "(LILLIPUT proxy)",
         false, {"LUT(LILLIPUT)"}, makeLut, parseNone},
        {"greedy", {}, DecoderKind::Software,
         "Globally-greedy minimum-pair matcher (WIT-Greedy-style "
         "lower bar)",
         true, {"Greedy"}, makeGreedy, parseNone},
    };
    return table;
}

const Entry *
findEntry(const std::string &name)
{
    for (const Entry &e : entries()) {
        if (name == e.name)
            return &e;
        for (const char *alias : e.aliases) {
            if (name == alias)
                return &e;
        }
    }
    return nullptr;
}

} // namespace

const char *
decoderKindName(DecoderKind kind)
{
    switch (kind) {
      case DecoderKind::Hardware:
        return "hardware";
      case DecoderKind::Software:
        return "software";
      case DecoderKind::Wrapper:
        return "wrapper";
    }
    return "?";
}

const DecoderRegistry &
DecoderRegistry::global()
{
    static const DecoderRegistry registry;
    return registry;
}

std::vector<DecoderInfo>
DecoderRegistry::listDecoders() const
{
    std::vector<DecoderInfo> out;
    for (const Entry &e : entries()) {
        DecoderInfo info;
        info.name = e.name;
        for (const char *alias : e.aliases)
            info.aliases.push_back(alias);
        info.kind = e.kind;
        info.description = e.description;
        out.push_back(std::move(info));
    }
    // One wrapper variant per matching-reporting inner decoder.
    for (const Entry &e : entries()) {
        if (!e.reportsMatching)
            continue;
        DecoderInfo info;
        info.name = std::string(kWindowedPrefix) + e.name;
        info.kind = DecoderKind::Wrapper;
        info.description =
            std::string("Sliding-window streaming wrapper over ") +
            e.name + " (commit-region pair commits, carried defects)";
        out.push_back(std::move(info));
    }
    return out;
}

std::string
DecoderRegistry::canonicalName(const std::string &name) const
{
    if (hasWindowedPrefix(name)) {
        std::string inner =
            canonicalName(name.substr(std::string(kWindowedPrefix).size()));
        if (inner.empty() || hasWindowedPrefix(inner))
            return "";
        const Entry *e = findEntry(inner);
        if (e == nullptr || !e->reportsMatching)
            return "";
        return std::string(kWindowedPrefix) + inner;
    }
    if (const Entry *e = findEntry(name))
        return e->name;
    for (const Entry &e : entries()) {
        for (const char *display : e.displayNames) {
            if (name == display)
                return e.name;
        }
    }
    // "Windowed(<inner display name>)" round-trips WindowDecoder::name.
    const std::string open = "Windowed(";
    if (name.size() > open.size() + 1 && name.rfind(open, 0) == 0 &&
        name.back() == ')') {
        std::string inner = canonicalName(
            name.substr(open.size(), name.size() - open.size() - 1));
        if (!inner.empty() && !hasWindowedPrefix(inner)) {
            const Entry *e = findEntry(inner);
            if (e != nullptr && e->reportsMatching)
                return std::string(kWindowedPrefix) + inner;
        }
    }
    return "";
}

std::string
DecoderRegistry::knownNamesText() const
{
    std::string out;
    for (const DecoderInfo &info : listDecoders()) {
        if (!out.empty())
            out += ", ";
        out += info.name;
        for (const std::string &alias : info.aliases)
            out += "/" + alias;
    }
    return out;
}

std::unique_ptr<Decoder>
DecoderRegistry::make(const std::string &name,
                      const DecoderOptions &opts,
                      std::string *error_out) const
{
    const std::string canonical = canonicalName(name);
    if (canonical.empty()) {
        *error_out = "unknown decoder '" + name +
                     "' (known: " + knownNamesText() + ")";
        return nullptr;
    }
    if (hasWindowedPrefix(canonical)) {
        if (opts.gwt == nullptr || opts.detectorInfo == nullptr ||
            opts.totalRounds == 0 || opts.distance == 0) {
            *error_out = canonical +
                         " requires window context (gwt, detectorInfo, "
                         "totalRounds, distance)";
            return nullptr;
        }
        auto inner = make(
            canonical.substr(std::string(kWindowedPrefix).size()), opts,
            error_out);
        if (inner == nullptr)
            return nullptr;
        return makeWindowedDecoder(opts, std::move(inner));
    }
    return findEntry(canonical)->make(opts, error_out);
}

std::unique_ptr<Decoder>
DecoderRegistry::makeFromDescription(const std::string &display_name,
                                     const telemetry::JsonValue &config,
                                     const DecoderOptions &opts,
                                     std::string *error_out) const
{
    const std::string canonical = canonicalName(display_name);
    if (canonical.empty()) {
        *error_out = "cannot rebuild decoder \"" + display_name +
                     "\" (known: " + knownNamesText() + ")";
        return nullptr;
    }
    DecoderOptions o = opts;
    if (config.kind == telemetry::JsonValue::Object) {
        std::string base = canonical;
        if (hasWindowedPrefix(canonical)) {
            base = canonical.substr(std::string(kWindowedPrefix).size());
            o.streaming.windowRounds = static_cast<uint32_t>(
                config["window_rounds"].asUint(o.streaming.windowRounds));
            o.streaming.commitRounds = static_cast<uint32_t>(
                config["commit_rounds"].asUint(o.streaming.commitRounds));
        }
        findEntry(base)->parseConfig(config, o);
    }
    return make(canonical, o, error_out);
}

std::unique_ptr<Decoder>
makeWindowedDecoder(const DecoderOptions &opts,
                    std::unique_ptr<Decoder> inner)
{
    ASTREA_CHECK(opts.gwt != nullptr && opts.detectorInfo != nullptr &&
                     opts.totalRounds > 0 && opts.distance > 0,
                 "windowed decoder requires gwt, detector info, "
                 "totalRounds and distance");
    return std::make_unique<WindowDecoder>(
        *opts.gwt, *opts.detectorInfo, opts.totalRounds, opts.distance,
        std::move(inner), opts.streaming);
}

std::unique_ptr<Decoder>
makeDecoder(const std::string &name, const DecoderOptions &opts)
{
    std::string error;
    auto decoder = DecoderRegistry::global().make(name, opts, &error);
    if (decoder == nullptr)
        fatal("decoder registry: " + error);
    return decoder;
}

} // namespace astrea
