/**
 * @file
 * Union-Find decoder (Delfosse-Nickerson), the AFS accuracy proxy.
 *
 * The AFS decoder (paper Sec. 2.3.3) implements the Union-Find
 * algorithm in hardware; its accuracy characteristics come from the
 * algorithm, so this software implementation reproduces AFS's logical
 * error rates. Clusters of defects grow outward over the decoding
 * graph in half-edge steps; odd clusters keep growing until they merge
 * to even parity or absorb the boundary; a peeling pass then picks the
 * correction edges inside each grown cluster.
 */

#ifndef ASTREA_DECODERS_UNION_FIND_DECODER_HH
#define ASTREA_DECODERS_UNION_FIND_DECODER_HH

#include "decoders/decoder.hh"
#include "graph/decoding_graph.hh"

namespace astrea
{

/** Union-Find decoder options. */
struct UnionFindConfig
{
    /**
     * Weighted growth (Huang-Newman-Brown style): each edge's length
     * is proportional to its -log10 weight instead of one uniform
     * step, so clusters expand along likely error chains first. More
     * faithful to a weight-aware Union-Find; the unweighted default
     * matches the original Delfosse-Nickerson algorithm that AFS
     * implements.
     */
    bool weightedGrowth = false;
};

/** Union-Find decoder over a decoding graph. */
class UnionFindDecoder : public Decoder
{
  public:
    explicit UnionFindDecoder(const DecodingGraph &graph,
                              UnionFindConfig config = {});

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;

    std::string
    name() const override
    {
        return config_.weightedGrowth ? "UF-weighted" : "UF(AFS)";
    }

    void describeConfig(telemetry::JsonWriter &w) const override;

  private:
    /** DSU find with path halving. */
    uint32_t find(uint32_t v);
    /** Merge the clusters of a and b. */
    void unite(uint32_t a, uint32_t b);

    const DecodingGraph &graph_;
    UnionFindConfig config_;
    /** Boundary's node id in the DSU (== numNodes). */
    const uint32_t boundaryId_;
    /** Growth steps each edge needs before it is fully grown. */
    std::vector<uint16_t> edgeLength_;

    // Per-decode scratch state (sized once, reset per call).
    std::vector<uint32_t> parent_;
    std::vector<uint32_t> rank_;
    std::vector<uint8_t> parity_;    ///< Defect count mod 2 per root.
    std::vector<uint8_t> hasBoundary_;
    std::vector<uint16_t> growth_;   ///< Growth accumulated per edge.
    std::vector<uint8_t> defect_;    ///< Per-node defect flag.
};

} // namespace astrea

#endif // ASTREA_DECODERS_UNION_FIND_DECODER_HH
