/**
 * @file
 * Common decoder interface.
 *
 * A decoder receives the defects of one syndrome vector — the indices
 * of the flipped detectors across the d decoding rounds — and predicts
 * which logical observables the underlying physical errors flipped.
 * Decoding succeeds when the prediction matches the actual observable
 * flip of the shot; a mismatch is a logical error.
 *
 * Decoders also report a latency estimate per decode: hardware designs
 * (Astrea, Astrea-G, LUT) report modeled FPGA cycles at 250 MHz, while
 * software baselines (MWPM/Blossom) report measured wall-clock time.
 *
 * The hot path is batch-oriented and allocation-free: decodeInto()
 * writes into a caller-owned DecodeResult and draws every work buffer
 * from a caller-owned DecodeScratch, so a steady-state shot loop that
 * reuses both performs zero heap allocations (verified for the
 * hardware decoders by tests/alloc_test.cc). decode() remains as a
 * convenience shim that owns its result and scratch per call;
 * decodeBatch() amortizes virtual dispatch over a SyndromeBatch.
 */

#ifndef ASTREA_DECODERS_DECODER_HH
#define ASTREA_DECODERS_DECODER_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hh"

namespace astrea
{

/** FPGA clock assumed by all hardware latency models (paper Sec. 5.4). */
constexpr double kFpgaClockGHz = 0.25;

/** Convert modeled hardware cycles to nanoseconds at 250 MHz. */
inline double
cyclesToNs(uint64_t cycles)
{
    return static_cast<double>(cycles) / kFpgaClockGHz;
}

/** Outcome of decoding one syndrome vector. */
struct DecodeResult
{
    /** Predicted logical-observable flips. */
    uint64_t obsMask = 0;
    /** True if the decoder could not process the syndrome (e.g. Astrea
     *  on Hamming weight > 10); obsMask is 0 in that case. */
    bool gaveUp = false;
    /** Latency estimate in nanoseconds (modeled or measured). */
    double latencyNs = 0.0;
    /** Modeled hardware cycles (0 for software decoders). */
    uint64_t cycles = 0;
    /** Total weight of the chosen matching, in decades; 0 if none. */
    double matchingWeight = 0.0;
    /**
     * The matching itself, as indices into the decode() defects
     * argument; -1 denotes the boundary. Filled by decoders that
     * expose their pairings (MWPM, Astrea, greedy) — consumers such as
     * the sliding-window streaming decoder need pair-level commits,
     * not just the aggregate observable flip. Pairs resolved "through
     * the boundary" are still reported as (i, j).
     */
    std::vector<std::pair<int32_t, int32_t>> matchedPairs;

    /** Clear for reuse, keeping matchedPairs' capacity. */
    void
    reset()
    {
        obsMask = 0;
        gaveUp = false;
        latencyNs = 0.0;
        cycles = 0;
        matchingWeight = 0.0;
        matchedPairs.clear();
    }
};

/**
 * Caller-owned reusable work buffers for decodeInto().
 *
 * One scratch serves one decoder instance at a time (no sharing across
 * threads); reusing the same scratch across calls is what makes the
 * steady state allocation-free. Decoder-specific state lives in typed
 * extension slots: a decoder defines a private struct deriving from
 * DecodeScratch::Ext and fetches it with ext<T>(), which creates the
 * slot on first use and returns the same instance afterwards. Slots
 * are keyed by type, so a delegating decoder (Astrea-G embedding
 * Astrea) and its delegate coexist in one scratch without thrashing.
 * Wrapper decoders (the sliding window) use inner() for the scratch
 * their inner decoder runs against.
 */
class DecodeScratch
{
  public:
    /** Base of every decoder-specific extension slot. */
    struct Ext
    {
        virtual ~Ext() = default;
    };

    DecodeScratch() = default;
    DecodeScratch(const DecodeScratch &) = delete;
    DecodeScratch &operator=(const DecodeScratch &) = delete;

    /** The slot of type T, created on first use. */
    template <class T>
    T &
    ext()
    {
        for (auto &e : exts_) {
            if (T *p = dynamic_cast<T *>(e.get()))
                return *p;
        }
        exts_.push_back(std::make_unique<T>());
        return static_cast<T &>(*exts_.back());
    }

    /** Nested scratch for wrapper decoders' inner decoder. */
    DecodeScratch &inner();

    /** Shared defect staging buffer (LUT keys, window assembly). */
    std::vector<uint32_t> defects;

  private:
    std::vector<std::unique_ptr<Ext>> exts_;
    std::unique_ptr<DecodeScratch> inner_;
};

/**
 * A flattened batch of syndromes: all defect lists concatenated, with
 * an offsets table. clear() + add() reuse capacity, so staging shots
 * through a long-lived batch allocates nothing at steady state.
 */
class SyndromeBatch
{
  public:
    SyndromeBatch() { offsets_.push_back(0); }

    void
    clear()
    {
        defects_.clear();
        offsets_.clear();
        offsets_.push_back(0);
    }

    /** Append one shot's defect list. */
    void
    add(std::span<const uint32_t> defects)
    {
        defects_.insert(defects_.end(), defects.begin(), defects.end());
        offsets_.push_back(defects_.size());
    }

    /** Number of shots in the batch. */
    size_t size() const { return offsets_.size() - 1; }

    bool empty() const { return size() == 0; }

    /** Shot i's defect list. */
    std::span<const uint32_t>
    at(size_t i) const
    {
        return {defects_.data() + offsets_[i],
                offsets_[i + 1] - offsets_[i]};
    }

    /** Shot i's Hamming weight. */
    size_t hw(size_t i) const { return offsets_[i + 1] - offsets_[i]; }

  private:
    std::vector<uint32_t> defects_;
    std::vector<size_t> offsets_;
};

/** Abstract decoder. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one syndrome vector into a caller-owned result.
     *
     * @param defects Indices of flipped detectors, strictly increasing.
     * @param out Overwritten with the outcome (reset() first).
     * @param scratch Reusable work buffers; pass the same scratch on
     *        every call to keep the steady state allocation-free.
     */
    virtual void decodeInto(std::span<const uint32_t> defects,
                            DecodeResult &out,
                            DecodeScratch &scratch) = 0;

    /**
     * Decode every shot of a batch. results is resized up (never down)
     * to batch.size(); entry i holds shot i's outcome. The default
     * implementation loops decodeInto(); decoders with cross-shot
     * amortization opportunities may override.
     */
    virtual void decodeBatch(const SyndromeBatch &batch,
                             std::vector<DecodeResult> &results,
                             DecodeScratch &scratch);

    /**
     * Single-shot convenience shim over decodeInto() that owns its
     * result and scratch. Allocates per call; hot loops should hold a
     * DecodeResult + DecodeScratch and call decodeInto() directly.
     */
    DecodeResult decode(const std::vector<uint32_t> &defects);

    virtual std::string name() const = 0;

    /**
     * Emit the decoder's configuration as key/value pairs into an
     * already-open JSON object. The flight recorder embeds this in
     * capture files so `astrea_cli replay` can reconstruct an
     * identically-configured decoder through the DecoderRegistry;
     * decoders whose behavior is fully determined by their name may
     * emit nothing.
     */
    virtual void
    describeConfig(telemetry::JsonWriter &w) const
    {
        (void)w;
    }
};

} // namespace astrea

#endif // ASTREA_DECODERS_DECODER_HH
