/**
 * @file
 * Common decoder interface.
 *
 * A decoder receives the defects of one syndrome vector — the indices
 * of the flipped detectors across the d decoding rounds — and predicts
 * which logical observables the underlying physical errors flipped.
 * Decoding succeeds when the prediction matches the actual observable
 * flip of the shot; a mismatch is a logical error.
 *
 * Decoders also report a latency estimate per decode: hardware designs
 * (Astrea, Astrea-G, LUT) report modeled FPGA cycles at 250 MHz, while
 * software baselines (MWPM/Blossom) report measured wall-clock time.
 */

#ifndef ASTREA_DECODERS_DECODER_HH
#define ASTREA_DECODERS_DECODER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace astrea
{

/** FPGA clock assumed by all hardware latency models (paper Sec. 5.4). */
constexpr double kFpgaClockGHz = 0.25;

/** Convert modeled hardware cycles to nanoseconds at 250 MHz. */
inline double
cyclesToNs(uint64_t cycles)
{
    return static_cast<double>(cycles) / kFpgaClockGHz;
}

/** Outcome of decoding one syndrome vector. */
struct DecodeResult
{
    /** Predicted logical-observable flips. */
    uint64_t obsMask = 0;
    /** True if the decoder could not process the syndrome (e.g. Astrea
     *  on Hamming weight > 10); obsMask is 0 in that case. */
    bool gaveUp = false;
    /** Latency estimate in nanoseconds (modeled or measured). */
    double latencyNs = 0.0;
    /** Modeled hardware cycles (0 for software decoders). */
    uint64_t cycles = 0;
    /** Total weight of the chosen matching, in decades; 0 if none. */
    double matchingWeight = 0.0;
    /**
     * The matching itself, as indices into the decode() defects
     * argument; -1 denotes the boundary. Filled by decoders that
     * expose their pairings (MWPM, Astrea, greedy) — consumers such as
     * the sliding-window streaming decoder need pair-level commits,
     * not just the aggregate observable flip. Pairs resolved "through
     * the boundary" are still reported as (i, j).
     */
    std::vector<std::pair<int32_t, int32_t>> matchedPairs;
};

/** Abstract decoder. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one syndrome vector.
     *
     * @param defects Indices of flipped detectors, strictly increasing.
     */
    virtual DecodeResult decode(const std::vector<uint32_t> &defects) = 0;

    virtual std::string name() const = 0;

    /**
     * Emit the decoder's configuration as key/value pairs into an
     * already-open JSON object. The flight recorder embeds this in
     * capture files so `astrea_cli replay` can reconstruct an
     * identically-configured decoder; decoders whose behavior is
     * fully determined by their name may emit nothing.
     */
    virtual void
    describeConfig(telemetry::JsonWriter &w) const
    {
        (void)w;
    }
};

} // namespace astrea

#endif // ASTREA_DECODERS_DECODER_HH
