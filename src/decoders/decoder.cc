#include "decoders/decoder.hh"

// The interface is header-only; this translation unit exists to anchor
// the vtable of Decoder in one object file.

namespace astrea
{
} // namespace astrea
