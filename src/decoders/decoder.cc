#include "decoders/decoder.hh"

#include "telemetry/decode_trace.hh"

namespace astrea
{

DecodeScratch &
DecodeScratch::inner()
{
    if (!inner_)
        inner_ = std::make_unique<DecodeScratch>();
    return *inner_;
}

void
Decoder::decodeBatch(const SyndromeBatch &batch,
                     std::vector<DecodeResult> &results,
                     DecodeScratch &scratch)
{
    // Resize up only: shrinking would free matchedPairs capacity the
    // next, larger batch wants back.
    if (results.size() < batch.size())
        results.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        telemetry::traceShotBegin(static_cast<uint32_t>(i));
        decodeInto(batch.at(i), results[i], scratch);
    }
}

DecodeResult
Decoder::decode(const std::vector<uint32_t> &defects)
{
    DecodeResult result;
    DecodeScratch scratch;
    decodeInto(defects, result, scratch);
    return result;
}

} // namespace astrea
