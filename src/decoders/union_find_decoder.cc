#include "decoders/union_find_decoder.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"

namespace astrea
{

UnionFindDecoder::UnionFindDecoder(const DecodingGraph &graph,
                                   UnionFindConfig config)
    : graph_(graph), config_(config), boundaryId_(graph.numNodes()),
      parent_(graph.numNodes() + 1), rank_(graph.numNodes() + 1),
      parity_(graph.numNodes() + 1), hasBoundary_(graph.numNodes() + 1),
      growth_(graph.edges().size()), defect_(graph.numNodes() + 1)
{
    // Edge lengths: 2 half-steps for unweighted growth; proportional
    // to the decade weight (2 steps per decade, clamped) for weighted
    // growth so low-weight edges fill first.
    edgeLength_.reserve(graph.edges().size());
    for (const auto &e : graph.edges()) {
        if (!config_.weightedGrowth) {
            edgeLength_.push_back(2);
        } else {
            double steps = std::max(1.0, std::round(e.weight * 2.0));
            edgeLength_.push_back(static_cast<uint16_t>(
                std::min(steps, 255.0)));
        }
    }
}

uint32_t
UnionFindDecoder::find(uint32_t v)
{
    while (parent_[v] != v) {
        parent_[v] = parent_[parent_[v]];
        v = parent_[v];
    }
    return v;
}

void
UnionFindDecoder::unite(uint32_t a, uint32_t b)
{
    uint32_t ra = find(a), rb = find(b);
    if (ra == rb)
        return;
    if (rank_[ra] < rank_[rb])
        std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb])
        rank_[ra]++;
    parity_[ra] ^= parity_[rb];
    hasBoundary_[ra] |= hasBoundary_[rb];
}

void
UnionFindDecoder::describeConfig(telemetry::JsonWriter &w) const
{
    w.kv("weighted_growth", config_.weightedGrowth);
}

void
UnionFindDecoder::decodeInto(std::span<const uint32_t> defects,
                             DecodeResult &result,
                             DecodeScratch &scratch)
{
    (void)scratch;  // Growth/peeling buffers are per-instance members.
    result.reset();
    if (defects.empty())
        return;
    auto t0 = std::chrono::steady_clock::now();

    const uint32_t n = graph_.numNodes();

    // Reset scratch state. The graphs here are small (<= ~400 nodes),
    // so a dense reset per decode is cheap enough.
    for (uint32_t v = 0; v <= n; v++) {
        parent_[v] = v;
        rank_[v] = 0;
        parity_[v] = 0;
        hasBoundary_[v] = 0;
        defect_[v] = 0;
    }
    std::fill(growth_.begin(), growth_.end(), 0);
    hasBoundary_[boundaryId_] = 1;

    // Seed clusters with the defects. in_cluster tracks which vertices
    // already belong to some cluster's vertex list.
    std::vector<uint8_t> in_cluster(n + 1, 0);
    for (auto d : defects) {
        defect_[d] = 1;
        parity_[d] = 1;
        in_cluster[d] = 1;
    }

    // Cluster vertex lists, keyed by DSU root. verts[r] is only valid
    // while r is a root; merged lists are appended to the winner.
    std::vector<std::vector<uint32_t>> verts(n + 1);
    for (auto d : defects)
        verts[d].push_back(d);

    std::vector<uint32_t> grown_edges;

    // Growth loop: every active (odd, boundary-free) cluster grows all
    // its frontier edges by a half step; fully grown edges merge.
    size_t round_guard = 0;
    while (true) {
        ASTREA_CHECK(++round_guard < 512u * (n + 2),
                     "union-find growth did not converge");

        // Snapshot the active roots.
        std::vector<uint32_t> active;
        for (auto d : defects) {
            uint32_t r = find(d);
            if (parity_[r] && !hasBoundary_[r] &&
                std::find(active.begin(), active.end(), r) ==
                    active.end()) {
                active.push_back(r);
            }
        }
        if (active.empty())
            break;

        std::vector<std::pair<uint32_t, uint32_t>> merges;
        for (auto r : active) {
            // Iterate the snapshot of this round's vertices; vertices
            // appended below only grow from the next round on.
            const size_t frontier_size = verts[r].size();
            for (size_t vi = 0; vi < frontier_size; vi++) {
                uint32_t v = verts[r][vi];
                for (auto [edge_idx, other] : graph_.neighbors(v)) {
                    if (growth_[edge_idx] >= edgeLength_[edge_idx])
                        continue;
                    if (++growth_[edge_idx] ==
                        edgeLength_[edge_idx]) {
                        grown_edges.push_back(edge_idx);
                        uint32_t o = (other == kBoundaryNode)
                                         ? boundaryId_
                                         : other;
                        merges.push_back({v, o});
                        // A newly reached vertex joins this cluster's
                        // vertex list so later rounds grow from the
                        // enlarged frontier.
                        if (o != boundaryId_ && !in_cluster[o]) {
                            in_cluster[o] = 1;
                            verts[r].push_back(o);
                        }
                    }
                }
            }
        }
        for (auto [a, b] : merges) {
            uint32_t ra = find(a), rb = find(b);
            if (ra == rb)
                continue;
            unite(a, b);
            uint32_t rw = find(a);
            uint32_t rl = (rw == ra) ? rb : ra;
            if (rl != rw) {
                verts[rw].insert(verts[rw].end(), verts[rl].begin(),
                                 verts[rl].end());
                verts[rl].clear();
            }
        }
    }

    // Peeling: build a spanning forest of the grown edges, rooted at
    // the boundary where possible, and peel charges from the leaves.
    std::sort(grown_edges.begin(), grown_edges.end());
    grown_edges.erase(std::unique(grown_edges.begin(), grown_edges.end()),
                      grown_edges.end());

    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adj(n + 1);
    for (auto e : grown_edges) {
        const GraphEdge &ge = graph_.edges()[e];
        uint32_t u = ge.u;
        uint32_t v = (ge.v == kBoundaryNode) ? boundaryId_ : ge.v;
        adj[u].push_back({e, v});
        adj[v].push_back({e, u});
    }

    std::vector<uint8_t> visited(n + 1, 0);
    std::vector<uint8_t> charge(n + 1, 0);
    for (uint32_t v = 0; v <= n; v++)
        charge[v] = (v < n) ? defect_[v] : 0;

    auto peel_component = [&](uint32_t root) {
        if (visited[root] || adj[root].empty())
            return;
        // BFS spanning tree.
        std::vector<uint32_t> order{root};
        std::vector<int32_t> tree_edge(n + 1, -1);
        std::vector<uint32_t> tree_parent(n + 1, 0);
        visited[root] = 1;
        for (size_t qi = 0; qi < order.size(); qi++) {
            uint32_t u = order[qi];
            for (auto [e, w] : adj[u]) {
                if (visited[w])
                    continue;
                visited[w] = 1;
                tree_edge[w] = static_cast<int32_t>(e);
                tree_parent[w] = u;
                order.push_back(w);
            }
        }
        // Peel leaves first (reverse BFS order).
        for (size_t qi = order.size(); qi-- > 1;) {
            uint32_t v = order[qi];
            if (!charge[v])
                continue;
            const GraphEdge &ge = graph_.edges()[tree_edge[v]];
            result.obsMask ^= ge.obsMask;
            result.matchingWeight += ge.weight;
            charge[v] = 0;
            charge[tree_parent[v]] ^= 1;
        }
        // Leftover charge is legal only at the boundary.
        ASTREA_CHECK(root == boundaryId_ || charge[root] == 0,
                     "union-find peeling left an unmatched defect");
        charge[root] = 0;
    };

    peel_component(boundaryId_);
    for (auto e : grown_edges) {
        peel_component(graph_.edges()[e].u);
        const GraphEdge &ge = graph_.edges()[e];
        if (ge.v != kBoundaryNode)
            peel_component(ge.v);
    }

    auto t1 = std::chrono::steady_clock::now();
    result.latencyNs =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
}

} // namespace astrea
