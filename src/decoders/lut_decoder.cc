#include "decoders/lut_decoder.hh"

namespace astrea
{

void
LutDecoder::decodeInto(std::span<const uint32_t> defects,
                       DecodeResult &result, DecodeScratch &scratch)
{
    result.reset();
    if (defects.empty())
        return;

    // A hardware LUT answers in one access regardless of contents.
    result.cycles = 1;
    result.latencyNs = cyclesToNs(result.cycles);

    auto it = table_.find(defects);
    if (it == table_.end()) {
        // First sight: compute the entry the table would have been
        // programmed with. Misses allocate (the table owns a copy of
        // the key); a warmed-up table decodes allocation-free.
        DecodeResult exact;
        oracle_.decodeInto(defects, exact, scratch);
        it = table_
                 .emplace(std::vector<uint32_t>(defects.begin(),
                                                defects.end()),
                          std::make_pair(exact.obsMask,
                                         exact.matchingWeight))
                 .first;
    }
    result.obsMask = it->second.first;
    result.matchingWeight = it->second.second;
}

} // namespace astrea
