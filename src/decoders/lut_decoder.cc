#include "decoders/lut_decoder.hh"

namespace astrea
{

DecodeResult
LutDecoder::decode(const std::vector<uint32_t> &defects)
{
    DecodeResult result;
    if (defects.empty())
        return result;

    // A hardware LUT answers in one access regardless of contents.
    result.cycles = 1;
    result.latencyNs = cyclesToNs(result.cycles);

    auto it = table_.find(defects);
    if (it == table_.end()) {
        // First sight: compute the entry the table would have been
        // programmed with.
        DecodeResult exact = oracle_.decode(defects);
        it = table_
                 .emplace(defects, std::make_pair(exact.obsMask,
                                                  exact.matchingWeight))
                 .first;
    }
    result.obsMask = it->second.first;
    result.matchingWeight = it->second.second;
    return result;
}

} // namespace astrea
