/**
 * @file
 * Bounded lock-free MPMC queue for audit samples.
 *
 * The accuracy auditor (audit/auditor.hh) snapshots a fraction of live
 * decodes off the hot path. The producers are the decode workers, so
 * the queue must never block and never allocate: it is a fixed-size
 * ring of inline AuditSample slots with per-slot sequence counters
 * (Vyukov's bounded MPMC design). tryPush() on a full queue fails
 * immediately — the caller counts the drop and moves on — and tryPop()
 * on an empty queue likewise. All storage is allocated once at
 * construction; steady-state enqueue/dequeue touch no allocator.
 */

#ifndef ASTREA_AUDIT_AUDIT_QUEUE_HH
#define ASTREA_AUDIT_AUDIT_QUEUE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

namespace astrea
{

/**
 * Largest defect count an audit sample can carry inline. Matches the
 * Astrea-G pipeline cap (maxDefects = 63): shots beyond it gave up in
 * production anyway and are counted as oversize drops by the auditor.
 */
constexpr uint32_t kAuditMaxDefects = 64;

/** One sampled decode, copied by value into the queue. */
struct AuditSample
{
    uint64_t shot = 0;
    uint32_t worker = 0;
    uint32_t hw = 0;  ///< Number of valid entries in defects.
    uint64_t prodObs = 0;    ///< Production decoder's predicted flips.
    uint64_t actualObs = 0;  ///< Ground-truth flips.
    double prodWeight = 0.0; ///< Production matching weight (decades).
    double latencyNs = 0.0;  ///< Production decode latency.
    uint64_t cycles = 0;     ///< Production modeled hardware cycles.
    bool gaveUp = false;
    /** Tail-sampling trace id of the decode; 0 = not traced. */
    uint64_t traceId = 0;
    std::array<uint32_t, kAuditMaxDefects> defects{};
};

/** Fixed-capacity lock-free MPMC ring; see file comment. */
class AuditQueue
{
  public:
    /** Capacity is rounded up to a power of two (min 2). */
    explicit AuditQueue(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (size_t i = 0; i < cap; i++)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    AuditQueue(const AuditQueue &) = delete;
    AuditQueue &operator=(const AuditQueue &) = delete;

    /** Enqueue a copy of s; false (without blocking) when full. */
    bool
    tryPush(const AuditSample &s)
    {
        uint64_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            uint64_t seq = cell.seq.load(std::memory_order_acquire);
            intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos);
            if (diff == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.sample = s;
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false;  // Full.
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Dequeue into out; false when empty. */
    bool
    tryPop(AuditSample &out)
    {
        uint64_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            uint64_t seq = cell.seq.load(std::memory_order_acquire);
            intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos + 1);
            if (diff == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    out = cell.sample;
                    cell.seq.store(pos + mask_ + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false;  // Empty.
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    size_t capacity() const { return mask_ + 1; }

    /** Approximate occupancy (racy; for gauges only). */
    size_t
    sizeApprox() const
    {
        uint64_t head = head_.load(std::memory_order_relaxed);
        uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (head <= tail)
            return 0;
        uint64_t n = head - tail;
        return n > capacity() ? capacity() : static_cast<size_t>(n);
    }

  private:
    struct Cell
    {
        std::atomic<uint64_t> seq{0};
        AuditSample sample;
    };

    std::unique_ptr<Cell[]> cells_;
    size_t mask_ = 0;
    alignas(64) std::atomic<uint64_t> head_{0};  ///< Next push slot.
    alignas(64) std::atomic<uint64_t> tail_{0};  ///< Next pop slot.
};

} // namespace astrea

#endif // ASTREA_AUDIT_AUDIT_QUEUE_HH
