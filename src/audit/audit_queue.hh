/**
 * @file
 * Bounded lock-free queue of audit samples.
 *
 * The accuracy auditor (audit/auditor.hh) snapshots a fraction of live
 * decodes off the hot path. The producers are the decode workers, so
 * the queue must never block and never allocate: it is a fixed-size
 * ring of inline AuditSample slots with per-slot sequence counters
 * (Vyukov's bounded MPMC design, shared with the decode fleet's shard
 * queues via common/mpsc_ring.hh). tryPush() on a full queue fails
 * immediately — the caller counts the drop and moves on — and tryPop()
 * on an empty queue likewise. All storage is allocated once at
 * construction; steady-state enqueue/dequeue touch no allocator.
 */

#ifndef ASTREA_AUDIT_AUDIT_QUEUE_HH
#define ASTREA_AUDIT_AUDIT_QUEUE_HH

#include <array>
#include <cstdint>

#include "common/mpsc_ring.hh"

namespace astrea
{

/**
 * Largest defect count an audit sample can carry inline. Matches the
 * Astrea-G pipeline cap (maxDefects = 63): shots beyond it gave up in
 * production anyway and are counted as oversize drops by the auditor.
 */
constexpr uint32_t kAuditMaxDefects = 64;

/** One sampled decode, copied by value into the queue. */
struct AuditSample
{
    uint64_t shot = 0;
    uint32_t worker = 0;
    uint32_t hw = 0;  ///< Number of valid entries in defects.
    uint64_t prodObs = 0;    ///< Production decoder's predicted flips.
    uint64_t actualObs = 0;  ///< Ground-truth flips.
    double prodWeight = 0.0; ///< Production matching weight (decades).
    double latencyNs = 0.0;  ///< Production decode latency.
    uint64_t cycles = 0;     ///< Production modeled hardware cycles.
    bool gaveUp = false;
    /** Tail-sampling trace id of the decode; 0 = not traced. */
    uint64_t traceId = 0;
    std::array<uint32_t, kAuditMaxDefects> defects{};
};

/** Fixed-capacity lock-free ring of samples; see file comment. */
using AuditQueue = MpscRing<AuditSample>;

} // namespace astrea

#endif // ASTREA_AUDIT_AUDIT_QUEUE_HH
