/**
 * @file
 * Online accuracy auditor: shadow re-decoding against an exact oracle.
 *
 * The serve/telemetry stack observes latency, throughput and drift,
 * but nothing in production says whether the decoder's matchings are
 * actually *optimal*. The auditor closes that gap on live traffic: a
 * configurable fraction of decodes is sampled off the hot path into a
 * bounded lock-free queue (audit/audit_queue.hh) and re-decoded on a
 * background pool against a reference oracle —
 *
 *   - the exact bitmask-DP matcher (matching/dp_matcher.hh) for
 *     Hamming weights up to dpMaxHw (<= 20), and
 *   - blossom MWPM (matching/blossom.hh) with per-defect boundary
 *     copies above that —
 *
 * in the production decoder's own weight domain (quantized 1/8-decade
 * GWT weights for the hardware decoders, exact decade weights for the
 * software baseline). Each audited shot is classified as
 *
 *   optimal             production weight == oracle weight,
 *   suboptimal          weight gap > 0 but same logical correction,
 *   observable-mismatch different logical correction than the oracle,
 *
 * and give-ups sampled for audit are always oracle-decoded so the
 * report can distinguish recoverable give-ups from shots the oracle
 * also gets wrong. Observable-mismatches trigger a flight-recorder
 * capture (telemetry/flight_recorder.hh) for replay forensics.
 *
 * Hot-path contract: offer() is one relaxed fetch_add when the shot is
 * not sampled, and a bounded-queue copy with drop-not-block semantics
 * when it is; it never blocks and never allocates (tests/alloc_test.cc
 * asserts zero steady-state allocations on the enqueue path).
 *
 * Knobs (common/env.hh): ASTREA_AUDIT_RATE, ASTREA_AUDIT_THREADS,
 * ASTREA_AUDIT_QUEUE, ASTREA_AUDIT_DP_MAX_HW, ASTREA_AUDIT_EXACT.
 */

#ifndef ASTREA_AUDIT_AUDITOR_HH
#define ASTREA_AUDIT_AUDITOR_HH

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "audit/audit_queue.hh"
#include "decoders/decoder.hh"
#include "graph/weight_table.hh"
#include "telemetry/json.hh"
#include "telemetry/prometheus.hh"

namespace astrea
{

/** Static auditor configuration. */
struct AuditConfig
{
    /** Fraction of nontrivial decodes audited; 0 disables. */
    double sampleRate = 0.0;
    /** Bounded queue capacity (rounded up to a power of two). */
    size_t queueCapacity = 1024;
    /** Background audit pool size. */
    unsigned threads = 1;
    /** Use the bitmask DP oracle up to this HW (clamped to 20). */
    uint32_t dpMaxHw = 16;
    /**
     * Oracle weight domain: true re-decodes over the quantized
     * 1/8-decade GWT weights (what the hardware decoders optimize),
     * false over the exact decade weights (the software baseline).
     */
    bool quantizedWeights = true;
    /** Dump a flight-recorder capture on observable-mismatch. */
    bool captureMismatches = true;

    /** Overlay ASTREA_AUDIT_* environment knobs onto base. */
    static AuditConfig fromEnv(AuditConfig base);
    static AuditConfig fromEnv();
};

/** Gap histogram geometry: 1/8-decade bins 0..31, then overflow. */
constexpr size_t kAuditGapBuckets = 33;

/** Shadow re-decoding auditor; see file comment. */
class AccuracyAuditor
{
  public:
    /**
     * @param gwt Weight table the oracle decodes against; must stay
     *        alive for the auditor's lifetime (or pass keepalive).
     * @param config Static knobs; sampleRate <= 0 disables sampling.
     * @param keepalive Optional owner of gwt (e.g. the experiment
     *        context), pinned for the auditor's lifetime.
     */
    AccuracyAuditor(const GlobalWeightTable &gwt,
                    const AuditConfig &config,
                    std::shared_ptr<const void> keepalive = nullptr);
    ~AccuracyAuditor();

    bool enabled() const { return stride_ > 0; }
    const AuditConfig &config() const { return config_; }

    /**
     * Hot-path sampling hook: decide whether this decode is audited
     * (deterministic 1-in-stride sampling; give-ups are always taken)
     * and, if so, copy it into the queue. Never blocks or allocates;
     * returns true when the shot was enqueued. A nonzero trace_id
     * rides along so the verdict can annotate the kept trace
     * (telemetry/trace_store.hh) when the audit completes.
     */
    bool offer(uint64_t shot, uint32_t worker,
               std::span<const uint32_t> defects,
               const DecodeResult &result, uint64_t actual_obs,
               uint64_t trace_id = 0);

    /** Launch the background audit pool (no-op when disabled). */
    void start();
    /** Stop the pool and drain everything still queued. */
    void stop();
    /** Synchronously audit queued samples here; returns count. */
    size_t drainNow();

    /**
     * Swap the weight table (e.g. the serve workload was reconfigured
     * mid-run): stops the pool, drains outstanding samples against the
     * old table, rebinds, restarts. Counters carry over.
     */
    void rebind(const GlobalWeightTable &gwt,
                std::shared_ptr<const void> keepalive = nullptr);

    /** One oracle re-decode (exposed for tests and replay). */
    struct Oracle
    {
        double weight = 0.0;
        uint64_t obsMask = 0;
        bool usedDp = false;  ///< DP oracle vs blossom fallback.
    };
    Oracle oracleDecode(std::span<const uint32_t> defects) const;

    /** Point-in-time copy of every audit counter. */
    struct Snapshot
    {
        uint64_t offered = 0;   ///< offer() calls seen.
        uint64_t sampled = 0;   ///< Selected for audit (incl. drops).
        uint64_t enqueued = 0;
        uint64_t completed = 0;
        uint64_t queueDrops = 0;
        uint64_t oversizeDrops = 0;
        uint64_t optimal = 0;
        uint64_t suboptimal = 0;
        uint64_t observableMismatches = 0;
        uint64_t weightUnderruns = 0;
        uint64_t giveUpsOffered = 0;
        uint64_t giveUpsAudited = 0;
        uint64_t giveUpOracleSuccess = 0;
        uint64_t dpDecodes = 0;
        uint64_t mwpmDecodes = 0;
        uint64_t captures = 0;
        size_t queueDepth = 0;
        size_t queueCapacity = 0;

        struct HwStats
        {
            uint64_t audited = 0;
            uint64_t optimal = 0;
        };
        std::array<HwStats, kAuditMaxDefects + 1> byHw{};

        std::array<uint64_t, kAuditGapBuckets> gapBuckets{};
        double gapSumDecades = 0.0;
        uint64_t gapCount = 0;

        /** Overall match-optimality rate over classified audits. */
        double optimalityRate() const;
        /** Fraction of offered give-ups that were oracle-decoded. */
        double giveUpCoverage() const;
    };
    Snapshot snapshot() const;

    /** Append astrea_audit_* families to a /metrics exposition. */
    void writeMetrics(telemetry::PrometheusWriter &w) const;
    /** Write the /statusz "audit" object's key/value pairs into an
     *  already-open JSON object. */
    void writeStatusz(telemetry::JsonWriter &w) const;

  private:
    void auditOne(const AuditSample &s);
    /** Returns the flight-recorder capture seq (0 = no capture). */
    uint64_t captureMismatch(const AuditSample &s,
                             const Oracle &oracle);
    double pairWeight(uint32_t a, uint32_t b) const;

    AuditConfig config_;
    const GlobalWeightTable *gwt_;
    std::shared_ptr<const void> keepalive_;
    uint64_t stride_ = 0;  ///< Audit every stride-th shot; 0 = off.
    double weightTol_ = 1e-9;

    std::unique_ptr<AuditQueue> queue_;
    std::vector<std::thread> pool_;
    std::atomic<bool> running_{false};

    std::atomic<uint64_t> offered_{0};
    std::atomic<uint64_t> sampled_{0};
    std::atomic<uint64_t> enqueued_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> queueDrops_{0};
    std::atomic<uint64_t> oversizeDrops_{0};
    std::atomic<uint64_t> optimal_{0};
    std::atomic<uint64_t> suboptimal_{0};
    std::atomic<uint64_t> observableMismatches_{0};
    std::atomic<uint64_t> weightUnderruns_{0};
    std::atomic<uint64_t> giveUpsOffered_{0};
    std::atomic<uint64_t> giveUpsAudited_{0};
    std::atomic<uint64_t> giveUpOracleSuccess_{0};
    std::atomic<uint64_t> dpDecodes_{0};
    std::atomic<uint64_t> mwpmDecodes_{0};
    std::atomic<uint64_t> captures_{0};

    struct HwCell
    {
        std::atomic<uint64_t> audited{0};
        std::atomic<uint64_t> optimal{0};
    };
    std::array<HwCell, kAuditMaxDefects + 1> byHw_;

    std::array<std::atomic<uint64_t>, kAuditGapBuckets> gapBuckets_;
    std::atomic<uint64_t> gapSumMilli_{0};  ///< Gap sum, millidecades.
    std::atomic<uint64_t> gapCount_{0};
};

} // namespace astrea

#endif // ASTREA_AUDIT_AUDITOR_HH
