#include "audit/auditor.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/weight.hh"
#include "matching/blossom.hh"
#include "matching/dp_matcher.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/trace_store.hh"

namespace astrea
{

namespace
{

/** Largest HW the bitmask DP oracle can take (dp_matcher.hh). */
constexpr uint32_t kDpHardCap = 20;

/** Fixed-point scale for exact decade weights in the blossom oracle. */
constexpr double kExactScale = 1e6;

/** Blossom weight for structurally forbidden pairs. */
constexpr int64_t kForbidden = 1ll << 40;

int64_t
scaleExact(double decades)
{
    if (!std::isfinite(decades))
        return kForbidden;
    int64_t w = static_cast<int64_t>(std::llround(decades * kExactScale));
    return w < kForbidden ? w : kForbidden;
}

} // namespace

AuditConfig
AuditConfig::fromEnv(AuditConfig base)
{
    base.sampleRate = env::getDouble("ASTREA_AUDIT_RATE",
                                     base.sampleRate);
    base.queueCapacity = static_cast<size_t>(env::getUint(
        "ASTREA_AUDIT_QUEUE", base.queueCapacity, 2));
    base.threads = static_cast<unsigned>(env::getUint(
        "ASTREA_AUDIT_THREADS", base.threads, 1));
    base.dpMaxHw = static_cast<uint32_t>(env::getUint(
        "ASTREA_AUDIT_DP_MAX_HW", base.dpMaxHw, 0));
    if (env::getBool("ASTREA_AUDIT_EXACT", !base.quantizedWeights))
        base.quantizedWeights = false;
    return base;
}

AuditConfig
AuditConfig::fromEnv()
{
    return fromEnv(AuditConfig{});
}

AccuracyAuditor::AccuracyAuditor(const GlobalWeightTable &gwt,
                                 const AuditConfig &config,
                                 std::shared_ptr<const void> keepalive)
    : config_(config), gwt_(&gwt), keepalive_(std::move(keepalive))
{
    config_.dpMaxHw = std::min(config_.dpMaxHw, kDpHardCap);
    config_.threads = std::max(1u, config_.threads);
    if (config_.sampleRate > 0.0) {
        stride_ = config_.sampleRate >= 1.0
                      ? 1
                      : static_cast<uint64_t>(
                            std::llround(1.0 / config_.sampleRate));
        stride_ = std::max<uint64_t>(1, stride_);
        queue_ = std::make_unique<AuditQueue>(config_.queueCapacity);
    }
    // Quantized sums are multiples of 1/8 decade and exactly
    // representable, so equality needs no slack; exact decade sums go
    // through llround(1e6 *) fixed point in the MWPM baseline, so a
    // micro-decade of slack absorbs the rounding.
    weightTol_ = config_.quantizedWeights ? 1e-9 : 1e-6;
    for (auto &b : gapBuckets_)
        b.store(0, std::memory_order_relaxed);
}

AccuracyAuditor::~AccuracyAuditor()
{
    stop();
}

bool
AccuracyAuditor::offer(uint64_t shot, uint32_t worker,
                       std::span<const uint32_t> defects,
                       const DecodeResult &result, uint64_t actual_obs,
                       uint64_t trace_id)
{
    if (stride_ == 0 || defects.empty())
        return false;
    const uint64_t seq = offered_.fetch_add(1,
                                            std::memory_order_relaxed);
    if (result.gaveUp)
        giveUpsOffered_.fetch_add(1, std::memory_order_relaxed);

    // Deterministic 1-in-stride sampling; give-ups are always taken so
    // the give-up audit covers every one the queue has room for.
    if (!result.gaveUp && (seq % stride_) != 0)
        return false;
    sampled_.fetch_add(1, std::memory_order_relaxed);

    if (defects.size() > kAuditMaxDefects) {
        oversizeDrops_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    AuditSample s;
    s.shot = shot;
    s.worker = worker;
    s.hw = static_cast<uint32_t>(defects.size());
    s.prodObs = result.obsMask;
    s.actualObs = actual_obs;
    s.prodWeight = result.matchingWeight;
    s.latencyNs = result.latencyNs;
    s.cycles = result.cycles;
    s.gaveUp = result.gaveUp;
    s.traceId = trace_id;
    std::copy(defects.begin(), defects.end(), s.defects.begin());

    if (!queue_->tryPush(s)) {
        queueDrops_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

double
AccuracyAuditor::pairWeight(uint32_t a, uint32_t b) const
{
    if (config_.quantizedWeights) {
        // The 255 sentinel stays finite, exactly as the Astrea LWT
        // tile treats it: the hardware compares raw byte weights.
        return static_cast<double>(gwt_->pairWeight(a, b)) /
               kWeightScale;
    }
    return gwt_->exactWeight(a, b);
}

AccuracyAuditor::Oracle
AccuracyAuditor::oracleDecode(std::span<const uint32_t> defects) const
{
    Oracle o;
    const int n = static_cast<int>(defects.size());
    if (n == 0)
        return o;

    if (static_cast<uint32_t>(n) <= config_.dpMaxHw) {
        o.usedDp = true;
        MatchingSolution sol = dpMatchWithBoundary(
            n,
            [&](int i, int j) {
                return pairWeight(defects[static_cast<size_t>(i)],
                                  defects[static_cast<size_t>(j)]);
            },
            [&](int i) {
                return pairWeight(defects[static_cast<size_t>(i)],
                                  defects[static_cast<size_t>(i)]);
            });
        o.weight = sol.totalWeight;
        for (auto [i, j] : sol.pairs) {
            uint32_t a = defects[static_cast<size_t>(i)];
            o.obsMask ^= (j < 0)
                             ? gwt_->pairObs(a, a)
                             : gwt_->pairObs(
                                   a, defects[static_cast<size_t>(j)]);
        }
        return o;
    }

    // Blossom fallback: nodes 0..n-1 are defects, n..2n-1 their
    // private boundary copies (free to pair with each other), the
    // same construction as decoders/mwpm_decoder.cc.
    auto weight = [&](int i, int j) -> int64_t {
        bool i_real = i < n, j_real = j < n;
        if (i_real && j_real) {
            uint32_t a = defects[static_cast<size_t>(i)];
            uint32_t b = defects[static_cast<size_t>(j)];
            if (config_.quantizedWeights)
                return static_cast<int64_t>(gwt_->pairWeight(a, b));
            return scaleExact(gwt_->exactWeight(a, b));
        }
        if (!i_real && !j_real)
            return 0;
        int real = i_real ? i : j;
        int copy = (i_real ? j : i) - n;
        if (copy != real)
            return kForbidden;
        uint32_t a = defects[static_cast<size_t>(real)];
        if (config_.quantizedWeights)
            return static_cast<int64_t>(gwt_->pairWeight(a, a));
        return scaleExact(gwt_->exactWeight(a, a));
    };

    auto mate = minWeightPerfectMatching(2 * n, weight);
    for (int i = 0; i < n; i++) {
        int m = mate[i];
        uint32_t a = defects[static_cast<size_t>(i)];
        if (m < n) {
            if (i < m) {
                uint32_t b = defects[static_cast<size_t>(m)];
                o.obsMask ^= gwt_->pairObs(a, b);
                o.weight += pairWeight(a, b);
            }
        } else {
            ASTREA_CHECK(m - n == i,
                         "audit oracle: defect matched to foreign "
                         "boundary copy");
            o.obsMask ^= gwt_->pairObs(a, a);
            o.weight += pairWeight(a, a);
        }
    }
    return o;
}

uint64_t
AccuracyAuditor::captureMismatch(const AuditSample &s,
                                 const Oracle &oracle)
{
    if (!config_.captureMismatches ||
        !telemetry::FlightRecorder::globalEnabled())
        return 0;
    telemetry::DecodeRecord rec;
    rec.shot = s.shot;
    rec.worker = s.worker;
    rec.defects.assign(s.defects.begin(), s.defects.begin() + s.hw);
    rec.obsMask = s.prodObs;
    rec.actualObs = s.actualObs;
    rec.gaveUp = s.gaveUp;
    rec.logicalError = (s.prodObs != s.actualObs);
    rec.latencyNs = s.latencyNs;
    rec.cycles = s.cycles;
    rec.matchingWeight = s.prodWeight;
    rec.audited = true;
    rec.auditMismatch = true;
    rec.oracleName = oracle.usedDp ? "dp" : "mwpm";
    rec.oracleQuantized = config_.quantizedWeights;
    rec.oracleWeight = oracle.weight;
    rec.oracleObs = oracle.obsMask;
    rec.traceId = s.traceId;
    const uint64_t seq =
        telemetry::FlightRecorder::global().record(rec);
    captures_.fetch_add(1, std::memory_order_relaxed);
    return seq;
}

void
AccuracyAuditor::auditOne(const AuditSample &s)
{
    std::span<const uint32_t> defects(s.defects.data(), s.hw);
    Oracle oracle = oracleDecode(defects);
    (oracle.usedDp ? dpDecodes_ : mwpmDecodes_)
        .fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);

    if (s.gaveUp) {
        // A give-up predicts no flip; the oracle audit asks whether an
        // exact matcher would have decoded the shot correctly.
        giveUpsAudited_.fetch_add(1, std::memory_order_relaxed);
        if (oracle.obsMask == s.actualObs)
            giveUpOracleSuccess_.fetch_add(1,
                                           std::memory_order_relaxed);
        if (s.traceId != 0) {
            telemetry::TraceStore::global().annotateAudit(
                s.traceId, /*mismatch=*/false, /*gap_decades=*/0.0,
                oracle.weight, oracle.obsMask, /*capture_seq=*/0);
        }
        return;
    }

    const size_t hw = std::min<size_t>(s.hw, kAuditMaxDefects);
    byHw_[hw].audited.fetch_add(1, std::memory_order_relaxed);

    if (s.prodObs != oracle.obsMask) {
        observableMismatches_.fetch_add(1, std::memory_order_relaxed);
        const uint64_t capture_seq = captureMismatch(s, oracle);
        if (s.traceId != 0) {
            telemetry::TraceStore::global().annotateAudit(
                s.traceId, /*mismatch=*/true, /*gap_decades=*/0.0,
                oracle.weight, oracle.obsMask, capture_seq);
        }
        return;
    }

    double gap = s.prodWeight - oracle.weight;
    if (gap < -weightTol_) {
        // Production claims a lighter matching than the exact oracle
        // found — a weight-domain mismatch (or a production bug), not
        // a quality signal. Counted separately, classified optimal.
        weightUnderruns_.fetch_add(1, std::memory_order_relaxed);
        gap = 0.0;
    }
    if (gap <= weightTol_) {
        optimal_.fetch_add(1, std::memory_order_relaxed);
        byHw_[hw].optimal.fetch_add(1, std::memory_order_relaxed);
        gap = 0.0;
    } else {
        suboptimal_.fetch_add(1, std::memory_order_relaxed);
    }

    if (s.traceId != 0) {
        telemetry::TraceStore::global().annotateAudit(
            s.traceId, /*mismatch=*/false, gap, oracle.weight,
            oracle.obsMask, /*capture_seq=*/0);
    }

    size_t bucket = static_cast<size_t>(
        std::llround(gap * kWeightScale));
    bucket = std::min(bucket, kAuditGapBuckets - 1);
    gapBuckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    gapSumMilli_.fetch_add(
        static_cast<uint64_t>(std::llround(gap * 1000.0)),
        std::memory_order_relaxed);
    gapCount_.fetch_add(1, std::memory_order_relaxed);
}

void
AccuracyAuditor::start()
{
    if (stride_ == 0 || running_.load())
        return;
    running_ = true;
    pool_.reserve(config_.threads);
    for (unsigned t = 0; t < config_.threads; t++) {
        pool_.emplace_back([this] {
            AuditSample s;
            while (running_.load(std::memory_order_relaxed)) {
                if (queue_->tryPop(s))
                    auditOne(s);
                else
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(500));
            }
        });
    }
}

void
AccuracyAuditor::stop()
{
    running_ = false;
    for (auto &t : pool_)
        t.join();
    pool_.clear();
    drainNow();
}

size_t
AccuracyAuditor::drainNow()
{
    if (!queue_)
        return 0;
    size_t n = 0;
    AuditSample s;
    while (queue_->tryPop(s)) {
        auditOne(s);
        n++;
    }
    return n;
}

void
AccuracyAuditor::rebind(const GlobalWeightTable &gwt,
                        std::shared_ptr<const void> keepalive)
{
    const bool was_running = running_.load();
    stop();  // Joins the pool and drains against the old table.
    gwt_ = &gwt;
    keepalive_ = std::move(keepalive);
    if (was_running)
        start();
}

double
AccuracyAuditor::Snapshot::optimalityRate() const
{
    const uint64_t classified =
        optimal + suboptimal + observableMismatches;
    return classified == 0 ? 0.0
                           : static_cast<double>(optimal) /
                                 static_cast<double>(classified);
}

double
AccuracyAuditor::Snapshot::giveUpCoverage() const
{
    return giveUpsOffered == 0
               ? 0.0
               : static_cast<double>(giveUpsAudited) /
                     static_cast<double>(giveUpsOffered);
}

AccuracyAuditor::Snapshot
AccuracyAuditor::snapshot() const
{
    Snapshot s;
    s.offered = offered_.load(std::memory_order_relaxed);
    s.sampled = sampled_.load(std::memory_order_relaxed);
    s.enqueued = enqueued_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.queueDrops = queueDrops_.load(std::memory_order_relaxed);
    s.oversizeDrops = oversizeDrops_.load(std::memory_order_relaxed);
    s.optimal = optimal_.load(std::memory_order_relaxed);
    s.suboptimal = suboptimal_.load(std::memory_order_relaxed);
    s.observableMismatches =
        observableMismatches_.load(std::memory_order_relaxed);
    s.weightUnderruns =
        weightUnderruns_.load(std::memory_order_relaxed);
    s.giveUpsOffered = giveUpsOffered_.load(std::memory_order_relaxed);
    s.giveUpsAudited = giveUpsAudited_.load(std::memory_order_relaxed);
    s.giveUpOracleSuccess =
        giveUpOracleSuccess_.load(std::memory_order_relaxed);
    s.dpDecodes = dpDecodes_.load(std::memory_order_relaxed);
    s.mwpmDecodes = mwpmDecodes_.load(std::memory_order_relaxed);
    s.captures = captures_.load(std::memory_order_relaxed);
    s.queueDepth = queue_ ? queue_->sizeApprox() : 0;
    s.queueCapacity = queue_ ? queue_->capacity() : 0;
    for (size_t h = 0; h <= kAuditMaxDefects; h++) {
        s.byHw[h].audited =
            byHw_[h].audited.load(std::memory_order_relaxed);
        s.byHw[h].optimal =
            byHw_[h].optimal.load(std::memory_order_relaxed);
    }
    for (size_t b = 0; b < kAuditGapBuckets; b++)
        s.gapBuckets[b] =
            gapBuckets_[b].load(std::memory_order_relaxed);
    s.gapSumDecades =
        static_cast<double>(
            gapSumMilli_.load(std::memory_order_relaxed)) /
        1000.0;
    s.gapCount = gapCount_.load(std::memory_order_relaxed);
    return s;
}

void
AccuracyAuditor::writeMetrics(telemetry::PrometheusWriter &w) const
{
    using telemetry::PromLabels;
    const Snapshot s = snapshot();

    w.gauge("astrea_audit_enabled",
            "1 while shadow accuracy auditing is sampling decodes",
            enabled() ? 1.0 : 0.0);
    w.gauge("astrea_audit_sample_rate",
            "Configured fraction of nontrivial decodes audited",
            config_.sampleRate);
    w.counter("astrea_audit_sampled_total",
              "Decodes selected for audit (including drops)",
              s.sampled);
    w.counter("astrea_audit_completed_total",
              "Decodes re-decoded against the oracle", s.completed);
    w.gauge("astrea_audit_queue_depth",
            "Audit samples currently queued",
            static_cast<double>(s.queueDepth));
    w.gauge("astrea_audit_queue_capacity", "Audit queue capacity",
            static_cast<double>(s.queueCapacity));
    w.counter("astrea_audit_queue_drops_total",
              "Samples dropped because the audit queue was full",
              s.queueDrops);
    w.counter("astrea_audit_oversize_drops_total",
              "Samples dropped because HW exceeded the sample cap",
              s.oversizeDrops);

    w.counter("astrea_audit_optimal_total",
              "Audited decodes whose matching weight equals the "
              "oracle's",
              s.optimal);
    w.counter("astrea_audit_suboptimal_total",
              "Audited decodes with a positive weight gap but the "
              "same logical correction",
              s.suboptimal);
    w.counter("astrea_audit_observable_mismatches_total",
              "Audited decodes whose logical correction differs from "
              "the oracle's",
              s.observableMismatches);
    w.counter("astrea_audit_weight_underruns_total",
              "Audited decodes reporting a lighter weight than the "
              "oracle (weight-domain mismatch)",
              s.weightUnderruns);

    w.family("astrea_audit_optimality_rate", "gauge",
             "Match-optimality rate per syndrome Hamming weight "
             "(hw=\"all\" aggregates)");
    w.sample("astrea_audit_optimality_rate", s.optimalityRate(),
             PromLabels{{"hw", "all"}});
    for (size_t h = 0; h <= kAuditMaxDefects; h++) {
        if (s.byHw[h].audited == 0)
            continue;
        w.sample("astrea_audit_optimality_rate",
                 static_cast<double>(s.byHw[h].optimal) /
                     static_cast<double>(s.byHw[h].audited),
                 PromLabels{{"hw", std::to_string(h)}});
    }

    {
        std::vector<std::pair<double, uint64_t>> cumulative;
        uint64_t cum = 0;
        size_t top = 0;
        for (size_t b = 0; b + 1 < kAuditGapBuckets; b++) {
            if (s.gapBuckets[b])
                top = b;
        }
        for (size_t b = 0; b <= top; b++) {
            cum += s.gapBuckets[b];
            cumulative.emplace_back(
                static_cast<double>(b) / kWeightScale, cum);
        }
        w.histogram("astrea_audit_weight_gap_decades",
                    "Suboptimality weight gap vs the oracle, in "
                    "decades (1/8-decade bins)",
                    cumulative, s.gapCount, s.gapSumDecades);
    }

    w.counter("astrea_audit_give_ups_audited_total",
              "Give-ups re-decoded by the oracle", s.giveUpsAudited);
    w.counter("astrea_audit_give_up_oracle_success_total",
              "Audited give-ups the oracle would have decoded "
              "correctly",
              s.giveUpOracleSuccess);
    w.gauge("astrea_audit_give_up_coverage",
            "Fraction of give-ups seen by offer() that were audited",
            s.giveUpCoverage());

    w.family("astrea_audit_oracle_decodes_total", "counter",
             "Oracle re-decodes by oracle kind");
    w.sample("astrea_audit_oracle_decodes_total", s.dpDecodes,
             PromLabels{{"oracle", "dp"}});
    w.sample("astrea_audit_oracle_decodes_total", s.mwpmDecodes,
             PromLabels{{"oracle", "mwpm"}});

    w.counter("astrea_audit_captures_total",
              "Flight-recorder captures triggered by observable "
              "mismatches",
              s.captures);
}

void
AccuracyAuditor::writeStatusz(telemetry::JsonWriter &w) const
{
    const Snapshot s = snapshot();
    w.kv("enabled", enabled());
    w.kv("rate", config_.sampleRate);
    w.kv("threads", uint64_t{config_.threads});
    w.kv("dp_max_hw", uint64_t{config_.dpMaxHw});
    w.kv("quantized", config_.quantizedWeights);
    w.kv("offered", s.offered);
    w.kv("sampled", s.sampled);
    w.kv("completed", s.completed);
    w.kv("queue_depth", uint64_t{s.queueDepth});
    w.kv("queue_capacity", uint64_t{s.queueCapacity});
    w.kv("queue_drops", s.queueDrops);
    w.kv("oversize_drops", s.oversizeDrops);
    w.kv("optimal", s.optimal);
    w.kv("suboptimal", s.suboptimal);
    w.kv("observable_mismatches", s.observableMismatches);
    w.kv("weight_underruns", s.weightUnderruns);
    w.kv("optimality_rate", s.optimalityRate());
    w.kv("mean_weight_gap_decades",
         s.gapCount == 0 ? 0.0
                         : s.gapSumDecades /
                               static_cast<double>(s.gapCount));
    w.kv("give_ups_offered", s.giveUpsOffered);
    w.kv("give_ups_audited", s.giveUpsAudited);
    w.kv("give_up_oracle_success", s.giveUpOracleSuccess);
    w.kv("give_up_coverage", s.giveUpCoverage());
    w.kv("captures", s.captures);
}

} // namespace astrea
