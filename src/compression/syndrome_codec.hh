/**
 * @file
 * Syndrome compression (paper Sec. 7.6).
 *
 * The decoder must receive each round's syndrome bits and still finish
 * within the 1 us deadline; the paper notes that "as syndromes are
 * typically compressible, we can further employ Syndrome Compression
 * to reduce bandwidth requirement". Syndromes are overwhelmingly
 * sparse (HW 0-2 dominates, Sec. 4.2), so two simple lossless codecs
 * capture almost all the win:
 *
 *  - Sparse codec: a set-bit count followed by the bit indices
 *    (AFS-style "sparse representation");
 *  - Run-length codec: zero-run lengths between set bits, in bytes
 *    with an escape for long runs.
 *
 * Both degrade gracefully on dense inputs by falling back to the raw
 * bitmap when it is smaller, so the encoded size never exceeds
 * ceil(n/8) + 1 bytes.
 */

#ifndef ASTREA_COMPRESSION_SYNDROME_CODEC_HH
#define ASTREA_COMPRESSION_SYNDROME_CODEC_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"

namespace astrea
{

/** Available syndrome encodings. */
enum class SyndromeCodec : uint8_t
{
    Raw,        ///< Plain bitmap, ceil(n/8) bytes + 1 tag byte.
    Sparse,     ///< Count + per-bit indices.
    RunLength,  ///< Zero-run lengths.
};

/**
 * Encode a syndrome with the requested codec. The first byte tags the
 * representation actually used (sparse/run-length fall back to raw if
 * raw is smaller), so decodeSyndrome() is self-describing.
 */
std::vector<uint8_t> encodeSyndrome(const BitVec &syndrome,
                                    SyndromeCodec codec);

/**
 * encodeSyndrome() into a caller-owned buffer (cleared first). The
 * wire hot path (net/fleet_protocol) reuses one buffer per connection
 * so steady-state encodes touch no allocator once the buffer has grown
 * to its working size.
 */
void encodeSyndromeInto(const BitVec &syndrome, SyndromeCodec codec,
                        std::vector<uint8_t> &out);

/**
 * Decode a syndrome produced by encodeSyndrome().
 *
 * Aborts on malformed input (trusted in-process buffers only); use
 * tryDecodeSyndromeInto() for untrusted bytes off the wire.
 *
 * @param bytes Encoded buffer.
 * @param num_bits The (known) syndrome length.
 */
BitVec decodeSyndrome(const std::vector<uint8_t> &bytes,
                      uint32_t num_bits);

/**
 * Non-fatal decode for untrusted input: returns false on any
 * malformed buffer (empty, unknown tag, truncation, out-of-range
 * index, trailing garbage) without crashing or reading past
 * bytes[len-1]. On success `out` is resized to num_bits and holds the
 * decoded syndrome; on failure its contents are unspecified. Reuses
 * `out`'s storage, so steady-state calls touch no allocator.
 */
bool tryDecodeSyndromeInto(const uint8_t *bytes, size_t len,
                           uint32_t num_bits, BitVec &out);

/** Compression statistics over a stream of syndromes. */
struct CompressionStats
{
    uint64_t syndromes = 0;
    uint64_t rawBytes = 0;
    uint64_t encodedBytes = 0;

    double
    ratio() const
    {
        return encodedBytes
                   ? static_cast<double>(rawBytes) /
                         static_cast<double>(encodedBytes)
                   : 0.0;
    }

    double
    meanEncodedBytes() const
    {
        return syndromes ? static_cast<double>(encodedBytes) /
                               static_cast<double>(syndromes)
                         : 0.0;
    }

    void add(uint32_t num_bits, size_t encoded_bytes);
};

/**
 * Time to transmit `bytes` at `mbps` megabytes per second, in ns
 * (the quantity Table 7 trades against decode budget).
 */
double transmissionTimeNs(double bytes, double mbps);

} // namespace astrea

#endif // ASTREA_COMPRESSION_SYNDROME_CODEC_HH
