#include "compression/syndrome_codec.hh"

#include "common/logging.hh"

namespace astrea
{

namespace
{

/** Tag byte identifying the representation inside the buffer. */
enum Tag : uint8_t
{
    kTagRaw = 0,
    kTagSparse = 1,
    kTagRunLength = 2,
};

std::vector<uint8_t>
encodeRaw(const BitVec &syndrome)
{
    std::vector<uint8_t> out{kTagRaw};
    uint8_t acc = 0;
    for (size_t i = 0; i < syndrome.size(); i++) {
        if (syndrome.get(i))
            acc |= static_cast<uint8_t>(1u << (i % 8));
        if (i % 8 == 7) {
            out.push_back(acc);
            acc = 0;
        }
    }
    if (syndrome.size() % 8 != 0)
        out.push_back(acc);
    return out;
}

std::vector<uint8_t>
encodeSparse(const BitVec &syndrome)
{
    auto ones = syndrome.onesIndices();
    // Indices need 2 bytes once the syndrome exceeds 256 bits.
    const bool wide = syndrome.size() > 256;
    std::vector<uint8_t> out{kTagSparse};
    ASTREA_CHECK(ones.size() < 256, "syndrome too dense for count byte");
    out.push_back(static_cast<uint8_t>(ones.size()));
    for (auto idx : ones) {
        out.push_back(static_cast<uint8_t>(idx & 0xff));
        if (wide)
            out.push_back(static_cast<uint8_t>(idx >> 8));
    }
    return out;
}

std::vector<uint8_t>
encodeRunLength(const BitVec &syndrome)
{
    // Byte stream of zero-run lengths before each set bit; 255 is an
    // escape meaning "255 zeros and no bit yet".
    std::vector<uint8_t> out{kTagRunLength};
    uint32_t run = 0;
    for (size_t i = 0; i < syndrome.size(); i++) {
        if (syndrome.get(i)) {
            while (run >= 255) {
                out.push_back(255);
                run -= 255;
            }
            out.push_back(static_cast<uint8_t>(run));
            run = 0;
        } else {
            run++;
        }
    }
    return out;
}

} // namespace

std::vector<uint8_t>
encodeSyndrome(const BitVec &syndrome, SyndromeCodec codec)
{
    std::vector<uint8_t> raw = encodeRaw(syndrome);
    if (codec == SyndromeCodec::Raw)
        return raw;
    std::vector<uint8_t> enc = (codec == SyndromeCodec::Sparse)
                                   ? encodeSparse(syndrome)
                                   : encodeRunLength(syndrome);
    // Lossless fallback: never ship more bytes than the raw bitmap.
    return enc.size() < raw.size() ? enc : raw;
}

BitVec
decodeSyndrome(const std::vector<uint8_t> &bytes, uint32_t num_bits)
{
    ASTREA_CHECK(!bytes.empty(), "empty syndrome buffer");
    BitVec out(num_bits);
    switch (bytes[0]) {
      case kTagRaw: {
        for (uint32_t i = 0; i < num_bits; i++) {
            size_t byte = 1 + i / 8;
            ASTREA_CHECK(byte < bytes.size(), "raw buffer truncated");
            if ((bytes[byte] >> (i % 8)) & 1)
                out.set(i);
        }
        break;
      }
      case kTagSparse: {
        ASTREA_CHECK(bytes.size() >= 2, "sparse buffer truncated");
        const bool wide = num_bits > 256;
        uint32_t count = bytes[1];
        size_t pos = 2;
        for (uint32_t k = 0; k < count; k++) {
            ASTREA_CHECK(pos + (wide ? 1 : 0) < bytes.size(),
                         "sparse buffer truncated");
            uint32_t idx = bytes[pos++];
            if (wide)
                idx |= static_cast<uint32_t>(bytes[pos++]) << 8;
            ASTREA_CHECK(idx < num_bits, "sparse index out of range");
            out.set(idx);
        }
        break;
      }
      case kTagRunLength: {
        uint32_t i = 0;
        for (size_t pos = 1; pos < bytes.size(); pos++) {
            i += bytes[pos];
            if (bytes[pos] == 255)
                continue;  // Escape: no bit after this run.
            ASTREA_CHECK(i < num_bits, "run-length overflow");
            out.set(i);
            i++;
        }
        break;
      }
      default:
        fatal("unknown syndrome codec tag");
    }
    return out;
}

void
CompressionStats::add(uint32_t num_bits, size_t encoded_bytes)
{
    syndromes++;
    rawBytes += (num_bits + 7) / 8 + 1;
    encodedBytes += encoded_bytes;
}

double
transmissionTimeNs(double bytes, double mbps)
{
    if (mbps <= 0.0)
        return 0.0;
    // 1 MBps = 1 byte per microsecond.
    return bytes / mbps * 1000.0;
}

} // namespace astrea
