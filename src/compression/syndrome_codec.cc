#include "compression/syndrome_codec.hh"

#include "common/logging.hh"

namespace astrea
{

namespace
{

/** Tag byte identifying the representation inside the buffer. */
enum Tag : uint8_t
{
    kTagRaw = 0,
    kTagSparse = 1,
    kTagRunLength = 2,
};

void
encodeRawInto(const BitVec &syndrome, std::vector<uint8_t> &out)
{
    out.push_back(kTagRaw);
    uint8_t acc = 0;
    for (size_t i = 0; i < syndrome.size(); i++) {
        if (syndrome.get(i))
            acc |= static_cast<uint8_t>(1u << (i % 8));
        if (i % 8 == 7) {
            out.push_back(acc);
            acc = 0;
        }
    }
    if (syndrome.size() % 8 != 0)
        out.push_back(acc);
}

void
encodeSparseInto(const BitVec &syndrome, std::vector<uint8_t> &out)
{
    // Indices need 2 bytes once the syndrome exceeds 256 bits.
    const bool wide = syndrome.size() > 256;
    out.push_back(kTagSparse);
    out.push_back(0);  // Count byte, patched once known.
    uint32_t count = 0;
    for (size_t i = 0; i < syndrome.size(); i++) {
        if (!syndrome.get(i))
            continue;
        count++;
        out.push_back(static_cast<uint8_t>(i & 0xff));
        if (wide)
            out.push_back(static_cast<uint8_t>(i >> 8));
    }
    ASTREA_CHECK(count < 256, "syndrome too dense for count byte");
    out[1] = static_cast<uint8_t>(count);
}

void
encodeRunLengthInto(const BitVec &syndrome, std::vector<uint8_t> &out)
{
    // Byte stream of zero-run lengths before each set bit; 255 is an
    // escape meaning "255 zeros and no bit yet".
    out.push_back(kTagRunLength);
    uint32_t run = 0;
    for (size_t i = 0; i < syndrome.size(); i++) {
        if (syndrome.get(i)) {
            while (run >= 255) {
                out.push_back(255);
                run -= 255;
            }
            out.push_back(static_cast<uint8_t>(run));
            run = 0;
        } else {
            run++;
        }
    }
}

} // namespace

std::vector<uint8_t>
encodeSyndrome(const BitVec &syndrome, SyndromeCodec codec)
{
    std::vector<uint8_t> out;
    encodeSyndromeInto(syndrome, codec, out);
    return out;
}

void
encodeSyndromeInto(const BitVec &syndrome, SyndromeCodec codec,
                   std::vector<uint8_t> &out)
{
    // The raw bitmap is the fallback bound, so its size is known
    // without materializing it.
    const size_t raw_size = 1 + (syndrome.size() + 7) / 8;
    out.clear();
    if (codec == SyndromeCodec::Sparse)
        encodeSparseInto(syndrome, out);
    else if (codec == SyndromeCodec::RunLength)
        encodeRunLengthInto(syndrome, out);
    // Lossless fallback: never ship more bytes than the raw bitmap.
    if (codec == SyndromeCodec::Raw || out.size() >= raw_size) {
        out.clear();
        encodeRawInto(syndrome, out);
    }
}

bool
tryDecodeSyndromeInto(const uint8_t *bytes, size_t len,
                      uint32_t num_bits, BitVec &out)
{
    if (len == 0)
        return false;
    out.resize(num_bits);
    switch (bytes[0]) {
      case kTagRaw: {
        if (len != 1 + (static_cast<size_t>(num_bits) + 7) / 8)
            return false;
        for (uint32_t i = 0; i < num_bits; i++) {
            if ((bytes[1 + i / 8] >> (i % 8)) & 1)
                out.set(i);
        }
        // Padding bits past num_bits in the last byte must be zero.
        if (num_bits % 8 != 0 &&
            (bytes[len - 1] >> (num_bits % 8)) != 0)
            return false;
        return true;
      }
      case kTagSparse: {
        if (len < 2)
            return false;
        const bool wide = num_bits > 256;
        const uint32_t count = bytes[1];
        size_t pos = 2;
        for (uint32_t k = 0; k < count; k++) {
            if (pos + (wide ? 1 : 0) >= len)
                return false;
            uint32_t idx = bytes[pos++];
            if (wide)
                idx |= static_cast<uint32_t>(bytes[pos++]) << 8;
            if (idx >= num_bits)
                return false;
            out.set(idx);
        }
        return pos == len;
      }
      case kTagRunLength: {
        uint64_t i = 0;
        for (size_t pos = 1; pos < len; pos++) {
            i += bytes[pos];
            if (bytes[pos] == 255)
                continue;  // Escape: no bit after this run.
            if (i >= num_bits)
                return false;
            out.set(static_cast<size_t>(i));
            i++;
        }
        return true;
      }
      default:
        return false;
    }
}

BitVec
decodeSyndrome(const std::vector<uint8_t> &bytes, uint32_t num_bits)
{
    ASTREA_CHECK(!bytes.empty(), "empty syndrome buffer");
    ASTREA_CHECK(bytes[0] <= kTagRunLength,
                 "unknown syndrome codec tag");
    BitVec out(num_bits);
    switch (bytes[0]) {
      case kTagRaw: {
        for (uint32_t i = 0; i < num_bits; i++) {
            size_t byte = 1 + i / 8;
            ASTREA_CHECK(byte < bytes.size(), "raw buffer truncated");
            if ((bytes[byte] >> (i % 8)) & 1)
                out.set(i);
        }
        break;
      }
      case kTagSparse: {
        ASTREA_CHECK(bytes.size() >= 2, "sparse buffer truncated");
        const bool wide = num_bits > 256;
        uint32_t count = bytes[1];
        size_t pos = 2;
        for (uint32_t k = 0; k < count; k++) {
            ASTREA_CHECK(pos + (wide ? 1 : 0) < bytes.size(),
                         "sparse buffer truncated");
            uint32_t idx = bytes[pos++];
            if (wide)
                idx |= static_cast<uint32_t>(bytes[pos++]) << 8;
            ASTREA_CHECK(idx < num_bits, "sparse index out of range");
            out.set(idx);
        }
        break;
      }
      case kTagRunLength: {
        uint32_t i = 0;
        for (size_t pos = 1; pos < bytes.size(); pos++) {
            i += bytes[pos];
            if (bytes[pos] == 255)
                continue;  // Escape: no bit after this run.
            ASTREA_CHECK(i < num_bits, "run-length overflow");
            out.set(i);
            i++;
        }
        break;
      }
    }
    return out;
}

void
CompressionStats::add(uint32_t num_bits, size_t encoded_bytes)
{
    syndromes++;
    rawBytes += (num_bits + 7) / 8 + 1;
    encodedBytes += encoded_bytes;
}

double
transmissionTimeNs(double bytes, double mbps)
{
    if (mbps <= 0.0)
        return 0.0;
    // 1 MBps = 1 byte per microsecond.
    return bytes / mbps * 1000.0;
}

} // namespace astrea
