#include "circuit/builder.hh"

namespace astrea
{

NoiseModel
NoiseModel::uniform(double p)
{
    NoiseModel m;
    m.dataDepolarization = p;
    m.gateDepolarization = p;
    m.measureFlip = p;
    m.resetFlip = p;
    m.finalMeasureFlip = p;
    return m;
}

void
CircuitBuilder::reset(const std::vector<uint32_t> &qubits)
{
    if (!qubits.empty())
        circuit_.appendGate(GateType::R, qubits);
}

void
CircuitBuilder::hadamard(const std::vector<uint32_t> &qubits)
{
    if (!qubits.empty())
        circuit_.appendGate(GateType::H, qubits);
}

void
CircuitBuilder::cx(const std::vector<uint32_t> &pairs)
{
    if (!pairs.empty())
        circuit_.appendGate(GateType::CX, pairs);
}

std::vector<uint32_t>
CircuitBuilder::measure(const std::vector<uint32_t> &qubits)
{
    std::vector<uint32_t> indices;
    indices.reserve(qubits.size());
    uint32_t base = circuit_.numMeasurements();
    for (uint32_t i = 0; i < qubits.size(); i++)
        indices.push_back(base + i);
    if (!qubits.empty())
        circuit_.appendGate(GateType::M, qubits);
    return indices;
}

void
CircuitBuilder::xError(double p, const std::vector<uint32_t> &qubits)
{
    if (p > 0.0 && !qubits.empty())
        circuit_.appendGate(GateType::XError, qubits, p);
}

void
CircuitBuilder::depolarize1(double p, const std::vector<uint32_t> &qubits)
{
    if (p > 0.0 && !qubits.empty())
        circuit_.appendGate(GateType::Depolarize1, qubits, p);
}

void
CircuitBuilder::depolarize2(double p, const std::vector<uint32_t> &pairs)
{
    if (p > 0.0 && !pairs.empty())
        circuit_.appendGate(GateType::Depolarize2, pairs, p);
}

void
CircuitBuilder::tick()
{
    circuit_.appendGate(GateType::Tick, {});
}

uint32_t
CircuitBuilder::detector(std::vector<uint32_t> measurement_indices,
                         DetectorInfo info)
{
    return circuit_.appendDetector(std::move(measurement_indices), info);
}

void
CircuitBuilder::observable(uint32_t obs_index,
                           std::vector<uint32_t> measurement_indices)
{
    circuit_.appendObservable(obs_index, std::move(measurement_indices));
}

Circuit
CircuitBuilder::build()
{
    circuit_.validate();
    return std::move(circuit_);
}

} // namespace astrea
