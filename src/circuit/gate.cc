#include "circuit/gate.hh"

#include <cstdio>

namespace astrea
{

bool
isNoise(GateType t)
{
    switch (t) {
      case GateType::XError:
      case GateType::ZError:
      case GateType::Depolarize1:
      case GateType::Depolarize2:
        return true;
      default:
        return false;
    }
}

const char *
gateName(GateType t)
{
    switch (t) {
      case GateType::R: return "R";
      case GateType::M: return "M";
      case GateType::MR: return "MR";
      case GateType::H: return "H";
      case GateType::CX: return "CX";
      case GateType::XError: return "X_ERROR";
      case GateType::ZError: return "Z_ERROR";
      case GateType::Depolarize1: return "DEPOLARIZE1";
      case GateType::Depolarize2: return "DEPOLARIZE2";
      case GateType::Detector: return "DETECTOR";
      case GateType::ObservableInclude: return "OBSERVABLE_INCLUDE";
      case GateType::Tick: return "TICK";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::string s = gateName(type);
    if (isNoise(type) || type == GateType::ObservableInclude) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "(%g)", arg);
        s += buf;
    }
    for (auto t : targets) {
        s += ' ';
        s += std::to_string(t);
    }
    return s;
}

} // namespace astrea
