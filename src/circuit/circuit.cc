#include "circuit/circuit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace astrea
{

void
Circuit::appendGate(GateType type, std::vector<uint32_t> qubits, double arg)
{
    ASTREA_CHECK(type != GateType::Detector &&
                     type != GateType::ObservableInclude,
                 "use appendDetector/appendObservable for annotations");
    if (type == GateType::M || type == GateType::MR)
        numMeasurements_ += static_cast<uint32_t>(qubits.size());
    ops_.push_back({type, std::move(qubits), arg});
}

uint32_t
Circuit::appendDetector(std::vector<uint32_t> measurement_indices,
                        DetectorInfo info)
{
    for (auto m : measurement_indices) {
        ASTREA_CHECK(m < numMeasurements_,
                     "detector references a future measurement");
    }
    ops_.push_back({GateType::Detector, std::move(measurement_indices),
                    0.0});
    detectorInfo_.push_back(info);
    return numDetectors_++;
}

void
Circuit::appendObservable(uint32_t obs_index,
                          std::vector<uint32_t> measurement_indices)
{
    for (auto m : measurement_indices) {
        ASTREA_CHECK(m < numMeasurements_,
                     "observable references a future measurement");
    }
    ops_.push_back({GateType::ObservableInclude,
                    std::move(measurement_indices),
                    static_cast<double>(obs_index)});
    numObservables_ = std::max(numObservables_, obs_index + 1);
}

uint32_t
Circuit::countNoiseInstructions() const
{
    uint32_t n = 0;
    for (const auto &op : ops_) {
        if (isNoise(op.type))
            n++;
    }
    return n;
}

void
Circuit::validate() const
{
    for (const auto &op : ops_) {
        switch (op.type) {
          case GateType::CX:
          case GateType::Depolarize2:
            if (op.targets.size() % 2 != 0)
                fatal("two-qubit op with odd target count: " +
                      op.toString());
            [[fallthrough]];
          case GateType::R:
          case GateType::M:
          case GateType::MR:
          case GateType::H:
          case GateType::XError:
          case GateType::ZError:
          case GateType::Depolarize1:
            for (auto q : op.targets) {
                if (q >= numQubits_)
                    fatal("qubit index out of range: " + op.toString());
            }
            break;
          case GateType::Detector:
          case GateType::ObservableInclude:
            for (auto m : op.targets) {
                if (m >= numMeasurements_)
                    fatal("measurement index out of range: " +
                          op.toString());
            }
            break;
          case GateType::Tick:
            break;
        }
        if (isNoise(op.type) && (op.arg < 0.0 || op.arg > 1.0))
            fatal("noise probability out of range: " + op.toString());
    }
}

std::string
Circuit::toString() const
{
    std::string s;
    for (const auto &op : ops_) {
        s += op.toString();
        s += '\n';
    }
    return s;
}

} // namespace astrea
