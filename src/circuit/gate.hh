/**
 * @file
 * Instruction set for the stabilizer-circuit IR.
 *
 * The simulator consumes a small Stim-like language: Clifford gates,
 * resets and measurements, Pauli error channels, and bookkeeping
 * annotations (DETECTOR / OBSERVABLE_INCLUDE) that define the decoding
 * problem. Only the gates needed by surface-code syndrome extraction are
 * included; the frame simulator rejects anything else at construction.
 */

#ifndef ASTREA_CIRCUIT_GATE_HH
#define ASTREA_CIRCUIT_GATE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace astrea
{

/** Operation kinds understood by the simulators. */
enum class GateType : uint8_t
{
    R,            ///< Reset qubit(s) to |0>.
    M,            ///< Measure qubit(s) in the Z basis; appends to record.
    MR,           ///< Measure then reset.
    H,            ///< Hadamard.
    CX,           ///< Controlled-X; targets come in (control, target) pairs.
    XError,       ///< X_ERROR(p): bit flip with probability p.
    ZError,       ///< Z_ERROR(p): phase flip with probability p.
    Depolarize1,  ///< DEPOLARIZE1(p): X/Y/Z each with probability p/3.
    Depolarize2,  ///< DEPOLARIZE2(p): 15 two-qubit Paulis, p/15 each.
    Detector,     ///< Parity of listed measurement-record indices.
    ObservableInclude, ///< XOR measurements into logical observable #arg.
    Tick,         ///< Time-step marker (no semantic effect).
};

/** True for the probabilistic error channels. */
bool isNoise(GateType t);

/** Human-readable mnemonic, e.g. "CX". */
const char *gateName(GateType t);

/**
 * One circuit instruction.
 *
 * For gates, targets are qubit indices (CX and Depolarize2 take them in
 * pairs). For Detector / ObservableInclude, targets are absolute indices
 * into the measurement record. arg carries the error probability for
 * noise channels and the observable index for ObservableInclude.
 */
struct Instruction
{
    GateType type;
    std::vector<uint32_t> targets;
    double arg = 0.0;

    std::string toString() const;
};

} // namespace astrea

#endif // ASTREA_CIRCUIT_GATE_HH
