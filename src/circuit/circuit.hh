/**
 * @file
 * Container for a stabilizer circuit plus decoding-problem metadata.
 *
 * A Circuit is an ordered instruction list together with derived counts
 * (qubits, measurements, detectors, observables) and per-detector
 * metadata (basis, round, spatial coordinates) used when building the
 * decoding graph and when reporting experiment results.
 */

#ifndef ASTREA_CIRCUIT_CIRCUIT_HH
#define ASTREA_CIRCUIT_CIRCUIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hh"

namespace astrea
{

/** Which stabilizer basis a detector monitors. */
enum class Basis : uint8_t { X, Z };

/** Metadata attached to each detector for graph building and reports. */
struct DetectorInfo
{
    Basis basis = Basis::Z;
    /** Syndrome-extraction round, 0-based; the final data-measurement
     *  comparison round is round index `rounds` (i.e. one past the last
     *  extraction round). */
    uint32_t round = 0;
    /** Lattice coordinates of the parity qubit (2x units). */
    int32_t x = 0;
    int32_t y = 0;
};

/** An ordered stabilizer circuit. */
class Circuit
{
  public:
    explicit Circuit(uint32_t num_qubits = 0) : numQubits_(num_qubits) {}

    uint32_t numQubits() const { return numQubits_; }
    uint32_t numMeasurements() const { return numMeasurements_; }
    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    const std::vector<Instruction> &instructions() const { return ops_; }

    const std::vector<DetectorInfo> &detectorInfo() const
    {
        return detectorInfo_;
    }

    /** Append a gate acting on the given qubits. */
    void appendGate(GateType type, std::vector<uint32_t> qubits,
                    double arg = 0.0);

    /**
     * Append a detector defined as the parity of the given measurement
     * indices (absolute indices into the record). Returns the detector's
     * index.
     */
    uint32_t appendDetector(std::vector<uint32_t> measurement_indices,
                            DetectorInfo info);

    /** XOR measurement indices into logical observable obs_index. */
    void appendObservable(uint32_t obs_index,
                          std::vector<uint32_t> measurement_indices);

    /** Total count of probabilistic error instructions. */
    uint32_t countNoiseInstructions() const;

    /**
     * Sanity-check target ranges and pairing arity; calls fatal() on the
     * first malformed instruction.
     */
    void validate() const;

    /** Multi-line dump in a Stim-like syntax (tests, debugging). */
    std::string toString() const;

  private:
    uint32_t numQubits_;
    uint32_t numMeasurements_ = 0;
    uint32_t numDetectors_ = 0;
    uint32_t numObservables_ = 0;
    std::vector<Instruction> ops_;
    std::vector<DetectorInfo> detectorInfo_;
};

} // namespace astrea

#endif // ASTREA_CIRCUIT_CIRCUIT_HH
