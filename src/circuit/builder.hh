/**
 * @file
 * Convenience layer for constructing circuits programmatically.
 *
 * The builder tracks the measurement record so generators can capture
 * absolute measurement indices for detectors and observables, and it
 * owns the noise-model knobs of the paper's circuit-level model
 * (Sec. 3.2) so generated circuits stay consistent.
 */

#ifndef ASTREA_CIRCUIT_BUILDER_HH
#define ASTREA_CIRCUIT_BUILDER_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"

namespace astrea
{

/**
 * Circuit-level noise parameters (paper Sec. 3.2).
 *
 * The paper's model inserts depolarizing errors with probability p
 * (1) on data qubits at the beginning of every round, (2) on data and
 * parity qubits after syndrome-extraction operations (two-qubit
 * depolarizing after every CX), and (3) on parity qubits after
 * measurement and reset operations (bit flips).
 */
struct NoiseModel
{
    double dataDepolarization = 0.0; ///< DEPOLARIZE1 at round start.
    double gateDepolarization = 0.0; ///< DEPOLARIZE2 after each CX.
    double measureFlip = 0.0;        ///< X_ERROR before parity M.
    double resetFlip = 0.0;          ///< X_ERROR after R.
    double finalMeasureFlip = 0.0;   ///< X_ERROR before final data M.

    /** All channels driven by a single physical error rate p. */
    static NoiseModel uniform(double p);

    /** Noiseless model (all probabilities zero). */
    static NoiseModel noiseless() { return NoiseModel{}; }
};

/** Incremental circuit builder that tracks the measurement record. */
class CircuitBuilder
{
  public:
    explicit CircuitBuilder(uint32_t num_qubits) : circuit_(num_qubits) {}

    void reset(const std::vector<uint32_t> &qubits);
    void hadamard(const std::vector<uint32_t> &qubits);

    /** Append CXs; pairs is a flat (control, target) list. */
    void cx(const std::vector<uint32_t> &pairs);

    /**
     * Measure qubits in the Z basis; returns the absolute measurement
     * index of each qubit in order.
     */
    std::vector<uint32_t> measure(const std::vector<uint32_t> &qubits);

    void xError(double p, const std::vector<uint32_t> &qubits);
    void depolarize1(double p, const std::vector<uint32_t> &qubits);

    /** Two-qubit depolarizing after CXs; pairs as in cx(). */
    void depolarize2(double p, const std::vector<uint32_t> &pairs);

    void tick();

    uint32_t detector(std::vector<uint32_t> measurement_indices,
                      DetectorInfo info);
    void observable(uint32_t obs_index,
                    std::vector<uint32_t> measurement_indices);

    uint32_t measurementCount() const
    {
        return circuit_.numMeasurements();
    }

    /** Finish: validates and hands over the circuit. */
    Circuit build();

  private:
    Circuit circuit_;
};

} // namespace astrea

#endif // ASTREA_CIRCUIT_BUILDER_HH
