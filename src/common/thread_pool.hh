/**
 * @file
 * Minimal fork-join helper for Monte-Carlo sharding, plus a small
 * persistent task pool.
 *
 * The experiment harness splits shot budgets across hardware threads;
 * each worker gets an index so it can derive an independent RNG stream
 * and a private accumulator that the caller merges afterwards. A full
 * work-stealing pool would be overkill: every parallel region here is a
 * single embarrassingly-parallel loop of equal-cost chunks.
 *
 * ThreadPool serves the opposite shape — long-lived workers fed an
 * unbounded stream of small tasks (e.g. deferred telemetry work) —
 * with a deterministic shutdown contract: every task enqueue()
 * accepted runs to completion before the destructor returns, and once
 * shutdown begins enqueue() returns false instead of silently
 * dropping (or hanging on) the task.
 */

#ifndef ASTREA_COMMON_THREAD_POOL_HH
#define ASTREA_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace astrea
{

/**
 * Run body(worker_index, begin, end) on num_workers threads, partitioning
 * [0, total) into contiguous chunks. Runs inline when num_workers <= 1.
 */
void parallelFor(uint64_t total, unsigned num_workers,
                 const std::function<void(unsigned, uint64_t, uint64_t)>
                     &body);

/**
 * Number of workers to use: the ASTREA_THREADS environment variable if
 * set, otherwise the hardware concurrency (at least 1).
 */
unsigned defaultWorkerCount();

/**
 * Fixed-size pool of long-lived workers draining a FIFO task queue.
 *
 * Shutdown ordering is deterministic:
 *  - enqueue() returns true iff the task was accepted; after
 *    shutdown() (or destruction) begins it returns false and the
 *    task object is untouched — never silently dropped after
 *    acceptance, never run on the caller's thread.
 *  - shutdown() wakes every worker (no lost-wakeup hang), lets them
 *    drain ALL already-accepted tasks, then joins. Every task for
 *    which enqueue() returned true has finished running when
 *    shutdown() / the destructor returns.
 */
class ThreadPool
{
  public:
    /** Start `workers` threads (clamped to at least 1). */
    explicit ThreadPool(unsigned workers);

    /** shutdown(): drain accepted tasks, then join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue a task. False once shutdown has begun (the task will not
     * run); true means the task is guaranteed to run before
     * shutdown() returns.
     */
    bool enqueue(std::function<void()> task);

    /** Plain-function task for the allocation-free enqueueRaw(). */
    using RawTask = void (*)(void *);

    /**
     * Preallocate `slots` slots for enqueueRaw(). Call once before
     * the hot loop; shrinking below queued raw tasks is refused.
     */
    void reserveRawSlots(size_t slots);

    /**
     * Queue a function pointer + context into a preallocated slot.
     * Unlike enqueue(), this path constructs no std::function and
     * performs no heap allocation (asserted by tests/alloc_test.cc),
     * so per-shot hot paths can hand work to the pool without paying
     * the allocator. False once shutdown has begun OR when all raw
     * slots are occupied (bounded queue — the caller sheds or
     * retries); true carries the same run-before-shutdown guarantee
     * as enqueue(). Raw tasks run before std::function tasks.
     */
    bool enqueueRaw(RawTask fn, void *arg);

    /** Idempotent: drain accepted tasks, join the workers. */
    void shutdown();

    size_t workerCount() const { return workers_.size(); }

    /** Tasks accepted and finished, for tests and gauges. */
    uint64_t completedTasks() const;

  private:
    void workerLoop();

    struct RawSlot
    {
        RawTask fn = nullptr;
        void *arg = nullptr;
    };

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_;
    /** Fixed circular buffer backing enqueueRaw(). */
    std::vector<RawSlot> rawSlots_;
    size_t rawHead_ = 0;
    size_t rawCount_ = 0;
    std::vector<std::thread> workers_;
    uint64_t completed_ = 0;
    bool stopping_ = false;
};

} // namespace astrea

#endif // ASTREA_COMMON_THREAD_POOL_HH
