/**
 * @file
 * Minimal fork-join helper for Monte-Carlo sharding.
 *
 * The experiment harness splits shot budgets across hardware threads;
 * each worker gets an index so it can derive an independent RNG stream
 * and a private accumulator that the caller merges afterwards. A full
 * work-stealing pool would be overkill: every parallel region here is a
 * single embarrassingly-parallel loop of equal-cost chunks.
 */

#ifndef ASTREA_COMMON_THREAD_POOL_HH
#define ASTREA_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <cstdint>
#include <functional>

namespace astrea
{

/**
 * Run body(worker_index, begin, end) on num_workers threads, partitioning
 * [0, total) into contiguous chunks. Runs inline when num_workers <= 1.
 */
void parallelFor(uint64_t total, unsigned num_workers,
                 const std::function<void(unsigned, uint64_t, uint64_t)>
                     &body);

/**
 * Number of workers to use: the ASTREA_THREADS environment variable if
 * set, otherwise the hardware concurrency (at least 1).
 */
unsigned defaultWorkerCount();

} // namespace astrea

#endif // ASTREA_COMMON_THREAD_POOL_HH
