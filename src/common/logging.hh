/**
 * @file
 * Error reporting helpers in the gem5 style.
 *
 * fatal() is for user error (bad parameters, impossible configuration);
 * panic() is for internal invariant violations — a bug in this library.
 * Both print to stderr and terminate; panic() aborts so a core dump or
 * debugger can catch it.
 */

#ifndef ASTREA_COMMON_LOGGING_HH
#define ASTREA_COMMON_LOGGING_HH

#include <string>

namespace astrea
{

/** Terminate due to invalid user input or configuration (exit(1)). */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate due to an internal bug (abort()). */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

} // namespace astrea

/**
 * Invariant check that stays on in release builds. Decoding correctness
 * bugs silently corrupt LER measurements, so hot-path-adjacent checks are
 * kept active; truly hot inner loops use plain assert() instead.
 */
#define ASTREA_CHECK(cond, msg)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::astrea::panic(std::string("check failed: ") + #cond +       \
                            " - " + (msg));                               \
    } while (0)

#endif // ASTREA_COMMON_LOGGING_HH
