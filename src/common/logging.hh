/**
 * @file
 * Error reporting and leveled structured logging.
 *
 * fatal() is for user error (bad parameters, impossible configuration);
 * panic() is for internal invariant violations — a bug in this library.
 * Both print to stderr and terminate; panic() aborts so a core dump or
 * debugger can catch it.
 *
 * debugLog()/inform()/warn()/error() are leveled: messages below the
 * current threshold are dropped, and each surviving message is emitted
 * as a single mutex-guarded write so worker threads never interleave
 * partial lines on stderr. The threshold comes from the
 * ASTREA_LOG_LEVEL environment variable ("debug", "info", "warn",
 * "error", "off"; default "info") or setLogLevel().
 */

#ifndef ASTREA_COMMON_LOGGING_HH
#define ASTREA_COMMON_LOGGING_HH

#include <string>

namespace astrea
{

/** Severity levels, in increasing order. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,  ///< Threshold only: suppresses everything.
};

/** Current threshold (lazily read from ASTREA_LOG_LEVEL). */
LogLevel logLevel();

/** Override the threshold for this process. */
void setLogLevel(LogLevel level);

/**
 * Parse a level name ("debug"/"info"/"warn"/"error"/"off" or "0".."4")
 * as ASTREA_LOG_LEVEL does; unknown strings yield Info.
 */
LogLevel logLevelFromString(const std::string &name);

/** Would a message at this level currently be emitted? */
bool logEnabled(LogLevel level);

/**
 * Emit one message at the given level: "<level>: <msg>\n" to stderr,
 * written atomically under the logging mutex. Messages below the
 * threshold are dropped.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Terminate due to invalid user input or configuration (exit(1)). */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate due to an internal bug (abort()). */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print an error (non-fatal) message to stderr. */
void error(const std::string &msg);

/** Print a debug message to stderr (dropped unless level is Debug). */
void debugLog(const std::string &msg);

} // namespace astrea

/**
 * Invariant check that stays on in release builds. Decoding correctness
 * bugs silently corrupt LER measurements, so hot-path-adjacent checks are
 * kept active; truly hot inner loops use plain assert() instead.
 */
#define ASTREA_CHECK(cond, msg)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::astrea::panic(std::string("check failed: ") + #cond +       \
                            " - " + (msg));                               \
    } while (0)

#endif // ASTREA_COMMON_LOGGING_HH
