/**
 * @file
 * Pseudo-random number generation for Monte-Carlo sampling.
 *
 * The simulator needs a fast, splittable generator so that worker threads
 * can draw independent streams from a single user-provided seed. We use
 * xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
 * standard construction for initializing xoshiro state.
 */

#ifndef ASTREA_COMMON_RNG_HH
#define ASTREA_COMMON_RNG_HH

#include <cstdint>

namespace astrea
{

/**
 * xoshiro256** generator.
 *
 * Satisfies the C++ UniformRandomBitGenerator concept so it can be used
 * with <random> distributions, though the hot paths below avoid the
 * standard distributions for speed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ull; }

    /** Next raw 64-bit value. */
    uint64_t operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). Requires bound > 0. */
    uint64_t uniformInt(uint64_t bound);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /**
     * Geometric gap for skip-sampling a Bernoulli(p) stream.
     *
     * Returns the number of failures before the next success, i.e. the
     * index offset of the next set position when scanning a long vector
     * of iid Bernoulli(p) bits. Used by the sparse error sampler to jump
     * directly between error locations in O(#errors) per shot.
     */
    uint64_t geometricSkip(double p);

    /**
     * Derive an independent child generator for worker thread i.
     *
     * Children are created by re-seeding through SplitMix64 with a
     * stream-index perturbation, which is sufficient decorrelation for
     * Monte-Carlo use.
     */
    Rng split(uint64_t stream) const;

  private:
    uint64_t s_[4];
};

} // namespace astrea

#endif // ASTREA_COMMON_RNG_HH
