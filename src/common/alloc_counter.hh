/**
 * @file
 * Heap-allocation counter for zero-allocation assertions.
 *
 * The batch decode path (Decoder::decodeInto with a DecodeScratch) is
 * required to perform zero steady-state heap allocations for the
 * hardware-modeled decoders. That property silently regresses — a
 * stray std::function, an unpooled vector — so tests and the latency
 * bench count operator-new calls around a decode loop.
 *
 * The counting itself lives in a separate translation unit
 * (alloc_hook.cc) that replaces the global operator new/delete; it is
 * linked only into the allocation test and, behind the
 * ASTREA_ALLOC_COUNTER build option, into bench_astrea_latency.
 * Without that TU, allocCount() stays 0 and allocHookInstalled()
 * reports false, so callers can tell "zero allocations" apart from
 * "not measuring".
 */

#ifndef ASTREA_COMMON_ALLOC_COUNTER_HH
#define ASTREA_COMMON_ALLOC_COUNTER_HH

#include <atomic>
#include <cstdint>

namespace astrea
{

/** Global operator-new calls so far; 0 unless the hook is linked. */
uint64_t allocCount();

/** True when alloc_hook.cc's counting operator new is linked in. */
bool allocHookInstalled();

namespace detail
{

/** The counter the hook TU increments. */
std::atomic<uint64_t> &allocCounter();

/** Called from the hook TU's static initializer. */
void markAllocHookInstalled();

} // namespace detail

} // namespace astrea

#endif // ASTREA_COMMON_ALLOC_COUNTER_HH
