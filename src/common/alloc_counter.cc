#include "common/alloc_counter.hh"

namespace astrea
{

namespace
{

// Constant-initialized so the hook can count before main() runs.
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_hook_installed{false};

} // namespace

uint64_t
allocCount()
{
    return g_alloc_count.load(std::memory_order_relaxed);
}

bool
allocHookInstalled()
{
    return g_hook_installed.load(std::memory_order_relaxed);
}

namespace detail
{

std::atomic<uint64_t> &
allocCounter()
{
    return g_alloc_count;
}

void
markAllocHookInstalled()
{
    g_hook_installed.store(true, std::memory_order_relaxed);
}

} // namespace detail

} // namespace astrea
