#include "common/cli.hh"

#include <cctype>
#include <cstdlib>

namespace astrea
{

namespace
{

/** Map "shots" to "ASTREA_SHOTS". */
std::string
envName(const std::string &key)
{
    std::string out = "ASTREA_";
    for (char c : key) {
        if (c == '-')
            out.push_back('_');
        else
            out.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

Options
Options::parse(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq == std::string::npos)
            opts.values_[arg] = "1";
        else
            opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
    return opts;
}

bool
Options::has(const std::string &key) const
{
    if (values_.count(key))
        return true;
    return std::getenv(envName(key).c_str()) != nullptr;
}

std::string
Options::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    if (it != values_.end())
        return it->second;
    if (const char *env = std::getenv(envName(key).c_str()))
        return env;
    return def;
}

int64_t
Options::getInt(const std::string &key, int64_t def) const
{
    std::string s = getString(key, "");
    if (s.empty())
        return def;
    return std::atoll(s.c_str());
}

uint64_t
Options::getUint(const std::string &key, uint64_t def) const
{
    std::string s = getString(key, "");
    if (s.empty())
        return def;
    return std::strtoull(s.c_str(), nullptr, 10);
}

double
Options::getDouble(const std::string &key, double def) const
{
    std::string s = getString(key, "");
    if (s.empty())
        return def;
    return std::atof(s.c_str());
}

void
Options::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
parseDurationMillis(const std::string &text, uint64_t *out_ms)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || v < 0.0 || v != v)
        return false;
    std::string unit = end;
    double scale = 0.0;
    if (unit.empty() || unit == "s")
        scale = 1000.0;  // Bare numbers are seconds.
    else if (unit == "ms")
        scale = 1.0;
    else if (unit == "m")
        scale = 60.0 * 1000.0;
    else
        return false;
    *out_ms = static_cast<uint64_t>(v * scale + 0.5);
    return true;
}

} // namespace astrea
