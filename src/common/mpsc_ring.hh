/**
 * @file
 * Bounded lock-free multi-producer ring (Vyukov MPMC design).
 *
 * Generalizes the audit queue's fixed-capacity ring into a template so
 * the decode fleet's shard ingestion queues (many TCP reader threads
 * pushing, one shard worker popping) share the same proven core. The
 * slot type is copied by value, so it must be trivially copyable-ish
 * and carry its payload inline (no owned heap state): steady-state
 * tryPush/tryPop touch no allocator and never block. tryPush on a full
 * ring fails immediately — the caller counts the rejection (backpressure
 * signal) and sheds or retries.
 *
 * The design supports multiple consumers too (it is a full MPMC ring);
 * the fleet uses it single-consumer per shard, the auditor drains it
 * from one background thread.
 */

#ifndef ASTREA_COMMON_MPSC_RING_HH
#define ASTREA_COMMON_MPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace astrea
{

/** Fixed-capacity lock-free ring; see file comment. */
template <typename T> class MpscRing
{
  public:
    /** Capacity is rounded up to a power of two (min 2). */
    explicit MpscRing(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (size_t i = 0; i < cap; i++)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /** Enqueue a copy of v; false (without blocking) when full. */
    bool
    tryPush(const T &v)
    {
        uint64_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            uint64_t seq = cell.seq.load(std::memory_order_acquire);
            intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos);
            if (diff == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.value = v;
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false;  // Full.
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Dequeue into out; false when empty. */
    bool
    tryPop(T &out)
    {
        uint64_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            uint64_t seq = cell.seq.load(std::memory_order_acquire);
            intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos + 1);
            if (diff == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    out = cell.value;
                    cell.seq.store(pos + mask_ + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false;  // Empty.
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    size_t capacity() const { return mask_ + 1; }

    /** Approximate occupancy (racy; for gauges only). */
    size_t
    sizeApprox() const
    {
        uint64_t head = head_.load(std::memory_order_relaxed);
        uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (head <= tail)
            return 0;
        uint64_t n = head - tail;
        return n > capacity() ? capacity() : static_cast<size_t>(n);
    }

  private:
    struct Cell
    {
        std::atomic<uint64_t> seq{0};
        T value;
    };

    std::unique_ptr<Cell[]> cells_;
    size_t mask_ = 0;
    alignas(64) std::atomic<uint64_t> head_{0};  ///< Next push slot.
    alignas(64) std::atomic<uint64_t> tail_{0};  ///< Next pop slot.
};

} // namespace astrea

#endif // ASTREA_COMMON_MPSC_RING_HH
