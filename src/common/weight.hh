/**
 * @file
 * Quantized matching weights.
 *
 * The paper stores each pair weight as an 8-bit value "corresponding to
 * -log10(probability of the pair matching)" (Sec. 5.1): a pairing that
 * occurs with probability 1e-6 has weight 6. Hardware thresholds such as
 * Wth are expressed in these decade units. We keep sub-decade resolution
 * by using a fixed-point representation with 1/8-decade LSB, which still
 * fits the full useful range (0 .. 31.875 decades) in a byte.
 */

#ifndef ASTREA_COMMON_WEIGHT_HH
#define ASTREA_COMMON_WEIGHT_HH

#include <cstdint>
#include <limits>

namespace astrea
{

/** Fixed-point weight stored in hardware tables (1/8 decade per LSB). */
using QWeight = uint8_t;

/** Scale factor: quantized units per decade of probability. */
constexpr int kWeightScale = 8;

/**
 * Sentinel for "no edge": the all-ones byte. Any real path weight in the
 * regimes we study is far below 31.875 decades.
 */
constexpr QWeight kInfiniteWeight = std::numeric_limits<QWeight>::max();

/**
 * Accumulated weights (sums over pairings) need more than 8 bits; the
 * hardware accumulates into wider registers.
 */
using WeightSum = uint32_t;

constexpr WeightSum kInfiniteWeightSum =
    std::numeric_limits<WeightSum>::max();

/** Quantize a real-valued -log10 weight, saturating at the sentinel. */
QWeight quantizeWeight(double neg_log10_prob);

/** Convert a quantized weight back to decades of probability. */
double weightToDecades(QWeight w);

/** Convert a probability to its exact (unquantized) decade weight. */
double probToDecades(double p);

/** Express a decade threshold (e.g. Wth = 7) in quantized units. */
WeightSum decadesToQuantized(double decades);

/** Saturating add of two quantized pair weights into a sum. */
inline WeightSum
addWeights(WeightSum a, WeightSum b)
{
    if (a == kInfiniteWeightSum || b == kInfiniteWeightSum)
        return kInfiniteWeightSum;
    return a + b;
}

} // namespace astrea

#endif // ASTREA_COMMON_WEIGHT_HH
