#include "common/env.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>

#include "common/logging.hh"

namespace astrea
{
namespace env
{

namespace
{

std::mutex g_warned_mu;
std::set<std::string> &
warnedSet()
{
    static std::set<std::string> warned;
    return warned;
}

/** Warn about a malformed variable at most once per process. */
void
warnOnce(const char *name, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_warned_mu);
        if (!warnedSet().insert(name).second)
            return;
    }
    warn(std::string(name) + ": " + msg);
}

std::string
lowered(const char *s)
{
    std::string out;
    for (; *s; s++)
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*s))));
    return out;
}

} // namespace

const char *
raw(const char *name)
{
    return std::getenv(name);
}

std::string
getString(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    return v == nullptr ? def : std::string(v);
}

bool
getBool(const char *name, bool def)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return def;
    std::string low = lowered(v);
    return !(low.empty() || low == "0" || low == "off" ||
             low == "false" || low == "no");
}

uint64_t
getUint(const char *name, uint64_t def, uint64_t min_value)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return def;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    // Reject empty strings, partial parses ("2x") and negatives
    // (strtoull silently wraps "-2" to a huge value).
    if (end == v || *end != '\0' || v[0] == '-') {
        warnOnce(name, "'" + std::string(v) +
                           "' is not a non-negative integer; using " +
                           std::to_string(def));
        return def;
    }
    if (parsed < min_value) {
        warnOnce(name, "'" + std::string(v) + "' is below the minimum " +
                           std::to_string(min_value) + "; using " +
                           std::to_string(def));
        return def;
    }
    return static_cast<uint64_t>(parsed);
}

double
getDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return def;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || !std::isfinite(parsed)) {
        warnOnce(name, "'" + std::string(v) +
                           "' is not a finite number; using default");
        return def;
    }
    return parsed;
}

void
resetWarningsForTest()
{
    std::lock_guard<std::mutex> lock(g_warned_mu);
    warnedSet().clear();
}

} // namespace env
} // namespace astrea
