/**
 * @file
 * Compact bit vector used for syndromes and detection-event records.
 *
 * Syndrome vectors for the codes in this study are a few hundred bits
 * (d = 9 uses 400 Z-detectors), so a small word-packed vector with fast
 * popcount, XOR and set-bit iteration covers every hot path.
 */

#ifndef ASTREA_COMMON_BITVEC_HH
#define ASTREA_COMMON_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace astrea
{

/** Word-packed dynamic bit vector. */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct with n bits, all zero. */
    explicit BitVec(size_t n) : numBits_(n), words_((n + 63) / 64, 0) {}

    size_t size() const { return numBits_; }

    bool
    get(size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i, bool v = true)
    {
        if (v)
            words_[i >> 6] |= (1ull << (i & 63));
        else
            words_[i >> 6] &= ~(1ull << (i & 63));
    }

    /** Toggle bit i; returns the new value. */
    bool
    flip(size_t i)
    {
        words_[i >> 6] ^= (1ull << (i & 63));
        return get(i);
    }

    /** Reset all bits to zero without changing the size. */
    void clear();

    /**
     * Resize to n bits, all zero. Reuses the word storage, so resizing
     * a scratch vector to the same width repeatedly never allocates.
     */
    void
    resize(size_t n)
    {
        numBits_ = n;
        words_.assign((n + 63) / 64, 0);
    }

    /** Number of set bits (the syndrome's Hamming weight). */
    size_t popcount() const;

    /** True if no bit is set. */
    bool none() const;

    /** XOR-accumulate another vector of the same size. */
    BitVec &operator^=(const BitVec &other);

    bool operator==(const BitVec &other) const;

    /** Indices of set bits in increasing order. */
    std::vector<uint32_t> onesIndices() const;

    /**
     * Indices of set bits, written into a caller-owned buffer so hot
     * shot loops reuse its capacity instead of allocating per shot.
     */
    void onesIndicesInto(std::vector<uint32_t> &out) const;

    /** "0101..." rendering, index 0 first (for tests and debugging). */
    std::string toString() const;

    /** FNV-1a hash of the contents (for LUT-decoder keys). */
    uint64_t hash() const;

  private:
    size_t numBits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace astrea

#endif // ASTREA_COMMON_BITVEC_HH
