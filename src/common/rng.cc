#include "common/rng.hh"

#include <cmath>

namespace astrea
{

namespace
{

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (int i = 0; i < 4; i++)
        s_[i] = splitMix64(x);
    // A zero state would be a fixed point; nudge it if the seed expands
    // to all zeros (astronomically unlikely but cheap to guard).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // Take the top 53 bits for a uniform double in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    // Lemire's multiply-shift rejection method.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t t = -bound % bound;
        while (l < t) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

uint64_t
Rng::geometricSkip(double p)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return ~0ull;
    // floor(log(U)/log(1-p)) failures before the next success.
    double u = uniform();
    // uniform() can return exactly 0; log(0) is -inf, which maps to a
    // huge skip. Clamp to the smallest representable positive value.
    if (u <= 0.0)
        u = 0x1.0p-53;
    double g = std::floor(std::log(u) / std::log1p(-p));
    if (g > 9e18)
        return ~0ull;
    return static_cast<uint64_t>(g);
}

Rng
Rng::split(uint64_t stream) const
{
    // Hash the current state together with the stream index.
    uint64_t x = s_[0] ^ (s_[3] + 0x632be59bd9b4e019ull * (stream + 1));
    return Rng(splitMix64(x));
}

} // namespace astrea
