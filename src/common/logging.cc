#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace astrea
{

namespace
{

/** Guards every stderr write so messages never interleave. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

std::atomic<int> g_level{-1};  ///< -1 = read ASTREA_LOG_LEVEL lazily.

int
parseLevel(const char *s)
{
    if (s == nullptr || s[0] == '\0')
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(s, "debug") == 0 || std::strcmp(s, "0") == 0)
        return static_cast<int>(LogLevel::Debug);
    if (std::strcmp(s, "info") == 0 || std::strcmp(s, "1") == 0)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "2") == 0)
        return static_cast<int>(LogLevel::Warn);
    if (std::strcmp(s, "error") == 0 || std::strcmp(s, "3") == 0)
        return static_cast<int>(LogLevel::Error);
    if (std::strcmp(s, "off") == 0 || std::strcmp(s, "4") == 0)
        return static_cast<int>(LogLevel::Off);
    return static_cast<int>(LogLevel::Info);
}

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Off:
        break;
    }
    return "log";
}

/** One locked write of an already-formatted line. */
void
writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

LogLevel
logLevel()
{
    int v = g_level.load(std::memory_order_relaxed);
    if (v < 0) {
        v = parseLevel(std::getenv("ASTREA_LOG_LEVEL"));
        int expected = -1;
        g_level.compare_exchange_strong(expected, v);
        v = g_level.load(std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(v);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevelFromString(const std::string &name)
{
    return static_cast<LogLevel>(parseLevel(name.c_str()));
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(logLevel());
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Off || !logEnabled(level))
        return;
    std::string line;
    line.reserve(msg.size() + 10);
    line += levelPrefix(level);
    line += ": ";
    line += msg;
    line += '\n';
    writeLine(line);
}

void
fatal(const std::string &msg)
{
    // Always emitted, regardless of the log-level threshold.
    writeLine("fatal: " + msg + "\n");
    std::exit(1);
}

void
panic(const std::string &msg)
{
    writeLine("panic: " + msg + "\n");
    std::abort();
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

void
error(const std::string &msg)
{
    logMessage(LogLevel::Error, msg);
}

void
debugLog(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

} // namespace astrea
