/**
 * @file
 * Typed environment-variable readers with one-time warnings.
 *
 * Every subsystem used to hand-roll its own std::getenv parsing
 * (telemetry switches, trace paths, flight-recorder capacity, worker
 * counts), each with slightly different malformed-value behavior. This
 * helper centralizes the conventions:
 *
 *   - unset variables yield the caller's default, silently;
 *   - malformed values (non-numeric, below a stated minimum) yield the
 *     default and warn exactly once per variable per process, so a
 *     typo'd knob is loud without spamming worker threads;
 *   - boolean variables treat "", "0", "off", "false" and "no"
 *     (case-insensitive) as false and anything else as true.
 *
 * The ASTREA_SERVE_* service knobs, ASTREA_THREADS, ASTREA_TELEMETRY,
 * the forensics paths and the kernel-dispatch overrides
 * (ASTREA_FORCE_KERNEL={scalar,avx2,avx512}, pinning one matching-
 * kernel tier with warn-once fallback when the CPU lacks it, and the
 * legacy ASTREA_FORCE_SCALAR boolean) all read through here.
 */

#ifndef ASTREA_COMMON_ENV_HH
#define ASTREA_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace astrea
{
namespace env
{

/** Raw getenv; nullptr when unset. */
const char *raw(const char *name);

/** String value, or def when the variable is unset. */
std::string getString(const char *name, const std::string &def);

/**
 * Boolean value. Unset yields def; "", "0", "off", "false", "no"
 * (case-insensitive) are false; any other value is true.
 */
bool getBool(const char *name, bool def);

/**
 * Unsigned integer value. Unset yields def; a value that does not
 * parse completely as a base-10 non-negative integer, or parses below
 * min_value, warns once and yields def.
 */
uint64_t getUint(const char *name, uint64_t def,
                 uint64_t min_value = 0);

/**
 * Floating-point value. Unset yields def; a value that does not parse
 * completely as a finite number warns once and yields def.
 */
double getDouble(const char *name, double def);

/** Testing hook: forget which variables have already warned. */
void resetWarningsForTest();

} // namespace env
} // namespace astrea

#endif // ASTREA_COMMON_ENV_HH
