#include "common/thread_pool.hh"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/env.hh"

namespace astrea
{

void
parallelFor(uint64_t total, unsigned num_workers,
            const std::function<void(unsigned, uint64_t, uint64_t)> &body)
{
    if (total == 0)
        return;
    num_workers = std::max(1u, num_workers);
    num_workers = static_cast<unsigned>(
        std::min<uint64_t>(num_workers, total));
    if (num_workers == 1) {
        body(0, 0, total);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    uint64_t chunk = total / num_workers;
    uint64_t rem = total % num_workers;
    uint64_t begin = 0;
    for (unsigned w = 0; w < num_workers; w++) {
        uint64_t len = chunk + (w < rem ? 1 : 0);
        uint64_t end = begin + len;
        threads.emplace_back([&body, w, begin, end] {
            body(w, begin, end);
        });
        begin = end;
    }
    for (auto &t : threads)
        t.join();
}

unsigned
defaultWorkerCount()
{
    uint64_t v = env::getUint("ASTREA_THREADS", 0, 1);
    if (v > 0)
        return static_cast<unsigned>(v);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace astrea
