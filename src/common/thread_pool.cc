#include "common/thread_pool.hh"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/env.hh"

namespace astrea
{

void
parallelFor(uint64_t total, unsigned num_workers,
            const std::function<void(unsigned, uint64_t, uint64_t)> &body)
{
    if (total == 0)
        return;
    num_workers = std::max(1u, num_workers);
    num_workers = static_cast<unsigned>(
        std::min<uint64_t>(num_workers, total));
    if (num_workers == 1) {
        body(0, 0, total);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    uint64_t chunk = total / num_workers;
    uint64_t rem = total % num_workers;
    uint64_t begin = 0;
    for (unsigned w = 0; w < num_workers; w++) {
        uint64_t len = chunk + (w < rem ? 1 : 0);
        uint64_t end = begin + len;
        threads.emplace_back([&body, w, begin, end] {
            body(w, begin, end);
        });
        begin = end;
    }
    for (auto &t : threads)
        t.join();
}

unsigned
defaultWorkerCount()
{
    uint64_t v = env::getUint("ASTREA_THREADS", 0, 1);
    if (v > 0)
        return static_cast<unsigned>(v);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    workers_.reserve(std::max(1u, workers));
    for (unsigned i = 0; i < std::max(1u, workers); i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

bool
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return false;
        tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
}

void
ThreadPool::reserveRawSlots(size_t slots)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (slots < rawCount_)
        return;  // Never drop queued raw tasks.
    std::vector<RawSlot> fresh(slots);
    for (size_t i = 0; i < rawCount_; i++)
        fresh[i] = rawSlots_[(rawHead_ + i) % rawSlots_.size()];
    rawSlots_ = std::move(fresh);
    rawHead_ = 0;
}

bool
ThreadPool::enqueueRaw(RawTask fn, void *arg)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ || rawCount_ == rawSlots_.size())
            return false;
        RawSlot &slot =
            rawSlots_[(rawHead_ + rawCount_) % rawSlots_.size()];
        slot.fn = fn;
        slot.arg = arg;
        rawCount_++;
    }
    cv_.notify_one();
    return true;
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ && workers_.empty())
            return;
        stopping_ = true;
    }
    // Wake EVERY worker: each one re-evaluates its predicate, drains
    // whatever tasks remain, and exits only once the queue is empty —
    // a task accepted before the stopping_ flip can therefore never
    // be stranded by a lost wakeup.
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
}

uint64_t
ThreadPool::completedTasks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_.wait(lock, [this] {
            return stopping_ || rawCount_ > 0 || !tasks_.empty();
        });
        if (rawCount_ > 0) {
            // Raw slots first: the hot path that queued them is
            // latency-sensitive, and draining keeps slots free.
            RawSlot slot = rawSlots_[rawHead_];
            rawHead_ = (rawHead_ + 1) % rawSlots_.size();
            rawCount_--;
            lock.unlock();
            slot.fn(slot.arg);
            lock.lock();
            completed_++;
            continue;
        }
        if (tasks_.empty()) {
            // stopping_ and nothing left to drain.
            return;
        }
        std::function<void()> task = std::move(tasks_.front());
        tasks_.pop_front();
        lock.unlock();
        task();
        lock.lock();
        completed_++;
    }
}

} // namespace astrea
