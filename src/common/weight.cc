#include "common/weight.hh"

#include <cmath>

namespace astrea
{

QWeight
quantizeWeight(double neg_log10_prob)
{
    if (!(neg_log10_prob >= 0.0))
        neg_log10_prob = 0.0;
    double scaled = std::round(neg_log10_prob * kWeightScale);
    if (scaled >= kInfiniteWeight)
        return kInfiniteWeight;
    return static_cast<QWeight>(scaled);
}

double
weightToDecades(QWeight w)
{
    return static_cast<double>(w) / kWeightScale;
}

double
probToDecades(double p)
{
    if (p <= 0.0)
        return std::numeric_limits<double>::infinity();
    if (p >= 1.0)
        return 0.0;
    return -std::log10(p);
}

WeightSum
decadesToQuantized(double decades)
{
    if (decades < 0.0)
        decades = 0.0;
    double scaled = std::round(decades * kWeightScale);
    if (scaled >= kInfiniteWeightSum)
        return kInfiniteWeightSum;
    return static_cast<WeightSum>(scaled);
}

} // namespace astrea
