#include "common/bitvec.hh"

#include <bit>
#include <cassert>

namespace astrea
{

void
BitVec::clear()
{
    for (auto &w : words_)
        w = 0;
}

size_t
BitVec::popcount() const
{
    size_t n = 0;
    for (auto w : words_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

bool
BitVec::none() const
{
    for (auto w : words_) {
        if (w)
            return false;
    }
    return true;
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    assert(numBits_ == other.numBits_);
    for (size_t i = 0; i < words_.size(); i++)
        words_[i] ^= other.words_[i];
    return *this;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return numBits_ == other.numBits_ && words_ == other.words_;
}

std::vector<uint32_t>
BitVec::onesIndices() const
{
    std::vector<uint32_t> out;
    onesIndicesInto(out);
    return out;
}

void
BitVec::onesIndicesInto(std::vector<uint32_t> &out) const
{
    out.clear();
    for (size_t wi = 0; wi < words_.size(); wi++) {
        uint64_t w = words_[wi];
        while (w) {
            int b = std::countr_zero(w);
            out.push_back(static_cast<uint32_t>(wi * 64 + b));
            w &= w - 1;
        }
    }
}

std::string
BitVec::toString() const
{
    std::string s;
    s.reserve(numBits_);
    for (size_t i = 0; i < numBits_; i++)
        s.push_back(get(i) ? '1' : '0');
    return s;
}

uint64_t
BitVec::hash() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (auto w : words_) {
        h ^= w;
        h *= 0x100000001b3ull;
    }
    h ^= numBits_;
    h *= 0x100000001b3ull;
    return h;
}

} // namespace astrea
