/**
 * @file
 * Counting replacement for the global operator new/delete.
 *
 * Deliberately NOT part of astrea_core: linking this TU changes the
 * process-wide allocator behavior, so only the allocation test (and,
 * behind ASTREA_ALLOC_COUNTER, bench_astrea_latency) pulls it in. See
 * common/alloc_counter.hh for the read side.
 */

#include <cstdlib>
#include <new>

#include "common/alloc_counter.hh"

namespace
{

struct HookMarker
{
    HookMarker() { astrea::detail::markAllocHookInstalled(); }
};
HookMarker g_marker;

void *
countedAlloc(std::size_t n) noexcept
{
    astrea::detail::allocCounter().fetch_add(1,
                                             std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void *
countedAllocOrThrow(std::size_t n)
{
    for (;;) {
        if (void *p = countedAlloc(n))
            return p;
        std::new_handler h = std::get_new_handler();
        if (h == nullptr)
            throw std::bad_alloc();
        h();
    }
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAllocOrThrow(n);
}

void *
operator new[](std::size_t n)
{
    return countedAllocOrThrow(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
