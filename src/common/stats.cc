#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace astrea
{

void
RunningStats::add(double x)
{
    n_++;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    double delta = other.mean_ - mean_;
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(size_t max_key) : bins_(max_key + 1, 0) {}

void
Histogram::add(size_t key, uint64_t count)
{
    if (key < bins_.size())
        bins_[key] += count;
    else
        overflow_ += count;
    total_ += count;
}

void
Histogram::merge(const Histogram &other)
{
    if (bins_.size() < other.bins_.size())
        bins_.resize(other.bins_.size(), 0);
    for (size_t i = 0; i < other.bins_.size(); i++)
        bins_[i] += other.bins_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
}

uint64_t
Histogram::at(size_t key) const
{
    return key < bins_.size() ? bins_[key] : 0;
}

double
Histogram::frequency(size_t key) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(at(key)) / static_cast<double>(total_);
}

double
Histogram::tailFrequency(size_t k) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t tail = overflow_;
    for (size_t i = k + 1; i < bins_.size(); i++)
        tail += bins_[i];
    return static_cast<double>(tail) / static_cast<double>(total_);
}

size_t
Histogram::maxObserved() const
{
    for (size_t i = bins_.size(); i-- > 0;) {
        if (bins_[i])
            return i;
    }
    return 0;
}

double
BinomialEstimate::pointEstimate() const
{
    if (trials == 0)
        return 0.0;
    return static_cast<double>(successes) / static_cast<double>(trials);
}

namespace
{

/** Wilson score bound; sign = +1 for upper, -1 for lower. */
double
wilson(uint64_t k, uint64_t n, double sign)
{
    if (n == 0)
        return 0.0;
    const double z = 1.96;
    double nf = static_cast<double>(n);
    double phat = static_cast<double>(k) / nf;
    double denom = 1.0 + z * z / nf;
    double center = phat + z * z / (2.0 * nf);
    double margin =
        z * std::sqrt(phat * (1.0 - phat) / nf + z * z / (4.0 * nf * nf));
    double v = (center + sign * margin) / denom;
    return std::clamp(v, 0.0, 1.0);
}

} // namespace

double
BinomialEstimate::lower95() const
{
    return wilson(successes, trials, -1.0);
}

double
BinomialEstimate::upper95() const
{
    return wilson(successes, trials, 1.0);
}

double
binomialPmf(uint64_t n, double p, uint64_t k)
{
    if (k > n || p < 0.0 || p > 1.0)
        return 0.0;
    if (p == 0.0)
        return k == 0 ? 1.0 : 0.0;
    if (p == 1.0)
        return k == n ? 1.0 : 0.0;
    double nf = static_cast<double>(n);
    double kf = static_cast<double>(k);
    double log_pmf = std::lgamma(nf + 1.0) - std::lgamma(kf + 1.0) -
                     std::lgamma(nf - kf + 1.0) + kf * std::log(p) +
                     (nf - kf) * std::log1p(-p);
    return std::exp(log_pmf);
}

std::string
formatProb(double p)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", p);
    return std::string(buf);
}

} // namespace astrea
