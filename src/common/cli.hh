/**
 * @file
 * Tiny command-line / environment option parser for benches and examples.
 *
 * Benches accept overrides both as "--key=value" arguments and as
 * ASTREA_<KEY> environment variables (arguments win), so the full suite
 * can be re-scoped — e.g. shot counts — without editing code.
 */

#ifndef ASTREA_COMMON_CLI_HH
#define ASTREA_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>

namespace astrea
{

/** Parsed option bag. */
class Options
{
  public:
    Options() = default;

    /**
     * Parse argv entries of the form --key=value or --flag. Unrecognized
     * positional arguments are ignored (google-benchmark passes its own).
     */
    static Options parse(int argc, char **argv);

    /** Look up a key: argv first, then ASTREA_<KEY> from the environment. */
    bool has(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    int64_t getInt(const std::string &key, int64_t def) const;
    uint64_t getUint(const std::string &key, uint64_t def) const;
    double getDouble(const std::string &key, double def) const;

    void set(const std::string &key, const std::string &value);

  private:
    std::map<std::string, std::string> values_;
};

/**
 * Parse a human-readable duration into milliseconds: "500ms", "2s",
 * "1.5s", "1m", or a bare number (seconds). Returns false on malformed
 * or negative input; *out_ms is untouched on failure.
 */
bool parseDurationMillis(const std::string &text, uint64_t *out_ms);

} // namespace astrea

#endif // ASTREA_COMMON_CLI_HH
