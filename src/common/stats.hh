/**
 * @file
 * Lightweight statistics helpers for the experiment harness.
 *
 * Provides a streaming mean/min/max/stddev accumulator, a fixed-bin
 * histogram, and binomial confidence intervals for logical-error-rate
 * estimates (Wilson score, which behaves well when the success count is
 * tiny — the usual situation when estimating LERs of 1e-5 and below).
 */

#ifndef ASTREA_COMMON_STATS_HH
#define ASTREA_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace astrea
{

/** Streaming scalar accumulator (Welford's algorithm for the variance). */
class RunningStats
{
  public:
    void add(double x);

    /** Merge another accumulator into this one (for per-thread stats). */
    void merge(const RunningStats &other);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Integer-keyed histogram with dense storage up to a cap. */
class Histogram
{
  public:
    /** Construct with bins [0, max_key]; larger keys go to an overflow. */
    explicit Histogram(size_t max_key = 64);

    void add(size_t key, uint64_t count = 1);
    void merge(const Histogram &other);

    uint64_t total() const { return total_; }
    uint64_t at(size_t key) const;
    uint64_t overflow() const { return overflow_; }
    size_t maxKey() const { return bins_.size() - 1; }

    /** Fraction of samples with the given key. */
    double frequency(size_t key) const;

    /** Fraction of samples with key strictly greater than k. */
    double tailFrequency(size_t k) const;

    /** Largest key with a nonzero count (0 if empty). */
    size_t maxObserved() const;

  private:
    std::vector<uint64_t> bins_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/** Result of a binomial proportion estimate. */
struct BinomialEstimate
{
    uint64_t successes = 0;
    uint64_t trials = 0;
    double pointEstimate() const;
    /** Wilson score interval at ~95% confidence. */
    double lower95() const;
    double upper95() const;
};

/** Binomial(n, p) point mass at k, computed in log space for stability. */
double binomialPmf(uint64_t n, double p, uint64_t k);

/** Format a probability like "6.0e-09" for experiment reports. */
std::string formatProb(double p);

} // namespace astrea

#endif // ASTREA_COMMON_STATS_HH
