/**
 * @file
 * Live decode service: a continuous streaming memory-experiment
 * workload with scrapeable health (`astrea_cli serve`).
 *
 * The paper's premise is a decoder that keeps up with syndromes
 * arriving every 1 us, indefinitely (Sec. 3.4) — a deployed decoder is
 * a long-running service whose *current* health matters, not a batch
 * job summarized afterwards. DecodeServiceCore runs the same shot loop
 * as runMemoryExperiment() but forever, and layers three live views on
 * top of the since-start telemetry registry:
 *
 *  - rolling windows (telemetry/rolling_window.hh): decode rate,
 *    give-up rate, deadline-miss fraction and latency percentiles over
 *    the last N seconds rather than since process start;
 *  - an SLO tracker: the fraction of decodes exceeding the modeled
 *    1 us cycle budget, expressed as fast/slow burn rates against the
 *    configured SLO target (burn rate 1.0 = exactly consuming the
 *    error budget; >1 = on track to violate);
 *  - a syndrome-drift monitor: a chi-square distance between the
 *    recent Hamming-weight histogram and a warm-up baseline — the
 *    online counterpart of the flight recorder's post-mortem view. A
 *    rising physical error rate shows up here long before the logical
 *    error rate moves.
 *
 * DecodeServiceCore is deliberately thread-agnostic and clock-
 * injectable: tests call decodeOnce() synchronously with a fake tick
 * and get deterministic scrapes. DecodeService adds the worker
 * threads and the HTTP endpoints (/metrics Prometheus exposition,
 * /statusz JSON snapshot, /healthz probe).
 */

#ifndef ASTREA_HARNESS_DECODE_SERVICE_HH
#define ASTREA_HARNESS_DECODE_SERVICE_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "audit/auditor.hh"
#include "harness/fleet.hh"
#include "harness/memory_experiment.hh"
#include "net/http_server.hh"
#include "telemetry/rolling_window.hh"

namespace astrea
{

namespace net
{
class FleetServer;
}

/** Static configuration of one decode service. */
struct ServeConfig
{
    uint32_t distance = 5;
    uint32_t rounds = 0;  ///< 0 = distance rounds.
    double physicalErrorRate = 1e-3;
    /** Any registry name (see `astrea_cli list-decoders`). */
    std::string decoder = "astrea";
    unsigned workers = 2;
    uint64_t seed = 1;
    /** Shots each worker samples and decodes per batch-path call.
     *  One LwtTileBlock bucket group, so the service's coalesced
     *  arrivals fill the wide decode path without a re-layout. */
    uint64_t batchShots = 32;

    /** SLO: decodes must finish within this budget... */
    double budgetNs = 1000.0;
    /** ...for at least this fraction of decodes. */
    double sloTarget = 0.999;

    /** Rolling window geometry: slots x length = the slow window. */
    uint64_t subWindowMillis = 1000;
    size_t subWindows = 15;
    /** Fast burn-rate window, in sub-windows. */
    size_t fastBurnSubWindows = 3;

    /** Drift monitor: baseline size, ring-slot size, ring length. */
    uint64_t warmupShots = 5000;
    uint64_t driftBucketShots = 1000;
    size_t driftRingSlots = 8;
    /** Chi-square distance (in [0,1]) that raises the drift alarm. */
    double driftThreshold = 0.05;

    /** Accuracy auditor (audit/auditor.hh): fraction of nontrivial
     *  decodes shadow re-decoded against the exact oracle; 0 = off. */
    double auditRate = 0.0;
    unsigned auditThreads = 1;
    uint64_t auditQueue = 1024;
    /** Use the bitmask-DP oracle up to this HW, blossom above. */
    uint32_t auditDpMaxHw = 16;

    /** Tail-sampled per-decode tracing (telemetry/decode_trace.hh).
     *  Cheap enough to leave on: spans go to preallocated per-thread
     *  buffers and only tail-retained traces are published. */
    bool traceEnabled = true;
    /** Keep traces slower than this (ns); 0 = auto (rolling p99). */
    double traceTailNs = 0.0;
    /** Keep every Nth decode regardless; 0 disables head sampling. */
    uint64_t traceStride = 8192;
    /** TraceStore ring capacity (kept traces). */
    uint64_t traceRing = 1024;

    /** Sharded multi-stream ingest fleet (harness/fleet.hh). When
     *  enabled, a binary TCP front-end feeds real syndrome streams
     *  through the same SLO/burn-rate accounting as the synthetic
     *  workers (workers may be 0 to serve ingest traffic only). */
    bool fleetEnabled = false;
    FleetConfig fleet;
    std::string fleetBind = "127.0.0.1";
    uint16_t fleetPort = 0;  ///< 0 = ephemeral.
};

/**
 * Online syndrome-drift monitor. The first warmupShots Hamming
 * weights form a baseline distribution; after that, weights stream
 * into a ring of fixed-size buckets, and each completed bucket
 * recomputes the chi-square distance
 *
 *     chi2 = 1/2 * sum_h (p_h - q_h)^2 / (p_h + q_h)
 *
 * between the baseline (p) and the merged ring (q) — bounded in
 * [0, 1], zero iff identical. Crossing the threshold logs a warning
 * once (re-armed when the distance falls back under), so a drifting
 * device is loud in the service log exactly once per excursion.
 */
class SyndromeDriftMonitor
{
  public:
    SyndromeDriftMonitor(uint64_t warmup_shots, uint64_t bucket_shots,
                         size_t ring_slots, double threshold,
                         size_t max_hw = 64);

    /** Record one decode's syndrome Hamming weight. Thread-safe. */
    void record(size_t hw);

    bool baselineReady() const;
    /** Latest distance (recomputed once per completed ring bucket). */
    double chiSquare() const;
    bool alarmed() const;
    double threshold() const { return threshold_; }

  private:
    void rotateLocked();

    const uint64_t warmupShots_;
    const uint64_t bucketShots_;
    const double threshold_;

    mutable std::mutex mu_;
    Histogram baseline_;
    uint64_t baselineCount_ = 0;
    std::vector<Histogram> ring_;
    size_t ringPos_ = 0;
    uint64_t bucketCount_ = 0;
    double lastChi_ = 0.0;
    bool alarmed_ = false;
};

/** Thread-agnostic service state; see file comment. */
class DecodeServiceCore
{
  public:
    explicit DecodeServiceCore(const ServeConfig &config);
    ~DecodeServiceCore();

    /** Per-worker decode state (context, decoder, RNG stream). */
    struct Worker;

    std::unique_ptr<Worker> makeWorker(unsigned index);

    /** Sample one shot, decode it, account it. */
    void decodeOnce(Worker &w);

    /**
     * Batch path the worker threads run: sample `shots` shots into the
     * worker's SyndromeBatch, decode them through the allocation-free
     * Decoder::decodeBatch, then account each shot exactly as
     * decodeOnce() does. Steady state allocates nothing per shot.
     */
    void decodeBatch(Worker &w, uint64_t shots);

    /**
     * Swap the workload's physical error rate mid-run (rebuilds the
     * experiment context; workers pick it up on their next shot). The
     * drift monitor's baseline is deliberately kept — detecting this
     * change is its job.
     */
    void setErrorRate(double p);

    /** Tests inject a fake sub-window tick; default is wall-clock. */
    void setTickFunction(std::function<uint64_t()> tick);

    /** Prometheus text exposition (service families + registry).
     *  openmetrics additionally attaches trace-id exemplars to the
     *  latency histogram buckets and terminates with "# EOF". */
    std::string metricsText(bool openmetrics = false) const;
    /** JSON snapshot for /statusz (schema: tools/validate_report.py). */
    std::string statuszJson() const;

    void setHealthy(bool healthy) { healthy_ = healthy; }
    bool healthy() const { return healthy_; }

    uint64_t totalDecodes() const;
    const SyndromeDriftMonitor &drift() const { return drift_; }
    const ServeConfig &config() const { return config_; }

    /** The shadow accuracy auditor (always present; may be disabled). */
    AccuracyAuditor &audit() { return *audit_; }
    const AccuracyAuditor &audit() const { return *audit_; }

    /** Current sub-window tick (exposed for tests/uptime). */
    uint64_t currentTick() const { return tick_(); }

    /** The ingest fleet; null unless config.fleetEnabled. */
    DecodeFleet *fleet() { return fleet_.get(); }
    const DecodeFleet *fleet() const { return fleet_.get(); }

    /**
     * Account one fleet-ingested decode into the same totals, rolling
     * SLO windows and drift monitor the synthetic workers feed (no
     * logical-error accounting: wire shots carry no ground truth).
     * Installed as the fleet's account hook; also callable directly.
     */
    void accountFleetShot(size_t hw, double latency_ns, bool gave_up);

  private:
    std::shared_ptr<const ExperimentContext> currentContext() const;
    double windowSeconds(size_t sub_windows) const;

    ServeConfig config_;
    DecoderFactory factory_;

    mutable std::mutex ctxMu_;
    std::shared_ptr<const ExperimentContext> ctx_;

    std::unique_ptr<AccuracyAuditor> audit_;
    std::unique_ptr<DecodeFleet> fleet_;

    std::function<uint64_t()> tick_;

    std::atomic<uint64_t> decodesTotal_{0};
    std::atomic<uint64_t> nontrivialTotal_{0};
    std::atomic<uint64_t> logicalErrorsTotal_{0};
    std::atomic<uint64_t> giveUpsTotal_{0};
    std::atomic<uint64_t> deadlineMissesTotal_{0};
    std::atomic<uint64_t> batchesDone_{0};
    std::atomic<bool> healthy_{true};

    telemetry::RollingCounter decodesWin_;
    telemetry::RollingCounter logicalErrorsWin_;
    telemetry::RollingCounter giveUpsWin_;
    telemetry::RollingCounter missesWin_;
    telemetry::RollingLatency latencyWin_;

    SyndromeDriftMonitor drift_;
};

/** makeWorker()'s opaque state, public so the CLI can embed workers. */
struct DecodeServiceCore::Worker
{
    unsigned index = 0;
    Rng rng{0};
    std::shared_ptr<const ExperimentContext> ctx;
    std::unique_ptr<Decoder> decoder;
    BitVec dets;
    BitVec obs;
    uint64_t shots = 0;

    // Reused batch-path buffers (steady state allocates nothing).
    SyndromeBatch batch;
    std::vector<DecodeResult> results;
    DecodeScratch scratch;
    std::vector<uint64_t> actuals;
    std::vector<uint32_t> obsIndices;
};

/**
 * The full service: core + worker threads + HTTP endpoints. start()
 * binds and launches; stop() (or destruction) joins everything.
 */
class DecodeService
{
  public:
    explicit DecodeService(const ServeConfig &config);
    ~DecodeService();

    /** Launch workers and the HTTP server; false + *error on failure. */
    bool start(const std::string &bind_addr, uint16_t port,
               std::string *error);

    void stop();

    uint16_t port() const { return http_.port(); }
    DecodeServiceCore &core() { return core_; }
    const DecodeServiceCore &core() const { return core_; }

    /** The fleet ingest port; 0 unless the fleet is running. */
    uint16_t fleetPort() const;

  private:
    DecodeServiceCore core_;
    net::HttpServer http_;
    std::unique_ptr<net::FleetServer> fleetServer_;
    std::vector<std::thread> threads_;
    std::atomic<bool> running_{false};
    std::atomic<unsigned> activeWorkers_{0};
};

/** Factory-name lookup shared by serve and tests ("" on success). */
std::string resolveServeDecoder(const ServeConfig &config,
                                DecoderFactory *out);

} // namespace astrea

#endif // ASTREA_HARNESS_DECODE_SERVICE_HH
