#include "harness/sweeps.hh"

#include "decoders/decoder.hh"

namespace astrea
{

std::vector<SweepPoint>
sweepPhysicalErrorRate(uint32_t distance, Basis basis,
                       const std::vector<double> &ps,
                       const std::vector<NamedFactory> &decoders,
                       uint64_t shots, uint64_t seed, unsigned threads)
{
    std::vector<SweepPoint> out;
    for (double p : ps) {
        ExperimentConfig cfg;
        cfg.distance = distance;
        cfg.basis = basis;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        SweepPoint point;
        point.x = p;
        for (const auto &d : decoders) {
            point.results.push_back(runMemoryExperiment(
                ctx, d.factory, shots, seed, threads));
        }
        out.push_back(std::move(point));
    }
    return out;
}

std::vector<SweepPoint>
sweepDistance(const std::vector<uint32_t> &distances, Basis basis,
              double p, const std::vector<NamedFactory> &decoders,
              uint64_t shots, uint64_t seed, unsigned threads)
{
    std::vector<SweepPoint> out;
    for (uint32_t d : distances) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.basis = basis;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        SweepPoint point;
        point.x = static_cast<double>(d);
        for (const auto &nf : decoders) {
            point.results.push_back(runMemoryExperiment(
                ctx, nf.factory, shots, seed, threads));
        }
        out.push_back(std::move(point));
    }
    return out;
}

std::vector<SweepPoint>
sweepWeightThreshold(const ExperimentContext &ctx,
                     const std::vector<double> &thresholds,
                     AstreaGConfig base_config, uint64_t shots,
                     uint64_t seed, unsigned threads)
{
    std::vector<SweepPoint> out;
    for (double wth : thresholds) {
        AstreaGConfig cfg = base_config;
        cfg.weightThresholdDecades = wth;

        SweepPoint point;
        point.x = wth;
        point.results.push_back(runMemoryExperiment(
            ctx, astreaGFactory(cfg), shots, seed, threads));
        out.push_back(std::move(point));
    }
    return out;
}

std::vector<SweepPoint>
sweepDecodeBudget(const ExperimentContext &ctx,
                  const std::vector<double> &budget_ns_values,
                  AstreaGConfig base_config, uint64_t shots,
                  uint64_t seed, unsigned threads)
{
    std::vector<SweepPoint> out;
    for (double budget_ns : budget_ns_values) {
        AstreaGConfig cfg = base_config;
        cfg.cycleBudget = static_cast<uint64_t>(budget_ns *
                                                kFpgaClockGHz);

        SweepPoint point;
        point.x = budget_ns;
        point.results.push_back(runMemoryExperiment(
            ctx, astreaGFactory(cfg), shots, seed, threads));
        out.push_back(std::move(point));
    }
    return out;
}

} // namespace astrea
