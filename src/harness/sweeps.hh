/**
 * @file
 * Parameter-sweep helpers shared by the benchmark binaries.
 *
 * Each evaluation figure is a sweep over one knob: physical error rate
 * (Figs. 12 and 14), code distance (Fig. 4), weight threshold
 * (Fig. 13), or decode-time budget standing in for syndrome-transfer
 * bandwidth (Table 7). These helpers run the sweep against one or more
 * decoders over a shared per-point context so the expensive setup
 * (DEM extraction, all-pairs Dijkstra) happens once per point.
 */

#ifndef ASTREA_HARNESS_SWEEPS_HH
#define ASTREA_HARNESS_SWEEPS_HH

#include <string>
#include <vector>

#include "harness/memory_experiment.hh"

namespace astrea
{

/** A named decoder entry for sweep tables. */
struct NamedFactory
{
    std::string name;
    DecoderFactory factory;
};

/** One sweep point's results, one ExperimentResult per decoder. */
struct SweepPoint
{
    double x = 0.0;  ///< The swept value (p, d, Wth, or budget ns).
    std::vector<ExperimentResult> results;
};

/** Sweep the physical error rate at fixed distance. */
std::vector<SweepPoint> sweepPhysicalErrorRate(
    uint32_t distance, Basis basis, const std::vector<double> &ps,
    const std::vector<NamedFactory> &decoders, uint64_t shots,
    uint64_t seed, unsigned threads = 0);

/** Sweep the code distance at fixed physical error rate. */
std::vector<SweepPoint> sweepDistance(
    const std::vector<uint32_t> &distances, Basis basis, double p,
    const std::vector<NamedFactory> &decoders, uint64_t shots,
    uint64_t seed, unsigned threads = 0);

/** Sweep Astrea-G's weight threshold over one shared context. */
std::vector<SweepPoint> sweepWeightThreshold(
    const ExperimentContext &ctx, const std::vector<double> &thresholds,
    AstreaGConfig base_config, uint64_t shots, uint64_t seed,
    unsigned threads = 0);

/**
 * Sweep Astrea-G's decode-time budget (Table 7): transmitting the
 * syndrome for (1000 - t) ns leaves t ns of the 1 us deadline for
 * decoding, i.e. a budget of t / 4 cycles at 250 MHz.
 */
std::vector<SweepPoint> sweepDecodeBudget(
    const ExperimentContext &ctx,
    const std::vector<double> &budget_ns_values, AstreaGConfig base_config,
    uint64_t shots, uint64_t seed, unsigned threads = 0);

} // namespace astrea

#endif // ASTREA_HARNESS_SWEEPS_HH
