/**
 * @file
 * Hamming-weight distribution measurement (paper Sec. 4.2: Fig. 6,
 * Tables 2 and 5).
 *
 * Measures how often syndrome vectors of each Hamming weight occur, and
 * evaluates the paper's analytical upper-bound model (Eq. 1): each
 * parity qubit's extraction flips a syndrome-bit pair with probability
 * 8p, so H = 2E with E ~ Binomial(D, 8p), D = (d+1)(d^2-1)/2.
 */

#ifndef ASTREA_HARNESS_HW_HISTOGRAM_HH
#define ASTREA_HARNESS_HW_HISTOGRAM_HH

#include "common/stats.hh"
#include "harness/memory_experiment.hh"

namespace astrea
{

/** Measured Hamming-weight frequencies over a shot budget. */
struct HwDistribution
{
    Histogram hist{64};
    uint64_t shots = 0;

    double
    frequency(size_t h) const
    {
        return hist.frequency(h);
    }

    /** P(HW in [lo, hi]). */
    double rangeFrequency(size_t lo, size_t hi) const;
};

/** Sample the Hamming-weight distribution (no decoding involved). */
HwDistribution measureHwDistribution(const ExperimentContext &ctx,
                                     uint64_t shots, uint64_t seed,
                                     unsigned threads = 0);

/**
 * Analytical upper-bound probability of Hamming weight h (Eq. 1).
 * Zero for odd h (the model flips bits in pairs).
 */
double analyticHwProbability(uint32_t distance, double p, uint32_t h);

/** Analytical P(HW > h) under the same model. */
double analyticHwTail(uint32_t distance, double p, uint32_t h);

} // namespace astrea

#endif // ASTREA_HARNESS_HW_HISTOGRAM_HH
