#include "harness/semi_analytic.hh"

#include <algorithm>
#include <mutex>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "dem/extractor.hh"
#include "sim/frame_sim.hh"

namespace astrea
{

std::vector<SemiAnalyticResult>
estimateLerSemiAnalyticMulti(const ExperimentContext &ctx,
                             const std::vector<DecoderFactory> &factories,
                             const SemiAnalyticConfig &config)
{
    ASTREA_CHECK(!factories.empty(), "no decoders given");
    unsigned threads = config.threads ? config.threads
                                      : defaultWorkerCount();
    const auto sites = enumerateFaultSites(ctx.circuit());
    const uint64_t n_sites = sites.size();
    const double p = ctx.config().physicalErrorRate;
    const uint64_t max_shots =
        config.maxShotsPerK ? config.maxShotsPerK : config.shotsPerK;
    const size_t n_dec = factories.size();

    std::vector<SemiAnalyticResult> results(n_dec);
    for (auto &r : results) {
        r.faultSites = n_sites;
        r.failureProb.assign(config.maxFaults + 1, 0.0);
        r.occurrenceProb.assign(config.maxFaults + 1, 0.0);
        r.shotsUsed.assign(config.maxFaults + 1, 0);
        r.failuresSeen.assign(config.maxFaults + 1, 0);
    }

    double cum = 0.0;
    for (uint32_t k = 0; k <= config.maxFaults; k++) {
        double po = binomialPmf(n_sites, p, k);
        for (auto &r : results)
            r.occurrenceProb[k] = po;
        cum += po;
    }
    for (auto &r : results)
        r.tailMass = std::max(0.0, 1.0 - cum);

    Rng root(config.seed);

    // Run `shots` trials with exactly k injected faults; adds each
    // decoder's failures into `failures` (size n_dec).
    auto run_chunk = [&](uint32_t k, uint64_t chunk_id, uint64_t shots,
                         std::vector<uint64_t> &failures) {
        std::mutex merge_mutex;
        parallelFor(shots, threads,
                    [&](unsigned worker, uint64_t begin, uint64_t end) {
            Rng rng = root.split(k * 131 + chunk_id * 7919 + worker);
            std::vector<std::unique_ptr<Decoder>> decoders;
            decoders.reserve(n_dec);
            for (const auto &f : factories)
                decoders.push_back(f(ctx));
            FrameSimulator sim(ctx.circuit());
            BitVec dets(ctx.circuit().numDetectors());
            BitVec obs(ctx.circuit().numObservables());
            std::vector<uint64_t> local_failures(n_dec, 0);

            std::vector<uint64_t> chosen;
            std::vector<FrameSimulator::Fault> faults;

            for (uint64_t s = begin; s < end; s++) {
                // Choose k distinct sites uniformly (rejection; k is
                // tiny compared to the number of sites).
                chosen.clear();
                while (chosen.size() < k) {
                    uint64_t c = rng.uniformInt(n_sites);
                    if (std::find(chosen.begin(), chosen.end(), c) ==
                        chosen.end()) {
                        chosen.push_back(c);
                    }
                }
                std::sort(chosen.begin(), chosen.end());

                faults.clear();
                for (auto c : chosen) {
                    faults.push_back(
                        {sites[c].opIndex,
                         sampleFaultOutcome(sites[c], rng)});
                }

                sim.propagateFaultSet(faults, dets, obs);
                auto defects = dets.onesIndices();

                uint64_t actual = 0;
                for (auto o : obs.onesIndices())
                    actual |= (1ull << o);

                for (size_t di = 0; di < n_dec; di++) {
                    DecodeResult dr = decoders[di]->decode(defects);
                    if (dr.obsMask != actual)
                        local_failures[di]++;
                }
            }

            std::lock_guard<std::mutex> lock(merge_mutex);
            for (size_t di = 0; di < n_dec; di++)
                failures[di] += local_failures[di];
        });
    };

    for (uint32_t k = 1; k <= config.maxFaults; k++) {
        // Skip fault counts whose occurrence probability cannot move
        // the estimate (saves most of the runtime at small p).
        if (results[0].occurrenceProb[k] <= 0.0)
            continue;

        uint64_t shots_done = 0;
        uint64_t chunk_id = 0;
        std::vector<uint64_t> failures(n_dec, 0);
        while (shots_done < max_shots) {
            uint64_t chunk =
                std::min(config.shotsPerK, max_shots - shots_done);
            run_chunk(k, chunk_id++, chunk, failures);
            shots_done += chunk;
            if (config.targetFailures == 0)
                break;
            uint64_t min_failures = ~0ull;
            for (auto f : failures)
                min_failures = std::min(min_failures, f);
            if (min_failures >= config.targetFailures)
                break;
        }

        for (size_t di = 0; di < n_dec; di++) {
            results[di].shotsUsed[k] = shots_done;
            results[di].failuresSeen[k] = failures[di];
            results[di].failureProb[k] =
                static_cast<double>(failures[di]) /
                static_cast<double>(shots_done);
        }
    }

    for (auto &r : results) {
        r.ler = 0.0;
        for (uint32_t k = 1; k <= config.maxFaults; k++)
            r.ler += r.occurrenceProb[k] * r.failureProb[k];
    }
    return results;
}

SemiAnalyticResult
estimateLerSemiAnalytic(const ExperimentContext &ctx,
                        const DecoderFactory &factory,
                        const SemiAnalyticConfig &config)
{
    return estimateLerSemiAnalyticMulti(ctx, {factory}, config)[0];
}

} // namespace astrea
