/**
 * @file
 * Semi-analytic logical-error-rate estimator (paper Appendix A.1,
 * Eq. 3).
 *
 * Monte Carlo cannot resolve LERs of 1e-10 and below in reasonable
 * time. The paper's appendix method decomposes the LER by fault count:
 * LER = sum_k Po(k) * Pf(k), where Po(k) is the probability that
 * exactly k fault sites fire in a logical cycle (exact: every channel
 * instance fires i.i.d. with probability p, so k ~ Binomial(N, p) over
 * the N sites) and Pf(k) is the probability a decoder fails given k
 * faults, estimated by injecting exactly k uniformly-chosen faults per
 * shot through the reference frame simulator.
 */

#ifndef ASTREA_HARNESS_SEMI_ANALYTIC_HH
#define ASTREA_HARNESS_SEMI_ANALYTIC_HH

#include <vector>

#include "harness/memory_experiment.hh"

namespace astrea
{

/** Estimator knobs. */
struct SemiAnalyticConfig
{
    uint32_t maxFaults = 12;       ///< Largest k evaluated.
    uint64_t shotsPerK = 20000;    ///< Trials per fault count (chunk).
    uint64_t seed = 1;
    unsigned threads = 0;

    /**
     * Adaptive stopping: when nonzero, keep drawing shotsPerK-sized
     * chunks for each k until this many failures are observed (or
     * maxShotsPerK is reached). Rare Pf(k) — the d = 7+ low-p regime —
     * are unresolvable at fixed small budgets; this concentrates the
     * effort where failures are scarce.
     */
    uint64_t targetFailures = 0;
    uint64_t maxShotsPerK = 0;  ///< 0 means shotsPerK (no adaptation).
};

/** Per-k and combined estimates. */
struct SemiAnalyticResult
{
    /** failureProb[k] = Pf(k); index 0 is always 0. */
    std::vector<double> failureProb;
    /** Shots actually spent per k (varies in adaptive mode). */
    std::vector<uint64_t> shotsUsed;
    /** Failures observed per k. */
    std::vector<uint64_t> failuresSeen;
    /** occurrenceProb[k] = Po(k). */
    std::vector<double> occurrenceProb;
    /** Total fault sites N in the circuit. */
    uint64_t faultSites = 0;
    /** sum_k Po(k) Pf(k) over the evaluated range. */
    double ler = 0.0;
    /** Probability mass of k > maxFaults (unevaluated tail). */
    double tailMass = 0.0;
};

/** Run the estimator for one decoder. */
SemiAnalyticResult estimateLerSemiAnalytic(
    const ExperimentContext &ctx, const DecoderFactory &factory,
    const SemiAnalyticConfig &config);

/**
 * Run the estimator for several decoders on IDENTICAL fault sets.
 *
 * Every injected shot is propagated once and decoded by every decoder,
 * so cross-decoder LER ratios are exactly paired (no sampling noise
 * between columns) and the expensive frame propagation is shared. In
 * adaptive mode, sampling for a fault count continues until every
 * decoder has reached targetFailures or maxShotsPerK is exhausted.
 */
std::vector<SemiAnalyticResult> estimateLerSemiAnalyticMulti(
    const ExperimentContext &ctx,
    const std::vector<DecoderFactory> &factories,
    const SemiAnalyticConfig &config);

} // namespace astrea

#endif // ASTREA_HARNESS_SEMI_ANALYTIC_HH
