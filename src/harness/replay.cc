#include "harness/replay.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <memory>
#include <sstream>

#include "common/weight.hh"
#include "decoders/registry.hh"
#include "matching/dp_matcher.hh"
#include "telemetry/trace_store.hh"

namespace astrea
{

namespace
{

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char buf[4096];
    size_t n;
    out.clear();
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

bool
parseConfig(const telemetry::JsonValue &ctx, ExperimentConfig &cfg,
            std::string *error_out)
{
    if (ctx.kind != telemetry::JsonValue::Object) {
        *error_out = "capture has no context object";
        return false;
    }
    cfg.distance = static_cast<uint32_t>(ctx["distance"].asUint(3));
    cfg.rounds = static_cast<uint32_t>(ctx["rounds"].asUint(0));
    cfg.basis = ctx["basis"].asString("Z") == "X" ? Basis::X : Basis::Z;
    cfg.physicalErrorRate = ctx["p"].asNumber(1e-4);
    cfg.driftSpread = ctx["drift_spread"].asNumber(0.0);
    cfg.driftSeed = ctx["drift_seed"].asUint(12345);
    cfg.cxSchedule = ctx["cx_schedule"].asString("standard") ==
                             "hook_aligned"
                         ? CxSchedule::HookAligned
                         : CxSchedule::Standard;
    return true;
}

/**
 * Rebuild the captured decoder against a freshly-built context, via
 * the registry's display-name + describeConfig round-trip. The replay
 * turns recordMatching on (absent from captures) so Astrea-G reports
 * the chosen matching; the Monte-Carlo run that wrote the capture
 * leaves it off.
 */
std::unique_ptr<Decoder>
buildDecoder(const ReplayCapture &capture, const ExperimentContext &ctx,
             std::string *error_out)
{
    DecoderOptions opts = decoderOptionsFor(ctx);
    opts.astreaG.recordMatching = true;
    return DecoderRegistry::global().makeFromDescription(
        capture.decoderName, capture.decoderConfig, opts, error_out);
}

double
quantizedToDecades(WeightSum w)
{
    if (w == kInfiniteWeightSum)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(w) / kWeightScale;
}

std::string
formatDecades(double d)
{
    std::ostringstream os;
    os << std::setprecision(4) << d;
    return os.str();
}

/**
 * Narrate one decode: the defects, each defect's surviving candidate
 * pairs under the Wth filter (infinite Wth for decoders without one),
 * the chosen matching and its per-pair weights, and the verdict.
 */
void
narrateRecord(std::ostream &out, const telemetry::DecodeRecord &rec,
              const DecodeResult &dr, const GlobalWeightTable &gwt,
              double wth_decades, const ReplayOptions &options)
{
    const auto &defects = rec.defects;
    const WeightSum wth = std::isinf(wth_decades)
                              ? kInfiniteWeightSum
                              : decadesToQuantized(wth_decades);

    out << "  defects (" << defects.size() << "):";
    for (uint32_t d : defects)
        out << ' ' << d;
    out << '\n';

    if (std::isinf(wth_decades))
        out << "  candidate pairs (no weight filter):\n";
    else
        out << "  candidate pairs (Wth = " << formatDecades(wth_decades)
            << " decades):\n";
    for (size_t i = 0; i < defects.size(); i++) {
        // Surviving pairs, lightest first — the LWT row this defect
        // would load in hardware. The boundary counts as a candidate.
        std::vector<std::pair<WeightSum, int>> cands;
        for (size_t j = 0; j < defects.size(); j++) {
            if (i == j)
                continue;
            WeightSum pw = gwt.effectiveWeight(defects[i], defects[j]);
            if (pw <= wth)
                cands.push_back({pw, static_cast<int>(j)});
        }
        WeightSum bw = gwt.pairWeight(defects[i], defects[i]);
        if (bw <= wth)
            cands.push_back({bw, -1});
        std::sort(cands.begin(), cands.end());

        out << "    defect[" << i << "]=" << defects[i] << ':';
        size_t shown = 0;
        for (auto [pw, j] : cands) {
            if (shown == options.maxCandidatesPerDefect) {
                out << " [+" << cands.size() - shown << " more]";
                break;
            }
            if (j < 0)
                out << " (boundary, " << formatDecades(quantizedToDecades(pw))
                    << ')';
            else
                out << " (" << defects[static_cast<size_t>(j)] << ", "
                    << formatDecades(quantizedToDecades(pw)) << ')';
            shown++;
        }
        if (cands.empty())
            out << " none (filtered out)";
        out << '\n';
    }

    if (dr.gaveUp) {
        out << "  chosen matching: none (decoder gave up)\n";
    } else if (dr.matchedPairs.empty()) {
        out << "  chosen matching: not reported (weight "
            << formatDecades(dr.matchingWeight) << " decades)\n";
    } else {
        out << "  chosen matching (weight "
            << formatDecades(dr.matchingWeight) << " decades):\n";
        for (auto [a, b] : dr.matchedPairs) {
            uint32_t da = defects[static_cast<size_t>(a)];
            if (b < 0) {
                out << "    " << da << " -- boundary ("
                    << formatDecades(quantizedToDecades(
                           gwt.pairWeight(da, da)))
                    << ")\n";
            } else {
                uint32_t db = defects[static_cast<size_t>(b)];
                out << "    " << da << " -- " << db << " ("
                    << formatDecades(quantizedToDecades(
                           gwt.effectiveWeight(da, db)))
                    << ")\n";
            }
        }
    }

    char pred[32], actual[32];
    std::snprintf(pred, sizeof(pred), "0x%llx",
                  static_cast<unsigned long long>(dr.obsMask));
    std::snprintf(actual, sizeof(actual), "0x%llx",
                  static_cast<unsigned long long>(rec.actualObs));
    out << "  verdict: predicted obs " << pred << ", actual " << actual
        << " -> "
        << (dr.gaveUp ? "give-up"
                      : (dr.obsMask != rec.actualObs ? "logical error"
                                                     : "success"))
        << ", " << dr.cycles << " cycles\n";

    if (!rec.audited)
        return;

    // Records written by the accuracy auditor carry the oracle's
    // verdict; narrate the divergence and, when the defect set fits
    // the exact DP matcher, re-derive the oracle's matching in the
    // same weight domain (quantized LWT decades or exact GWT decades)
    // so the disagreement is visible pair by pair.
    char oobs[32];
    std::snprintf(oobs, sizeof(oobs), "0x%llx",
                  static_cast<unsigned long long>(rec.oracleObs));
    out << "  audit oracle (" << rec.oracleName << ", "
        << (rec.oracleQuantized ? "quantized" : "exact")
        << " weights): weight " << formatDecades(rec.oracleWeight)
        << " decades, obs " << oobs
        << (rec.auditMismatch ? " [observable mismatch]" : "") << '\n';
    out << "  weight gap vs production: "
        << formatDecades(rec.matchingWeight - rec.oracleWeight)
        << " decades\n";

    const size_t n = defects.size();
    if (n == 0 || n > 20)
        return;
    auto pair_weight = [&](uint32_t a, uint32_t b) {
        if (rec.oracleQuantized)
            return static_cast<double>(gwt.pairWeight(a, b)) /
                   kWeightScale;
        return gwt.exactWeight(a, b);
    };
    MatchingSolution oracle = dpMatchWithBoundary(
        static_cast<int>(n),
        [&](int i, int j) {
            return pair_weight(defects[static_cast<size_t>(i)],
                               defects[static_cast<size_t>(j)]);
        },
        [&](int i) {
            uint32_t d = defects[static_cast<size_t>(i)];
            return pair_weight(d, d);
        });
    out << "  oracle matching (weight "
        << formatDecades(oracle.totalWeight) << " decades):\n";
    for (auto [a, b] : oracle.pairs) {
        uint32_t da = defects[static_cast<size_t>(a)];
        if (b < 0)
            out << "    " << da << " -- boundary ("
                << formatDecades(pair_weight(da, da)) << ")\n";
        else {
            uint32_t db = defects[static_cast<size_t>(b)];
            out << "    " << da << " -- " << db << " ("
                << formatDecades(pair_weight(da, db)) << ")\n";
        }
    }
}

/**
 * A /traces/<id> trace-detail JSON is itself a complete replay input:
 * the trace store embeds the run's experiment config and decoder
 * description precisely so a kept tail trace can be re-decoded without
 * hunting for a matching flight-recorder capture. Synthesize a
 * one-record capture from it.
 */
bool
loadTraceDetail(const telemetry::JsonValue &doc, ReplayCapture &out,
                std::string *error_out)
{
    out.schemaVersion = telemetry::kCaptureSchemaVersion;
    out.fromTrace = true;
    if (!parseConfig(doc["context"], out.config, error_out)) {
        *error_out = "trace embeds no context object (run info was "
                     "not installed when the trace was kept)";
        return false;
    }

    const telemetry::JsonValue &dec = doc["decoder_config"];
    out.decoderName = dec["name"].asString("");
    out.decoderConfig = dec;
    if (out.decoderName.empty()) {
        *error_out = "trace embeds no decoder description";
        return false;
    }

    telemetry::DecodeRecord rec;
    rec.traceId =
        telemetry::parseTraceIdHex(doc["trace_id"].asString(""));
    rec.shot = doc["shot"].asUint(0);
    rec.worker = static_cast<uint32_t>(doc["stream"].asUint(0));
    for (const telemetry::JsonValue &d : doc["defects"].arr)
        rec.defects.push_back(static_cast<uint32_t>(d.asUint(0)));
    rec.obsMask = doc["obs_mask"].asUint(0);
    rec.actualObs = doc["actual_obs"].asUint(0);
    rec.gaveUp = doc["gave_up"].asBool(false);
    rec.logicalError = doc["logical_error"].asBool(false);
    rec.latencyNs = doc["latency_ns"].asNumber(0.0);
    rec.cycles = doc["cycles"].asUint(0);
    rec.matchingWeight = doc["matching_weight"].asNumber(0.0);
    const telemetry::JsonValue &audit = doc["audit"];
    if (audit.kind == telemetry::JsonValue::Object &&
        audit["done"].asBool(false)) {
        rec.audited = true;
        rec.auditMismatch = audit["mismatch"].asBool(false);
        rec.oracleName = "trace audit";
        rec.oracleWeight = audit["oracle_weight"].asNumber(0.0);
        rec.oracleObs = audit["oracle_obs"].asUint(0);
    }

    out.triggerReason = "trace " + doc["trace_id"].asString("?") +
                        " (" + doc["outcome"].asString("?") + ")";
    out.triggerShot = rec.shot;
    out.records.clear();
    out.records.push_back(std::move(rec));
    return true;
}

} // namespace

bool
loadCapture(const std::string &path, ReplayCapture &out,
            std::string *error_out)
{
    std::string text;
    if (!readFile(path, text)) {
        *error_out = "cannot read capture file: " + path;
        return false;
    }
    telemetry::JsonValue doc;
    if (!parseJson(text, doc) ||
        doc.kind != telemetry::JsonValue::Object) {
        *error_out = "malformed capture JSON: " + path;
        return false;
    }
    // A /traces/<id> dump carries trace_schema_version instead of
    // capture_schema_version; route it through the synthesizer.
    if (doc["trace_schema_version"].asUint(0) != 0)
        return loadTraceDetail(doc, out, error_out);

    out.schemaVersion = doc["capture_schema_version"].asUint(0);
    if (out.schemaVersion != telemetry::kCaptureSchemaVersion) {
        *error_out = "unsupported capture schema version " +
                     std::to_string(out.schemaVersion) + " (expected " +
                     std::to_string(telemetry::kCaptureSchemaVersion) +
                     ")";
        return false;
    }
    if (!parseConfig(doc["context"], out.config, error_out))
        return false;

    const telemetry::JsonValue &dec = doc["decoder"];
    out.decoderName = dec["name"].asString("");
    out.decoderConfig = dec;
    if (out.decoderName.empty()) {
        *error_out = "capture names no decoder";
        return false;
    }

    const telemetry::JsonValue &trig = doc["trigger"];
    if (trig.kind == telemetry::JsonValue::Object) {
        out.triggerReason = trig["reason"].asString("");
        out.triggerShot = trig["shot"].asUint(0);
    }

    const telemetry::JsonValue &records = doc["records"];
    if (records.kind != telemetry::JsonValue::Array) {
        *error_out = "capture has no records array";
        return false;
    }
    out.records.clear();
    for (const telemetry::JsonValue &r : records.arr) {
        telemetry::DecodeRecord rec;
        rec.shot = r["shot"].asUint(0);
        rec.worker = static_cast<uint32_t>(r["worker"].asUint(0));
        for (const telemetry::JsonValue &d : r["defects"].arr)
            rec.defects.push_back(
                static_cast<uint32_t>(d.asUint(0)));
        rec.obsMask = r["obs_mask"].asUint(0);
        rec.actualObs = r["actual_obs"].asUint(0);
        rec.gaveUp = r["gave_up"].asBool(false);
        rec.logicalError = r["logical_error"].asBool(false);
        rec.latencyNs = r["latency_ns"].asNumber(0.0);
        rec.cycles = r["cycles"].asUint(0);
        rec.matchingWeight = r["matching_weight"].asNumber(0.0);
        rec.traceId =
            telemetry::parseTraceIdHex(r["trace_id"].asString(""));
        const telemetry::JsonValue &audit = r["audit"];
        if (audit.kind == telemetry::JsonValue::Object) {
            rec.audited = true;
            rec.auditMismatch = audit["mismatch"].asBool(false);
            rec.oracleName = audit["oracle"].asString("");
            rec.oracleQuantized = audit["quantized"].asBool(true);
            rec.oracleWeight = audit["oracle_weight"].asNumber(0.0);
            rec.oracleObs = audit["oracle_obs"].asUint(0);
        }
        out.records.push_back(std::move(rec));
    }
    return true;
}

ReplaySummary
replayCapture(const ReplayCapture &capture,
              const ReplayOptions &options, std::ostream &out)
{
    ReplaySummary summary;

    out << "replay: " << capture.decoderName << " at d="
        << capture.config.distance << " p="
        << capture.config.physicalErrorRate << ", "
        << capture.records.size() << " records";
    if (!capture.triggerReason.empty())
        out << ", trigger " << capture.triggerReason << " at shot "
            << capture.triggerShot;
    out << '\n';

    ExperimentContext ctx(capture.config);
    std::string error;
    std::unique_ptr<Decoder> decoder =
        buildDecoder(capture, ctx, &error);
    if (decoder == nullptr) {
        out << "replay: " << error << '\n';
        summary.records = capture.records.size();
        summary.mismatches = capture.records.size();
        return summary;
    }

    double wth_decades = std::numeric_limits<double>::infinity();
    if (capture.decoderName == "Astrea-G")
        wth_decades = capture.decoderConfig["weight_threshold_decades"]
                          .asNumber(wth_decades);

    DecodeResult dr;
    DecodeScratch scratch;
    for (size_t i = 0; i < capture.records.size(); i++) {
        const telemetry::DecodeRecord &rec = capture.records[i];
        decoder->decodeInto(rec.defects, dr, scratch);

        // The verdict must reproduce exactly: the decoders are pure
        // functions of (GWT, defects), and the GWT is rebuilt from the
        // captured config. Wall-clock latency is not compared (it is
        // measured, not modeled, for software decoders).
        bool match = dr.obsMask == rec.obsMask &&
                     dr.gaveUp == rec.gaveUp &&
                     dr.cycles == rec.cycles &&
                     std::abs(dr.matchingWeight - rec.matchingWeight) <=
                         1e-9;
        summary.records++;
        if (!match)
            summary.mismatches++;
        if (dr.gaveUp)
            summary.gaveUps++;
        // Same criterion as the harness shot loop: any disagreement
        // between the predicted and actual flips (give-ups predict 0).
        if (dr.obsMask != rec.actualObs)
            summary.logicalErrors++;

        bool is_trigger = !capture.triggerReason.empty() &&
                          rec.shot == capture.triggerShot &&
                          (rec.gaveUp || rec.logicalError ||
                           rec.auditMismatch);
        // A record selected by trace id — or the single record of a
        // synthesized trace capture — is the record of interest.
        bool is_trace =
            (options.traceId != 0 && rec.traceId == options.traceId) ||
            capture.fromTrace;
        bool narrate = options.verboseAll ||
                       (options.verbose && (is_trigger || is_trace)) ||
                       capture.fromTrace || !match;
        if (narrate || is_trigger) {
            out << "record " << i << " (shot " << rec.shot
                << ", worker " << rec.worker << "): HW " << rec.hw();
            if (rec.traceId != 0)
                out << ", trace "
                    << telemetry::traceIdHex(rec.traceId);
            out << (is_trigger ? " [trigger]" : "")
                << (match ? " [reproduced]" : " [MISMATCH]") << '\n';
        }
        if (narrate)
            narrateRecord(out, rec, dr, ctx.gwt(), wth_decades,
                          options);
        if (!match) {
            out << "  recorded: obs mask 0x" << std::hex << rec.obsMask
                << std::dec << ", gave_up " << rec.gaveUp << ", "
                << rec.cycles << " cycles, weight "
                << formatDecades(rec.matchingWeight) << "\n"
                << "  replayed: obs mask 0x" << std::hex << dr.obsMask
                << std::dec << ", gave_up " << dr.gaveUp << ", "
                << dr.cycles << " cycles, weight "
                << formatDecades(dr.matchingWeight) << '\n';
        }
    }

    if (options.traceId != 0) {
        bool found = false;
        for (const telemetry::DecodeRecord &rec : capture.records)
            found = found || rec.traceId == options.traceId;
        if (!found)
            out << "replay: trace "
                << telemetry::traceIdHex(options.traceId)
                << " not present in this capture\n";
    }

    out << "replay: " << summary.records << " records, "
        << summary.gaveUps << " give-ups, " << summary.logicalErrors
        << " logical errors, " << summary.mismatches << " mismatches"
        << (summary.ok() ? " -- verdicts reproduced" : "") << '\n';
    return summary;
}

} // namespace astrea
