#include "harness/decode_service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"
#include "net/fleet_server.hh"
#include "telemetry/decode_trace.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/json.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/prometheus.hh"
#include "telemetry/sampling_profiler.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

// ---------------------------------------------------------------------------
// SyndromeDriftMonitor

SyndromeDriftMonitor::SyndromeDriftMonitor(uint64_t warmup_shots,
                                           uint64_t bucket_shots,
                                           size_t ring_slots,
                                           double threshold,
                                           size_t max_hw)
    : warmupShots_(std::max<uint64_t>(1, warmup_shots)),
      bucketShots_(std::max<uint64_t>(1, bucket_shots)),
      threshold_(threshold), baseline_(max_hw)
{
    ring_.assign(std::max<size_t>(1, ring_slots), Histogram(max_hw));
}

void
SyndromeDriftMonitor::record(size_t hw)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (baselineCount_ < warmupShots_) {
        baseline_.add(hw);
        baselineCount_++;
        return;
    }
    ring_[ringPos_].add(hw);
    bucketCount_++;
    if (bucketCount_ >= bucketShots_)
        rotateLocked();
}

void
SyndromeDriftMonitor::rotateLocked()
{
    bucketCount_ = 0;

    // Merge the ring (the just-completed bucket included) and compare
    // against the baseline: chi2 = 1/2 sum (p-q)^2/(p+q) over the
    // per-weight frequencies, overflow folded into the last term.
    Histogram recent(baseline_.maxKey());
    for (const Histogram &h : ring_)
        recent.merge(h);

    double chi = 0.0;
    if (recent.total() > 0 && baseline_.total() > 0) {
        for (size_t k = 0; k <= baseline_.maxKey() + 1; k++) {
            double p = k <= baseline_.maxKey()
                           ? baseline_.frequency(k)
                           : static_cast<double>(baseline_.overflow()) /
                                 static_cast<double>(baseline_.total());
            double q = k <= recent.maxKey()
                           ? recent.frequency(k)
                           : static_cast<double>(recent.overflow()) /
                                 static_cast<double>(recent.total());
            if (p + q > 0.0)
                chi += (p - q) * (p - q) / (p + q);
        }
        chi *= 0.5;
    }
    lastChi_ = chi;

    if (chi >= threshold_ && !alarmed_) {
        alarmed_ = true;
        warn("syndrome drift: chi-square distance " +
             std::to_string(chi) + " crossed threshold " +
             std::to_string(threshold_) +
             " (recent Hamming-weight distribution departs from the "
             "warm-up baseline)");
    } else if (chi < threshold_) {
        alarmed_ = false;  // Re-arm; the next excursion logs again.
    }

    // Advance and clear the slot the next bucket streams into.
    ringPos_ = (ringPos_ + 1) % ring_.size();
    ring_[ringPos_] = Histogram(baseline_.maxKey());
}

bool
SyndromeDriftMonitor::baselineReady() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return baselineCount_ >= warmupShots_;
}

double
SyndromeDriftMonitor::chiSquare() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lastChi_;
}

bool
SyndromeDriftMonitor::alarmed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return alarmed_;
}

// ---------------------------------------------------------------------------
// DecodeServiceCore

std::string
resolveServeDecoder(const ServeConfig &config, DecoderFactory *out)
{
    const DecoderRegistry &reg = DecoderRegistry::global();
    if (reg.canonicalName(config.decoder).empty()) {
        return "unknown decoder '" + config.decoder +
               "' (known: " + reg.knownNamesText() + ")";
    }
    *out = registryFactory(config.decoder);
    return "";
}

DecodeServiceCore::DecodeServiceCore(const ServeConfig &config)
    : config_(config), decodesWin_(config.subWindows),
      logicalErrorsWin_(config.subWindows),
      giveUpsWin_(config.subWindows), missesWin_(config.subWindows),
      latencyWin_(config.subWindows),
      drift_(config.warmupShots, config.driftBucketShots,
             config.driftRingSlots, config.driftThreshold)
{
    std::string err = resolveServeDecoder(config_, &factory_);
    if (!err.empty())
        fatal("decode service: " + err);

    ExperimentConfig ec;
    ec.distance = config_.distance;
    ec.rounds = config_.rounds;
    ec.physicalErrorRate = config_.physicalErrorRate;
    ctx_ = std::make_shared<const ExperimentContext>(ec);

    // The oracle audits in the production decoder's weight domain:
    // quantized GWT bytes for the hardware decoders (and wrappers
    // around them), exact decade weights for the software baselines.
    AuditConfig acfg;
    acfg.sampleRate = config_.auditRate;
    acfg.queueCapacity = static_cast<size_t>(
        std::max<uint64_t>(2, config_.auditQueue));
    acfg.threads = std::max(1u, config_.auditThreads);
    acfg.dpMaxHw = config_.auditDpMaxHw;
    const std::string canonical =
        DecoderRegistry::global().canonicalName(config_.decoder);
    for (const DecoderInfo &info :
         DecoderRegistry::global().listDecoders()) {
        if (info.name == canonical) {
            acfg.quantizedWeights =
                info.kind != DecoderKind::Software;
            break;
        }
    }
    audit_ = std::make_unique<AccuracyAuditor>(ctx_->gwt(), acfg,
                                               ctx_);

    // Tail-sampled per-decode tracing: install the retention policy
    // (explicit ServeConfig knobs win over ASTREA_TRACE_*; the CLI
    // defaults its flags from the environment) and size the store.
    telemetry::TraceRetentionConfig tc;
    tc.enabled = config_.traceEnabled;
    tc.tailThresholdNs = config_.traceTailNs;
    tc.headStride = config_.traceStride;
    telemetry::setTraceRetention(tc);
    telemetry::TraceStore::global().configure(static_cast<size_t>(
        std::max<uint64_t>(1, config_.traceRing)));

    // Install this workload's context/decoder descriptions so a
    // dumped trace or capture (give-up, logical error, audit
    // mismatch) embeds enough for `astrea_cli replay` to rebuild the
    // decode.
    auto probe = factory_(*ctx_);
    telemetry::TraceStore::global().setRunInfo(
        experimentConfigJson(ec), decoderDescriptionJson(*probe));
    if (telemetry::FlightRecorder::globalEnabled()) {
        telemetry::FlightRecorder::global().beginRun(
            experimentConfigJson(ec), decoderDescriptionJson(*probe));
    }

    if (config_.fleetEnabled) {
        fleet_ = std::make_unique<DecodeFleet>(config_.fleet, ctx_,
                                               factory_);
        fleet_->setAccountHook(
            [this](size_t hw, double latency_ns, bool gave_up) {
                accountFleetShot(hw, latency_ns, gave_up);
            });
    }

    const uint64_t sub_ms = std::max<uint64_t>(1,
                                               config_.subWindowMillis);
    const auto start = std::chrono::steady_clock::now();
    tick_ = [start, sub_ms] {
        auto elapsed = std::chrono::duration_cast<
            std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
        return static_cast<uint64_t>(elapsed.count()) / sub_ms;
    };
}

DecodeServiceCore::~DecodeServiceCore() = default;

std::shared_ptr<const ExperimentContext>
DecodeServiceCore::currentContext() const
{
    std::lock_guard<std::mutex> lock(ctxMu_);
    return ctx_;
}

void
DecodeServiceCore::setErrorRate(double p)
{
    ExperimentConfig ec;
    ec.distance = config_.distance;
    ec.rounds = config_.rounds;
    ec.physicalErrorRate = p;
    auto fresh = std::make_shared<const ExperimentContext>(ec);
    {
        std::lock_guard<std::mutex> lock(ctxMu_);
        ctx_ = fresh;
    }
    // Flush outstanding audits against the old table, then audit the
    // new workload against its own GWT. Audit counters carry over.
    audit_->rebind(fresh->gwt(), fresh);
    inform("decode service: physical error rate now " +
           std::to_string(p));
}

void
DecodeServiceCore::setTickFunction(std::function<uint64_t()> tick)
{
    tick_ = std::move(tick);
}

std::unique_ptr<DecodeServiceCore::Worker>
DecodeServiceCore::makeWorker(unsigned index)
{
    auto w = std::make_unique<Worker>();
    w->index = index;
    w->rng = Rng(config_.seed).split(index);
    return w;
}

void
DecodeServiceCore::decodeOnce(Worker &w)
{
    decodeBatch(w, 1);
}

void
DecodeServiceCore::decodeBatch(Worker &w, uint64_t shots)
{
    auto ctx = currentContext();
    if (w.ctx.get() != ctx.get()) {
        // First shot, or the workload was reconfigured mid-run.
        w.ctx = ctx;
        w.decoder = factory_(*ctx);
        w.dets = BitVec(ctx->circuit().numDetectors());
        w.obs = BitVec(ctx->circuit().numObservables());
    }

    w.batch.clear();
    w.actuals.clear();
    for (uint64_t i = 0; i < shots; i++) {
        ctx->sampler().sample(w.rng, w.dets, w.obs);
        w.dets.onesIndicesInto(w.scratch.defects);
        w.batch.add(w.scratch.defects);
        uint64_t actual = 0;
        w.obs.onesIndicesInto(w.obsIndices);
        for (auto o : w.obsIndices)
            actual |= (1ull << o);
        w.actuals.push_back(actual);
    }

    // Arm the per-thread tracer for this batch: trace ids are a
    // deterministic function of (run seed, worker, shot number), so
    // re-running the workload reproduces them.
    telemetry::DecodeTracer &tracer = telemetry::decodeTracer();
    tracer.beginBatch(w.index, w.shots, config_.decoder.c_str(),
                      config_.seed +
                          0x9E3779B97F4A7C15ull * (w.index + 1));

    {
        // Batch-level counters are always live (the section cost
        // amortizes over the whole batch).
        telemetry::PerfSection sec(telemetry::PerfStage::Batch, shots);
        w.decoder->decodeBatch(w.batch, w.results, w.scratch);
    }

    const bool flight = telemetry::FlightRecorder::globalEnabled();
    for (uint64_t i = 0; i < shots; i++) {
        const size_t hw = w.batch.hw(i);
        const uint64_t tick = tick_();
        const uint64_t trace_id =
            tracer.active() ? tracer.shotId(static_cast<uint32_t>(i))
                            : 0;

        double latency_ns = 0.0;
        bool gave_up = false;
        bool logical_error = false;
        bool audited = false;
        uint64_t capture_seq = 0;
        if (hw > 0) {
            const DecodeResult &dr = w.results[i];
            latency_ns = dr.latencyNs;
            gave_up = dr.gaveUp;
            logical_error = (dr.obsMask != w.actuals[i]);
            nontrivialTotal_.fetch_add(1, std::memory_order_relaxed);

            // Shadow audit: copy-only, drop-not-block, off hot path.
            audited = audit_->offer(w.shots, w.index, w.batch.at(i),
                                    dr, w.actuals[i], trace_id);

            if (flight) {
                telemetry::DecodeRecord rec;
                rec.shot = w.shots;
                rec.worker = w.index;
                auto sp = w.batch.at(i);
                rec.defects.assign(sp.begin(), sp.end());
                rec.obsMask = dr.obsMask;
                rec.actualObs = w.actuals[i];
                rec.gaveUp = gave_up;
                rec.logicalError = logical_error;
                rec.latencyNs = dr.latencyNs;
                rec.cycles = dr.cycles;
                rec.matchingWeight = dr.matchingWeight;
                rec.traceId = trace_id;
                capture_seq =
                    telemetry::FlightRecorder::global().record(rec);
            }
        }

        if (tracer.active()) {
            // Tail-retention verdict, now that the outcome is known.
            telemetry::TraceShotOutcome out;
            out.latencyNs = latency_ns;
            out.gaveUp = gave_up;
            out.logicalError = logical_error;
            out.audited = audited;
            out.captureSeq = capture_seq;
            out.actualObs = w.actuals[i];
            if (hw > 0) {
                const DecodeResult &dr = w.results[i];
                out.cycles = dr.cycles;
                out.matchingWeight = dr.matchingWeight;
                out.obsMask = dr.obsMask;
            }
            auto sp = w.batch.at(i);
            out.defects = sp.data();
            out.hw = static_cast<uint32_t>(sp.size());
            tracer.finishShot(static_cast<uint32_t>(i), out);
        }

        decodesTotal_.fetch_add(1, std::memory_order_relaxed);
        decodesWin_.add(tick);
        latencyWin_.record(tick, latency_ns);
        drift_.record(hw);
        ASTREA_HIST_ADD("experiment.hamming_weight", hw);

        if (latency_ns > config_.budgetNs) {
            deadlineMissesTotal_.fetch_add(1, std::memory_order_relaxed);
            missesWin_.add(tick);
        }
        if (gave_up) {
            giveUpsTotal_.fetch_add(1, std::memory_order_relaxed);
            giveUpsWin_.add(tick);
            // Same family the streaming bench reports, so dashboards
            // for the service and for bench reports line up.
            ASTREA_COUNTER_INC("experiment.give_ups");
        }
        if (logical_error) {
            logicalErrorsTotal_.fetch_add(1, std::memory_order_relaxed);
            logicalErrorsWin_.add(tick);
        }
        w.shots++;
    }
    tracer.endBatch();

    // Refresh the tracer's auto tail threshold from the rolling p99
    // occasionally; until the window has data the slow criterion stays
    // inactive (threshold 0).
    const uint64_t batch_no =
        batchesDone_.fetch_add(1, std::memory_order_relaxed);
    if ((batch_no & 0xFF) == 0)
        telemetry::setTraceAutoTailNs(
            latencyWin_.percentileNs(tick_(), 99.0));
}

void
DecodeServiceCore::accountFleetShot(size_t hw, double latency_ns,
                                    bool gave_up)
{
    const uint64_t tick = tick_();
    decodesTotal_.fetch_add(1, std::memory_order_relaxed);
    decodesWin_.add(tick);
    latencyWin_.record(tick, latency_ns);
    drift_.record(hw);
    if (hw > 0)
        nontrivialTotal_.fetch_add(1, std::memory_order_relaxed);
    if (latency_ns > config_.budgetNs) {
        deadlineMissesTotal_.fetch_add(1, std::memory_order_relaxed);
        missesWin_.add(tick);
    }
    if (gave_up) {
        giveUpsTotal_.fetch_add(1, std::memory_order_relaxed);
        giveUpsWin_.add(tick);
    }
}

uint64_t
DecodeServiceCore::totalDecodes() const
{
    return decodesTotal_.load(std::memory_order_relaxed);
}

double
DecodeServiceCore::windowSeconds(size_t sub_windows) const
{
    return static_cast<double>(sub_windows) *
           static_cast<double>(config_.subWindowMillis) / 1000.0;
}

namespace
{

double
fraction(uint64_t part, uint64_t whole)
{
    return whole == 0 ? 0.0
                      : static_cast<double>(part) /
                            static_cast<double>(whole);
}

} // namespace

std::string
DecodeServiceCore::metricsText(bool openmetrics) const
{
    using telemetry::PromLabels;
    const uint64_t tick = tick_();
    const double error_budget = std::max(1e-12,
                                         1.0 - config_.sloTarget);
    const size_t fast_k = config_.fastBurnSubWindows;

    const uint64_t win_decodes = decodesWin_.total(tick);
    const uint64_t win_misses = missesWin_.total(tick);
    const uint64_t win_giveups = giveUpsWin_.total(tick);
    const uint64_t win_errors = logicalErrorsWin_.total(tick);
    const uint64_t fast_decodes = decodesWin_.total(tick, fast_k);
    const uint64_t fast_misses = missesWin_.total(tick, fast_k);

    telemetry::PrometheusWriter w;

    w.family("astrea_serve_up", "gauge",
             "1 while the decode service is healthy");
    w.sample("astrea_serve_up", uint64_t{healthy_ ? 1u : 0u});

    w.family("astrea_serve_info", "gauge",
             "Static service configuration as labels");
    w.sample("astrea_serve_info", uint64_t{1},
             PromLabels{{"decoder", config_.decoder},
                        {"d", std::to_string(config_.distance)},
                        {"p", std::to_string(config_.physicalErrorRate)}});

    w.counter("astrea_serve_decodes_total", "Decodes attempted",
              decodesTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_serve_nontrivial_decodes_total",
              "Decodes with a non-empty syndrome",
              nontrivialTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_serve_logical_errors_total",
              "Decodes whose predicted observable flip was wrong",
              logicalErrorsTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_serve_give_ups_total",
              "Decodes the decoder declined (e.g. Hamming weight cap)",
              giveUpsTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_serve_deadline_misses_total",
              "Decodes exceeding the modeled cycle budget",
              deadlineMissesTotal_.load(std::memory_order_relaxed));

    w.gauge("astrea_serve_window_decodes",
            "Decodes in the rolling window",
            static_cast<double>(win_decodes));
    w.gauge("astrea_serve_window_decode_rate_hz",
            "Decode throughput over the rolling window",
            static_cast<double>(win_decodes) /
                windowSeconds(config_.subWindows));
    w.gauge("astrea_serve_window_deadline_miss_fraction",
            "Deadline-miss fraction over the rolling window",
            fraction(win_misses, win_decodes));
    w.gauge("astrea_serve_window_give_up_fraction",
            "Give-up fraction over the rolling window",
            fraction(win_giveups, win_decodes));
    w.gauge("astrea_serve_window_logical_error_fraction",
            "Logical-error fraction over the rolling window",
            fraction(win_errors, win_decodes));

    telemetry::LatencyBuckets lat = latencyWin_.buckets(tick);
    {
        const telemetry::TraceStore &store =
            telemetry::TraceStore::global();
        auto toProm = [](const telemetry::TraceStore::Exemplar &e) {
            telemetry::PromExemplar pe;
            if (e.valid) {
                pe.valid = true;
                pe.labels = {
                    {"trace_id", telemetry::traceIdHex(e.traceId)}};
                pe.value = e.latencyNs;
            }
            return pe;
        };

        std::vector<std::pair<double, uint64_t>> cumulative;
        std::vector<telemetry::PromExemplar> exemplars;
        uint64_t cum = 0;
        size_t top = 0;
        for (size_t b = 0; b < telemetry::kLatencyBuckets; b++) {
            if (lat.bins[b])
                top = b;
        }
        for (size_t b = 0; b <= top; b++) {
            cum += lat.bins[b];
            cumulative.emplace_back(telemetry::latencyBucketHighNs(b),
                                    cum);
            if (openmetrics)
                exemplars.push_back(toProm(store.exemplar(b)));
        }
        // The +Inf bucket carries the worst kept trace above the
        // last rendered edge, so even overflow latencies resolve.
        telemetry::PromExemplar inf_pe;
        if (openmetrics)
            inf_pe = toProm(store.exemplarAbove(top));
        w.histogram("astrea_serve_window_latency_ns",
                    "Decode latency over the rolling window (ns)",
                    cumulative, lat.count,
                    static_cast<double>(lat.sumNs), exemplars,
                    inf_pe);
    }
    for (double pct : {50.0, 90.0, 99.0, 99.9}) {
        char name[64];
        std::snprintf(name, sizeof(name),
                      "astrea_serve_window_latency_p%g_ns", pct);
        std::string n = telemetry::promMetricName(name);
        w.gauge(n, "Rolling-window latency percentile (ns)",
                latencyWin_.percentileNs(tick, pct));
    }

    w.gauge("astrea_serve_slo_target",
            "Configured fraction of decodes within budget",
            config_.sloTarget);
    w.gauge("astrea_serve_slo_fast_burn",
            "Deadline-miss burn rate over the fast window "
            "(1 = exactly consuming the error budget)",
            fraction(fast_misses, fast_decodes) / error_budget);
    w.gauge("astrea_serve_slo_slow_burn",
            "Deadline-miss burn rate over the whole rolling window",
            fraction(win_misses, win_decodes) / error_budget);

    w.gauge("astrea_serve_drift_chi_square",
            "Chi-square distance of recent Hamming-weight histogram "
            "vs warm-up baseline",
            drift_.chiSquare());
    w.gauge("astrea_serve_drift_threshold",
            "Drift alarm threshold", drift_.threshold());
    w.gauge("astrea_serve_drift_baseline_ready",
            "1 once the warm-up baseline is complete",
            drift_.baselineReady() ? 1.0 : 0.0);
    w.gauge("astrea_serve_drift_alarm",
            "1 while the drift distance exceeds the threshold",
            drift_.alarmed() ? 1.0 : 0.0);

    audit_->writeMetrics(w);
    if (fleet_)
        fleet_->writeMetrics(w);
    telemetry::TraceStore::global().writeMetrics(w);

    // Written directly, like the audit families: mirroring the perf
    // families through the metrics registry would duplicate their
    // TYPE lines via appendRegistryMetrics.
    telemetry::writePerfPrometheus(w);

    telemetry::appendRegistryMetrics(
        w, telemetry::MetricsRegistry::global());
    std::string text = w.str();
    if (openmetrics)
        text += "# EOF\n";  // OpenMetrics requires the terminator.
    return text;
}

std::string
DecodeServiceCore::statuszJson() const
{
    const uint64_t tick = tick_();
    const double error_budget = std::max(1e-12,
                                         1.0 - config_.sloTarget);
    const size_t fast_k = config_.fastBurnSubWindows;

    const uint64_t win_decodes = decodesWin_.total(tick);
    const uint64_t win_misses = missesWin_.total(tick);
    const uint64_t win_giveups = giveUpsWin_.total(tick);
    const uint64_t win_errors = logicalErrorsWin_.total(tick);
    const uint64_t fast_decodes = decodesWin_.total(tick, fast_k);
    const uint64_t fast_misses = missesWin_.total(tick, fast_k);

    telemetry::JsonWriter w;
    w.beginObject();
    w.kv("service", "astrea_serve");
    w.kv("schema_version", uint64_t{5});
    w.kv("healthy", healthy_.load());
    w.kv("uptime_ticks", tick);

    w.key("config").beginObject();
    w.kv("d", config_.distance);
    w.kv("rounds", config_.rounds);
    w.kv("p", config_.physicalErrorRate);
    w.kv("decoder", config_.decoder);
    w.kv("workers", uint64_t{config_.workers});
    w.kv("budget_ns", config_.budgetNs);
    w.kv("slo_target", config_.sloTarget);
    w.kv("window_seconds", windowSeconds(config_.subWindows));
    w.kv("sub_window_millis", config_.subWindowMillis);
    w.kv("seed", config_.seed);
    w.endObject();

    w.key("totals").beginObject();
    w.kv("decodes", decodesTotal_.load(std::memory_order_relaxed));
    w.kv("nontrivial_decodes",
         nontrivialTotal_.load(std::memory_order_relaxed));
    w.kv("logical_errors",
         logicalErrorsTotal_.load(std::memory_order_relaxed));
    w.kv("give_ups", giveUpsTotal_.load(std::memory_order_relaxed));
    w.kv("deadline_misses",
         deadlineMissesTotal_.load(std::memory_order_relaxed));
    w.endObject();

    w.key("window").beginObject();
    w.kv("decodes", win_decodes);
    w.kv("decode_rate_hz",
         static_cast<double>(win_decodes) /
             windowSeconds(config_.subWindows));
    w.kv("deadline_miss_fraction", fraction(win_misses, win_decodes));
    w.kv("give_up_fraction", fraction(win_giveups, win_decodes));
    w.kv("logical_error_fraction",
         fraction(win_errors, win_decodes));
    w.key("latency_ns").beginObject();
    w.kv("count", latencyWin_.count(tick));
    w.kv("p50", latencyWin_.percentileNs(tick, 50.0));
    w.kv("p90", latencyWin_.percentileNs(tick, 90.0));
    w.kv("p99", latencyWin_.percentileNs(tick, 99.0));
    w.kv("p999", latencyWin_.percentileNs(tick, 99.9));
    w.endObject();
    w.endObject();

    w.key("slo").beginObject();
    w.kv("target", config_.sloTarget);
    w.kv("error_budget", error_budget);
    w.kv("fast_burn",
         fraction(fast_misses, fast_decodes) / error_budget);
    w.kv("slow_burn",
         fraction(win_misses, win_decodes) / error_budget);
    w.endObject();

    w.key("drift").beginObject();
    w.kv("chi_square", drift_.chiSquare());
    w.kv("threshold", drift_.threshold());
    w.kv("baseline_ready", drift_.baselineReady());
    w.kv("alarmed", drift_.alarmed());
    w.endObject();

    w.key("audit").beginObject();
    audit_->writeStatusz(w);
    w.endObject();

    w.key("trace_store").beginObject();
    telemetry::TraceStore::global().writeStatusz(w);
    w.endObject();

    // Always present (schema v5): enabled:false when the fleet is off
    // so dashboards need no schema branch.
    w.key("fleet").beginObject();
    w.kv("enabled", fleet_ != nullptr);
    if (fleet_)
        fleet_->writeStatusz(w);
    w.endObject();

    w.key("perf");
    telemetry::appendPerfJson(w);

    w.endObject();
    return w.str();
}

// ---------------------------------------------------------------------------
// DecodeService

DecodeService::DecodeService(const ServeConfig &config) : core_(config)
{
}

DecodeService::~DecodeService()
{
    stop();
}

bool
DecodeService::start(const std::string &bind_addr, uint16_t port,
                     std::string *error)
{
    http_.handle("/metrics", [this](const net::HttpRequest &req) {
        net::HttpResponse r;
        // OpenMetrics content negotiation: exemplars only exist in
        // the OpenMetrics exposition, so a 0.0.4 scraper keeps
        // getting byte-identical plain text.
        const bool om =
            req.header("accept").find(
                "application/openmetrics-text") !=
                std::string::npos ||
            net::queryParam(req.query, "format") == "openmetrics";
        r.contentType =
            om ? "application/openmetrics-text; version=1.0.0; "
                 "charset=utf-8"
               : "text/plain; version=0.0.4; charset=utf-8";
        r.body = core_.metricsText(om);
        return r;
    });
    http_.handle("/traces", [](const net::HttpRequest &req) {
        net::HttpResponse r;
        r.contentType = "application/json";
        telemetry::TraceQuery q;
        std::string v = net::queryParam(req.query, "min_ns");
        if (!v.empty())
            q.minNs = std::atof(v.c_str());
        q.decoder = net::queryParam(req.query, "decoder");
        q.outcome = net::queryParam(req.query, "outcome");
        v = net::queryParam(req.query, "limit");
        if (!v.empty())
            q.limit = static_cast<size_t>(
                std::clamp(std::atol(v.c_str()), 1l, 100000l));
        r.body = telemetry::TraceStore::global().indexJson(q);
        return r;
    });
    http_.handlePrefix("/traces/", [](const net::HttpRequest &req) {
        net::HttpResponse r;
        const uint64_t id = telemetry::parseTraceIdHex(
            req.path.substr(sizeof("/traces/") - 1));
        std::string body;
        if (id != 0)
            body = telemetry::TraceStore::global().detailJson(id);
        if (body.empty()) {
            r.status = 404;
            r.body = "trace not found\n";
        } else {
            r.contentType = "application/json";
            r.body = body;
        }
        return r;
    });
    http_.handle("/statusz", [this](const net::HttpRequest &) {
        net::HttpResponse r;
        r.contentType = "application/json";
        r.body = core_.statuszJson();
        return r;
    });
    // On-demand CPU profile: collect SIGPROF samples for ?seconds=N
    // (default 2, clamped to [1, 60]) at ?hz=H (default 199) and
    // return collapsed stacks (or ?format=speedscope JSON). The
    // server is serial, so /metrics scrapes queue behind the
    // collection sleep — acceptable for a diagnostic endpoint.
    http_.handle("/pprof/profile", [](const net::HttpRequest &req) {
        net::HttpResponse r;
        unsigned seconds = 2;
        unsigned hz = 199;
        std::string v = net::queryParam(req.query, "seconds");
        if (!v.empty())
            seconds = static_cast<unsigned>(
                std::clamp(std::atol(v.c_str()), 1l, 60l));
        v = net::queryParam(req.query, "hz");
        if (!v.empty())
            hz = static_cast<unsigned>(
                std::clamp(std::atol(v.c_str()), 1l, 1000l));
        const std::string format =
            net::queryParam(req.query, "format");

        auto &prof = telemetry::SamplingProfiler::global();
        std::string error;
        if (prof.running()) {
            r.status = 503;
            r.body = "profiler busy\n";
            return r;
        }
        prof.clear();
        if (!prof.start(hz, &error)) {
            r.status = 500;
            r.body = error + "\n";
            return r;
        }
        std::this_thread::sleep_for(std::chrono::seconds(seconds));
        prof.stop();

        if (format == "speedscope") {
            r.contentType = "application/json";
            r.body = prof.speedscopeJson();
        } else {
            r.body = prof.collapsed();
        }
        return r;
    });
    http_.handle("/healthz", [this](const net::HttpRequest &) {
        net::HttpResponse r;
        const unsigned expected = core_.config().workers;
        if (running_ && activeWorkers_ == expected &&
            core_.healthy()) {
            r.body = "ok\n";
        } else {
            r.status = 503;
            r.body = "unhealthy\n";
        }
        return r;
    });

    if (!http_.start(bind_addr, port, error))
        return false;

    if (core_.fleet() != nullptr) {
        fleetServer_ =
            std::make_unique<net::FleetServer>(*core_.fleet());
        core_.fleet()->setVerdictSink(
            [srv = fleetServer_.get()](const FleetVerdict &v) {
                srv->deliver(v);
            });
        if (!fleetServer_->start(core_.config().fleetBind,
                                 core_.config().fleetPort, error)) {
            fleetServer_.reset();
            http_.stop();
            return false;
        }
        core_.fleet()->start();
    }

    core_.audit().start();
    running_ = true;
    threads_.reserve(core_.config().workers);
    const uint64_t batch_shots =
        std::max<uint64_t>(1, core_.config().batchShots);
    for (unsigned i = 0; i < core_.config().workers; i++) {
        threads_.emplace_back([this, i, batch_shots] {
            auto worker = core_.makeWorker(i);
            activeWorkers_.fetch_add(1);
            while (running_.load(std::memory_order_relaxed))
                core_.decodeBatch(*worker, batch_shots);
            activeWorkers_.fetch_sub(1);
        });
    }
    return true;
}

uint16_t
DecodeService::fleetPort() const
{
    return fleetServer_ ? fleetServer_->port() : 0;
}

void
DecodeService::stop()
{
    if (!running_ && threads_.empty())
        return;
    running_ = false;
    for (auto &t : threads_)
        t.join();
    threads_.clear();
    // Drain the fleet while connections are still up (graceful
    // flush delivers the queued verdicts), then drop the front-end.
    if (core_.fleet() != nullptr)
        core_.fleet()->stop();
    if (fleetServer_) {
        fleetServer_->stop();
        fleetServer_.reset();
    }
    // Flush outstanding audits before the final scrapes can land.
    core_.audit().stop();
    core_.setHealthy(false);
    http_.stop();
}

} // namespace astrea
