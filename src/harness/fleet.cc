#include "harness/fleet.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "decoders/decoder.hh"

namespace astrea
{

/** One shard: ring + worker-owned coalescing and decode state. */
struct DecodeFleet::Shard
{
    explicit Shard(size_t ring_capacity, size_t max_batch)
        : ring(ring_capacity)
    {
        pendingJobs.resize(max_batch);
    }

    MpscRing<FleetJob> ring;

    // Worker-thread-owned (no locking): the pending block being
    // coalesced, plus reused decode buffers.
    std::vector<FleetJob> pendingJobs;
    size_t pending = 0;
    std::unique_ptr<Decoder> decoder;
    SyndromeBatch batch;
    std::vector<DecodeResult> results;
    DecodeScratch scratch;
};

DecodeFleet::DecodeFleet(const FleetConfig &config,
                         std::shared_ptr<const ExperimentContext> ctx,
                         DecoderFactory factory)
    : config_(config), ctx_(std::move(ctx))
{
    config_.shards = std::max(1u, config_.shards);
    config_.maxBatch = std::max<size_t>(1, config_.maxBatch);
    ASTREA_CHECK(config_.shedLowWatermark <= config_.shedHighWatermark,
                 "fleet shed watermarks inverted");
    numDetectorBits_ =
        static_cast<uint32_t>(ctx_->circuit().numDetectors());

    shards_.reserve(config_.shards);
    for (unsigned i = 0; i < config_.shards; i++) {
        shards_.push_back(std::make_unique<Shard>(config_.ringCapacity,
                                                  config_.maxBatch));
        shards_.back()->decoder = factory(*ctx_);
    }

    now_ = [] {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    };
}

DecodeFleet::~DecodeFleet()
{
    stop();
}

void
DecodeFleet::setVerdictSink(
    std::function<void(const FleetVerdict &)> sink)
{
    sink_ = std::move(sink);
}

void
DecodeFleet::setAccountHook(
    std::function<void(size_t, double, bool)> hook)
{
    account_ = std::move(hook);
}

void
DecodeFleet::setNowFunction(std::function<uint64_t()> now)
{
    now_ = std::move(now);
}

unsigned
DecodeFleet::shardFor(uint32_t stream_id) const
{
    // Fibonacci hash spreads adjacent stream ids across shards.
    uint32_t h = stream_id * 0x9E3779B9u;
    return (h >> 16) % config_.shards;
}

size_t
DecodeFleet::queueDepth(unsigned shard) const
{
    return shards_[shard]->ring.sizeApprox();
}

uint8_t
DecodeFleet::requiredPriorityAtDepth(size_t depth) const
{
    const double cap = static_cast<double>(config_.ringCapacity);
    const double low = config_.shedLowWatermark * cap;
    const double high = config_.shedHighWatermark * cap;
    const double d = static_cast<double>(depth);
    if (d < low || config_.maxPriority == 0)
        return 0;
    if (d >= high)
        return config_.maxPriority;
    const double frac = (d - low) / std::max(1.0, high - low);
    return static_cast<uint8_t>(
        std::ceil(frac * static_cast<double>(config_.maxPriority)));
}

FleetSubmit
DecodeFleet::submit(FleetJob &job)
{
    job.ingestNs = now_();
    Shard &s = *shards_[shardFor(job.streamId)];

    FleetVerdict shed;
    shed.streamId = job.streamId;
    shed.seq = job.seq;
    shed.connId = job.connId;
    shed.shed = true;

    if (job.priority < requiredPriorityAtDepth(s.ring.sizeApprox())) {
        shedTotal_.fetch_add(1, std::memory_order_relaxed);
        if (sink_)
            sink_(shed);
        return FleetSubmit::Shed;
    }
    if (!s.ring.tryPush(job)) {
        ringFullTotal_.fetch_add(1, std::memory_order_relaxed);
        shedTotal_.fetch_add(1, std::memory_order_relaxed);
        if (sink_)
            sink_(shed);
        return FleetSubmit::RingFull;
    }
    enqueuedTotal_.fetch_add(1, std::memory_order_relaxed);
    return FleetSubmit::Enqueued;
}

void
DecodeFleet::flushLocked(Shard &s, uint64_t now_ns)
{
    s.batch.clear();
    for (size_t i = 0; i < s.pending; i++) {
        const FleetJob &j = s.pendingJobs[i];
        s.batch.add({j.defects.data(), j.hw});
    }
    s.decoder->decodeBatch(s.batch, s.results, s.scratch);

    for (size_t i = 0; i < s.pending; i++) {
        const FleetJob &j = s.pendingJobs[i];
        const DecodeResult &dr = s.results[i];
        if (account_)
            account_(j.hw, dr.latencyNs, dr.gaveUp);
        if (sink_) {
            FleetVerdict v;
            v.streamId = j.streamId;
            v.seq = j.seq;
            v.connId = j.connId;
            v.obsMask = dr.obsMask;
            v.gaveUp = dr.gaveUp;
            v.latencyNs = now_ns > j.ingestNs ? now_ns - j.ingestNs : 0;
            sink_(v);
        }
    }
    batchesTotal_.fetch_add(1, std::memory_order_relaxed);
    decodedTotal_.fetch_add(s.pending, std::memory_order_relaxed);
    s.pending = 0;
}

size_t
DecodeFleet::pumpShard(unsigned shard, uint64_t now_ns)
{
    Shard &s = *shards_[shard];
    while (s.pending < config_.maxBatch &&
           s.ring.tryPop(s.pendingJobs[s.pending]))
        s.pending++;
    if (s.pending == 0)
        return 0;
    const bool full = s.pending >= config_.maxBatch;
    const uint64_t oldest = s.pendingJobs[0].ingestNs;
    const bool aged =
        now_ns >= oldest && now_ns - oldest >= config_.maxDelayNs;
    if (!full && !aged)
        return 0;
    const size_t n = s.pending;
    flushLocked(s, now_ns);
    return n;
}

size_t
DecodeFleet::flushShard(unsigned shard, uint64_t now_ns)
{
    Shard &s = *shards_[shard];
    size_t n = 0;
    for (;;) {
        while (s.pending < config_.maxBatch &&
               s.ring.tryPop(s.pendingJobs[s.pending]))
            s.pending++;
        if (s.pending == 0)
            return n;
        n += s.pending;
        flushLocked(s, now_ns);
    }
}

void
DecodeFleet::start()
{
    if (running_.exchange(true))
        return;
    threads_.reserve(config_.shards);
    for (unsigned i = 0; i < config_.shards; i++) {
        threads_.emplace_back([this, i] {
            while (running_.load(std::memory_order_relaxed)) {
                if (pumpShard(i, now_()) == 0) {
                    // Nothing flushed: sleep a fraction of maxDelay so
                    // the age-based flush fires close to on time.
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(std::max<uint64_t>(
                            1000, config_.maxDelayNs / 8)));
                }
            }
            // Graceful drain: decode whatever is still queued.
            flushShard(i, now_());
        });
    }
}

void
DecodeFleet::stop()
{
    if (!running_.exchange(false))
        return;
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

void
DecodeFleet::writeMetrics(telemetry::PrometheusWriter &w) const
{
    using telemetry::PromLabels;
    w.counter("astrea_fleet_connections_total",
              "Fleet ingest connections accepted",
              connectionsTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_fleet_frames_total",
              "Syndrome frames received on the fleet ingest port",
              framesTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_fleet_malformed_frames_total",
              "Malformed/unparseable frames (connection closed)",
              malformedTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_fleet_enqueued_total",
              "Shots admitted into shard rings",
              enqueuedTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_fleet_shed_total",
              "Shots shed by admission control (includes ring-full)",
              shedTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_fleet_ring_full_total",
              "Shots rejected because the shard ring was full",
              ringFullTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_fleet_coalesced_batches_total",
              "decodeBatch calls issued by shard workers",
              batchesTotal_.load(std::memory_order_relaxed));
    w.counter("astrea_fleet_decoded_shots_total",
              "Shots decoded through the fleet path",
              decodedTotal_.load(std::memory_order_relaxed));

    w.family("astrea_fleet_queue_depth", "gauge",
             "Approximate shard ring occupancy");
    for (unsigned i = 0; i < config_.shards; i++) {
        w.sample("astrea_fleet_queue_depth",
                 static_cast<double>(queueDepth(i)),
                 PromLabels{{"shard", std::to_string(i)}});
    }
}

void
DecodeFleet::writeStatusz(telemetry::JsonWriter &w) const
{
    w.kv("shards", uint64_t{config_.shards});
    w.kv("ring_capacity",
         static_cast<uint64_t>(shards_[0]->ring.capacity()));
    w.kv("max_batch", static_cast<uint64_t>(config_.maxBatch));
    w.kv("max_delay_ns", config_.maxDelayNs);
    w.kv("shed_low_watermark", config_.shedLowWatermark);
    w.kv("shed_high_watermark", config_.shedHighWatermark);
    w.kv("max_priority", uint64_t{config_.maxPriority});
    w.kv("connections", connectionsTotal_.load(std::memory_order_relaxed));
    w.kv("frames", framesTotal_.load(std::memory_order_relaxed));
    w.kv("malformed_frames",
         malformedTotal_.load(std::memory_order_relaxed));
    w.kv("enqueued", enqueuedTotal_.load(std::memory_order_relaxed));
    w.kv("shed", shedTotal_.load(std::memory_order_relaxed));
    w.kv("ring_full", ringFullTotal_.load(std::memory_order_relaxed));
    w.kv("coalesced_batches",
         batchesTotal_.load(std::memory_order_relaxed));
    w.kv("decoded_shots",
         decodedTotal_.load(std::memory_order_relaxed));
    w.key("queue_depths").beginArray();
    for (unsigned i = 0; i < config_.shards; i++)
        w.value(static_cast<uint64_t>(queueDepth(i)));
    w.endArray();
}

} // namespace astrea
