#include "harness/latency_stats.hh"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/thread_pool.hh"
#include "harness/memory_experiment.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

LatencyHistogram::LatencyHistogram(double bucket_ns, double max_ns)
    : bucketNs_(bucket_ns),
      counts_(static_cast<size_t>(std::ceil(max_ns / bucket_ns)), 0)
{
}

void
LatencyHistogram::add(double ns)
{
    stats_.add(ns);
    size_t b = static_cast<size_t>(ns / bucketNs_);
    if (b < counts_.size())
        counts_[b]++;
    else
        overflow_++;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (size_t b = 0; b < counts_.size() && b < other.counts_.size();
         b++) {
        counts_[b] += other.counts_[b];
    }
    overflow_ += other.overflow_;
    stats_.merge(other.stats_);
}

double
LatencyHistogram::fractionAbove(double threshold_ns) const
{
    if (stats_.count() == 0)
        return 0.0;
    uint64_t above = overflow_;
    for (size_t b = 0; b < counts_.size(); b++) {
        if (bucketLowNs(b) >= threshold_ns)
            above += counts_[b];
    }
    // Buckets straddling the threshold are counted conservatively by
    // their lower edge; with 50 ns buckets against a 1000 ns deadline
    // the bias is negligible.
    return static_cast<double>(above) /
           static_cast<double>(stats_.count());
}

double
LatencyHistogram::percentileNs(double pct) const
{
    const uint64_t n = stats_.count();
    if (n == 0)
        return 0.0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(n)));
    rank = std::clamp<uint64_t>(rank, 1, n);

    uint64_t cum = 0;
    for (size_t b = 0; b < counts_.size(); b++) {
        if (counts_[b] == 0)
            continue;
        cum += counts_[b];
        if (cum >= rank) {
            // Interpolate inside the bucket, clamped to the observed
            // extremes (a one-sample bucket reports its true value
            // only at the histogram's resolution).
            double before = static_cast<double>(cum - counts_[b]);
            double frac = (static_cast<double>(rank) - before) /
                          static_cast<double>(counts_[b]);
            double est = bucketLowNs(b) + frac * bucketNs_;
            return std::min(est, stats_.max());
        }
    }
    // Rank falls in the overflow region.
    return stats_.max();
}

size_t
LatencyHistogram::bucketIndex(double ns) const
{
    if (!std::isfinite(ns) || ns < 0.0)
        return counts_.size();
    const double b = ns / bucketNs_;
    if (b >= static_cast<double>(counts_.size()))
        return counts_.size();
    return static_cast<size_t>(b);
}

double
LatencyHistogram::bucketFraction(size_t b) const
{
    if (stats_.count() == 0 || b >= counts_.size())
        return 0.0;
    return static_cast<double>(counts_[b]) /
           static_cast<double>(stats_.count());
}

LatencyHistogram
measureLatencyDistribution(const ExperimentContext &ctx,
                           const DecoderFactory &factory, uint64_t shots,
                           uint64_t seed, unsigned threads)
{
    if (threads == 0)
        threads = defaultWorkerCount();
    Rng root(seed);

    ASTREA_SPAN("latency_distribution");
    // 50 ns buckets up to 100 us: software MWPM routinely exceeds the
    // old 10 us default, which pushed its p90/p99 into the overflow
    // fallback (reporting the observed max instead of an estimate).
    LatencyHistogram total(50.0, 100000.0);
    std::mutex merge_mutex;

    parallelFor(shots, threads,
                [&](unsigned worker, uint64_t begin, uint64_t end) {
        Rng rng = root.split(worker);
        auto decoder = factory(ctx);
        LatencyHistogram local(50.0, 100000.0);
        BitVec dets(ctx.circuit().numDetectors());
        BitVec obs(ctx.circuit().numObservables());
        DecodeResult dr;
        DecodeScratch scratch;
        for (uint64_t s = begin; s < end; s++) {
            ctx.sampler().sample(rng, dets, obs);
            dets.onesIndicesInto(scratch.defects);
            if (scratch.defects.empty())
                continue;
            decoder->decodeInto(scratch.defects, dr, scratch);
            local.add(dr.latencyNs);
            ASTREA_LATENCY_NS("experiment.nontrivial_decode_ns",
                              dr.latencyNs);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        total.merge(local);
    });
    ASTREA_COUNTER_ADD("experiment.latency_shots", shots);
    return total;
}

} // namespace astrea
