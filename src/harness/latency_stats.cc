#include "harness/latency_stats.hh"

#include <cmath>
#include <mutex>

#include "common/thread_pool.hh"

namespace astrea
{

LatencyHistogram::LatencyHistogram(double bucket_ns, double max_ns)
    : bucketNs_(bucket_ns),
      counts_(static_cast<size_t>(std::ceil(max_ns / bucket_ns)), 0)
{
}

void
LatencyHistogram::add(double ns)
{
    stats_.add(ns);
    size_t b = static_cast<size_t>(ns / bucketNs_);
    if (b < counts_.size())
        counts_[b]++;
    else
        overflow_++;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (size_t b = 0; b < counts_.size() && b < other.counts_.size();
         b++) {
        counts_[b] += other.counts_[b];
    }
    overflow_ += other.overflow_;
    stats_.merge(other.stats_);
}

double
LatencyHistogram::fractionAbove(double threshold_ns) const
{
    if (stats_.count() == 0)
        return 0.0;
    uint64_t above = overflow_;
    for (size_t b = 0; b < counts_.size(); b++) {
        if (bucketLowNs(b) >= threshold_ns)
            above += counts_[b];
    }
    // Buckets straddling the threshold are counted conservatively by
    // their lower edge; with 50 ns buckets against a 1000 ns deadline
    // the bias is negligible.
    return static_cast<double>(above) /
           static_cast<double>(stats_.count());
}

double
LatencyHistogram::bucketFraction(size_t b) const
{
    if (stats_.count() == 0 || b >= counts_.size())
        return 0.0;
    return static_cast<double>(counts_[b]) /
           static_cast<double>(stats_.count());
}

LatencyHistogram
measureLatencyDistribution(const ExperimentContext &ctx,
                           const DecoderFactory &factory, uint64_t shots,
                           uint64_t seed, unsigned threads)
{
    if (threads == 0)
        threads = defaultWorkerCount();
    Rng root(seed);

    LatencyHistogram total;
    std::mutex merge_mutex;

    parallelFor(shots, threads,
                [&](unsigned worker, uint64_t begin, uint64_t end) {
        Rng rng = root.split(worker);
        auto decoder = factory(ctx);
        LatencyHistogram local;
        BitVec dets(ctx.circuit().numDetectors());
        BitVec obs(ctx.circuit().numObservables());
        for (uint64_t s = begin; s < end; s++) {
            ctx.sampler().sample(rng, dets, obs);
            auto defects = dets.onesIndices();
            if (defects.empty())
                continue;
            DecodeResult dr = decoder->decode(defects);
            local.add(dr.latencyNs);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        total.merge(local);
    });
    return total;
}

} // namespace astrea
