#include "harness/trace_io.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace astrea
{

namespace
{

constexpr char kMagic[4] = {'A', 'S', 'T', 'R'};
constexpr uint32_t kVersion = 1;

void
writeAll(std::FILE *f, const void *data, size_t bytes,
         const std::string &path)
{
    if (std::fwrite(data, 1, bytes, f) != bytes)
        fatal("short write to " + path);
}

void
readAll(std::FILE *f, void *data, size_t bytes, const std::string &path)
{
    if (std::fread(data, 1, bytes, f) != bytes)
        fatal("short read from " + path);
}

} // namespace

SyndromeTrace
recordTrace(const ExperimentContext &ctx, uint64_t shots, uint64_t seed)
{
    SyndromeTrace trace;
    trace.numDetectors = ctx.circuit().numDetectors();
    trace.numObservables = ctx.circuit().numObservables();
    trace.shots.reserve(shots);

    Rng root(seed);
    Rng rng = root.split(0);
    BitVec dets(trace.numDetectors);
    BitVec obs(trace.numObservables);
    for (uint64_t s = 0; s < shots; s++) {
        ctx.sampler().sample(rng, dets, obs);
        TraceShot shot;
        shot.defects = dets.onesIndices();
        for (auto o : obs.onesIndices())
            shot.observables |= (1ull << o);
        trace.shots.push_back(std::move(shot));
    }
    return trace;
}

void
saveTrace(const SyndromeTrace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open " + path + " for writing");

    writeAll(f, kMagic, sizeof(kMagic), path);
    writeAll(f, &kVersion, sizeof(kVersion), path);
    writeAll(f, &trace.numDetectors, sizeof(uint32_t), path);
    writeAll(f, &trace.numObservables, sizeof(uint32_t), path);
    uint64_t count = trace.shots.size();
    writeAll(f, &count, sizeof(count), path);

    for (const auto &shot : trace.shots) {
        ASTREA_CHECK(shot.defects.size() < 0x10000,
                     "trace shot too dense");
        uint16_t n = static_cast<uint16_t>(shot.defects.size());
        writeAll(f, &n, sizeof(n), path);
        if (n) {
            writeAll(f, shot.defects.data(), n * sizeof(uint32_t),
                     path);
        }
        uint8_t obs = static_cast<uint8_t>(shot.observables);
        writeAll(f, &obs, sizeof(obs), path);
    }
    if (std::fclose(f) != 0)
        fatal("error closing " + path);
}

SyndromeTrace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open " + path);

    char magic[4];
    uint32_t version = 0;
    SyndromeTrace trace;
    uint64_t count = 0;
    readAll(f, magic, sizeof(magic), path);
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        std::fclose(f);
        fatal(path + " is not a syndrome trace");
    }
    readAll(f, &version, sizeof(version), path);
    if (version != kVersion) {
        std::fclose(f);
        fatal("unsupported trace version in " + path);
    }
    readAll(f, &trace.numDetectors, sizeof(uint32_t), path);
    readAll(f, &trace.numObservables, sizeof(uint32_t), path);
    readAll(f, &count, sizeof(count), path);
    if (count > (1ull << 40)) {
        std::fclose(f);
        fatal("implausible trace length in " + path);
    }

    trace.shots.reserve(count);
    for (uint64_t s = 0; s < count; s++) {
        uint16_t n = 0;
        readAll(f, &n, sizeof(n), path);
        TraceShot shot;
        shot.defects.resize(n);
        if (n) {
            readAll(f, shot.defects.data(), n * sizeof(uint32_t),
                    path);
        }
        for (auto d : shot.defects) {
            if (d >= trace.numDetectors) {
                std::fclose(f);
                fatal("trace defect index out of range in " + path);
            }
        }
        uint8_t obs = 0;
        readAll(f, &obs, sizeof(obs), path);
        shot.observables = obs;
        trace.shots.push_back(std::move(shot));
    }
    std::fclose(f);
    return trace;
}

ReplayResult
replayTrace(const SyndromeTrace &trace, Decoder &decoder)
{
    ReplayResult result;
    for (const auto &shot : trace.shots) {
        DecodeResult dr = decoder.decode(shot.defects);
        result.shots++;
        if (dr.gaveUp)
            result.gaveUps++;
        if (dr.obsMask != shot.observables)
            result.logicalErrors++;
    }
    return result;
}

} // namespace astrea
