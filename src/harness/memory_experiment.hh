/**
 * @file
 * Memory-experiment driver (paper Sec. 3.4).
 *
 * One ExperimentContext owns everything derived from a (distance,
 * rounds, basis, p) configuration: the layout, the noisy circuit, the
 * extracted error model, the decoding graph, the Global Weight Table
 * and the sparse shot sampler. Experiments then run shot loops against
 * any decoder: sample detection events, decode the defect list, and
 * compare the predicted logical flip with the actual one. The logical
 * error rate is the fraction of shots where they disagree.
 */

#ifndef ASTREA_HARNESS_MEMORY_EXPERIMENT_HH
#define ASTREA_HARNESS_MEMORY_EXPERIMENT_HH

#include <functional>
#include <memory>

#include "astrea/astrea_decoder.hh"
#include "astrea/astrea_g_decoder.hh"
#include "circuit/circuit.hh"
#include "common/stats.hh"
#include "decoders/decoder.hh"
#include "decoders/registry.hh"
#include "decoders/union_find_decoder.hh"
#include "dem/error_model.hh"
#include "graph/decoding_graph.hh"
#include "graph/weight_table.hh"
#include "harness/latency_stats.hh"
#include "sim/dem_sampler.hh"
#include "stream/window_decoder.hh"
#include "surface_code/layout.hh"
#include "surface_code/memory_circuit.hh"

namespace astrea
{

/** Static parameters of one experiment configuration. */
struct ExperimentConfig
{
    uint32_t distance = 3;
    uint32_t rounds = 0;  ///< 0 = distance rounds (the paper's setting).
    Basis basis = Basis::Z;
    double physicalErrorRate = 1e-4;
    /**
     * Non-uniform noise (paper Sec. 8.2): per-qubit error rates drawn
     * log-uniformly within a factor of (1 + driftSpread) of the base
     * rate. 0 keeps the uniform model. The GWT built by this context
     * is always matched to the drifted rates; the drift ablation bench
     * decodes these shots against a stale uniform GWT for contrast.
     */
    double driftSpread = 0.0;
    uint64_t driftSeed = 12345;
    /** CX-layer ordering (ablation; see CxSchedule). */
    CxSchedule cxSchedule = CxSchedule::Standard;
};

/** Shared immutable state for one configuration. */
class ExperimentContext
{
  public:
    explicit ExperimentContext(const ExperimentConfig &config);

    const ExperimentConfig &config() const { return config_; }
    const SurfaceCodeLayout &layout() const { return *layout_; }
    const Circuit &circuit() const { return *circuit_; }
    const ErrorModel &errorModel() const { return *model_; }
    const DecodingGraph &graph() const { return *graph_; }
    const GlobalWeightTable &gwt() const { return *gwt_; }
    const DemSampler &sampler() const { return *sampler_; }

    /** Non-null when the configuration requested drifted noise. */
    const NoiseMap *noiseMap() const { return noiseMap_.get(); }

  private:
    ExperimentConfig config_;
    std::unique_ptr<NoiseMap> noiseMap_;
    std::unique_ptr<SurfaceCodeLayout> layout_;
    std::unique_ptr<Circuit> circuit_;
    std::unique_ptr<ErrorModel> model_;
    std::unique_ptr<DecodingGraph> graph_;
    std::unique_ptr<GlobalWeightTable> gwt_;
    std::unique_ptr<DemSampler> sampler_;
};

/**
 * Creates a decoder bound to a context. A fresh decoder is created per
 * worker thread, so decoders may keep mutable per-instance state.
 */
using DecoderFactory =
    std::function<std::unique_ptr<Decoder>(const ExperimentContext &)>;

/**
 * Bind a context's pieces (gwt, graph, detector info, rounds,
 * distance, p) into registry options. Per-decoder knob structs keep
 * their defaults; callers override them before DecoderRegistry::make.
 */
DecoderOptions decoderOptionsFor(const ExperimentContext &ctx);

/**
 * A factory that resolves any registry name ("astrea", "mwpm",
 * "windowed-greedy", ...) against the experiment context; fatals on
 * unknown names with the registry's name enumeration.
 */
DecoderFactory registryFactory(std::string name);

// Named factories: thin registry wrappers that pre-set one knob struct.
DecoderFactory mwpmFactory();
DecoderFactory astreaFactory(AstreaConfig config = {});
DecoderFactory astreaGFactory(AstreaGConfig config = {});
DecoderFactory unionFindFactory(UnionFindConfig config = {});
DecoderFactory cliqueFactory();
DecoderFactory lutFactory();
DecoderFactory greedyFactory();

/**
 * Wrap an inner decoder factory in the sliding-window streaming
 * decoder (stream/window_decoder.hh). The inner decoder must report
 * its matching (MWPM, Astrea, greedy).
 */
DecoderFactory windowedFactory(DecoderFactory inner,
                               StreamingConfig config = {});

/**
 * Serialize an ExperimentConfig as a JSON object string. Embedded in
 * flight-recorder capture files; replayCapture() parses it back.
 */
std::string experimentConfigJson(const ExperimentConfig &config);

/** Serialize a decoder's name plus configuration as a JSON object. */
std::string decoderDescriptionJson(const Decoder &decoder);

/** Aggregated outcome of a shot loop. */
struct ExperimentResult
{
    BinomialEstimate logicalErrors;  ///< successes = logical errors.
    Histogram hammingWeights{64};
    RunningStats latencyNs;            ///< All shots.
    RunningStats latencyNontrivialNs;  ///< Shots with HW > 2.
    /** Bucketed latency over all shots (percentile queries). */
    LatencyHistogram latencyHist{50.0, 100000.0};
    /** Bucketed latency over nontrivial (HW > 2) shots. */
    LatencyHistogram latencyNontrivialHist{50.0, 100000.0};
    uint64_t gaveUps = 0;
    /** Hamming weight at which each give-up happened (Sec. 5 tail). */
    Histogram gaveUpHw{64};

    double ler() const { return logicalErrors.pointEstimate(); }

    void merge(const ExperimentResult &other);
};

/**
 * Run a Monte-Carlo memory experiment.
 *
 * @param ctx Configuration context.
 * @param factory Decoder under test.
 * @param shots Number of shots.
 * @param seed Root RNG seed (workers derive independent streams).
 * @param threads Worker count; 0 uses defaultWorkerCount().
 */
ExperimentResult runMemoryExperiment(const ExperimentContext &ctx,
                                     const DecoderFactory &factory,
                                     uint64_t shots, uint64_t seed,
                                     unsigned threads = 0);

/**
 * Measure a decoder's per-shot latency distribution over sampled
 * syndromes, counting only non-zero syndromes (trivial all-zero shots
 * need no decode and would swamp the histogram). Implemented in
 * latency_stats.cc.
 */
LatencyHistogram measureLatencyDistribution(const ExperimentContext &ctx,
                                            const DecoderFactory &factory,
                                            uint64_t shots, uint64_t seed,
                                            unsigned threads = 0);

} // namespace astrea

#endif // ASTREA_HARNESS_MEMORY_EXPERIMENT_HH
