#include "harness/hw_histogram.hh"

#include <mutex>

#include "common/thread_pool.hh"
#include "surface_code/memory_circuit.hh"

namespace astrea
{

double
HwDistribution::rangeFrequency(size_t lo, size_t hi) const
{
    if (shots == 0)
        return 0.0;
    uint64_t count = 0;
    for (size_t h = lo; h <= hi && h <= hist.maxKey(); h++)
        count += hist.at(h);
    return static_cast<double>(count) / static_cast<double>(shots);
}

HwDistribution
measureHwDistribution(const ExperimentContext &ctx, uint64_t shots,
                      uint64_t seed, unsigned threads)
{
    if (threads == 0)
        threads = defaultWorkerCount();
    Rng root(seed);

    HwDistribution dist;
    dist.shots = shots;
    std::mutex merge_mutex;

    parallelFor(shots, threads,
                [&](unsigned worker, uint64_t begin, uint64_t end) {
        Rng rng = root.split(worker);
        Histogram local(64);
        BitVec dets(ctx.circuit().numDetectors());
        BitVec obs(ctx.circuit().numObservables());
        for (uint64_t s = begin; s < end; s++) {
            ctx.sampler().sample(rng, dets, obs);
            local.add(dets.popcount());
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        dist.hist.merge(local);
    });
    return dist;
}

double
analyticHwProbability(uint32_t distance, double p, uint32_t h)
{
    if (h % 2 != 0)
        return 0.0;
    uint64_t big_d = syndromeVectorLength(distance, distance);
    return binomialPmf(big_d, 8.0 * p, h / 2);
}

double
analyticHwTail(uint32_t distance, double p, uint32_t h)
{
    uint64_t big_d = syndromeVectorLength(distance, distance);
    double cum = 0.0;
    for (uint32_t k = 0; 2 * k <= h; k++)
        cum += binomialPmf(big_d, 8.0 * p, k);
    return 1.0 - cum;
}

} // namespace astrea
