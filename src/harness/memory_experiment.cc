#include "harness/memory_experiment.hh"

#include <mutex>

#include "common/thread_pool.hh"
#include "decoders/clique_decoder.hh"
#include "decoders/greedy_decoder.hh"
#include "decoders/lut_decoder.hh"
#include "decoders/mwpm_decoder.hh"
#include "decoders/union_find_decoder.hh"
#include "dem/extractor.hh"
#include "telemetry/export.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

ExperimentContext::ExperimentContext(const ExperimentConfig &config)
    : config_(config)
{
    layout_ = std::make_unique<SurfaceCodeLayout>(config.distance);

    MemoryExperimentSpec spec;
    spec.distance = config.distance;
    spec.rounds = config.rounds;
    spec.basis = config.basis;
    spec.noise = NoiseModel::uniform(config.physicalErrorRate);
    spec.cxSchedule = config.cxSchedule;
    if (config.driftSpread > 0.0) {
        Rng drift_rng(config.driftSeed);
        noiseMap_ = std::make_unique<NoiseMap>(NoiseMap::randomDrift(
            layout_->numQubits(), config.driftSpread, drift_rng));
        spec.noiseMap = noiseMap_.get();
    }
    circuit_ =
        std::make_unique<Circuit>(buildMemoryCircuit(*layout_, spec));

    model_ = std::make_unique<ErrorModel>(extractErrorModel(*circuit_));
    graph_ = std::make_unique<DecodingGraph>(*model_);
    gwt_ = std::make_unique<GlobalWeightTable>(*graph_);
    sampler_ = std::make_unique<DemSampler>(*model_);
}

DecoderFactory
mwpmFactory()
{
    return [](const ExperimentContext &ctx) {
        return std::make_unique<MwpmDecoder>(ctx.gwt());
    };
}

DecoderFactory
astreaFactory(AstreaConfig config)
{
    return [config](const ExperimentContext &ctx) {
        return std::make_unique<AstreaDecoder>(ctx.gwt(), config);
    };
}

DecoderFactory
astreaGFactory(AstreaGConfig config)
{
    return [config](const ExperimentContext &ctx) {
        AstreaGConfig resolved = config;
        if (resolved.weightThresholdDecades <= 0.0) {
            // The paper programs Wth from the target logical error
            // rate; resolve it for this experiment's regime.
            resolved.weightThresholdDecades = defaultWeightThreshold(
                ctx.config().distance,
                ctx.config().physicalErrorRate);
        }
        return std::make_unique<AstreaGDecoder>(ctx.gwt(), resolved);
    };
}

DecoderFactory
unionFindFactory(UnionFindConfig config)
{
    return [config](const ExperimentContext &ctx) {
        return std::make_unique<UnionFindDecoder>(ctx.graph(), config);
    };
}

DecoderFactory
cliqueFactory()
{
    return [](const ExperimentContext &ctx) {
        return std::make_unique<CliqueDecoder>(ctx.graph(), ctx.gwt());
    };
}

DecoderFactory
lutFactory()
{
    return [](const ExperimentContext &ctx) {
        return std::make_unique<LutDecoder>(ctx.gwt());
    };
}

DecoderFactory
greedyFactory()
{
    return [](const ExperimentContext &ctx) {
        return std::make_unique<GreedyDecoder>(ctx.gwt());
    };
}

DecoderFactory
windowedFactory(DecoderFactory inner, StreamingConfig config)
{
    return [inner, config](const ExperimentContext &ctx) {
        const auto &cfg = ctx.config();
        uint32_t rounds = cfg.rounds ? cfg.rounds : cfg.distance;
        return std::make_unique<WindowDecoder>(
            ctx.gwt(), ctx.circuit().detectorInfo(), rounds + 1,
            cfg.distance, inner(ctx), config);
    };
}

std::string
experimentConfigJson(const ExperimentConfig &config)
{
    telemetry::JsonWriter w;
    w.beginObject()
        .kv("distance", uint64_t{config.distance})
        .kv("rounds", uint64_t{config.rounds})
        .kv("basis", config.basis == Basis::X ? "X" : "Z")
        .kv("p", config.physicalErrorRate)
        .kv("drift_spread", config.driftSpread)
        .kv("drift_seed", config.driftSeed)
        .kv("cx_schedule",
            config.cxSchedule == CxSchedule::HookAligned
                ? "hook_aligned"
                : "standard")
        .endObject();
    return w.str();
}

std::string
decoderDescriptionJson(const Decoder &decoder)
{
    telemetry::JsonWriter w;
    w.beginObject().kv("name", decoder.name());
    decoder.describeConfig(w);
    w.endObject();
    return w.str();
}

void
ExperimentResult::merge(const ExperimentResult &other)
{
    logicalErrors.successes += other.logicalErrors.successes;
    logicalErrors.trials += other.logicalErrors.trials;
    hammingWeights.merge(other.hammingWeights);
    latencyNs.merge(other.latencyNs);
    latencyNontrivialNs.merge(other.latencyNontrivialNs);
    latencyHist.merge(other.latencyHist);
    latencyNontrivialHist.merge(other.latencyNontrivialHist);
    gaveUps += other.gaveUps;
    gaveUpHw.merge(other.gaveUpHw);
}

ExperimentResult
runMemoryExperiment(const ExperimentContext &ctx,
                    const DecoderFactory &factory, uint64_t shots,
                    uint64_t seed, unsigned threads)
{
    if (threads == 0)
        threads = defaultWorkerCount();
    Rng root(seed);

    ASTREA_SPAN("experiment.run");
    ExperimentResult total;
    std::mutex merge_mutex;

    const bool flight = telemetry::FlightRecorder::globalEnabled();
    if (flight) {
        // Install this run's context and decoder descriptions so a
        // capture triggered mid-run embeds enough to replay it.
        auto probe = factory(ctx);
        telemetry::FlightRecorder::global().beginRun(
            experimentConfigJson(ctx.config()),
            decoderDescriptionJson(*probe));
    }

    parallelFor(shots, threads,
                [&](unsigned worker, uint64_t begin, uint64_t end) {
        Rng rng = root.split(worker);
        auto decoder = factory(ctx);
        telemetry::TraceWriter *trace = telemetry::globalTraceFast();
        const uint64_t trace_stride = telemetry::traceSampleStride();
        telemetry::FlightRecorder *recorder =
            flight ? &telemetry::FlightRecorder::global() : nullptr;

        ExperimentResult local;
        BitVec dets(ctx.circuit().numDetectors());
        BitVec obs(ctx.circuit().numObservables());

        for (uint64_t s = begin; s < end; s++) {
            ctx.sampler().sample(rng, dets, obs);
            auto defects = dets.onesIndices();
            size_t hw = defects.size();
            local.hammingWeights.add(hw);

            DecodeResult dr = decoder->decode(defects);
            if (dr.gaveUp) {
                local.gaveUps++;
                local.gaveUpHw.add(hw);
            }

            uint64_t actual = 0;
            for (auto o : obs.onesIndices())
                actual |= (1ull << o);
            bool error = (dr.obsMask != actual);

            local.logicalErrors.trials++;
            if (error)
                local.logicalErrors.successes++;

            local.latencyNs.add(dr.latencyNs);
            local.latencyHist.add(dr.latencyNs);
            if (hw > 2) {
                local.latencyNontrivialNs.add(dr.latencyNs);
                local.latencyNontrivialHist.add(dr.latencyNs);
            }

            if (recorder != nullptr) {
                telemetry::DecodeRecord rec;
                rec.shot = s;
                rec.worker = worker;
                rec.defects = defects;
                rec.obsMask = dr.obsMask;
                rec.actualObs = actual;
                rec.gaveUp = dr.gaveUp;
                rec.logicalError = error;
                rec.latencyNs = dr.latencyNs;
                rec.cycles = dr.cycles;
                rec.matchingWeight = dr.matchingWeight;
                recorder->record(rec);
            }

            if (trace != nullptr && s % trace_stride == 0) {
                telemetry::JsonWriter w;
                w.beginObject()
                    .kv("type", "shot")
                    .kv("shot", s)
                    .kv("worker", uint64_t{worker})
                    .kv("hw", uint64_t{hw})
                    .kv("latency_ns", dr.latencyNs)
                    .kv("gave_up", dr.gaveUp)
                    .kv("logical_error", error)
                    .endObject();
                trace->line(w.str());
            }
        }

        // Fold the worker's tallies into the global registry once per
        // chunk: the per-shot hot loop stays macro-free and the global
        // counters still see every shot.
        if (telemetry::enabled()) {
            auto &reg = telemetry::MetricsRegistry::global();
            reg.counter("experiment.shots")
                .add(local.logicalErrors.trials);
            reg.counter("experiment.logical_errors")
                .add(local.logicalErrors.successes);
            reg.counter("experiment.gave_ups").add(local.gaveUps);
        }

        std::lock_guard<std::mutex> lock(merge_mutex);
        total.merge(local);
    });

    if (telemetry::TraceWriter *trace = telemetry::globalTraceFast()) {
        telemetry::JsonWriter w;
        w.beginObject()
            .kv("type", "experiment")
            .kv("decoder", factory(ctx)->name())
            .kv("distance", uint64_t{ctx.config().distance})
            .kv("p", ctx.config().physicalErrorRate)
            .kv("shots", total.logicalErrors.trials)
            .kv("logical_errors", total.logicalErrors.successes)
            .kv("gave_ups", total.gaveUps)
            .endObject();
        trace->line(w.str());
    }
    return total;
}

} // namespace astrea
