#include "harness/memory_experiment.hh"

#include <algorithm>
#include <mutex>

#include "audit/auditor.hh"
#include "common/thread_pool.hh"
#include "dem/extractor.hh"
#include "telemetry/decode_trace.hh"
#include "telemetry/export.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

ExperimentContext::ExperimentContext(const ExperimentConfig &config)
    : config_(config)
{
    layout_ = std::make_unique<SurfaceCodeLayout>(config.distance);

    MemoryExperimentSpec spec;
    spec.distance = config.distance;
    spec.rounds = config.rounds;
    spec.basis = config.basis;
    spec.noise = NoiseModel::uniform(config.physicalErrorRate);
    spec.cxSchedule = config.cxSchedule;
    if (config.driftSpread > 0.0) {
        Rng drift_rng(config.driftSeed);
        noiseMap_ = std::make_unique<NoiseMap>(NoiseMap::randomDrift(
            layout_->numQubits(), config.driftSpread, drift_rng));
        spec.noiseMap = noiseMap_.get();
    }
    circuit_ =
        std::make_unique<Circuit>(buildMemoryCircuit(*layout_, spec));

    model_ = std::make_unique<ErrorModel>(extractErrorModel(*circuit_));
    graph_ = std::make_unique<DecodingGraph>(*model_);
    gwt_ = std::make_unique<GlobalWeightTable>(*graph_);
    sampler_ = std::make_unique<DemSampler>(*model_);
}

DecoderOptions
decoderOptionsFor(const ExperimentContext &ctx)
{
    const ExperimentConfig &cfg = ctx.config();
    DecoderOptions opts;
    opts.gwt = &ctx.gwt();
    opts.graph = &ctx.graph();
    opts.detectorInfo = &ctx.circuit().detectorInfo();
    opts.totalRounds = (cfg.rounds ? cfg.rounds : cfg.distance) + 1;
    opts.distance = cfg.distance;
    opts.physicalErrorRate = cfg.physicalErrorRate;
    return opts;
}

DecoderFactory
registryFactory(std::string name)
{
    return [name](const ExperimentContext &ctx) {
        return makeDecoder(name, decoderOptionsFor(ctx));
    };
}

DecoderFactory
mwpmFactory()
{
    return registryFactory("mwpm");
}

DecoderFactory
astreaFactory(AstreaConfig config)
{
    return [config](const ExperimentContext &ctx) {
        DecoderOptions opts = decoderOptionsFor(ctx);
        opts.astrea = config;
        return makeDecoder("astrea", opts);
    };
}

DecoderFactory
astreaGFactory(AstreaGConfig config)
{
    return [config](const ExperimentContext &ctx) {
        // The registry resolves Wth <= 0 from the regime opts carry.
        DecoderOptions opts = decoderOptionsFor(ctx);
        opts.astreaG = config;
        return makeDecoder("astrea-g", opts);
    };
}

DecoderFactory
unionFindFactory(UnionFindConfig config)
{
    return [config](const ExperimentContext &ctx) {
        DecoderOptions opts = decoderOptionsFor(ctx);
        opts.unionFind = config;
        return makeDecoder("union-find", opts);
    };
}

DecoderFactory
cliqueFactory()
{
    return registryFactory("clique");
}

DecoderFactory
lutFactory()
{
    return registryFactory("lut");
}

DecoderFactory
greedyFactory()
{
    return registryFactory("greedy");
}

DecoderFactory
windowedFactory(DecoderFactory inner, StreamingConfig config)
{
    return [inner, config](const ExperimentContext &ctx) {
        DecoderOptions opts = decoderOptionsFor(ctx);
        opts.streaming = config;
        return makeWindowedDecoder(opts, inner(ctx));
    };
}

std::string
experimentConfigJson(const ExperimentConfig &config)
{
    telemetry::JsonWriter w;
    w.beginObject()
        .kv("distance", uint64_t{config.distance})
        .kv("rounds", uint64_t{config.rounds})
        .kv("basis", config.basis == Basis::X ? "X" : "Z")
        .kv("p", config.physicalErrorRate)
        .kv("drift_spread", config.driftSpread)
        .kv("drift_seed", config.driftSeed)
        .kv("cx_schedule",
            config.cxSchedule == CxSchedule::HookAligned
                ? "hook_aligned"
                : "standard")
        .endObject();
    return w.str();
}

std::string
decoderDescriptionJson(const Decoder &decoder)
{
    telemetry::JsonWriter w;
    w.beginObject().kv("name", decoder.name());
    decoder.describeConfig(w);
    w.endObject();
    return w.str();
}

void
ExperimentResult::merge(const ExperimentResult &other)
{
    logicalErrors.successes += other.logicalErrors.successes;
    logicalErrors.trials += other.logicalErrors.trials;
    hammingWeights.merge(other.hammingWeights);
    latencyNs.merge(other.latencyNs);
    latencyNontrivialNs.merge(other.latencyNontrivialNs);
    latencyHist.merge(other.latencyHist);
    latencyNontrivialHist.merge(other.latencyNontrivialHist);
    gaveUps += other.gaveUps;
    gaveUpHw.merge(other.gaveUpHw);
}

ExperimentResult
runMemoryExperiment(const ExperimentContext &ctx,
                    const DecoderFactory &factory, uint64_t shots,
                    uint64_t seed, unsigned threads)
{
    if (threads == 0)
        threads = defaultWorkerCount();
    Rng root(seed);

    ASTREA_SPAN("experiment.run");
    ExperimentResult total;
    std::mutex merge_mutex;

    const bool flight = telemetry::FlightRecorder::globalEnabled();
    const bool tracing = telemetry::traceRetention().enabled;
    if (flight || tracing) {
        // Install this run's context and decoder descriptions so a
        // capture or dumped trace triggered mid-run embeds enough to
        // replay it.
        auto probe = factory(ctx);
        if (flight) {
            telemetry::FlightRecorder::global().beginRun(
                experimentConfigJson(ctx.config()),
                decoderDescriptionJson(*probe));
        }
        if (tracing) {
            telemetry::TraceStore::global().setRunInfo(
                experimentConfigJson(ctx.config()),
                decoderDescriptionJson(*probe));
        }
    }

    // ASTREA_AUDIT_RATE > 0 shadow-audits a fraction of shots against
    // the exact oracle (audit/auditor.hh), the same machinery the
    // decode service exposes via --audit-rate.
    std::unique_ptr<AccuracyAuditor> auditor;
    {
        AuditConfig audit_cfg = AuditConfig::fromEnv();
        if (audit_cfg.sampleRate > 0.0) {
            auditor = std::make_unique<AccuracyAuditor>(ctx.gwt(),
                                                        audit_cfg);
            auditor->start();
        }
    }

    parallelFor(shots, threads,
                [&](unsigned worker, uint64_t begin, uint64_t end) {
        Rng rng = root.split(worker);
        auto decoder = factory(ctx);
        telemetry::TraceWriter *trace = telemetry::globalTraceFast();
        const uint64_t trace_stride = telemetry::traceSampleStride();
        telemetry::FlightRecorder *recorder =
            flight ? &telemetry::FlightRecorder::global() : nullptr;

        ExperimentResult local;
        BitVec dets(ctx.circuit().numDetectors());
        BitVec obs(ctx.circuit().numObservables());

        // Batch-oriented hot loop: sample a block of shots into one
        // SyndromeBatch, decode it through the allocation-free batch
        // path, then do the (cold) accounting. All buffers below are
        // reused across blocks, so steady state allocates nothing.
        constexpr uint64_t kBatchShots = 64;
        SyndromeBatch batch;
        std::vector<DecodeResult> results;
        DecodeScratch scratch;
        std::vector<uint64_t> actuals;
        std::vector<uint32_t> obs_indices;

        // Per-thread tail-sampling tracer (ASTREA_TRACE): ids derive
        // from (seed, worker, shot), matching the serve path. The
        // name is hoisted so the block loop stays allocation-free.
        telemetry::DecodeTracer &tracer = telemetry::decodeTracer();
        const std::string decoder_name = decoder->name();

        for (uint64_t block = begin; block < end; block += kBatchShots) {
            const uint64_t n = std::min(kBatchShots, end - block);
            tracer.beginBatch(worker, block, decoder_name.c_str(),
                              seed +
                                  0x9E3779B97F4A7C15ull * (worker + 1));
            batch.clear();
            actuals.clear();
            for (uint64_t i = 0; i < n; i++) {
                ctx.sampler().sample(rng, dets, obs);
                dets.onesIndicesInto(scratch.defects);
                batch.add(scratch.defects);
                uint64_t actual = 0;
                obs.onesIndicesInto(obs_indices);
                for (auto o : obs_indices)
                    actual |= (1ull << o);
                actuals.push_back(actual);
            }

            {
                // Batch-level counters are always live (the section
                // cost amortizes over the whole batch).
                telemetry::PerfSection sec(telemetry::PerfStage::Batch,
                                           n);
                decoder->decodeBatch(batch, results, scratch);
            }

            for (uint64_t i = 0; i < n; i++) {
                const uint64_t s = block + i;
                const DecodeResult &dr = results[i];
                const size_t hw = batch.hw(i);
                const uint64_t trace_id =
                    tracer.active()
                        ? tracer.shotId(static_cast<uint32_t>(i))
                        : 0;
                local.hammingWeights.add(hw);
                if (dr.gaveUp) {
                    local.gaveUps++;
                    local.gaveUpHw.add(hw);
                }

                const uint64_t actual = actuals[i];
                const bool error = (dr.obsMask != actual);

                local.logicalErrors.trials++;
                if (error)
                    local.logicalErrors.successes++;

                local.latencyNs.add(dr.latencyNs);
                local.latencyHist.add(dr.latencyNs);
                if (hw > 2) {
                    local.latencyNontrivialNs.add(dr.latencyNs);
                    local.latencyNontrivialHist.add(dr.latencyNs);
                }

                bool audited = false;
                if (auditor != nullptr && hw > 0)
                    audited = auditor->offer(s, worker, batch.at(i),
                                             dr, actual, trace_id);

                uint64_t capture_seq = 0;
                if (recorder != nullptr) {
                    telemetry::DecodeRecord rec;
                    rec.shot = s;
                    rec.worker = worker;
                    auto sp = batch.at(i);
                    rec.defects.assign(sp.begin(), sp.end());
                    rec.obsMask = dr.obsMask;
                    rec.actualObs = actual;
                    rec.gaveUp = dr.gaveUp;
                    rec.logicalError = error;
                    rec.latencyNs = dr.latencyNs;
                    rec.cycles = dr.cycles;
                    rec.matchingWeight = dr.matchingWeight;
                    rec.traceId = trace_id;
                    capture_seq = recorder->record(rec);
                }

                if (tracer.active()) {
                    telemetry::TraceShotOutcome out;
                    out.latencyNs = dr.latencyNs;
                    out.cycles = dr.cycles;
                    out.matchingWeight = dr.matchingWeight;
                    out.obsMask = dr.obsMask;
                    out.actualObs = actual;
                    out.gaveUp = dr.gaveUp;
                    out.logicalError = error;
                    out.audited = audited;
                    out.captureSeq = capture_seq;
                    auto sp = batch.at(i);
                    out.defects = sp.data();
                    out.hw = static_cast<uint32_t>(sp.size());
                    tracer.finishShot(static_cast<uint32_t>(i), out);
                }

                if (trace != nullptr && s % trace_stride == 0) {
                    telemetry::JsonWriter w;
                    w.beginObject()
                        .kv("type", "shot")
                        .kv("shot", s)
                        .kv("worker", uint64_t{worker})
                        .kv("hw", uint64_t{hw})
                        .kv("latency_ns", dr.latencyNs)
                        .kv("gave_up", dr.gaveUp)
                        .kv("logical_error", error)
                        .endObject();
                    trace->line(w.str());
                }
            }
            tracer.endBatch();
        }

        // Fold the worker's tallies into the global registry once per
        // chunk: the per-shot hot loop stays macro-free and the global
        // counters still see every shot.
        if (telemetry::enabled()) {
            auto &reg = telemetry::MetricsRegistry::global();
            reg.counter("experiment.shots")
                .add(local.logicalErrors.trials);
            reg.counter("experiment.logical_errors")
                .add(local.logicalErrors.successes);
            reg.counter("experiment.gave_ups").add(local.gaveUps);
        }

        std::lock_guard<std::mutex> lock(merge_mutex);
        total.merge(local);
    });

    if (auditor != nullptr) {
        auditor->stop();  // Joins the pool and drains the queue.
        const AccuracyAuditor::Snapshot snap = auditor->snapshot();
        if (telemetry::enabled()) {
            auto &reg = telemetry::MetricsRegistry::global();
            reg.counter("audit.sampled").add(snap.sampled);
            reg.counter("audit.completed").add(snap.completed);
            reg.counter("audit.optimal").add(snap.optimal);
            reg.counter("audit.suboptimal").add(snap.suboptimal);
            reg.counter("audit.observable_mismatches")
                .add(snap.observableMismatches);
            reg.counter("audit.queue_drops").add(snap.queueDrops);
            reg.counter("audit.give_ups_audited")
                .add(snap.giveUpsAudited);
            reg.counter("audit.give_up_oracle_success")
                .add(snap.giveUpOracleSuccess);
        }
        inform("audit: " + std::to_string(snap.completed) +
               " shots audited, " + std::to_string(snap.optimal) +
               " optimal, " + std::to_string(snap.suboptimal) +
               " suboptimal, " +
               std::to_string(snap.observableMismatches) +
               " observable mismatches, " +
               std::to_string(snap.queueDrops) + " queue drops");
    }

    if (telemetry::TraceWriter *trace = telemetry::globalTraceFast()) {
        telemetry::JsonWriter w;
        w.beginObject()
            .kv("type", "experiment")
            .kv("decoder", factory(ctx)->name())
            .kv("distance", uint64_t{ctx.config().distance})
            .kv("p", ctx.config().physicalErrorRate)
            .kv("shots", total.logicalErrors.trials)
            .kv("logical_errors", total.logicalErrors.successes)
            .kv("gave_ups", total.gaveUps)
            .endObject();
        trace->line(w.str());
    }
    return total;
}

} // namespace astrea
