/**
 * @file
 * Syndrome trace recording and replay.
 *
 * The paper's artifact ships example experiment data so results can be
 * inspected without re-running the cluster jobs; the equivalent here
 * is a compact binary trace of sampled shots — detection events plus
 * the actual observable flips — that can be written once and replayed
 * through any decoder deterministically. Uses: sharing regression
 * corpora, comparing decoders on literally identical shots across
 * machines, and feeding recorded hardware data (when available) into
 * the decoders.
 *
 * Format (little-endian): magic "ASTR", u32 version, u32 numDetectors,
 * u32 numObservables, u64 shotCount, then per shot a sparse record:
 * u16 defect count, u32 defect indices..., u8 observable mask.
 */

#ifndef ASTREA_HARNESS_TRACE_IO_HH
#define ASTREA_HARNESS_TRACE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "decoders/decoder.hh"
#include "harness/memory_experiment.hh"

namespace astrea
{

/** One recorded shot. */
struct TraceShot
{
    std::vector<uint32_t> defects;  ///< Sorted flipped detectors.
    uint64_t observables = 0;       ///< Actual logical flips.
};

/** An in-memory syndrome trace. */
struct SyndromeTrace
{
    uint32_t numDetectors = 0;
    uint32_t numObservables = 0;
    std::vector<TraceShot> shots;
};

/** Sample a trace from an experiment context. */
SyndromeTrace recordTrace(const ExperimentContext &ctx, uint64_t shots,
                          uint64_t seed);

/** Write a trace; calls fatal() on I/O failure. */
void saveTrace(const SyndromeTrace &trace, const std::string &path);

/** Read a trace; calls fatal() on malformed input. */
SyndromeTrace loadTrace(const std::string &path);

/** Replay statistics. */
struct ReplayResult
{
    uint64_t shots = 0;
    uint64_t logicalErrors = 0;
    uint64_t gaveUps = 0;

    double
    ler() const
    {
        return shots ? static_cast<double>(logicalErrors) /
                           static_cast<double>(shots)
                     : 0.0;
    }
};

/** Decode every shot of a trace with the given decoder. */
ReplayResult replayTrace(const SyndromeTrace &trace, Decoder &decoder);

} // namespace astrea

#endif // ASTREA_HARNESS_TRACE_IO_HH
