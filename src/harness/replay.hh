/**
 * @file
 * Deterministic re-decoding of flight-recorder captures.
 *
 * Every decoder in this repository is a pure function of the Global
 * Weight Table and the defect list, and the GWT itself is a pure
 * function of the experiment configuration. A capture therefore
 * contains everything needed to reproduce a decode bit-for-bit: the
 * ExperimentConfig (rebuilds the context and GWT), the decoder name
 * plus configuration (rebuilds the decoder), and the recorded defect
 * lists. replayCapture() re-decodes each record, checks that the
 * original verdict reproduces exactly, and can narrate the decode —
 * surviving LWT candidate pairs, the chosen matching, the verdict —
 * for post-mortem analysis of a give-up or logical error.
 *
 * A /traces/<id> trace-detail JSON (telemetry/trace_store.hh) is
 * accepted too: the trace store embeds the run's experiment config and
 * decoder description for exactly this purpose, so loadCapture()
 * synthesizes a one-record capture from it and the replay narrates
 * that decode. ReplayOptions::traceId selects one record of a
 * multi-record capture by its trace id.
 */

#ifndef ASTREA_HARNESS_REPLAY_HH
#define ASTREA_HARNESS_REPLAY_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness/memory_experiment.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/json_value.hh"

namespace astrea
{

/** A parsed capture file (schema in telemetry/flight_recorder.hh). */
struct ReplayCapture
{
    uint64_t schemaVersion = 0;
    ExperimentConfig config;
    std::string decoderName;
    telemetry::JsonValue decoderConfig;  ///< The "decoder" object.
    std::string triggerReason;           ///< "" when no trigger.
    uint64_t triggerShot = 0;
    /** True when synthesized from a /traces/<id> detail JSON; the
     *  single record is then always narrated. */
    bool fromTrace = false;
    std::vector<telemetry::DecodeRecord> records;
};

/**
 * Load and validate a capture file. Returns false and sets *error_out
 * on unreadable files, malformed JSON, or an unsupported schema
 * version.
 */
bool loadCapture(const std::string &path, ReplayCapture &out,
                 std::string *error_out);

/** Replay controls. */
struct ReplayOptions
{
    /** Narrate the trigger record's decode step by step. */
    bool verbose = false;
    /** Narrate every record (implies verbose). */
    bool verboseAll = false;
    /** Narrate the record with this trace id (0 = none). */
    uint64_t traceId = 0;
    /** Cap on candidate pairs printed per defect in narration. */
    size_t maxCandidatesPerDefect = 8;
};

/** Outcome of one replayed capture. */
struct ReplaySummary
{
    size_t records = 0;
    size_t mismatches = 0;  ///< Records whose verdict did not reproduce.
    size_t gaveUps = 0;
    size_t logicalErrors = 0;

    bool ok() const { return mismatches == 0; }
};

/**
 * Rebuild the capture's context and decoder, re-decode every record,
 * and compare against the recorded verdicts (obs mask, give-up flag
 * and modeled cycles exactly; matching weight to 1e-9). Progress and
 * narration go to `out`.
 */
ReplaySummary replayCapture(const ReplayCapture &capture,
                            const ReplayOptions &options,
                            std::ostream &out);

} // namespace astrea

#endif // ASTREA_HARNESS_REPLAY_HH
