/**
 * @file
 * Sharded multi-stream decode fleet (admission + coalescing core).
 *
 * The fleet turns the decode service from one synthetic workload into
 * a front-end for thousands of per-logical-qubit syndrome streams:
 *
 *   TCP readers (net/fleet_server) --submit()--> shard MPSC rings
 *        --> shard worker: coalesce -> Decoder::decodeBatch -> verdicts
 *
 * Each stream id is hashed onto one of N shards, so a stream's shots
 * decode in order on one worker while shards run independently. A
 * shard owns a bounded lock-free MPSC ring (common/mpsc_ring.hh); its
 * worker drains arrivals into a pending block and flushes it through
 * the HW-bucketed wide decodeBatch path (PR 9) under an admission
 * policy: flush when maxBatch shots are pending, or when the oldest
 * pending shot has waited maxDelayNs — batching amortizes dispatch
 * without unbounded queueing latency.
 *
 * Backpressure is priority-aware load shedding at submit(): between
 * the low and high queue-depth watermarks the minimum admitted
 * priority ramps linearly from 0 to maxPriority, so the lowest-
 * priority streams shed first; past the high watermark only top-
 * priority shots are admitted, and a full ring rejects everything
 * (counted separately). Shed shots still get a Verdict frame (shed
 * flag set) so clients see backpressure instead of silence.
 *
 * The class is deliberately thread-optional and clock-injectable:
 * start() launches one worker thread per shard, but tests (and the
 * alloc assertions) drive submit() + pumpShard() synchronously with a
 * fake clock and get deterministic coalescing/shedding. The
 * submit -> pump -> verdict path performs zero steady-state heap
 * allocations (tests/alloc_test.cc).
 */

#ifndef ASTREA_HARNESS_FLEET_HH
#define ASTREA_HARNESS_FLEET_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mpsc_ring.hh"
#include "harness/memory_experiment.hh"
#include "telemetry/json.hh"
#include "telemetry/prometheus.hh"

namespace astrea
{

/** Largest defect count a fleet job carries inline (HW cap). */
constexpr uint32_t kFleetMaxDefects = 64;

/** Fleet geometry and admission policy. */
struct FleetConfig
{
    unsigned shards = 2;
    /** Per-shard ring capacity (rounded up to a power of two). */
    size_t ringCapacity = 1024;
    /** Coalescing: flush at this many pending shots... */
    size_t maxBatch = 64;
    /** ...or when the oldest pending shot is this old. */
    uint64_t maxDelayNs = 200 * 1000;
    /** Shedding ramp start/end, as fractions of ring capacity. */
    double shedLowWatermark = 0.5;
    double shedHighWatermark = 0.9;
    /** Highest priority a stream can claim (fits in the wire u8). */
    uint8_t maxPriority = 7;
};

/** One ingested shot, copied by value through the shard ring. */
struct FleetJob
{
    uint32_t streamId = 0;
    uint32_t seq = 0;
    /** Opaque routing token (connection id) echoed in the verdict. */
    uint32_t connId = 0;
    uint8_t priority = 0;
    uint16_t hw = 0;  ///< Valid entries in defects.
    uint64_t ingestNs = 0;  ///< Stamped by submit().
    std::array<uint32_t, kFleetMaxDefects> defects{};
};

/** Outcome of one shot, delivered to the verdict sink. */
struct FleetVerdict
{
    uint32_t streamId = 0;
    uint32_t seq = 0;
    uint32_t connId = 0;
    uint64_t obsMask = 0;
    bool gaveUp = false;
    bool shed = false;
    /** Protocol-level failure (e.g. defect count over the inline cap). */
    bool error = false;
    /** Ingest-to-verdict wall time; 0 for shed shots. */
    uint64_t latencyNs = 0;
};

/** submit() outcome (Shed and RingFull both emit a shed verdict). */
enum class FleetSubmit
{
    Enqueued,
    Shed,      ///< Below the admission ramp's required priority.
    RingFull,  ///< Ring rejected the push (hard backpressure).
};

/** The sharded fleet; see file comment. */
class DecodeFleet
{
  public:
    DecodeFleet(const FleetConfig &config,
                std::shared_ptr<const ExperimentContext> ctx,
                DecoderFactory factory);
    ~DecodeFleet();

    DecodeFleet(const DecodeFleet &) = delete;
    DecodeFleet &operator=(const DecodeFleet &) = delete;

    /** Verdicts (decoded and shed) are pushed here; set before any
     *  submit(). Called from shard workers and, for shed shots, from
     *  the submitting thread — the sink must be thread-safe. */
    void setVerdictSink(std::function<void(const FleetVerdict &)> sink);

    /** Per-decoded-shot accounting hook (SLO windows); optional. */
    void setAccountHook(
        std::function<void(size_t hw, double latency_ns, bool gave_up)>
            hook);

    /** Tests inject a fake monotonic clock (ns); default wall-clock. */
    void setNowFunction(std::function<uint64_t()> now);

    /** The shard a stream id hashes onto. */
    unsigned shardFor(uint32_t stream_id) const;

    /**
     * Admit one shot: stamps the ingest time, applies the shedding
     * ramp against the target shard's queue depth, and either
     * enqueues or emits an immediate shed verdict. Thread-safe.
     */
    FleetSubmit submit(FleetJob &job);

    /**
     * Drain and possibly flush one shard (the worker loop's body).
     * Returns the number of shots decoded (0 = nothing ready, or the
     * coalescing policy is still waiting for maxBatch/maxDelay).
     * Tests call this directly; do not mix with start().
     */
    size_t pumpShard(unsigned shard, uint64_t now_ns);

    /** Flush a shard's pending shots regardless of age (shutdown). */
    size_t flushShard(unsigned shard, uint64_t now_ns);

    /** Launch one worker thread per shard / join them. */
    void start();
    void stop();

    /** Minimum admitted priority at queue depth `depth` (exposed for
     *  the shed-order tests; deterministic and stateless). */
    uint8_t requiredPriorityAtDepth(size_t depth) const;

    const FleetConfig &config() const { return config_; }
    uint32_t numDetectorBits() const { return numDetectorBits_; }
    size_t queueDepth(unsigned shard) const;

    // Ingest-side counters, bumped by the TCP front-end so every
    // fleet family renders from one place.
    void noteConnectionOpened() { connectionsTotal_.fetch_add(1, std::memory_order_relaxed); }
    void noteFrame() { framesTotal_.fetch_add(1, std::memory_order_relaxed); }
    void noteMalformed() { malformedTotal_.fetch_add(1, std::memory_order_relaxed); }

    uint64_t enqueuedTotal() const { return enqueuedTotal_.load(std::memory_order_relaxed); }
    uint64_t shedTotal() const { return shedTotal_.load(std::memory_order_relaxed); }
    uint64_t ringFullTotal() const { return ringFullTotal_.load(std::memory_order_relaxed); }
    uint64_t batchesTotal() const { return batchesTotal_.load(std::memory_order_relaxed); }
    uint64_t decodedTotal() const { return decodedTotal_.load(std::memory_order_relaxed); }
    uint64_t malformedTotal() const { return malformedTotal_.load(std::memory_order_relaxed); }

    /** Prometheus families (astrea_fleet_*). */
    void writeMetrics(telemetry::PrometheusWriter &w) const;
    /** The /statusz "fleet" object's members (object already open). */
    void writeStatusz(telemetry::JsonWriter &w) const;

  private:
    struct Shard;

    void flushLocked(Shard &s, uint64_t now_ns);

    FleetConfig config_;
    std::shared_ptr<const ExperimentContext> ctx_;
    uint32_t numDetectorBits_ = 0;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> threads_;
    std::atomic<bool> running_{false};

    std::function<void(const FleetVerdict &)> sink_;
    std::function<void(size_t, double, bool)> account_;
    std::function<uint64_t()> now_;

    std::atomic<uint64_t> connectionsTotal_{0};
    std::atomic<uint64_t> framesTotal_{0};
    std::atomic<uint64_t> malformedTotal_{0};
    std::atomic<uint64_t> enqueuedTotal_{0};
    std::atomic<uint64_t> shedTotal_{0};
    std::atomic<uint64_t> ringFullTotal_{0};
    std::atomic<uint64_t> batchesTotal_{0};
    std::atomic<uint64_t> decodedTotal_{0};
};

} // namespace astrea

#endif // ASTREA_HARNESS_FLEET_HH
