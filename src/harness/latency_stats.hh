/**
 * @file
 * Latency accounting (Figs. 3 and 9).
 *
 * A bucketed latency histogram with enough resolution to answer the
 * paper's questions: mean / mean-over-nontrivial / max latency for the
 * hardware decoders, percentiles (p50/p90/p99) for tail analysis, and
 * the fraction of syndromes a software decoder fails to finish within
 * the 1 us real-time deadline.
 *
 * (measureLatencyDistribution(), which samples one of these from an
 * experiment context, is declared in memory_experiment.hh — this
 * header stays free of harness dependencies so ExperimentResult can
 * embed the histogram.)
 */

#ifndef ASTREA_HARNESS_LATENCY_STATS_HH
#define ASTREA_HARNESS_LATENCY_STATS_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace astrea
{

/** Log-ish bucketed latency histogram (nanosecond samples). */
class LatencyHistogram
{
  public:
    /** Buckets of bucket_ns width covering [0, max_ns); overflow above. */
    LatencyHistogram(double bucket_ns = 50.0, double max_ns = 10000.0);

    void add(double ns);
    void merge(const LatencyHistogram &other);

    uint64_t samples() const { return stats_.count(); }
    double meanNs() const { return stats_.mean(); }
    double maxNs() const { return stats_.max(); }

    /**
     * Percentile estimate in ns (pct in (0, 100]), interpolated within
     * the bucket; samples landing in the overflow region report the
     * observed maximum.
     */
    double percentileNs(double pct) const;

    double p50Ns() const { return percentileNs(50.0); }
    double p90Ns() const { return percentileNs(90.0); }
    double p99Ns() const { return percentileNs(99.0); }
    double p999Ns() const { return percentileNs(99.9); }

    /** Samples that landed above the bucketed range. */
    uint64_t overflowCount() const { return overflow_; }

    /** Fraction of samples strictly above the threshold. */
    double fractionAbove(double threshold_ns) const;

    /** Fraction of samples inside bucket b's range. */
    double bucketFraction(size_t b) const;
    size_t numBuckets() const { return counts_.size(); }
    double bucketLowNs(size_t b) const { return bucketNs_ * b; }

    /**
     * Bucket a sample of `ns` lands in — the lookup exemplar
     * attachment needs to map an observed latency onto a histogram
     * row. Returns numBuckets() for the overflow region (and for
     * non-finite or negative input, which add() would also overflow).
     */
    size_t bucketIndex(double ns) const;

  private:
    double bucketNs_;
    std::vector<uint64_t> counts_;
    uint64_t overflow_ = 0;
    RunningStats stats_;
};

} // namespace astrea

#endif // ASTREA_HARNESS_LATENCY_STATS_HH
