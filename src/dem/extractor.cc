#include "dem/extractor.hh"

#include "common/bitvec.hh"
#include "common/logging.hh"

namespace astrea
{

std::vector<FaultSite>
enumerateFaultSites(const Circuit &circuit)
{
    std::vector<FaultSite> sites;
    const auto &ops = circuit.instructions();
    for (size_t i = 0; i < ops.size(); i++) {
        const auto &op = ops[i];
        if (!isNoise(op.type) || op.arg <= 0.0)
            continue;
        if (op.type == GateType::Depolarize2) {
            for (size_t t = 0; t + 1 < op.targets.size(); t += 2) {
                sites.push_back({i, op.type, op.arg, op.targets[t],
                                 op.targets[t + 1]});
            }
        } else {
            for (auto q : op.targets)
                sites.push_back({i, op.type, op.arg, q, kNoSecondQubit});
        }
    }
    return sites;
}

namespace
{

/** Decode a 2-bit Pauli code (bit0 = X, bit1 = Z) onto a qubit. */
void
pushPauli(std::vector<PauliFlip> &out, uint32_t qubit, uint64_t code)
{
    if (code == 0)
        return;
    out.push_back({qubit, (code & 1) != 0, (code & 2) != 0});
}

} // namespace

std::vector<PauliFlip>
sampleFaultOutcome(const FaultSite &site, Rng &rng)
{
    std::vector<PauliFlip> flips;
    switch (site.type) {
      case GateType::XError:
        flips.push_back({site.qubit0, true, false});
        break;
      case GateType::ZError:
        flips.push_back({site.qubit0, false, true});
        break;
      case GateType::Depolarize1: {
        uint64_t k = rng.uniformInt(3) + 1;
        pushPauli(flips, site.qubit0, k);
        break;
      }
      case GateType::Depolarize2: {
        uint64_t k = rng.uniformInt(15) + 1;
        pushPauli(flips, site.qubit0, k >> 2);
        pushPauli(flips, site.qubit1, k & 3);
        break;
      }
      default:
        panic("sampleFaultOutcome on non-noise site");
    }
    return flips;
}

std::vector<std::pair<double, std::vector<PauliFlip>>>
enumerateFaultOutcomes(const FaultSite &site)
{
    std::vector<std::pair<double, std::vector<PauliFlip>>> out;
    switch (site.type) {
      case GateType::XError:
        out.push_back(
            {site.prob, {PauliFlip{site.qubit0, true, false}}});
        break;
      case GateType::ZError:
        out.push_back(
            {site.prob, {PauliFlip{site.qubit0, false, true}}});
        break;
      case GateType::Depolarize1:
        for (uint64_t k = 1; k <= 3; k++) {
            std::vector<PauliFlip> flips;
            pushPauli(flips, site.qubit0, k);
            out.push_back({site.prob / 3.0, std::move(flips)});
        }
        break;
      case GateType::Depolarize2:
        for (uint64_t k = 1; k <= 15; k++) {
            std::vector<PauliFlip> flips;
            pushPauli(flips, site.qubit0, k >> 2);
            pushPauli(flips, site.qubit1, k & 3);
            out.push_back({site.prob / 15.0, std::move(flips)});
        }
        break;
      default:
        panic("enumerateFaultOutcomes on non-noise site");
    }
    return out;
}

ErrorModel
extractErrorModel(const Circuit &circuit, ExtractionStats *stats)
{
    ErrorModel model(circuit.numDetectors(), circuit.numObservables());
    FrameSimulator sim(circuit);
    BitVec dets(circuit.numDetectors());
    BitVec obs(circuit.numObservables());
    ExtractionStats local;

    auto sites = enumerateFaultSites(circuit);
    local.faultSites = sites.size();

    for (const auto &site : sites) {
        for (auto &[p, flips] : enumerateFaultOutcomes(site)) {
            sim.propagateInjection(site.opIndex, flips, dets, obs);
            local.outcomesPropagated++;

            auto flipped = dets.onesIndices();
            uint64_t obs_mask = 0;
            for (auto o : obs.onesIndices())
                obs_mask |= (1ull << o);

            if (flipped.empty() && obs_mask == 0) {
                local.emptySymptoms++;
                continue;
            }
            if (flipped.size() > 2)
                local.oversizeSymptoms++;
            model.addMechanism(p, std::move(flipped), obs_mask);
        }
    }

    if (stats)
        *stats = local;
    return model;
}

} // namespace astrea
