#include "dem/error_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace astrea
{

void
ErrorModel::addMechanism(double probability,
                         std::vector<uint32_t> detectors,
                         uint64_t observables)
{
    if (probability <= 0.0)
        return;
    std::sort(detectors.begin(), detectors.end());
    for (auto d : detectors)
        ASTREA_CHECK(d < numDetectors_, "detector index out of range");

    auto key = std::make_pair(detectors, observables);
    auto it = index_.find(key);
    if (it == index_.end()) {
        index_.emplace(std::move(key), mechanisms_.size());
        mechanisms_.push_back(
            {probability, std::move(detectors), observables});
    } else {
        double &p = mechanisms_[it->second].probability;
        p = p * (1.0 - probability) + probability * (1.0 - p);
    }
}

double
ErrorModel::expectedErrorsPerShot() const
{
    double sum = 0.0;
    for (const auto &m : mechanisms_)
        sum += m.probability;
    return sum;
}

} // namespace astrea
