/**
 * @file
 * Detector error model: the set of independent error mechanisms a noisy
 * circuit induces on its detectors.
 *
 * Each mechanism is a symptom set (detectors it flips, observables it
 * flips) with a probability. Mechanisms with identical symptoms are
 * merged with the XOR-convolution rule p = p1 (1 - p2) + p2 (1 - p1),
 * exactly as in Stim's detector error models. The decoding graph and the
 * fast sparse sampler are both built from this structure.
 */

#ifndef ASTREA_DEM_ERROR_MODEL_HH
#define ASTREA_DEM_ERROR_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace astrea
{

/** One independent error mechanism. */
struct ErrorMechanism
{
    double probability = 0.0;
    /** Flipped detectors, sorted ascending. */
    std::vector<uint32_t> detectors;
    /** Flipped logical observables, as a bitmask. */
    uint64_t observables = 0;
};

/** Collection of merged error mechanisms for one circuit. */
class ErrorModel
{
  public:
    ErrorModel(uint32_t num_detectors, uint32_t num_observables)
        : numDetectors_(num_detectors), numObservables_(num_observables)
    {}

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    /**
     * Add one mechanism, merging with any existing mechanism that has
     * the same symptom set. detectors need not be sorted.
     */
    void addMechanism(double probability, std::vector<uint32_t> detectors,
                      uint64_t observables);

    const std::vector<ErrorMechanism> &mechanisms() const
    {
        return mechanisms_;
    }

    /** Expected number of mechanisms firing per shot (sum of p). */
    double expectedErrorsPerShot() const;

  private:
    uint32_t numDetectors_;
    uint32_t numObservables_;
    std::vector<ErrorMechanism> mechanisms_;
    /** symptom -> index in mechanisms_. */
    std::map<std::pair<std::vector<uint32_t>, uint64_t>, size_t> index_;
};

} // namespace astrea

#endif // ASTREA_DEM_ERROR_MODEL_HH
