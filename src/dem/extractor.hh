/**
 * @file
 * Detector-error-model extraction and fault-site enumeration.
 *
 * Extraction propagates every elementary Pauli fault the circuit's noise
 * channels can produce — one at a time, deterministically — through the
 * frame simulator and records its symptom set. This is exact for
 * independent Pauli noise up to the usual first-order DEM approximation
 * (components of one depolarizing channel are treated as independent,
 * as Stim does).
 *
 * Fault sites (the channel instances themselves, each firing i.i.d.
 * with probability p) are also exposed: the semi-analytic LER estimator
 * (paper Appendix A.1) needs to inject exactly k faults drawn uniformly
 * over sites.
 */

#ifndef ASTREA_DEM_EXTRACTOR_HH
#define ASTREA_DEM_EXTRACTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "dem/error_model.hh"
#include "sim/frame_sim.hh"

namespace astrea
{

/**
 * One instance of a noise channel: a specific (instruction, target or
 * target-pair) that fires with probability prob.
 */
struct FaultSite
{
    size_t opIndex;
    GateType type;
    double prob;
    uint32_t qubit0;
    uint32_t qubit1;  ///< Only for Depolarize2; kNoSecondQubit otherwise.
};

constexpr uint32_t kNoSecondQubit = 0xffffffffu;

/** All channel instances of the circuit, in instruction order. */
std::vector<FaultSite> enumerateFaultSites(const Circuit &circuit);

/**
 * Sample a concrete Pauli outcome for a firing site (uniform over the
 * channel's non-identity Paulis).
 */
std::vector<PauliFlip> sampleFaultOutcome(const FaultSite &site, Rng &rng);

/**
 * All possible outcomes of a site with their conditional probabilities
 * relative to one shot (i.e. already multiplied by site.prob).
 */
std::vector<std::pair<double, std::vector<PauliFlip>>>
enumerateFaultOutcomes(const FaultSite &site);

/** Statistics from an extraction pass. */
struct ExtractionStats
{
    size_t faultSites = 0;
    size_t outcomesPropagated = 0;
    size_t emptySymptoms = 0;   ///< Outcomes flipping nothing we track.
    size_t oversizeSymptoms = 0; ///< Outcomes flipping > 2 detectors.
};

/**
 * Build the detector error model of a circuit by exhaustive single-fault
 * propagation.
 */
ErrorModel extractErrorModel(const Circuit &circuit,
                             ExtractionStats *stats = nullptr);

} // namespace astrea

#endif // ASTREA_DEM_EXTRACTOR_HH
