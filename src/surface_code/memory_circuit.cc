#include "surface_code/memory_circuit.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "common/logging.hh"

namespace astrea
{

namespace
{

/**
 * CX schedules, as corner slots per layer.
 *
 * X plaquettes run NW, NE, SW, SE and Z plaquettes run NW, SW, NE, SE.
 * This is the standard "zigzag / N" pairing: ancilla hook errors on
 * X plaquettes land on horizontal data pairs (perpendicular to the
 * vertical logical-X chains seen by the Z decoding graph) and Z-ancilla
 * hooks land on vertical pairs (perpendicular to logical Z), so neither
 * schedule halves the effective code distance. The two schedules also
 * never touch the same data qubit in the same layer (checkerboard
 * argument; asserted in tests).
 */
constexpr std::array<int, 4> kXOrder = {kNW, kNE, kSW, kSE};
constexpr std::array<int, 4> kZOrder = {kNW, kSW, kNE, kSE};

/**
 * Hook-aligned (bad) schedules for the ablation: the middle layers are
 * swapped, so X-ancilla hooks produce vertical data pairs (parallel to
 * the logical-X chains the Z graph must catch) and Z-ancilla hooks
 * produce horizontal pairs (parallel to logical Z).
 */
constexpr std::array<int, 4> kXOrderBad = {kNW, kSW, kNE, kSE};
constexpr std::array<int, 4> kZOrderBad = {kNW, kNE, kSW, kSE};

double
clampProb(double p)
{
    return std::min(p, 1.0);
}

/** X_ERROR(p * scale(q)) on each qubit; batched when uniform. */
void
addXError(CircuitBuilder &b, double p,
          const std::vector<uint32_t> &qubits, const NoiseMap *map)
{
    if (p <= 0.0)
        return;
    if (!map) {
        b.xError(p, qubits);
        return;
    }
    for (auto q : qubits)
        b.xError(clampProb(p * map->qubitScale(q)), {q});
}

/** DEPOLARIZE1(p * scale(q)) on each qubit; batched when uniform. */
void
addDepolarize1(CircuitBuilder &b, double p,
               const std::vector<uint32_t> &qubits, const NoiseMap *map)
{
    if (p <= 0.0)
        return;
    if (!map) {
        b.depolarize1(p, qubits);
        return;
    }
    for (auto q : qubits)
        b.depolarize1(clampProb(p * map->qubitScale(q)), {q});
}

/** DEPOLARIZE2 with the pair's geometric-mean scale. */
void
addDepolarize2(CircuitBuilder &b, double p,
               const std::vector<uint32_t> &pairs, const NoiseMap *map)
{
    if (p <= 0.0)
        return;
    if (!map) {
        b.depolarize2(p, pairs);
        return;
    }
    for (size_t t = 0; t + 1 < pairs.size(); t += 2) {
        b.depolarize2(
            clampProb(p * map->pairScale(pairs[t], pairs[t + 1])),
            {pairs[t], pairs[t + 1]});
    }
}

} // namespace

uint32_t
syndromeVectorLength(uint32_t distance, uint32_t rounds)
{
    if (rounds == 0)
        rounds = distance;
    return (rounds + 1) * (distance * distance - 1) / 2;
}

Circuit
buildMemoryCircuit(const SurfaceCodeLayout &layout,
                   const MemoryExperimentSpec &spec)
{
    ASTREA_CHECK(layout.distance() == spec.distance,
                 "layout/spec distance mismatch");
    const uint32_t rounds = spec.effectiveRounds();
    const NoiseModel &nm = spec.noise;
    const NoiseMap *map = spec.noiseMap;
    if (map) {
        ASTREA_CHECK(map->numQubits() == layout.numQubits(),
                     "noise map size mismatch");
    }
    const Basis mb = spec.basis;

    CircuitBuilder b(layout.numQubits());

    const auto data = layout.dataQubits();
    const auto ancillas = layout.ancillaQubits();
    const auto x_ancillas = layout.ancillasOf(Basis::X);
    const auto &memory_plaqs = layout.plaquettesOf(mb);

    // Initial state preparation: |0..0> for memory-Z, |+..+> for
    // memory-X. Preparation noise is folded into the first round's data
    // depolarization, matching the paper's model.
    b.reset(data);
    b.reset(ancillas);
    if (mb == Basis::X)
        b.hadamard(data);

    // measurements[p][r] = record index of plaquette p in round r.
    std::vector<std::vector<uint32_t>> measurements(
        layout.plaquettes().size());

    for (uint32_t r = 0; r < rounds; r++) {
        b.tick();
        // (1) Data-qubit depolarization at the start of every round.
        addDepolarize1(b, nm.dataDepolarization, data, map);

        // Ancilla reset (idempotent in round 0) plus reset error.
        b.reset(ancillas);
        addXError(b, nm.resetFlip, ancillas, map);

        b.hadamard(x_ancillas);

        // (2) Four CX layers with two-qubit depolarization after each.
        const bool bad_schedule =
            spec.cxSchedule == CxSchedule::HookAligned;
        for (int layer = 0; layer < 4; layer++) {
            std::vector<uint32_t> pairs;
            for (const auto &p : layout.plaquettes()) {
                int slot;
                if (p.basis == Basis::X) {
                    slot = bad_schedule ? kXOrderBad[layer]
                                        : kXOrder[layer];
                } else {
                    slot = bad_schedule ? kZOrderBad[layer]
                                        : kZOrder[layer];
                }
                uint32_t dq = p.corners[slot];
                if (dq == kNoQubit)
                    continue;
                if (p.basis == Basis::X) {
                    // X stabilizer: ancilla controls the data qubit.
                    pairs.push_back(p.ancilla);
                    pairs.push_back(dq);
                } else {
                    // Z stabilizer: data controls the ancilla.
                    pairs.push_back(dq);
                    pairs.push_back(p.ancilla);
                }
            }
            b.cx(pairs);
            addDepolarize2(b, nm.gateDepolarization, pairs, map);
        }

        b.hadamard(x_ancillas);

        // (3) Measurement error then ancilla measurement.
        addXError(b, nm.measureFlip, ancillas, map);
        auto mr = b.measure(ancillas);
        for (uint32_t i = 0; i < ancillas.size(); i++)
            measurements[i].push_back(mr[i]);

        // Detectors for the memory basis.
        for (auto pi : memory_plaqs) {
            const auto &p = layout.plaquettes()[pi];
            DetectorInfo info{mb, r, p.x, p.y};
            if (r == 0)
                b.detector({measurements[pi][0]}, info);
            else
                b.detector({measurements[pi][r], measurements[pi][r - 1]},
                           info);
        }
    }

    // Final transversal data measurement in the memory basis.
    b.tick();
    if (mb == Basis::X)
        b.hadamard(data);
    addXError(b, nm.finalMeasureFlip, data, map);
    auto data_m = b.measure(data);

    // Final detectors: compare the reconstructed stabilizer parity with
    // the last extraction round.
    for (auto pi : memory_plaqs) {
        const auto &p = layout.plaquettes()[pi];
        std::vector<uint32_t> targets{measurements[pi][rounds - 1]};
        for (auto dq : p.corners) {
            if (dq != kNoQubit)
                targets.push_back(data_m[dq]);
        }
        b.detector(std::move(targets), DetectorInfo{mb, rounds, p.x, p.y});
    }

    // Logical observable from the final data measurements.
    std::vector<uint32_t> obs_targets;
    for (auto dq : layout.logicalSupport(mb))
        obs_targets.push_back(data_m[dq]);
    b.observable(0, std::move(obs_targets));

    Circuit c = b.build();
    ASTREA_CHECK(c.numDetectors() ==
                     syndromeVectorLength(spec.distance, rounds),
                 "unexpected detector count");
    return c;
}

} // namespace astrea
