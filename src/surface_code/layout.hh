/**
 * @file
 * Rotated surface code lattice.
 *
 * A distance-d rotated surface code uses d*d data qubits and d*d-1
 * parity (ancilla) qubits, (d*d-1)/2 per stabilizer basis (paper
 * Table 1). Data qubit (row r, col c) sits at coordinate
 * (x, y) = (2c+1, 2r+1); plaquette candidates sit at even-even
 * coordinates (2pc, 2pr) for 0 <= pr, pc <= d.
 *
 * Plaquette inclusion rule (standard rotated layout):
 *  - interior candidates (1 <= pr, pc <= d-1) are always stabilizers;
 *  - top/bottom edges host only X-type 2-qubit stabilizers;
 *  - left/right edges host only Z-type 2-qubit stabilizers;
 *  - type is a checkerboard: Z when (pr + pc) is even, X when odd.
 *
 * With this orientation, logical Z is a horizontal row of Z operators
 * (row 0) and logical X is a vertical column of X operators (col 0).
 */

#ifndef ASTREA_SURFACE_CODE_LAYOUT_HH
#define ASTREA_SURFACE_CODE_LAYOUT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"

namespace astrea
{

/** One stabilizer plaquette of the rotated code. */
struct Plaquette
{
    Basis basis;
    uint32_t ancilla;  ///< Ancilla qubit index.
    int32_t x;         ///< Ancilla lattice x (2 * pc).
    int32_t y;         ///< Ancilla lattice y (2 * pr).

    /**
     * Data-qubit indices at the four corners in fixed geometric order
     * NW, NE, SW, SE; kNoQubit where the corner falls off the lattice
     * (boundary plaquettes).
     */
    std::array<uint32_t, 4> corners;
};

/** Sentinel for a missing plaquette corner. */
constexpr uint32_t kNoQubit = 0xffffffffu;

/** Corner slots in Plaquette::corners. */
enum Corner : int { kNW = 0, kNE = 1, kSW = 2, kSE = 3 };

/** Geometry of one rotated surface code patch. */
class SurfaceCodeLayout
{
  public:
    /** Build the distance-d layout; d must be odd and >= 3. */
    explicit SurfaceCodeLayout(uint32_t distance);

    uint32_t distance() const { return distance_; }
    uint32_t numDataQubits() const { return distance_ * distance_; }
    uint32_t numAncillas() const
    {
        return numDataQubits() - 1;
    }
    uint32_t numQubits() const { return numDataQubits() + numAncillas(); }

    /** Data qubit index for (row, col); row-major, indices 0..d*d-1. */
    uint32_t
    dataQubit(uint32_t row, uint32_t col) const
    {
        return row * distance_ + col;
    }

    const std::vector<Plaquette> &plaquettes() const { return plaquettes_; }

    /** Plaquettes of one basis, in a stable order. */
    const std::vector<uint32_t> &
    plaquettesOf(Basis b) const
    {
        return b == Basis::Z ? zPlaquettes_ : xPlaquettes_;
    }

    /** All data qubit indices (0 .. d*d-1). */
    std::vector<uint32_t> dataQubits() const;

    /** All ancilla qubit indices. */
    std::vector<uint32_t> ancillaQubits() const;

    /** Ancillas of one basis, aligned with plaquettesOf(). */
    std::vector<uint32_t> ancillasOf(Basis b) const;

    /** Support of the logical operator measured by a memory-b run. */
    std::vector<uint32_t> logicalSupport(Basis b) const;

  private:
    uint32_t distance_;
    std::vector<Plaquette> plaquettes_;
    std::vector<uint32_t> zPlaquettes_;
    std::vector<uint32_t> xPlaquettes_;
};

} // namespace astrea

#endif // ASTREA_SURFACE_CODE_LAYOUT_HH
