#include "surface_code/layout.hh"

#include "common/logging.hh"

namespace astrea
{

SurfaceCodeLayout::SurfaceCodeLayout(uint32_t distance)
    : distance_(distance)
{
    if (distance < 3 || distance % 2 == 0)
        fatal("surface code distance must be odd and >= 3");

    const uint32_t d = distance;
    uint32_t next_ancilla = numDataQubits();

    // Walk plaquette candidates in (pr, pc) order so plaquette indices
    // are deterministic across runs.
    for (uint32_t pr = 0; pr <= d; pr++) {
        for (uint32_t pc = 0; pc <= d; pc++) {
            Basis basis = ((pr + pc) % 2 == 0) ? Basis::Z : Basis::X;

            bool top = (pr == 0), bottom = (pr == d);
            bool left = (pc == 0), right = (pc == d);

            // Corners are excluded (single data neighbor); edges host
            // only the matching boundary type.
            if ((top || bottom) && (left || right))
                continue;
            if ((top || bottom) && basis != Basis::X)
                continue;
            if ((left || right) && basis != Basis::Z)
                continue;

            Plaquette p;
            p.basis = basis;
            p.ancilla = next_ancilla++;
            p.x = static_cast<int32_t>(2 * pc);
            p.y = static_cast<int32_t>(2 * pr);

            auto corner = [&](int dr, int dc) -> uint32_t {
                int32_t r = static_cast<int32_t>(pr) + dr;
                int32_t c = static_cast<int32_t>(pc) + dc;
                if (r < 0 || c < 0 || r >= static_cast<int32_t>(d) ||
                    c >= static_cast<int32_t>(d)) {
                    return kNoQubit;
                }
                return dataQubit(static_cast<uint32_t>(r),
                                 static_cast<uint32_t>(c));
            };
            p.corners[kNW] = corner(-1, -1);
            p.corners[kNE] = corner(-1, 0);
            p.corners[kSW] = corner(0, -1);
            p.corners[kSE] = corner(0, 0);

            uint32_t idx = static_cast<uint32_t>(plaquettes_.size());
            if (basis == Basis::Z)
                zPlaquettes_.push_back(idx);
            else
                xPlaquettes_.push_back(idx);
            plaquettes_.push_back(p);
        }
    }

    ASTREA_CHECK(plaquettes_.size() == numAncillas(),
                 "plaquette count mismatch");
    ASTREA_CHECK(zPlaquettes_.size() == numAncillas() / 2,
                 "Z plaquette count mismatch");
}

std::vector<uint32_t>
SurfaceCodeLayout::dataQubits() const
{
    std::vector<uint32_t> out(numDataQubits());
    for (uint32_t i = 0; i < out.size(); i++)
        out[i] = i;
    return out;
}

std::vector<uint32_t>
SurfaceCodeLayout::ancillaQubits() const
{
    std::vector<uint32_t> out;
    out.reserve(plaquettes_.size());
    for (const auto &p : plaquettes_)
        out.push_back(p.ancilla);
    return out;
}

std::vector<uint32_t>
SurfaceCodeLayout::ancillasOf(Basis b) const
{
    std::vector<uint32_t> out;
    for (auto idx : plaquettesOf(b))
        out.push_back(plaquettes_[idx].ancilla);
    return out;
}

std::vector<uint32_t>
SurfaceCodeLayout::logicalSupport(Basis b) const
{
    std::vector<uint32_t> out;
    out.reserve(distance_);
    if (b == Basis::Z) {
        // Logical Z: row 0 (crosses every top-to-bottom X chain once).
        for (uint32_t c = 0; c < distance_; c++)
            out.push_back(dataQubit(0, c));
    } else {
        // Logical X: column 0.
        for (uint32_t r = 0; r < distance_; r++)
            out.push_back(dataQubit(r, 0));
    }
    return out;
}

} // namespace astrea
