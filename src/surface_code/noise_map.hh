/**
 * @file
 * Spatially non-uniform noise (paper Sec. 8.2).
 *
 * Real devices exhibit spatio-temporal error-rate variation and drift;
 * the paper argues Astrea handles both "by virtue of its GWT because
 * weights can be adjusted to account for non-uniform error rates and
 * can further be re-programmed if drift occurs". A NoiseMap scales the
 * base physical error rate per qubit; the circuit generator consumes
 * it, the DEM/GWT pipeline absorbs it automatically, and the drift
 * ablation bench quantifies the cost of decoding with a stale
 * (uniform-rate) GWT versus a re-programmed one.
 */

#ifndef ASTREA_SURFACE_CODE_NOISE_MAP_HH
#define ASTREA_SURFACE_CODE_NOISE_MAP_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace astrea
{

/** Per-qubit multiplicative error-rate scales. */
class NoiseMap
{
  public:
    /** Uniform map: every qubit at scale 1. */
    explicit NoiseMap(uint32_t num_qubits)
        : scale_(num_qubits, 1.0)
    {}

    uint32_t numQubits() const
    {
        return static_cast<uint32_t>(scale_.size());
    }

    double qubitScale(uint32_t q) const { return scale_[q]; }
    void setQubitScale(uint32_t q, double s) { scale_[q] = s; }

    /** Scale for a two-qubit channel: geometric mean of the pair. */
    double pairScale(uint32_t q1, uint32_t q2) const;

    /**
     * Random drift: each qubit's scale drawn log-uniformly from
     * [1/(1+spread), 1+spread]. spread = 0 reproduces the uniform map.
     */
    static NoiseMap randomDrift(uint32_t num_qubits, double spread,
                                Rng &rng);

    /**
     * A hot spot: qubits in `hot` run at hot_scale, the rest at 1.
     * Models a localized fabrication defect or TLS.
     */
    static NoiseMap hotSpot(uint32_t num_qubits,
                            const std::vector<uint32_t> &hot,
                            double hot_scale);

    /** Largest scale in the map (for clamping p * scale <= 1). */
    double maxScale() const;

  private:
    std::vector<double> scale_;
};

} // namespace astrea

#endif // ASTREA_SURFACE_CODE_NOISE_MAP_HH
