#include "surface_code/noise_map.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace astrea
{

double
NoiseMap::pairScale(uint32_t q1, uint32_t q2) const
{
    return std::sqrt(scale_[q1] * scale_[q2]);
}

NoiseMap
NoiseMap::randomDrift(uint32_t num_qubits, double spread, Rng &rng)
{
    ASTREA_CHECK(spread >= 0.0, "negative drift spread");
    NoiseMap map(num_qubits);
    if (spread == 0.0)
        return map;
    double log_hi = std::log(1.0 + spread);
    for (uint32_t q = 0; q < num_qubits; q++) {
        // Log-uniform in [1/(1+spread), (1+spread)].
        double u = rng.uniform() * 2.0 - 1.0;
        map.scale_[q] = std::exp(u * log_hi);
    }
    return map;
}

NoiseMap
NoiseMap::hotSpot(uint32_t num_qubits, const std::vector<uint32_t> &hot,
                  double hot_scale)
{
    NoiseMap map(num_qubits);
    for (auto q : hot) {
        ASTREA_CHECK(q < num_qubits, "hot-spot qubit out of range");
        map.scale_[q] = hot_scale;
    }
    return map;
}

double
NoiseMap::maxScale() const
{
    double m = 0.0;
    for (auto s : scale_)
        m = std::max(m, s);
    return m;
}

} // namespace astrea
