/**
 * @file
 * Memory-experiment circuit generator (paper Sec. 3.4).
 *
 * A memory-b experiment prepares the logical qubit in a b-basis
 * eigenstate, runs `rounds` rounds of noisy syndrome extraction, then
 * measures every data qubit in the b basis. Detectors are defined for
 * the b-type stabilizers only (the other basis is non-deterministic in
 * the first round and is decoded by the symmetric experiment):
 *
 *  - round 0:       detector = first measurement of the stabilizer;
 *  - rounds 1..r-1: detector = XOR of consecutive measurements;
 *  - final:         detector = last measurement XOR the stabilizer
 *                   parity reconstructed from the data measurements.
 *
 * This yields (rounds + 1) * (d^2 - 1) / 2 detectors — the "syndrome
 * vector" of paper Table 1 (e.g. 192 for d = 7, rounds = 7). Logical
 * observable 0 is the parity of the logical operator's data
 * measurements.
 */

#ifndef ASTREA_SURFACE_CODE_MEMORY_CIRCUIT_HH
#define ASTREA_SURFACE_CODE_MEMORY_CIRCUIT_HH

#include <cstdint>

#include "circuit/builder.hh"
#include "circuit/circuit.hh"
#include "surface_code/layout.hh"
#include "surface_code/noise_map.hh"

namespace astrea
{

/**
 * CX-layer orderings for syndrome extraction.
 *
 * Standard is the hook-safe "zigzag/N" schedule: mid-extraction
 * ancilla faults (hook errors) spread onto data-qubit pairs oriented
 * perpendicular to the logical operator they could shorten.
 * HookAligned swaps the middle layers of both schedules so hooks align
 * *with* the logicals instead — a classic layout mistake that halves
 * the effective code distance. Exposed for the CX-schedule ablation.
 */
enum class CxSchedule : uint8_t
{
    Standard,
    HookAligned,
};

/** Parameters of one memory experiment. */
struct MemoryExperimentSpec
{
    uint32_t distance = 3;
    uint32_t rounds = 0;     ///< 0 means "use `distance` rounds".
    Basis basis = Basis::Z;  ///< Memory basis (paper evaluates Z).
    NoiseModel noise;
    /**
     * Optional per-qubit error-rate scales (non-uniform noise / drift,
     * paper Sec. 8.2). Null means uniform. Must cover all 2d^2 - 1
     * qubits when set; scaled probabilities are clamped to [0, 1].
     */
    const NoiseMap *noiseMap = nullptr;
    /** CX-layer ordering (ablation; see CxSchedule). */
    CxSchedule cxSchedule = CxSchedule::Standard;

    uint32_t effectiveRounds() const { return rounds ? rounds : distance; }
};

/** Number of b-basis detectors the generated circuit will define. */
uint32_t syndromeVectorLength(uint32_t distance, uint32_t rounds);

/** Generate the full noisy memory-experiment circuit. */
Circuit buildMemoryCircuit(const SurfaceCodeLayout &layout,
                           const MemoryExperimentSpec &spec);

} // namespace astrea

#endif // ASTREA_SURFACE_CODE_MEMORY_CIRCUIT_HH
