/**
 * @file
 * Exact maximum/minimum weight matching in general graphs.
 *
 * This is the library's stand-in for BlossomV (paper Sec. 3.3): an
 * O(V^3) implementation of Edmonds' blossom algorithm with dual
 * variables, following Galil's formulation in the structure popularized
 * by van Rantwijk's reference implementation (the same algorithm behind
 * NetworkX's max_weight_matching). Weights are integral internally so
 * the dual updates are exact; callers quantize real weights before
 * invoking it (the wrappers below do this for decade weights).
 *
 * Two entry points are provided:
 *  - maxWeightMatching(): general maximum-weight matching, optionally
 *    constrained to maximum cardinality;
 *  - minWeightPerfectMatching(): minimum-weight perfect matching on a
 *    complete even-order graph (the decoder's formulation), via the
 *    usual weight reflection.
 */

#ifndef ASTREA_MATCHING_BLOSSOM_HH
#define ASTREA_MATCHING_BLOSSOM_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace astrea
{

/** One weighted edge for the matcher. */
struct MatchEdge
{
    int u;
    int v;
    int64_t weight;
};

/**
 * Maximum-weight matching.
 *
 * @param num_vertices Number of vertices (0 .. n-1).
 * @param edges Edge list; parallel edges and self-loops are rejected.
 * @param max_cardinality If true, only maximum-cardinality matchings
 *        are considered (needed to force perfect matchings).
 * @return mate[v] = matched partner of v, or -1 if v is single.
 */
std::vector<int> maxWeightMatching(int num_vertices,
                                   const std::vector<MatchEdge> &edges,
                                   bool max_cardinality);

/**
 * Minimum-weight perfect matching on a complete graph of even order.
 *
 * @param num_vertices Even vertex count.
 * @param weight weight(i, j) for i < j, as a non-negative integer.
 * @return mate[] as above; every vertex is matched.
 */
std::vector<int> minWeightPerfectMatching(
    int num_vertices, const std::function<int64_t(int, int)> &weight);

/*
 * Every maxWeightMatching() call verifies complementary slackness of
 * the final duals internally and panics on violation, so an optimality
 * bug cannot silently corrupt logical-error-rate measurements.
 */

} // namespace astrea

#endif // ASTREA_MATCHING_BLOSSOM_HH
