#include "matching/blossom.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

namespace
{

/**
 * Edmonds' blossom algorithm for maximum weight matching, O(V^3).
 *
 * Direct port of the Galil formulation as structured in van Rantwijk's
 * reference implementation. Vertices are 0..n-1; blossoms use ids
 * n..2n-1. Each edge k has two "endpoints" 2k and 2k+1; endpoint p
 * belongs to vertex endpoint_[p] and p ^ 1 is the other side. All edge
 * weights are doubled on input so every dual variable stays integral.
 */
class BlossomMatcher
{
  public:
    BlossomMatcher(int n, const std::vector<MatchEdge> &edges,
                   bool max_cardinality);

    /** Run the stages and return mate[v] (partner vertex or -1). */
    std::vector<int> solve();

  private:
    int64_t
    slack(int k) const
    {
        return dualVar_[edges_[k].u] + dualVar_[edges_[k].v] -
               2 * weight_[k];
    }

    void collectLeaves(int b, std::vector<int> &out) const;
    void assignLabel(int w, int t, int p);
    int scanBlossom(int v, int w);
    void addBlossom(int base, int k);
    void expandBlossom(int b, bool endstage);
    void augmentBlossom(int b, int v);
    void augmentMatching(int k);
    void verifyOptimum() const;

    int nVertex_;
    int nEdge_;
    bool maxCardinality_;
    std::vector<MatchEdge> edges_;
    std::vector<int64_t> weight_;  ///< Doubled input weights.
    int64_t maxWeight_ = 0;

    std::vector<int> endpoint_;   ///< endpoint_[p] = vertex of endpoint p.
    std::vector<std::vector<int>> neighbEnd_;  ///< Remote endpoints at v.

    std::vector<int> mate_;       ///< Remote endpoint, or -1.
    std::vector<int> label_;      ///< 0 free, 1 S, 2 T (vertices+blossoms).
    std::vector<int> labelEnd_;
    std::vector<int> inBlossom_;
    std::vector<int> blossomParent_;
    std::vector<std::vector<int>> blossomChilds_;
    std::vector<int> blossomBase_;
    std::vector<std::vector<int>> blossomEndps_;
    std::vector<int> bestEdge_;
    std::vector<std::vector<int>> blossomBestEdges_;
    std::vector<int> unusedBlossoms_;
    std::vector<int64_t> dualVar_;
    std::vector<uint8_t> allowEdge_;
    std::vector<int> queue_;
};

BlossomMatcher::BlossomMatcher(int n, const std::vector<MatchEdge> &edges,
                               bool max_cardinality)
    : nVertex_(n), nEdge_(static_cast<int>(edges.size())),
      maxCardinality_(max_cardinality), edges_(edges)
{
    weight_.reserve(edges_.size());
    for (const auto &e : edges_) {
        ASTREA_CHECK(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n &&
                         e.u != e.v,
                     "bad matcher edge");
        weight_.push_back(2 * e.weight);
        maxWeight_ = std::max(maxWeight_, 2 * e.weight);
    }

    endpoint_.resize(2 * nEdge_);
    neighbEnd_.assign(nVertex_, {});
    for (int k = 0; k < nEdge_; k++) {
        endpoint_[2 * k] = edges_[k].u;
        endpoint_[2 * k + 1] = edges_[k].v;
        neighbEnd_[edges_[k].u].push_back(2 * k + 1);
        neighbEnd_[edges_[k].v].push_back(2 * k);
    }

    mate_.assign(nVertex_, -1);
    label_.assign(2 * nVertex_, 0);
    labelEnd_.assign(2 * nVertex_, -1);
    inBlossom_.resize(nVertex_);
    for (int v = 0; v < nVertex_; v++)
        inBlossom_[v] = v;
    blossomParent_.assign(2 * nVertex_, -1);
    blossomChilds_.assign(2 * nVertex_, {});
    blossomBase_.resize(2 * nVertex_);
    for (int v = 0; v < nVertex_; v++)
        blossomBase_[v] = v;
    for (int b = nVertex_; b < 2 * nVertex_; b++)
        blossomBase_[b] = -1;
    blossomEndps_.assign(2 * nVertex_, {});
    bestEdge_.assign(2 * nVertex_, -1);
    blossomBestEdges_.assign(2 * nVertex_, {});
    for (int b = nVertex_; b < 2 * nVertex_; b++)
        unusedBlossoms_.push_back(b);
    dualVar_.assign(2 * nVertex_, 0);
    for (int v = 0; v < nVertex_; v++)
        dualVar_[v] = maxWeight_;
    allowEdge_.assign(nEdge_, 0);
}

void
BlossomMatcher::collectLeaves(int b, std::vector<int> &out) const
{
    if (b < nVertex_) {
        out.push_back(b);
        return;
    }
    for (int t : blossomChilds_[b])
        collectLeaves(t, out);
}

void
BlossomMatcher::assignLabel(int w, int t, int p)
{
    int b = inBlossom_[w];
    assert(label_[w] == 0 && label_[b] == 0);
    label_[w] = label_[b] = t;
    labelEnd_[w] = labelEnd_[b] = p;
    bestEdge_[w] = bestEdge_[b] = -1;
    if (t == 1) {
        // b became an S-blossom; add its vertices to the scan queue.
        std::vector<int> leaves;
        collectLeaves(b, leaves);
        queue_.insert(queue_.end(), leaves.begin(), leaves.end());
    } else if (t == 2) {
        // b became a T-blossom; label its mate as an S-blossom.
        int base = blossomBase_[b];
        assert(mate_[base] >= 0);
        assignLabel(endpoint_[mate_[base]], 1, mate_[base] ^ 1);
    }
}

int
BlossomMatcher::scanBlossom(int v, int w)
{
    // Trace back from v and w to discover either a new blossom's base
    // or an augmenting path. Label 5 (= 1 | 4) marks visited S-blossoms.
    std::vector<int> path;
    int base = -1;
    while (v != -1 || w != -1) {
        int b = inBlossom_[v];
        if (label_[b] & 4) {
            base = blossomBase_[b];
            break;
        }
        assert(label_[b] == 1);
        path.push_back(b);
        label_[b] = 5;
        assert(labelEnd_[b] == mate_[blossomBase_[b]]);
        if (labelEnd_[b] == -1) {
            v = -1;  // Reached a single vertex (tree root).
        } else {
            v = endpoint_[labelEnd_[b]];
            b = inBlossom_[v];
            assert(label_[b] == 2);
            assert(labelEnd_[b] >= 0);
            v = endpoint_[labelEnd_[b]];
        }
        if (w != -1)
            std::swap(v, w);
    }
    for (int b : path)
        label_[b] = 1;
    return base;
}

void
BlossomMatcher::addBlossom(int base, int k)
{
    int v = edges_[k].u;
    int w = edges_[k].v;
    int bb = inBlossom_[base];
    int bv = inBlossom_[v];
    int bw = inBlossom_[w];

    ASTREA_CHECK(!unusedBlossoms_.empty(), "blossom ids exhausted");
    int b = unusedBlossoms_.back();
    unusedBlossoms_.pop_back();

    blossomBase_[b] = base;
    blossomParent_[b] = -1;
    blossomParent_[bb] = b;

    std::vector<int> path;
    std::vector<int> endps;
    // Trace from v back to the base.
    while (bv != bb) {
        blossomParent_[bv] = b;
        path.push_back(bv);
        endps.push_back(labelEnd_[bv]);
        assert(label_[bv] == 2 ||
               (label_[bv] == 1 &&
                labelEnd_[bv] == mate_[blossomBase_[bv]]));
        assert(labelEnd_[bv] >= 0);
        v = endpoint_[labelEnd_[bv]];
        bv = inBlossom_[v];
    }
    path.push_back(bb);
    std::reverse(path.begin(), path.end());
    std::reverse(endps.begin(), endps.end());
    endps.push_back(2 * k);
    // Trace from w back to the base.
    while (bw != bb) {
        blossomParent_[bw] = b;
        path.push_back(bw);
        endps.push_back(labelEnd_[bw] ^ 1);
        assert(label_[bw] == 2 ||
               (label_[bw] == 1 &&
                labelEnd_[bw] == mate_[blossomBase_[bw]]));
        assert(labelEnd_[bw] >= 0);
        w = endpoint_[labelEnd_[bw]];
        bw = inBlossom_[w];
    }

    assert(label_[bb] == 1);
    label_[b] = 1;
    labelEnd_[b] = labelEnd_[bb];
    dualVar_[b] = 0;
    blossomChilds_[b] = std::move(path);
    blossomEndps_[b] = std::move(endps);

    // Relabel the vertices now inside the new blossom.
    std::vector<int> leaves;
    collectLeaves(b, leaves);
    for (int lv : leaves) {
        if (label_[inBlossom_[lv]] == 2) {
            // Former T-vertex is now an S-vertex: scan it.
            queue_.push_back(lv);
        }
        inBlossom_[lv] = b;
    }

    // Compute the blossom's best-edge lists for delta-3 tracking.
    std::vector<int> best_edge_to(2 * nVertex_, -1);
    for (int child : blossomChilds_[b]) {
        std::vector<std::vector<int>> nblists;
        if (blossomBestEdges_[child].empty()) {
            std::vector<int> child_leaves;
            collectLeaves(child, child_leaves);
            for (int lv : child_leaves) {
                std::vector<int> ks;
                ks.reserve(neighbEnd_[lv].size());
                for (int p : neighbEnd_[lv])
                    ks.push_back(p / 2);
                nblists.push_back(std::move(ks));
            }
        } else {
            nblists.push_back(blossomBestEdges_[child]);
        }
        for (const auto &nblist : nblists) {
            for (int ek : nblist) {
                int i = edges_[ek].u;
                int j = edges_[ek].v;
                if (inBlossom_[j] == b)
                    std::swap(i, j);
                int bj = inBlossom_[j];
                if (bj != b && label_[bj] == 1 &&
                    (best_edge_to[bj] == -1 ||
                     slack(ek) < slack(best_edge_to[bj]))) {
                    best_edge_to[bj] = ek;
                }
            }
        }
        blossomBestEdges_[child].clear();
        bestEdge_[child] = -1;
    }
    blossomBestEdges_[b].clear();
    for (int ek : best_edge_to) {
        if (ek != -1)
            blossomBestEdges_[b].push_back(ek);
    }
    bestEdge_[b] = -1;
    for (int ek : blossomBestEdges_[b]) {
        if (bestEdge_[b] == -1 || slack(ek) < slack(bestEdge_[b]))
            bestEdge_[b] = ek;
    }
}

void
BlossomMatcher::expandBlossom(int b, bool endstage)
{
    // Convert sub-blossoms into top-level blossoms.
    for (int s : blossomChilds_[b]) {
        blossomParent_[s] = -1;
        if (s < nVertex_) {
            inBlossom_[s] = s;
        } else if (endstage && dualVar_[s] == 0) {
            expandBlossom(s, endstage);
        } else {
            std::vector<int> leaves;
            collectLeaves(s, leaves);
            for (int lv : leaves)
                inBlossom_[lv] = s;
        }
    }

    // If we expand a T-blossom during a stage, its sub-blossoms on the
    // path from the entry child to the base must be relabeled.
    if (!endstage && label_[b] == 2) {
        assert(labelEnd_[b] >= 0);
        int entry_child = inBlossom_[endpoint_[labelEnd_[b] ^ 1]];
        int nchilds = static_cast<int>(blossomChilds_[b].size());
        auto child_at = [&](int j) {
            // Indices may be negative while walking; wrap them.
            int m = j % nchilds;
            if (m < 0)
                m += nchilds;
            return blossomChilds_[b][m];
        };
        auto endp_at = [&](int j) {
            int m = j % nchilds;
            if (m < 0)
                m += nchilds;
            return blossomEndps_[b][m];
        };

        int j = 0;
        for (int i = 0; i < nchilds; i++) {
            if (blossomChilds_[b][i] == entry_child) {
                j = i;
                break;
            }
        }
        int jstep, endptrick;
        if (j & 1) {
            j -= nchilds;  // Go forward and wrap around.
            jstep = 1;
            endptrick = 0;
        } else {
            jstep = -1;  // Go backward.
            endptrick = 1;
        }
        int p = labelEnd_[b];
        while (j != 0) {
            // Relabel the T-sub-blossom.
            label_[endpoint_[p ^ 1]] = 0;
            label_[endpoint_[endp_at(j - endptrick) ^ endptrick ^ 1]] = 0;
            assignLabel(endpoint_[p ^ 1], 2, p);
            // Step to the next S-sub-blossom; its edge becomes allowed.
            allowEdge_[endp_at(j - endptrick) / 2] = 1;
            j += jstep;
            p = endp_at(j - endptrick) ^ endptrick;
            // Step to the next T-sub-blossom.
            allowEdge_[p / 2] = 1;
            j += jstep;
        }
        // Relabel the base T-sub-blossom without stepping to its mate.
        int bv = child_at(j);
        label_[endpoint_[p ^ 1]] = 2;
        label_[bv] = 2;
        labelEnd_[endpoint_[p ^ 1]] = p;
        labelEnd_[bv] = p;
        bestEdge_[bv] = -1;
        // Continue along the blossom until we get back to entry_child.
        j += jstep;
        while (child_at(j) != entry_child) {
            bv = child_at(j);
            if (label_[bv] == 1) {
                j += jstep;
                continue;
            }
            std::vector<int> leaves;
            collectLeaves(bv, leaves);
            int labeled_v = -1;
            for (int lv : leaves) {
                if (label_[lv] != 0) {
                    labeled_v = lv;
                    break;
                }
            }
            if (labeled_v != -1) {
                assert(label_[labeled_v] == 2);
                assert(inBlossom_[labeled_v] == bv);
                label_[labeled_v] = 0;
                label_[endpoint_[mate_[blossomBase_[bv]]]] = 0;
                assignLabel(labeled_v, 2, labelEnd_[labeled_v]);
            }
            j += jstep;
        }
    }

    // Recycle the blossom id.
    label_[b] = -1;
    labelEnd_[b] = -1;
    blossomChilds_[b].clear();
    blossomEndps_[b].clear();
    blossomBase_[b] = -1;
    blossomBestEdges_[b].clear();
    bestEdge_[b] = -1;
    unusedBlossoms_.push_back(b);
}

void
BlossomMatcher::augmentBlossom(int b, int v)
{
    // Bubble up from vertex v to an immediate sub-blossom of b.
    int t = v;
    while (blossomParent_[t] != b)
        t = blossomParent_[t];
    if (t >= nVertex_)
        augmentBlossom(t, v);

    int nchilds = static_cast<int>(blossomChilds_[b].size());
    auto child_at = [&](int j) {
        int m = j % nchilds;
        if (m < 0)
            m += nchilds;
        return blossomChilds_[b][m];
    };
    auto endp_at = [&](int j) {
        int m = j % nchilds;
        if (m < 0)
            m += nchilds;
        return blossomEndps_[b][m];
    };

    int i = 0;
    for (int c = 0; c < nchilds; c++) {
        if (blossomChilds_[b][c] == t) {
            i = c;
            break;
        }
    }
    int j = i;
    int jstep, endptrick;
    if (i & 1) {
        j -= nchilds;
        jstep = 1;
        endptrick = 0;
    } else {
        jstep = -1;
        endptrick = 1;
    }
    // Move along the blossom until we get to the base, matching
    // alternate edges on the way.
    while (j != 0) {
        j += jstep;
        t = child_at(j);
        int p = endp_at(j - endptrick) ^ endptrick;
        if (t >= nVertex_)
            augmentBlossom(t, endpoint_[p]);
        j += jstep;
        t = child_at(j);
        if (t >= nVertex_)
            augmentBlossom(t, endpoint_[p ^ 1]);
        mate_[endpoint_[p]] = p ^ 1;
        mate_[endpoint_[p ^ 1]] = p;
    }
    // Rotate the sub-blossom list so the new base is first.
    std::rotate(blossomChilds_[b].begin(),
                blossomChilds_[b].begin() + i, blossomChilds_[b].end());
    std::rotate(blossomEndps_[b].begin(), blossomEndps_[b].begin() + i,
                blossomEndps_[b].end());
    blossomBase_[b] = blossomBase_[blossomChilds_[b][0]];
    assert(blossomBase_[b] == v);
}

void
BlossomMatcher::augmentMatching(int k)
{
    int v = edges_[k].u;
    int w = edges_[k].v;
    const int starts[2][2] = {{v, 2 * k + 1}, {w, 2 * k}};
    for (const auto &start : starts) {
        int s = start[0];
        int p = start[1];
        // Match vertex s to remote endpoint p, then trace back to the
        // tree root, swapping matched and unmatched edges.
        while (true) {
            int bs = inBlossom_[s];
            assert(label_[bs] == 1);
            assert(labelEnd_[bs] == mate_[blossomBase_[bs]]);
            if (bs >= nVertex_)
                augmentBlossom(bs, s);
            mate_[s] = p;
            if (labelEnd_[bs] == -1)
                break;  // Reached a single vertex.
            int t = endpoint_[labelEnd_[bs]];
            int bt = inBlossom_[t];
            assert(label_[bt] == 2);
            assert(labelEnd_[bt] >= 0);
            s = endpoint_[labelEnd_[bt]];
            int j = endpoint_[labelEnd_[bt] ^ 1];
            assert(blossomBase_[bt] == t);
            if (bt >= nVertex_)
                augmentBlossom(bt, j);
            mate_[j] = labelEnd_[bt];
            p = labelEnd_[bt] ^ 1;
        }
    }
}

void
BlossomMatcher::verifyOptimum() const
{
    int64_t vdual_offset = 0;
    if (maxCardinality_) {
        int64_t min_dual = std::numeric_limits<int64_t>::max();
        for (int vtx = 0; vtx < nVertex_; vtx++)
            min_dual = std::min(min_dual, dualVar_[vtx]);
        vdual_offset = std::max<int64_t>(0, -min_dual);
    }
    for (int vtx = 0; vtx < nVertex_; vtx++) {
        ASTREA_CHECK(dualVar_[vtx] + vdual_offset >= 0,
                     "negative vertex dual");
        ASTREA_CHECK(mate_[vtx] >= 0 ||
                         dualVar_[vtx] + vdual_offset == 0,
                     "single vertex with nonzero dual");
    }
    for (int b = nVertex_; b < 2 * nVertex_; b++)
        ASTREA_CHECK(blossomBase_[b] < 0 || dualVar_[b] >= 0,
                     "negative blossom dual");
    for (int k = 0; k < nEdge_; k++) {
        int i = edges_[k].u;
        int j = edges_[k].v;
        int64_t s = dualVar_[i] + dualVar_[j] - 2 * weight_[k];
        // Add blossom duals for common enclosing blossoms.
        std::vector<int> ib{i}, jb{j};
        while (blossomParent_[ib.back()] != -1)
            ib.push_back(blossomParent_[ib.back()]);
        while (blossomParent_[jb.back()] != -1)
            jb.push_back(blossomParent_[jb.back()]);
        std::reverse(ib.begin(), ib.end());
        std::reverse(jb.begin(), jb.end());
        for (size_t z = 0; z < std::min(ib.size(), jb.size()); z++) {
            if (ib[z] != jb[z])
                break;
            s += 2 * dualVar_[ib[z]];
        }
        ASTREA_CHECK(s >= 0, "edge with negative slack");
        bool matched = (mate_[i] >= 0 && mate_[i] / 2 == k) ||
                       (mate_[j] >= 0 && mate_[j] / 2 == k);
        if (matched) {
            ASTREA_CHECK(mate_[i] / 2 == k && mate_[j] / 2 == k,
                         "half-matched edge");
            ASTREA_CHECK(s == 0, "matched edge with nonzero slack");
        }
    }
}

std::vector<int>
BlossomMatcher::solve()
{
    if (nEdge_ == 0)
        return std::vector<int>(nVertex_, -1);

    for (int stage = 0; stage < nVertex_; stage++) {
        // Stage: find an augmenting path and augment, or conclude.
        ASTREA_COUNTER_INC("blossom.stages");
        std::fill(label_.begin(), label_.end(), 0);
        std::fill(labelEnd_.begin(), labelEnd_.end(), -1);
        std::fill(bestEdge_.begin(), bestEdge_.end(), -1);
        for (int b = nVertex_; b < 2 * nVertex_; b++)
            blossomBestEdges_[b].clear();
        std::fill(allowEdge_.begin(), allowEdge_.end(), 0);
        queue_.clear();

        for (int v = 0; v < nVertex_; v++) {
            if (mate_[v] == -1 && label_[inBlossom_[v]] == 0)
                assignLabel(v, 1, -1);
        }

        bool augmented = false;
        while (true) {
            // Substage: scan the queue, growing the forest.
            while (!queue_.empty() && !augmented) {
                int v = queue_.back();
                queue_.pop_back();
                assert(label_[inBlossom_[v]] == 1);

                for (int p : neighbEnd_[v]) {
                    int k = p / 2;
                    int w = endpoint_[p];
                    if (inBlossom_[v] == inBlossom_[w])
                        continue;
                    int64_t kslack = 0;
                    if (!allowEdge_[k]) {
                        kslack = slack(k);
                        if (kslack <= 0)
                            allowEdge_[k] = 1;
                    }
                    if (allowEdge_[k]) {
                        if (label_[inBlossom_[w]] == 0) {
                            assignLabel(w, 2, p ^ 1);
                        } else if (label_[inBlossom_[w]] == 1) {
                            int base = scanBlossom(v, w);
                            if (base >= 0) {
                                addBlossom(base, k);
                            } else {
                                augmentMatching(k);
                                ASTREA_COUNTER_INC(
                                    "blossom.augmenting_paths");
                                augmented = true;
                                break;
                            }
                        } else if (label_[w] == 0) {
                            assert(label_[inBlossom_[w]] == 2);
                            label_[w] = 2;
                            labelEnd_[w] = p ^ 1;
                        }
                    } else if (label_[inBlossom_[w]] == 1) {
                        int b = inBlossom_[v];
                        if (bestEdge_[b] == -1 ||
                            kslack < slack(bestEdge_[b])) {
                            bestEdge_[b] = k;
                        }
                    } else if (label_[w] == 0) {
                        if (bestEdge_[w] == -1 ||
                            kslack < slack(bestEdge_[w])) {
                            bestEdge_[w] = k;
                        }
                    }
                }
            }
            if (augmented)
                break;

            // Compute the dual adjustment.
            int delta_type = -1;
            int64_t delta = 0;
            int delta_edge = -1;
            int delta_blossom = -1;

            if (!maxCardinality_) {
                delta_type = 1;
                delta = std::numeric_limits<int64_t>::max();
                for (int v = 0; v < nVertex_; v++)
                    delta = std::min(delta, dualVar_[v]);
            }
            for (int v = 0; v < nVertex_; v++) {
                if (label_[inBlossom_[v]] == 0 && bestEdge_[v] != -1) {
                    int64_t d = slack(bestEdge_[v]);
                    if (delta_type == -1 || d < delta) {
                        delta = d;
                        delta_type = 2;
                        delta_edge = bestEdge_[v];
                    }
                }
            }
            for (int b = 0; b < 2 * nVertex_; b++) {
                if (blossomParent_[b] == -1 && label_[b] == 1 &&
                    bestEdge_[b] != -1) {
                    int64_t kslack = slack(bestEdge_[b]);
                    assert(kslack % 2 == 0);
                    int64_t d = kslack / 2;
                    if (delta_type == -1 || d < delta) {
                        delta = d;
                        delta_type = 3;
                        delta_edge = bestEdge_[b];
                    }
                }
            }
            for (int b = nVertex_; b < 2 * nVertex_; b++) {
                if (blossomBase_[b] >= 0 && blossomParent_[b] == -1 &&
                    label_[b] == 2 &&
                    (delta_type == -1 || dualVar_[b] < delta)) {
                    delta = dualVar_[b];
                    delta_type = 4;
                    delta_blossom = b;
                }
            }
            if (delta_type == -1) {
                // No further improvement; max-cardinality optimum.
                delta_type = 1;
                int64_t min_dual = std::numeric_limits<int64_t>::max();
                for (int v = 0; v < nVertex_; v++)
                    min_dual = std::min(min_dual, dualVar_[v]);
                delta = std::max<int64_t>(0, min_dual);
            }

            // Update the dual variables.
            for (int v = 0; v < nVertex_; v++) {
                if (label_[inBlossom_[v]] == 1)
                    dualVar_[v] -= delta;
                else if (label_[inBlossom_[v]] == 2)
                    dualVar_[v] += delta;
            }
            for (int b = nVertex_; b < 2 * nVertex_; b++) {
                if (blossomBase_[b] >= 0 && blossomParent_[b] == -1) {
                    if (label_[b] == 1)
                        dualVar_[b] += delta;
                    else if (label_[b] == 2)
                        dualVar_[b] -= delta;
                }
            }

            if (delta_type == 1) {
                break;  // Optimum reached.
            } else if (delta_type == 2) {
                allowEdge_[delta_edge] = 1;
                int i = edges_[delta_edge].u;
                if (label_[inBlossom_[i]] == 0)
                    i = edges_[delta_edge].v;
                assert(label_[inBlossom_[i]] == 1);
                queue_.push_back(i);
            } else if (delta_type == 3) {
                allowEdge_[delta_edge] = 1;
                int i = edges_[delta_edge].u;
                assert(label_[inBlossom_[i]] == 1);
                queue_.push_back(i);
            } else {
                expandBlossom(delta_blossom, false);
            }
        }

        if (!augmented)
            break;

        // End of stage: expand all S-blossoms with zero dual.
        for (int b = nVertex_; b < 2 * nVertex_; b++) {
            if (blossomParent_[b] == -1 && blossomBase_[b] >= 0 &&
                label_[b] == 1 && dualVar_[b] == 0) {
                expandBlossom(b, true);
            }
        }
    }

    verifyOptimum();

    // Convert mate_ from endpoints to vertices.
    std::vector<int> result(nVertex_, -1);
    for (int v = 0; v < nVertex_; v++) {
        if (mate_[v] >= 0)
            result[v] = endpoint_[mate_[v]];
    }
    for (int v = 0; v < nVertex_; v++)
        assert(result[v] == -1 || result[result[v]] == v);
    return result;
}

} // namespace

std::vector<int>
maxWeightMatching(int num_vertices, const std::vector<MatchEdge> &edges,
                  bool max_cardinality)
{
    ASTREA_CHECK(num_vertices >= 0, "negative vertex count");
    BlossomMatcher matcher(num_vertices, edges, max_cardinality);
    return matcher.solve();
}

std::vector<int>
minWeightPerfectMatching(int num_vertices,
                         const std::function<int64_t(int, int)> &weight)
{
    ASTREA_CHECK(num_vertices % 2 == 0,
                 "perfect matching needs an even vertex count");
    if (num_vertices == 0)
        return {};

    // Reflect weights so minimizing becomes maximizing; with
    // max-cardinality the result is a perfect matching (the graph is
    // complete and even).
    int64_t max_w = 0;
    std::vector<MatchEdge> edges;
    edges.reserve(static_cast<size_t>(num_vertices) * (num_vertices - 1) /
                  2);
    for (int i = 0; i < num_vertices; i++) {
        for (int j = i + 1; j < num_vertices; j++) {
            int64_t w = weight(i, j);
            ASTREA_CHECK(w >= 0, "negative matching weight");
            max_w = std::max(max_w, w);
            edges.push_back({i, j, w});
        }
    }
    for (auto &e : edges)
        e.weight = max_w + 1 - e.weight;

    auto mate = maxWeightMatching(num_vertices, edges, true);
    for (int v = 0; v < num_vertices; v++)
        ASTREA_CHECK(mate[v] >= 0, "perfect matching is not perfect");
    return mate;
}

} // namespace astrea
