/**
 * @file
 * Exact minimum-weight matching with a boundary, by bitmask DP.
 *
 * For n <= 20 defects this computes the true MWPM — including the
 * option of matching any subset of defects individually to the boundary
 * — in O(2^n * n) time. It serves two purposes: an independent oracle
 * for property-testing the blossom implementation and the Astrea
 * enumerator, and a convenient exact solver inside unit tests.
 */

#ifndef ASTREA_MATCHING_DP_MATCHER_HH
#define ASTREA_MATCHING_DP_MATCHER_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace astrea
{

/** A solved matching over defect indices 0..n-1. */
struct MatchingSolution
{
    double totalWeight = 0.0;
    /** (i, j) pairs; j == -1 means i is matched to the boundary. */
    std::vector<std::pair<int, int>> pairs;
};

/**
 * Exact minimum-weight matching with boundary.
 *
 * @param n Number of defects (n <= 20).
 * @param pair_weight pair_weight(i, j) for i < j.
 * @param boundary_weight boundary_weight(i).
 */
MatchingSolution dpMatchWithBoundary(
    int n, const std::function<double(int, int)> &pair_weight,
    const std::function<double(int)> &boundary_weight);

} // namespace astrea

#endif // ASTREA_MATCHING_DP_MATCHER_HH
