#include "matching/enumerator.hh"

#include <limits>

#include "common/logging.hh"

namespace astrea
{

uint64_t
perfectMatchingCount(int m)
{
    ASTREA_CHECK(m >= 0 && m % 2 == 0, "odd node count");
    uint64_t n = 1;
    for (int k = m - 1; k > 1; k -= 2)
        n *= static_cast<uint64_t>(k);
    return n;
}

void
forEachPerfectMatching(int m,
                       const std::function<void(const PairList &)> &visit)
{
    forEachPerfectMatchingT(m, visit);
}

std::vector<PairList>
allPerfectMatchings(int m)
{
    std::vector<PairList> out;
    out.reserve(perfectMatchingCount(m));
    forEachPerfectMatchingT(m, [&](const PairList &pl) {
        out.push_back(pl);
    });
    return out;
}

double
exhaustiveMinWeightMatching(
    int m, const std::function<double(int, int)> &pair_weight,
    PairList &best_out)
{
    double best = std::numeric_limits<double>::infinity();
    best_out.clear();
    forEachPerfectMatchingT(m, [&](const PairList &pl) {
        double w = 0.0;
        for (auto [i, j] : pl)
            w += pair_weight(i, j);
        if (w < best) {
            best = w;
            best_out = pl;
        }
    });
    return best;
}

} // namespace astrea
