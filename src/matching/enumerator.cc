#include "matching/enumerator.hh"

#include <limits>

#include "common/logging.hh"

namespace astrea
{

uint64_t
perfectMatchingCount(int m)
{
    ASTREA_CHECK(m >= 0 && m % 2 == 0, "odd node count");
    uint64_t n = 1;
    for (int k = m - 1; k > 1; k -= 2)
        n *= static_cast<uint64_t>(k);
    return n;
}

namespace
{

void
enumerate(uint32_t unmatched, PairList &current,
          const std::function<void(const PairList &)> &visit)
{
    if (unmatched == 0) {
        visit(current);
        return;
    }
    int i = __builtin_ctz(unmatched);
    uint32_t rest = unmatched & (unmatched - 1);
    uint32_t others = rest;
    while (others) {
        int j = __builtin_ctz(others);
        others &= others - 1;
        current.push_back({i, j});
        enumerate(rest & ~(1u << j), current, visit);
        current.pop_back();
    }
}

} // namespace

void
forEachPerfectMatching(int m,
                       const std::function<void(const PairList &)> &visit)
{
    ASTREA_CHECK(m >= 0 && m % 2 == 0 && m <= 30,
                 "enumerator supports even m <= 30");
    if (m == 0) {
        PairList empty;
        visit(empty);
        return;
    }
    PairList current;
    current.reserve(m / 2);
    enumerate((1u << m) - 1, current, visit);
}

std::vector<PairList>
allPerfectMatchings(int m)
{
    std::vector<PairList> out;
    out.reserve(perfectMatchingCount(m));
    forEachPerfectMatching(m, [&](const PairList &pl) {
        out.push_back(pl);
    });
    return out;
}

double
exhaustiveMinWeightMatching(
    int m, const std::function<double(int, int)> &pair_weight,
    PairList &best_out)
{
    double best = std::numeric_limits<double>::infinity();
    best_out.clear();
    forEachPerfectMatching(m, [&](const PairList &pl) {
        double w = 0.0;
        for (auto [i, j] : pl)
            w += pair_weight(i, j);
        if (w < best) {
            best = w;
            best_out = pl;
        }
    });
    return best;
}

} // namespace astrea
