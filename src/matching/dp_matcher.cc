#include "matching/dp_matcher.hh"

#include <bit>
#include <limits>

#include "common/logging.hh"

namespace astrea
{

MatchingSolution
dpMatchWithBoundary(int n,
                    const std::function<double(int, int)> &pair_weight,
                    const std::function<double(int)> &boundary_weight)
{
    ASTREA_CHECK(n >= 0 && n <= 20, "DP matcher supports up to 20 defects");
    MatchingSolution sol;
    if (n == 0)
        return sol;

    const uint32_t full = (1u << n) - 1;
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> f(full + 1, inf);
    f[0] = 0.0;

    // f[S] = min weight to resolve the defect subset S. Process subsets
    // in increasing order; every predecessor of S is smaller than S.
    for (uint32_t s = 1; s <= full; s++) {
        int i = std::countr_zero(s);
        uint32_t without_i = s & (s - 1);
        // Option 1: defect i matches the boundary.
        double best = boundary_weight(i) + f[without_i];
        // Option 2: defect i pairs with some j in S.
        uint32_t rest = without_i;
        while (rest) {
            int j = std::countr_zero(rest);
            rest &= rest - 1;
            double w = pair_weight(i, j) + f[without_i & ~(1u << j)];
            if (w < best)
                best = w;
        }
        f[s] = best;
    }

    sol.totalWeight = f[full];

    // Reconstruct by re-deriving the winning choice at each step.
    uint32_t s = full;
    while (s) {
        int i = std::countr_zero(s);
        uint32_t without_i = s & (s - 1);
        if (boundary_weight(i) + f[without_i] == f[s]) {
            sol.pairs.push_back({i, -1});
            s = without_i;
            continue;
        }
        bool found = false;
        uint32_t rest = without_i;
        while (rest) {
            int j = std::countr_zero(rest);
            rest &= rest - 1;
            uint32_t next = without_i & ~(1u << j);
            if (pair_weight(i, j) + f[next] == f[s]) {
                sol.pairs.push_back({i, j});
                s = next;
                found = true;
                break;
            }
        }
        ASTREA_CHECK(found, "DP reconstruction failed");
    }
    return sol;
}

} // namespace astrea
