/**
 * @file
 * Exhaustive perfect-matching enumeration (Astrea's search, in software).
 *
 * A set of w nodes has (w-1)!! = w! / (2^(w/2) (w/2)!) perfect matchings
 * (paper Eq. 2): 3 for w = 4, 15 for w = 6, 105 for w = 8, 945 for
 * w = 10. The enumerator walks them in the same canonical order the
 * hardware does — always extending the lowest-index unmatched node — so
 * the HW6Decoder tables, the flattened MatchingTable rows the SIMD
 * kernels evaluate, and the pre-matching schedules for Hamming weights
 * 8 and 10 can all be derived from it directly.
 *
 * The visitor-driven walk comes in two flavors: the template
 * forEachPerfectMatchingT() (no type erasure — table generation and
 * tests pay only the inlined callback) and the std::function wrapper
 * forEachPerfectMatching() retained for existing callers.
 */

#ifndef ASTREA_MATCHING_ENUMERATOR_HH
#define ASTREA_MATCHING_ENUMERATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"

namespace astrea
{

/** A perfect matching as index pairs (i < j) over nodes 0..m-1. */
using PairList = std::vector<std::pair<int, int>>;

/** Number of perfect matchings of m nodes: (m-1)!! for even m. */
uint64_t perfectMatchingCount(int m);

namespace detail
{

template <class Visitor>
void
enumerateMatchings(uint32_t unmatched, PairList &current, Visitor &&visit)
{
    if (unmatched == 0) {
        visit(const_cast<const PairList &>(current));
        return;
    }
    int i = __builtin_ctz(unmatched);
    uint32_t rest = unmatched & (unmatched - 1);
    uint32_t others = rest;
    while (others) {
        int j = __builtin_ctz(others);
        others &= others - 1;
        current.push_back({i, j});
        enumerateMatchings(rest & ~(1u << j), current, visit);
        current.pop_back();
    }
}

} // namespace detail

/**
 * Visit every perfect matching of m nodes (m even) in canonical order,
 * calling visit(const PairList &). The reference may not be retained
 * past the invocation. Template-visitor variant: the callback is
 * inlined, with no std::function type-erasure or capture allocation.
 */
template <class Visitor>
void
forEachPerfectMatchingT(int m, Visitor &&visit)
{
    ASTREA_CHECK(m >= 0 && m % 2 == 0 && m <= 30,
                 "enumerator supports even m <= 30");
    if (m == 0) {
        PairList empty;
        visit(const_cast<const PairList &>(empty));
        return;
    }
    PairList current;
    current.reserve(m / 2);
    detail::enumerateMatchings((1u << m) - 1, current, visit);
}

/**
 * Visit every perfect matching of m nodes (m even) in canonical order.
 * Type-erased wrapper over forEachPerfectMatchingT() for callers that
 * need to store or forward the callback.
 */
void forEachPerfectMatching(int m,
                            const std::function<void(const PairList &)>
                                &visit);

/**
 * All perfect matchings of m nodes, materialized. Intended for small m
 * (the HW6Decoder uses m = 6: 15 matchings).
 */
std::vector<PairList> allPerfectMatchings(int m);

/**
 * Exhaustive minimum-weight perfect matching.
 *
 * @param m Even node count.
 * @param pair_weight pair_weight(i, j), i < j.
 * @param best_out Out: the winning matching.
 * @return The minimum total weight.
 */
double exhaustiveMinWeightMatching(
    int m, const std::function<double(int, int)> &pair_weight,
    PairList &best_out);

} // namespace astrea

#endif // ASTREA_MATCHING_ENUMERATOR_HH
