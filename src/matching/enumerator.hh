/**
 * @file
 * Exhaustive perfect-matching enumeration (Astrea's search, in software).
 *
 * A set of w nodes has (w-1)!! = w! / (2^(w/2) (w/2)!) perfect matchings
 * (paper Eq. 2): 3 for w = 4, 15 for w = 6, 105 for w = 8, 945 for
 * w = 10. The enumerator walks them in the same canonical order the
 * hardware does — always extending the lowest-index unmatched node — so
 * the HW6Decoder tables and the pre-matching schedules for Hamming
 * weights 8 and 10 can be derived from it directly.
 */

#ifndef ASTREA_MATCHING_ENUMERATOR_HH
#define ASTREA_MATCHING_ENUMERATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace astrea
{

/** A perfect matching as index pairs (i < j) over nodes 0..m-1. */
using PairList = std::vector<std::pair<int, int>>;

/** Number of perfect matchings of m nodes: (m-1)!! for even m. */
uint64_t perfectMatchingCount(int m);

/**
 * Visit every perfect matching of m nodes (m even) in canonical order.
 * The callback may not retain the reference past its invocation.
 */
void forEachPerfectMatching(int m,
                            const std::function<void(const PairList &)>
                                &visit);

/**
 * All perfect matchings of m nodes, materialized. Intended for small m
 * (the HW6Decoder uses m = 6: 15 matchings).
 */
std::vector<PairList> allPerfectMatchings(int m);

/**
 * Exhaustive minimum-weight perfect matching.
 *
 * @param m Even node count.
 * @param pair_weight pair_weight(i, j), i < j.
 * @param best_out Out: the winning matching.
 * @return The minimum total weight.
 */
double exhaustiveMinWeightMatching(
    int m, const std::function<double(int, int)> &pair_weight,
    PairList &best_out);

} // namespace astrea

#endif // ASTREA_MATCHING_ENUMERATOR_HH
