#include "astrea/astrea_decoder.hh"

#include <algorithm>
#include <cmath>
#include <span>

#include "astrea/lwt_tile.hh"
#include "astrea/matching_tables.hh"
#include "common/logging.hh"
#include "telemetry/decode_trace.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

namespace detail
{

/** Per-scratch reusable buffers shared by both decode paths. */
struct AstreaScratch : DecodeScratch::Ext
{
    /** Quantized path: the per-decode dense weight/obs gather. */
    LwtTile tile;

    /** Exact path: node ids 0..m-1 (+ virtual boundary for odd HW). */
    std::vector<int> nodes;
    /** Exact path: winning matching of the whole search. */
    PairList best;
    /** Exact path: HW6 leaf output, remapped by the caller. */
    PairList local;

    /** One per pre-match recursion depth (HW 10 needs two). */
    struct Level
    {
        std::vector<int> rest;
        PairList sub;
    };
    std::vector<Level> levels;

    /** Wide path: the SoA bucket of same-HW tiles. */
    LwtTileBlock block;
    /** Wide path: shot indices counting-sorted by Hamming weight. */
    std::vector<uint32_t> wideOrder;
    /** Wide path: decodeBatch's identity shot list. */
    std::vector<uint32_t> allShots;
    /** Wide path: per-lane kernel results for the current group. */
    KernelMatch laneMatch[LwtTileBlock::kMaxLanes];
    /** Wide path: per-lane gather/matching timestamps, recorded only
     *  while the decode tracer is active and replayed as spans at
     *  verdict time (DecodeTracer::recordStage). */
    uint64_t gatherT0[LwtTileBlock::kMaxLanes];
    uint64_t gatherT1[LwtTileBlock::kMaxLanes];
    uint64_t matchT0[LwtTileBlock::kMaxLanes];
    uint64_t matchT1[LwtTileBlock::kMaxLanes];
};

} // namespace detail

using detail::AstreaScratch;

AstreaDecoder::AstreaDecoder(const GlobalWeightTable &gwt,
                             AstreaConfig config)
    : gwt_(gwt), config_(config)
{
}

void
AstreaDecoder::describeConfig(telemetry::JsonWriter &w) const
{
    w.kv("max_hamming_weight", uint64_t{config_.maxHammingWeight});
    w.kv("quantized_weights", config_.quantizedWeights);
    w.kv("use_effective_weights", config_.useEffectiveWeights);
}

uint64_t
AstreaDecoder::decodeCycles(uint32_t hamming_weight)
{
    if (hamming_weight <= 2)
        return 0;
    if (hamming_weight <= 6)
        return 1;   // One HW6Decoder evaluation.
    if (hamming_weight <= 8)
        return 11;  // 7 pre-match cycles plus pipeline fill/drain.
    return 103;     // 9 x 7 pre-match pairs plus pipeline overhead.
}

uint64_t
AstreaDecoder::totalCycles(uint32_t hamming_weight)
{
    if (hamming_weight <= 2)
        return 0;  // Trivial syndromes bypass the engine entirely.
    return (hamming_weight + 1) + decodeCycles(hamming_weight);
}

namespace
{

/**
 * Exhaustive search by pre-matching: pair the first remaining node
 * with every other option, recursing until 6 or fewer nodes remain for
 * the HW6Decoder. This is exactly the hardware's schedule for HW 8
 * (7 pre-matchings) and HW 10 (63 pre-matchings). Only the
 * exact-weight ablation runs this; the quantized path evaluates the
 * flattened MatchingTable in one kernel pass instead.
 *
 * All work buffers come from the scratch's per-depth levels, which the
 * caller sized before entry (resizing mid-recursion would invalidate
 * the level references live in outer frames).
 */
template <class WeightFn>
WeightSum
searchPrematch(const Hw6Decoder &hw6, std::span<const int> nodes,
               const WeightFn &weight, PairList &best_out,
               uint64_t &hw6_invocations, AstreaScratch &s,
               size_t depth)
{
    const int m = static_cast<int>(nodes.size());
    if (m <= 6) {
        hw6_invocations++;
        WeightSum w = hw6.match(
            m,
            [&](int i, int j) { return weight(nodes[i], nodes[j]); },
            s.local);
        best_out.clear();
        for (auto [i, j] : s.local)
            best_out.push_back({nodes[i], nodes[j]});
        return w;
    }

    AstreaScratch::Level &lvl = s.levels[depth];
    lvl.rest.assign(nodes.begin() + 1, nodes.end());

    WeightSum best = kInfiniteWeightSum;
    best_out.clear();
    for (int k = 0; k < m - 1; k++) {
        int partner = lvl.rest[k];
        std::swap(lvl.rest[k], lvl.rest.back());
        lvl.rest.pop_back();

        WeightSum sub_w = searchPrematch(
            hw6, std::span<const int>(lvl.rest), weight, lvl.sub,
            hw6_invocations, s, depth + 1);
        WeightSum total =
            addWeights(weight(nodes[0], partner), sub_w);
        if (total < best) {
            best = total;
            // Swap, don't copy: lvl.sub is rebuilt from scratch on the
            // next iteration anyway, and the two buffers' capacities
            // stabilize after the first few decodes.
            std::swap(best_out, lvl.sub);
            best_out.push_back({nodes[0], partner});
        }

        lvl.rest.push_back(partner);
        std::swap(lvl.rest[k], lvl.rest.back());
    }
    return best;
}

/** Modeled hardware HW6-unit invocations for an m-node search. */
uint64_t
modeledHw6Invocations(int m)
{
    if (m <= 6)
        return 1;
    return m == 8 ? 7 : 63;
}

} // namespace

void
AstreaDecoder::decodeKernel(std::span<const uint32_t> defects,
                            DecodeResult &out, AstreaScratch &s)
{
    // Hardware-counter attribution, sampled one decode in
    // ASTREA_PERF_STAGE_STRIDE (a live section costs two group
    // reads, which would swamp a ~456 ns decode if taken every shot).
    const bool psample = telemetry::perfSampleThisDecode();
    {
        telemetry::PerfSection sec(telemetry::PerfStage::Gather, 1,
                                   psample);
        s.tile.build(gwt_, defects, config_.useEffectiveWeights);
    }
    const int m = s.tile.nodes();
    const int virt = s.tile.virtualNode();

    const MatchingTable *table = nullptr;
    KernelMatch km;
    {
        telemetry::PerfSection sec(telemetry::PerfStage::Matching, 1,
                                   psample);
        table = &MatchingTable::forNodes(m);
        km = matchTile16(*table, s.tile.weights(), kernel_);
    }
    ASTREA_CHECK(km.weight < kInfiniteTileWeight,
                 "Astrea found no finite matching");

    const uint64_t invocations = modeledHw6Invocations(m);
    stats_.hw6Invocations += invocations;
    ASTREA_COUNTER_ADD("astrea.hw6_invocations", invocations);

    telemetry::PerfSection vsec(telemetry::PerfStage::Verdict, 1,
                                psample);
    out.matchedPairs.reserve(
        static_cast<size_t>(table->pairsPerRow()));
    for (int k = 0; k < table->pairsPerRow(); k++) {
        auto [i, j] = table->pairAt(km.row, k);
        out.obsMask ^= s.tile.obsAt(i, j);
        // Report the pairing; the virtual boundary node maps to -1.
        int32_t a = (i == virt) ? -1 : static_cast<int32_t>(i);
        int32_t b = (j == virt) ? -1 : static_cast<int32_t>(j);
        if (a < 0)
            std::swap(a, b);
        out.matchedPairs.push_back({a, b});
    }
    out.matchingWeight = static_cast<double>(km.weight) / kWeightScale;
}

void
AstreaDecoder::decodeExact(std::span<const uint32_t> defects,
                           DecodeResult &out, AstreaScratch &s)
{
    const uint32_t w = static_cast<uint32_t>(defects.size());

    // Nodes 0..w-1 are defects; odd Hamming weights add one virtual
    // boundary node with index w.
    const int m = (w % 2 == 0) ? static_cast<int>(w)
                               : static_cast<int>(w) + 1;
    const int virt = static_cast<int>(w);

    // Exact-weight mode works in 2^-16-decade fixed point so the
    // integer search machinery is reused unchanged.
    constexpr double kExactScale = 65536.0;

    auto raw_weight = [&](uint32_t a, uint32_t b) -> WeightSum {
        double decades = gwt_.exactWeight(a, b);
        if (!std::isfinite(decades))
            return kInfiniteWeightSum;
        return static_cast<WeightSum>(decades * kExactScale);
    };

    auto weight = [&](int i, int j) -> WeightSum {
        if (i == virt || j == virt) {
            uint32_t d = defects[i == virt ? j : i];
            return raw_weight(d, d);
        }
        uint32_t a = defects[i], b = defects[j];
        WeightSum direct = raw_weight(a, b);
        if (!config_.useEffectiveWeights)
            return direct;
        WeightSum via =
            addWeights(raw_weight(a, a), raw_weight(b, b));
        return direct < via ? direct : via;
    };
    auto obs = [&](int i, int j) -> uint64_t {
        if (i == virt || j == virt) {
            uint32_t d = defects[i == virt ? j : i];
            return gwt_.pairObs(d, d);
        }
        uint32_t a = defects[i], b = defects[j];
        if (!config_.useEffectiveWeights)
            return gwt_.pairObs(a, b);
        WeightSum direct = raw_weight(a, b);
        WeightSum via =
            addWeights(raw_weight(a, a), raw_weight(b, b));
        if (direct <= via)
            return gwt_.pairObs(a, b);
        return gwt_.pairObs(a, a) ^ gwt_.pairObs(b, b);
    };

    s.nodes.resize(static_cast<size_t>(m));
    for (int i = 0; i < m; i++)
        s.nodes[i] = i;
    // Pre-size the recursion levels up front: one per pre-matched pair
    // beyond the HW6 leaf (HW 10 -> 2).
    const size_t depth_needed =
        m > 6 ? (static_cast<size_t>(m) - 6 + 1) / 2 : 0;
    if (s.levels.size() < depth_needed)
        s.levels.resize(depth_needed);

    uint64_t hw6_invocations = 0;
    WeightSum total =
        searchPrematch(hw6_, std::span<const int>(s.nodes), weight,
                       s.best, hw6_invocations, s, 0);
    ASTREA_CHECK(total != kInfiniteWeightSum,
                 "Astrea found no finite matching");
    stats_.hw6Invocations += hw6_invocations;
    ASTREA_COUNTER_ADD("astrea.hw6_invocations", hw6_invocations);

    out.matchedPairs.reserve(s.best.size());
    for (auto [i, j] : s.best) {
        out.obsMask ^= obs(i, j);
        // Report the pairing; the virtual boundary node maps to -1.
        int32_t a = (i == virt) ? -1 : static_cast<int32_t>(i);
        int32_t b = (j == virt) ? -1 : static_cast<int32_t>(j);
        if (a < 0)
            std::swap(a, b);
        out.matchedPairs.push_back({a, b});
    }
    out.matchingWeight = static_cast<double>(total) / kExactScale;
}

void
AstreaDecoder::decodeInto(std::span<const uint32_t> defects,
                          DecodeResult &out, DecodeScratch &scratch)
{
    out.reset();
    const uint32_t w = static_cast<uint32_t>(defects.size());
    stats_.decodes++;
    ASTREA_COUNTER_INC("astrea.decodes");
    ASTREA_HIST_ADD("astrea.decode_hw", w);
    if (w == 0) {
        stats_.trivialDecodes++;
        return;
    }
    if (w > config_.maxHammingWeight) {
        stats_.gaveUps++;
        ASTREA_COUNTER_INC("astrea.gave_ups");
        ASTREA_HIST_ADD("astrea.give_up_hw", w);
        out.gaveUp = true;
        return;
    }
    if (w <= 2)
        stats_.trivialDecodes++;

    AstreaScratch &s = scratch.ext<AstreaScratch>();
    if (config_.quantizedWeights)
        decodeKernel(defects, out, s);
    else
        decodeExact(defects, out, s);

    if (w > 2) {
        // HW <= 2 bypasses the engine, so no GWT transfer is modeled.
        stats_.weightTransferCycles += w + 1;
        ASTREA_COUNTER_ADD("astrea.weight_transfer_cycles", w + 1);
    }
    out.cycles = totalCycles(w);
    out.latencyNs = cyclesToNs(out.cycles);
}

void
AstreaDecoder::decodeBatch(const SyndromeBatch &batch,
                           std::vector<DecodeResult> &results,
                           DecodeScratch &scratch)
{
    // One reservation serves the whole batch: the tile/bucket builds
    // only ever reuse capacity afterwards, so the shot loops allocate
    // nothing beyond what the results vector itself needs.
    AstreaScratch &s = scratch.ext<AstreaScratch>();
    s.tile.reserve(static_cast<int>(config_.maxHammingWeight) + 1);
    if (!config_.quantizedWeights) {
        // The exact-weight ablation exceeds the kernels' 16-bit tile
        // domain; it keeps the per-shot recursive search.
        Decoder::decodeBatch(batch, results, scratch);
        return;
    }
    if (results.size() < batch.size())
        results.resize(batch.size());
    s.allShots.resize(batch.size());
    for (size_t i = 0; i < batch.size(); i++)
        s.allShots[i] = static_cast<uint32_t>(i);
    decodeShotsWide(batch, s.allShots, results, scratch);
}

void
AstreaDecoder::decodeShotsWide(const SyndromeBatch &batch,
                               std::span<const uint32_t> shot_indices,
                               std::vector<DecodeResult> &results,
                               DecodeScratch &scratch)
{
    ASTREA_CHECK(config_.quantizedWeights,
                 "wide decoding requires quantized weights");
    const uint32_t max_hw = config_.maxHammingWeight;
    // Give-ups share one bucket past the last decodable weight.
    const uint32_t give_up_key = max_hw + 1;
    ASTREA_CHECK(give_up_key < 16, "maxHammingWeight out of range");

    AstreaScratch &s = scratch.ext<AstreaScratch>();
    s.block.reserve(static_cast<int>(max_hw) + 1);
    telemetry::DecodeTracer &tracer = telemetry::decodeTracer();

    // Counting sort by Hamming weight: one pass to size the buckets,
    // one to place the shot indices. Same-HW shots land contiguously
    // in wideOrder, in batch order (the sort is stable), so each
    // bucket is a slice.
    uint32_t counts[16] = {};
    for (const uint32_t idx : shot_indices)
        counts[std::min<uint32_t>(
            static_cast<uint32_t>(batch.hw(idx)), give_up_key)]++;
    uint32_t starts[17];
    starts[0] = 0;
    for (int k = 0; k < 16; k++)
        starts[k + 1] = starts[k] + counts[k];
    s.wideOrder.resize(shot_indices.size());
    {
        uint32_t cursor[16];
        std::copy(starts, starts + 16, cursor);
        for (const uint32_t idx : shot_indices)
            s.wideOrder[cursor[std::min<uint32_t>(
                static_cast<uint32_t>(batch.hw(idx)),
                give_up_key)]++] = idx;
    }

    // HW 0: nothing to match (decodeInto's early return).
    for (uint32_t i = starts[0]; i < starts[1]; i++) {
        const uint32_t shot = s.wideOrder[i];
        telemetry::traceShotBegin(shot);
        results[shot].reset();
        stats_.trivialDecodes++;
    }
    stats_.decodes += counts[0];
    ASTREA_COUNTER_ADD("astrea.decodes", counts[0]);
    ASTREA_HIST_ADD_N("astrea.decode_hw", 0, counts[0]);

    // Decodable buckets, lowest weight first.
    for (uint32_t w = 1; w <= max_hw; w++)
        decodeBucket(batch, {s.wideOrder.data() + starts[w],
                             counts[w]},
                     w, results, s, tracer);

    // Give-ups (HW > maxHammingWeight).
    for (uint32_t i = starts[give_up_key];
         i < starts[give_up_key] + counts[give_up_key]; i++) {
        const uint32_t shot = s.wideOrder[i];
        const uint32_t w = static_cast<uint32_t>(batch.hw(shot));
        telemetry::traceShotBegin(shot);
        results[shot].reset();
        results[shot].gaveUp = true;
        stats_.gaveUps++;
        ASTREA_COUNTER_INC("astrea.gave_ups");
        ASTREA_HIST_ADD("astrea.decode_hw", w);
        ASTREA_HIST_ADD("astrea.give_up_hw", w);
    }
    stats_.decodes += counts[give_up_key];
    ASTREA_COUNTER_ADD("astrea.decodes", counts[give_up_key]);
}

void
AstreaDecoder::decodeBucket(const SyndromeBatch &batch,
                            std::span<const uint32_t> shots,
                            uint32_t w,
                            std::vector<DecodeResult> &results,
                            detail::AstreaScratch &s,
                            telemetry::DecodeTracer &tracer)
{
    if (shots.empty())
        return;
    const int m = (w % 2 == 0) ? static_cast<int>(w)
                               : static_cast<int>(w) + 1;
    const int virt = (w % 2 == 0) ? -1 : static_cast<int>(w);
    const MatchingTable &table = MatchingTable::forNodes(m);
    const uint64_t invocations = modeledHw6Invocations(m);
    const bool tracing = tracer.active();

    for (size_t g = 0; g < shots.size();
         g += LwtTileBlock::kMaxLanes) {
        const uint32_t lanes = static_cast<uint32_t>(
            std::min<size_t>(LwtTileBlock::kMaxLanes,
                             shots.size() - g));
        // Counter attribution is per bucket group (shots = lanes);
        // trace spans are emitted per lane at verdict time instead,
        // so each retained trace carries its own stage timings.
        const bool psample = telemetry::perfSampleThisDecode();
        {
            telemetry::PerfSection sec(telemetry::PerfStage::Gather,
                                       lanes, psample, false);
            s.block.beginBucket(static_cast<int>(w), kernel_);
            for (uint32_t l = 0; l < lanes; l++) {
                const std::span<const uint32_t> next =
                    (l + 1 < lanes) ? batch.at(shots[g + l + 1])
                                    : std::span<const uint32_t>{};
                uint64_t t0 = 0;
                if (tracing)
                    t0 = telemetry::traceClockNs();
                s.block.gatherLane(gwt_, batch.at(shots[g + l]),
                                   next,
                                   config_.useEffectiveWeights);
                if (tracing) {
                    s.gatherT0[l] = t0;
                    s.gatherT1[l] = telemetry::traceClockNs();
                }
            }
        }
        {
            telemetry::PerfSection sec(
                telemetry::PerfStage::Matching, lanes, psample,
                false);
            // One fused lane-major kernel call per group; traced
            // shots share the group's span since lanes are no longer
            // evaluated one at a time.
            uint64_t t0 = 0;
            if (tracing)
                t0 = telemetry::traceClockNs();
            if (s.block.transposed())
                matchTileLanesT(table, s.block.weightsData(), lanes,
                                LwtTileBlock::kEntryStride,
                                s.laneMatch, kernel_);
            else
                matchTileLanes(table, s.block.weightsData(), lanes,
                               s.block.laneStride(), s.laneMatch,
                               kernel_);
            if (tracing) {
                const uint64_t t1 = telemetry::traceClockNs();
                for (uint32_t l = 0; l < lanes; l++) {
                    s.matchT0[l] = t0;
                    s.matchT1[l] = t1;
                }
            }
        }
        {
            telemetry::PerfSection sec(telemetry::PerfStage::Verdict,
                                       lanes, psample, false);
            for (uint32_t l = 0; l < lanes; l++) {
                const uint32_t shot = shots[g + l];
                telemetry::traceShotBegin(shot);
                uint64_t tv0 = 0;
                if (tracing) {
                    tracer.recordStage(telemetry::PerfStage::Gather,
                                       s.gatherT0[l], s.gatherT1[l]);
                    tracer.recordStage(
                        telemetry::PerfStage::Matching, s.matchT0[l],
                        s.matchT1[l]);
                    tv0 = telemetry::traceClockNs();
                }
                const KernelMatch km = s.laneMatch[l];
                ASTREA_CHECK(km.weight < kInfiniteTileWeight,
                             "Astrea found no finite matching");
                DecodeResult &out = results[shot];
                out.reset();
                out.matchedPairs.reserve(
                    static_cast<size_t>(table.pairsPerRow()));
                for (int k = 0; k < table.pairsPerRow(); k++) {
                    auto [i, j] = table.pairAt(km.row, k);
                    out.obsMask ^=
                        s.block.laneObs(static_cast<int>(l), i, j);
                    // The virtual boundary node maps to -1.
                    int32_t a =
                        (i == virt) ? -1 : static_cast<int32_t>(i);
                    int32_t b =
                        (j == virt) ? -1 : static_cast<int32_t>(j);
                    if (a < 0)
                        std::swap(a, b);
                    out.matchedPairs.push_back({a, b});
                }
                out.matchingWeight =
                    static_cast<double>(km.weight) / kWeightScale;
                out.cycles = totalCycles(w);
                out.latencyNs = cyclesToNs(out.cycles);
                if (tracing)
                    tracer.recordStage(
                        telemetry::PerfStage::Verdict, tv0,
                        telemetry::traceClockNs());
            }
        }

        // Bulk per-group bookkeeping, identical in total to the
        // per-shot increments decodeInto() performs.
        stats_.decodes += lanes;
        ASTREA_COUNTER_ADD("astrea.decodes", lanes);
        ASTREA_HIST_ADD_N("astrea.decode_hw", w, lanes);
        if (w <= 2)
            stats_.trivialDecodes += lanes;
        stats_.hw6Invocations += lanes * invocations;
        ASTREA_COUNTER_ADD("astrea.hw6_invocations",
                           lanes * invocations);
        if (w > 2) {
            stats_.weightTransferCycles +=
                static_cast<uint64_t>(lanes) * (w + 1);
            ASTREA_COUNTER_ADD("astrea.weight_transfer_cycles",
                               static_cast<uint64_t>(lanes) *
                                   (w + 1));
        }
    }
}

} // namespace astrea
