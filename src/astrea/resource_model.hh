/**
 * @file
 * Analytic hardware-resource model for Astrea and Astrea-G.
 *
 * We cannot run Vivado synthesis in this environment (paper Tables 3
 * and 8 report post-implementation numbers for a Xilinx Zynq
 * UltraScale+); instead we account for the structures the
 * microarchitecture descriptions imply. SRAM sizes (Table 6) follow
 * directly from the data-structure dimensions; the LUT/FF estimates are
 * first-order gate counts for the adder/comparator networks and
 * pipeline registers, reported against the ZU9EG-class device budgets.
 * See DESIGN.md for this documented substitution.
 */

#ifndef ASTREA_ASTREA_RESOURCE_MODEL_HH
#define ASTREA_ASTREA_RESOURCE_MODEL_HH

#include <cstddef>
#include <cstdint>

#include "astrea/astrea_g_decoder.hh"

namespace astrea
{

/** SRAM breakdown for Astrea-G (paper Table 6). */
struct AstreaGSram
{
    size_t gwtBytes = 0;
    size_t lwtBytes = 0;
    size_t priorityQueueBytes = 0;
    size_t pipelineLatchBytes = 0;
    size_t mwpmRegisterBytes = 0;

    size_t
    totalBytes() const
    {
        return gwtBytes + lwtBytes + priorityQueueBytes +
               pipelineLatchBytes + mwpmRegisterBytes;
    }
};

/**
 * SRAM for decoding one basis of a distance-d code.
 *
 * @param distance Code distance.
 * @param max_hw Largest Hamming weight the pipeline is provisioned for.
 * @param config Astrea-G parameters (F, E).
 */
AstreaGSram astreaGSram(uint32_t distance, uint32_t max_hw,
                        const AstreaGConfig &config);

/** First-order FPGA utilization estimate. */
struct FpgaUtilization
{
    double lutPercent = 0.0;
    double ffPercent = 0.0;
    double bramPercent = 0.0;
    double maxFreqMHz = 250.0;  ///< Design target (paper Secs. 5.4, 7.7).
};

/** Astrea's utilization (paper Table 3 reports 5.57 / 0.86 / 9.60). */
FpgaUtilization astreaUtilization(uint32_t distance);

/** Astrea-G's utilization (paper Table 8: 20.2 / 3.92 / 35.7). */
FpgaUtilization astreaGUtilization(uint32_t distance, uint32_t max_hw,
                                   const AstreaGConfig &config);

} // namespace astrea

#endif // ASTREA_ASTREA_RESOURCE_MODEL_HH
