/**
 * @file
 * HW6Decoder: Astrea's fundamental building block (paper Sec. 5.2.3,
 * Fig. 7a).
 *
 * Six nodes have 15 perfect matchings; the hardware loads the 15 pair
 * weights into a weight array and combines them through a network of
 * thirty 8-bit adders (two per matching) plus a comparator tree to
 * select the minimum in one cycle. This class is the cycle-level
 * software model: it holds the same 15-matching table the adder network
 * hardwires and evaluates all candidates exhaustively. Smaller inputs
 * (2 or 4 nodes, with 1 and 3 matchings) use the same structure.
 */

#ifndef ASTREA_ASTREA_HW6_HH
#define ASTREA_ASTREA_HW6_HH

#include <vector>

#include "astrea/matching_tables.hh"
#include "astrea/simd_kernel.hh"
#include "common/logging.hh"
#include "common/weight.hh"
#include "matching/enumerator.hh"

namespace astrea
{

/** Exhaustive <= 6-node matcher mirroring the hardware unit. */
class Hw6Decoder
{
  public:
    Hw6Decoder();

    /**
     * Find the minimum-weight perfect matching of m nodes (m even,
     * m <= 6).
     *
     * The weight callback is a template parameter rather than a
     * std::function so the allocation-free decode hot path pays
     * neither type erasure nor a capture heap allocation per call.
     * Weights are gathered once into a stack tile and all candidate
     * matchings are evaluated in one flat kernel pass (matchTile32),
     * the software analogue of the hardware adder network.
     *
     * @param m Node count.
     * @param pair_weight Quantized pair weight, indices 0..m-1.
     * @param best_out Out: the winning matching's index pairs.
     * @return The minimum total weight (kInfiniteWeightSum if every
     *         candidate used an infinite-weight pair).
     */
    template <class WeightFn>
    WeightSum
    match(int m, const WeightFn &pair_weight, PairList &best_out) const
    {
        best_out.clear();
        if (m == 0)
            return 0;
        ASTREA_CHECK(m == 2 || m == 4 || m == 6,
                     "HW6Decoder handles 0, 2, 4 or 6 nodes");

        WeightSum tile[6 * 6];
        for (int i = 0; i < m; i++)
            for (int j = i + 1; j < m; j++)
                tile[i * m + j] = pair_weight(i, j);

        const MatchingTable &table = MatchingTable::forNodes(m);
        const KernelMatch km =
            matchTile32(table, tile, activeKernelKind());
        if (km.weight == kInfiniteWeightSum)
            return kInfiniteWeightSum;
        for (int k = 0; k < table.pairsPerRow(); k++)
            best_out.push_back(table.pairAt(km.row, k));
        return km.weight;
    }

    /** The hardwired matching table for m nodes (1, 3, or 15 rows). */
    const std::vector<PairList> &matchingTable(int m) const;

    /** Adders in the combining network: 2 per 6-node matching. */
    static constexpr int kNumAdders = 30;

  private:
    std::vector<PairList> table2_;
    std::vector<PairList> table4_;
    std::vector<PairList> table6_;
};

} // namespace astrea

#endif // ASTREA_ASTREA_HW6_HH
