#include "astrea/matching_tables.hh"

#include "common/logging.hh"
#include "matching/enumerator.hh"

namespace astrea
{

MatchingTable::MatchingTable(int m) : m_(m)
{
    rows_ = static_cast<uint32_t>(perfectMatchingCount(m));
    rowsPadded_ = (rows_ + kRowPadding - 1) & ~(kRowPadding - 1);

    const int pairs_per_row = m / 2;
    pairs_.resize(static_cast<size_t>(rows_) * m_);
    // Zero-fill: padding entries resolve to tile offset 0 (the (0,0)
    // diagonal, infinite by the kernel tile contract).
    offsets_.assign(
        static_cast<size_t>(pairs_per_row) * rowsPadded_, 0);

    uint32_t row = 0;
    forEachPerfectMatchingT(m, [&](const PairList &pl) {
        uint8_t *p = pairs_.data() + static_cast<size_t>(row) * m_;
        for (int k = 0; k < pairs_per_row; k++) {
            auto [i, j] = pl[k];
            p[2 * k] = static_cast<uint8_t>(i);
            p[2 * k + 1] = static_cast<uint8_t>(j);
            offsets_[static_cast<size_t>(k) * rowsPadded_ + row] =
                i * m_ + j;
        }
        row++;
    });
    ASTREA_CHECK(row == rows_, "enumerator row count mismatch");
}

const MatchingTable &
MatchingTable::forNodes(int m)
{
    ASTREA_CHECK(m % 2 == 0 && m >= 2 && m <= kMaxNodes,
                 "matching tables exist for even 2 <= m <= 10");
    static const MatchingTable t2(2);
    static const MatchingTable t4(4);
    static const MatchingTable t6(6);
    static const MatchingTable t8(8);
    static const MatchingTable t10(10);
    switch (m) {
      case 2:
        return t2;
      case 4:
        return t4;
      case 6:
        return t6;
      case 8:
        return t8;
      default:
        return t10;
    }
}

} // namespace astrea
