/**
 * @file
 * Data-parallel candidate-matching kernels.
 *
 * The hardware evaluates all matchings of a weight tile through a
 * hardwired adder/comparator network in one cycle (paper Fig. 7a). The
 * software hot path mirrors that: all candidate sums of a MatchingTable
 * are evaluated over a dense weight tile in one flat pass — no
 * recursion, no per-pair callbacks — followed by a min+argmin
 * reduction.
 *
 * Tile contract (matchTile16): the tile is an m x m row-major array of
 * int32 entries whose values live in the 16-bit weight domain
 * [0, kInfiniteTileWeight]; kInfiniteTileWeight (0xFFFF) means "no
 * edge", and entry (0, 0) — tile[0] — must be infinite because padded
 * table rows resolve there. Candidate sums accumulate with 16-bit
 * saturating semantics: any sum reaching 0xFFFF is infinite, exactly
 * matching addWeights() once mapped through LwtTile::toWeightSum()
 * (finite quantized sums can never reach the ceiling: 5 pairs x 510
 * max effective weight < 0xFFFF).
 *
 * Two implementations exist: an AVX2 path (32-bit gathers packed down
 * with unsigned saturation, 16-bit saturating adds, vectorized
 * min+argmin with first-minimum tie-breaking) and a portable unrolled
 * scalar fallback. Both produce bit-identical results — weight AND
 * winning row — which the kernel parity suite enforces. Selection is
 * by cpuid at first use; ASTREA_FORCE_SCALAR=1 pins the scalar path.
 */

#ifndef ASTREA_ASTREA_SIMD_KERNEL_HH
#define ASTREA_ASTREA_SIMD_KERNEL_HH

#include <cstdint>

#include "astrea/matching_tables.hh"
#include "common/weight.hh"

namespace astrea
{

/** Candidate-evaluation kernel implementations. */
enum class KernelKind
{
    kScalar,
    kAvx2,
};

/** Tile-domain sentinel for "no edge" (16-bit saturation ceiling). */
constexpr uint32_t kInfiniteTileWeight = 0xFFFF;

/** Outcome of evaluating every candidate matching over one tile. */
struct KernelMatch
{
    /**
     * The minimum candidate sum. The domain follows the evaluation:
     * matchTile16 reports tile-domain sums (kInfiniteTileWeight when
     * every candidate crossed an infinite entry), matchTile32 reports
     * WeightSum sums (kInfiniteWeightSum likewise). row is meaningless
     * when the weight is the respective infinity.
     */
    uint32_t weight = kInfiniteTileWeight;
    /** First table row attaining the minimum (canonical order). */
    uint32_t row = 0;
};

/** True when the CPU supports the AVX2 kernel. */
bool cpuHasAvx2();

/**
 * The kernel the decoders run: kAvx2 when the CPU supports it and
 * ASTREA_FORCE_SCALAR is unset/false, kScalar otherwise. Resolved once
 * per process (resetKernelDispatchForTest() re-reads the environment).
 */
KernelKind activeKernelKind();

/** Display name: "avx2" or "scalar". */
const char *kernelKindName(KernelKind kind);

/** Testing hook: re-resolve activeKernelKind() on next call. */
void resetKernelDispatchForTest();

/**
 * Evaluate all candidate matchings over a 16-bit-domain tile (see the
 * tile contract above) with the requested kernel.
 */
KernelMatch matchTile16(const MatchingTable &table, const int32_t *tile,
                        KernelKind kind);

/**
 * Scalar evaluation over a full-width WeightSum tile with addWeights()
 * semantics (kInfiniteWeightSum propagates). Serves the paths whose
 * weights exceed the 16-bit tile domain (the exact-weight ablation);
 * only entries i*m + j with i < j are read.
 */
KernelMatch matchTile32(const MatchingTable &table,
                        const WeightSum *tile);

} // namespace astrea

#endif // ASTREA_ASTREA_SIMD_KERNEL_HH
