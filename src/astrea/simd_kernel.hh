/**
 * @file
 * Data-parallel candidate-matching kernels.
 *
 * The hardware evaluates all matchings of a weight tile through a
 * hardwired adder/comparator network in one cycle (paper Fig. 7a). The
 * software hot path mirrors that: all candidate sums of a MatchingTable
 * are evaluated over a dense weight tile in one flat pass — no
 * recursion, no per-pair callbacks — followed by a min+argmin
 * reduction.
 *
 * Tile contract (matchTile16): the tile is an m x m row-major array of
 * int32 entries whose values live in the 16-bit weight domain
 * [0, kInfiniteTileWeight]; kInfiniteTileWeight (0xFFFF) means "no
 * edge", and entry (0, 0) — tile[0] — must be infinite because padded
 * table rows resolve there. Candidate sums accumulate with 16-bit
 * saturating semantics: any sum reaching 0xFFFF is infinite, exactly
 * matching addWeights() once mapped through LwtTile::toWeightSum()
 * (finite quantized sums can never reach the ceiling: 5 pairs x 510
 * max effective weight < 0xFFFF).
 *
 * Three implementations exist: an AVX-512 path (32 candidate rows per
 * iteration), an AVX2 path (16 rows per iteration; 32-bit gathers
 * packed down with unsigned saturation, 16-bit saturating adds,
 * vectorized min+argmin with first-minimum tie-breaking) and a
 * portable unrolled scalar fallback. All produce bit-identical
 * results — weight AND winning row — which the kernel parity suite
 * enforces. Selection is by cpuid at first use;
 * ASTREA_FORCE_KERNEL={scalar,avx2,avx512} pins any tier (falling
 * back with a warning when the CPU lacks it), and the legacy
 * ASTREA_FORCE_SCALAR=1 still pins the scalar path.
 */

#ifndef ASTREA_ASTREA_SIMD_KERNEL_HH
#define ASTREA_ASTREA_SIMD_KERNEL_HH

#include <cstddef>
#include <cstdint>

#include "astrea/matching_tables.hh"
#include "common/weight.hh"

namespace astrea
{

/** Candidate-evaluation kernel implementations, narrowest first. */
enum class KernelKind
{
    kScalar,
    kAvx2,
    kAvx512,
};

/** Tile-domain sentinel for "no edge" (16-bit saturation ceiling). */
constexpr uint32_t kInfiniteTileWeight = 0xFFFF;

/** Outcome of evaluating every candidate matching over one tile. */
struct KernelMatch
{
    /**
     * The minimum candidate sum. The domain follows the evaluation:
     * matchTile16 reports tile-domain sums (kInfiniteTileWeight when
     * every candidate crossed an infinite entry), matchTile32 reports
     * WeightSum sums (kInfiniteWeightSum likewise). row is meaningless
     * when the weight is the respective infinity.
     */
    uint32_t weight = kInfiniteTileWeight;
    /** First table row attaining the minimum (canonical order). */
    uint32_t row = 0;
};

/** True when the CPU supports the AVX2 kernel. */
bool cpuHasAvx2();

/** True when the CPU supports the AVX-512 kernel (F + BW). */
bool cpuHasAvx512();

/**
 * The kernel the decoders run: the widest tier the CPU supports,
 * unless ASTREA_FORCE_KERNEL={scalar,avx2,avx512} pins one (an
 * unsupported or unknown value warns once and falls back to the best
 * supported tier) or the legacy ASTREA_FORCE_SCALAR=1 pins the scalar
 * path. Resolved once per process (resetKernelDispatchForTest()
 * re-reads the environment).
 */
KernelKind activeKernelKind();

/** Display name: "avx512", "avx2" or "scalar". */
const char *kernelKindName(KernelKind kind);

/** Testing hook: re-resolve activeKernelKind() on next call. */
void resetKernelDispatchForTest();

/**
 * Testing hook: pretend the CPU supports no tier wider than max_kind,
 * so the unsupported-tier fallback is testable on any host.
 * cpuHasAvx2()/cpuHasAvx512() honor the cap; pass KernelKind::kAvx512
 * to restore the true cpuid answer. Callers should also
 * resetKernelDispatchForTest() to re-resolve.
 */
void setCpuKernelCapForTest(KernelKind max_kind);

/**
 * Evaluate all candidate matchings over a 16-bit-domain tile (see the
 * tile contract above) with the requested kernel.
 */
KernelMatch matchTile16(const MatchingTable &table, const int32_t *tile,
                        KernelKind kind);

/**
 * Largest tile node count for which the transposed entry-major bucket
 * layout (matchTileLanesT) beats per-lane row-major matching on the
 * given tier. The vector tiers prefer it at every exhaustive size —
 * plain vector loads replace all kernel gathers. The scalar tier
 * walks the transposed layout with strided loads, which lose to the
 * contiguous row-major loop once tables grow past 8 nodes (105 rows),
 * so it caps out earlier.
 */
constexpr int
laneMajorMaxNodes(KernelKind kind)
{
    return kind == KernelKind::kScalar ? 8 : 12;
}

/**
 * Lane-major bucket evaluation: one matchTile16-equivalent result per
 * lane of an SoA tile block (lanes tiles of lane_stride int32 entries
 * each, all sharing one MatchingTable), laid out lane-contiguously.
 * Bit-identical to calling matchTile16 per lane — same weight AND
 * winning row. This is the wide path for buckets past
 * laneMajorMaxNodes(kind) — on the scalar tier, the large tables
 * where the contiguous row-major loop wins; other buckets use
 * matchTileLanesT over a transposed block instead. out must hold
 * lanes entries.
 */
void matchTileLanes(const MatchingTable &table, const int32_t *tiles,
                    uint32_t lanes, size_t lane_stride,
                    KernelMatch *out, KernelKind kind);

/**
 * Lane-major bucket evaluation over a TRANSPOSED (entry-major) SoA
 * block: tiles_t[e * entry_stride + lane] holds tile entry e of the
 * given lane, so 8 / 16 consecutive lanes of one entry are one plain
 * vector load — no gathers at all. The AVX2 / AVX-512 variants
 * evaluate all lanes of a group per pass with a vertical running
 * min / argmin: exactly rows x pairsPerRow loads per vector group, no
 * padded-row work, no horizontal reduction. Bit-identical to per-lane
 * matchTile16 (32-bit sums clamped to the 16-bit ceiling, strict-less
 * first-minimum tie-break over ascending rows). entry_stride must be
 * a multiple of 16 with storage for that many lanes (dead lanes are
 * computed and discarded, never stored to out). Correct for any
 * exhaustive table on any tier; see laneMajorMaxNodes() for when it
 * is the faster choice.
 */
void matchTileLanesT(const MatchingTable &table,
                     const int32_t *tiles_t, uint32_t lanes,
                     size_t entry_stride, KernelMatch *out,
                     KernelKind kind);

/**
 * Evaluation over a full-width WeightSum tile with addWeights()
 * semantics (kInfiniteWeightSum propagates). Serves the paths whose
 * weights exceed the 16-bit tile domain (the exact-weight ablation and
 * the HW6 unit model). Only entries i*m + j with i < j are read on
 * every path: the AVX-512 variant masks its gathers to the real row
 * count, so padded table rows never touch the tile. kScalar and kAvx2
 * both select the portable loop — there is no AVX2 variant of this
 * kernel.
 */
KernelMatch matchTile32(const MatchingTable &table, const WeightSum *tile,
                        KernelKind kind = KernelKind::kScalar);

} // namespace astrea

#endif // ASTREA_ASTREA_SIMD_KERNEL_HH
