#include "astrea/hw6.hh"

#include "common/logging.hh"

namespace astrea
{

Hw6Decoder::Hw6Decoder()
    : table2_(allPerfectMatchings(2)),
      table4_(allPerfectMatchings(4)),
      table6_(allPerfectMatchings(6))
{
    ASTREA_CHECK(table2_.size() == 1 && table4_.size() == 3 &&
                     table6_.size() == 15,
                 "matching table sizes wrong");
}

const std::vector<PairList> &
Hw6Decoder::matchingTable(int m) const
{
    switch (m) {
      case 2:
        return table2_;
      case 4:
        return table4_;
      case 6:
        return table6_;
      default:
        panic("HW6Decoder table only exists for m in {2, 4, 6}");
    }
}

WeightSum
Hw6Decoder::match(int m,
                  const std::function<WeightSum(int, int)> &pair_weight,
                  PairList &best_out) const
{
    best_out.clear();
    if (m == 0)
        return 0;
    ASTREA_CHECK(m == 2 || m == 4 || m == 6,
                 "HW6Decoder handles 0, 2, 4 or 6 nodes");

    WeightSum best = kInfiniteWeightSum;
    for (const PairList &candidate : matchingTable(m)) {
        WeightSum total = 0;
        for (auto [i, j] : candidate)
            total = addWeights(total, pair_weight(i, j));
        if (total < best) {
            best = total;
            best_out = candidate;
        }
    }
    return best;
}

} // namespace astrea
