#include "astrea/hw6.hh"

#include "common/logging.hh"

namespace astrea
{

Hw6Decoder::Hw6Decoder()
    : table2_(allPerfectMatchings(2)),
      table4_(allPerfectMatchings(4)),
      table6_(allPerfectMatchings(6))
{
    ASTREA_CHECK(table2_.size() == 1 && table4_.size() == 3 &&
                     table6_.size() == 15,
                 "matching table sizes wrong");
}

const std::vector<PairList> &
Hw6Decoder::matchingTable(int m) const
{
    switch (m) {
      case 2:
        return table2_;
      case 4:
        return table4_;
      case 6:
        return table6_;
      default:
        panic("HW6Decoder table only exists for m in {2, 4, 6}");
    }
}

} // namespace astrea
