/**
 * @file
 * Astrea: real-time brute-force MWPM for Hamming weights up to 10
 * (paper Sec. 5).
 *
 * The decoder reads quantized pair weights from the Global Weight Table
 * and exhaustively evaluates every perfect matching of the defects:
 *
 *  - HW 0-2: trivial (no search; 0 cycles);
 *  - HW 3-6: one HW6Decoder evaluation (1 cycle);
 *  - HW 7-8: pre-match one pair 7 ways, HW6 on the rest (11 cycles);
 *  - HW 9-10: pre-match two pairs, 9 x 7 = 63 ways (103 cycles);
 *  - HW > 10: not decoded (gaveUp; the paper shows such syndromes are
 *    rarer than the logical error rate at d <= 7, p = 1e-4).
 *
 * Boundary matches are folded into pair weights: a pair may resolve
 * either through the direct chain or through the boundary, whichever
 * GWT weight is lower, and odd Hamming weights add one virtual boundary
 * node. This keeps the search over perfect matchings exactly equivalent
 * to true MWPM (see DESIGN.md). Weight transfer from the GWT costs
 * HW + 1 cycles; total worst case is 114 cycles = 456 ns at 250 MHz.
 *
 * In the default quantized mode the software hot path mirrors the
 * hardware structure directly: one LwtTile gather of the defect
 * submatrix, then a flat kernel pass (simd_kernel.hh) over the
 * precomputed MatchingTable of all (m-1)!! candidates — no recursion,
 * no per-pair callbacks. The exact-weight ablation works in
 * 2^-16-decade fixed point, which exceeds the kernels' 16-bit tile
 * domain, so it keeps the recursive pre-match search. Cycle modeling
 * is identical on both paths.
 */

#ifndef ASTREA_ASTREA_ASTREA_DECODER_HH
#define ASTREA_ASTREA_ASTREA_DECODER_HH

#include "astrea/hw6.hh"
#include "astrea/simd_kernel.hh"
#include "decoders/decoder.hh"
#include "graph/weight_table.hh"

namespace astrea
{

namespace detail
{
struct AstreaScratch;
}

namespace telemetry
{
class DecodeTracer;
}

/** Configuration for the Astrea decoder. */
struct AstreaConfig
{
    /** Largest Hamming weight the brute-force search accepts. */
    uint32_t maxHammingWeight = 10;

    /**
     * Ablation: read the 8-bit quantized GWT (the hardware's view,
     * default) or the unquantized decade weights (what the paper's
     * software model of Astrea effectively used).
     */
    bool quantizedWeights = true;

    /**
     * Ablation: allow pairs to resolve through the boundary
     * (min(w_ij, w_iB + w_jB), default). Disabling restricts pairs to
     * their direct chains — odd Hamming weights still get one virtual
     * boundary node — which breaks exactness for syndromes whose MWPM
     * sends several defects to the boundary.
     */
    bool useEffectiveWeights = true;
};

/** Running per-instance counters for reporting. */
struct AstreaStats
{
    uint64_t decodes = 0;
    /** Syndromes with HW <= 2 (no search needed). */
    uint64_t trivialDecodes = 0;
    /** HW6Decoder evaluations across all pre-match leaves. On the
     *  kernel path this counts the modeled hardware invocations
     *  (1 for HW <= 6, 7 for HW 7-8, 63 for HW 9-10). */
    uint64_t hw6Invocations = 0;
    /** Modeled GWT weight-transfer cycles (HW + 1 per decode). */
    uint64_t weightTransferCycles = 0;
    uint64_t gaveUps = 0;
};

/** The Astrea brute-force real-time decoder. */
class AstreaDecoder : public Decoder
{
  public:
    explicit AstreaDecoder(const GlobalWeightTable &gwt,
                           AstreaConfig config = {});

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;

    /**
     * Batch decode through the shot-major wide path (quantized mode):
     * shots are bucketed by Hamming weight and each bucket's tiles are
     * gathered into a structure-of-arrays LwtTileBlock and matched
     * back-to-back, bit-identical to per-shot decodeInto(). The
     * exact-weight ablation (quantizedWeights == false) exceeds the
     * kernels' tile domain and keeps the per-shot loop.
     */
    void decodeBatch(const SyndromeBatch &batch,
                     std::vector<DecodeResult> &results,
                     DecodeScratch &scratch) override;

    /**
     * Decode the listed batch shots (indices into `batch`, writing
     * results[i] for each listed i) through the HW-bucketed wide path.
     * Requires quantized weights and results.size() >= batch.size().
     * Astrea-G routes its exhaustive-range shots here so a mixed batch
     * still fills buckets; AstreaDecoder::decodeBatch passes every
     * shot. Give-up (HW > maxHammingWeight) and empty shots are
     * handled inline, exactly as decodeInto() would.
     */
    void decodeShotsWide(const SyndromeBatch &batch,
                         std::span<const uint32_t> shot_indices,
                         std::vector<DecodeResult> &results,
                         DecodeScratch &scratch);

    std::string name() const override { return "Astrea"; }
    void describeConfig(telemetry::JsonWriter &w) const override;

    /** Syndromes skipped because HW exceeded the limit. */
    uint64_t gaveUpCount() const { return stats_.gaveUps; }

    const AstreaStats &stats() const { return stats_; }

    /** The candidate-evaluation kernel the quantized path runs. */
    KernelKind kernelKind() const { return kernel_; }

    /** Modeled decode cycles (excluding weight transfer) for a HW. */
    static uint64_t decodeCycles(uint32_t hamming_weight);

    /** Total modeled cycles including the HW+1 transfer cycles. */
    static uint64_t totalCycles(uint32_t hamming_weight);

  private:
    /** Quantized hot path: LWT tile gather + flat kernel pass. */
    void decodeKernel(std::span<const uint32_t> defects,
                      DecodeResult &out, detail::AstreaScratch &s);

    /** Exact-weight ablation: recursive pre-match search. */
    void decodeExact(std::span<const uint32_t> defects,
                     DecodeResult &out, detail::AstreaScratch &s);

    /** Wide path: one HW bucket, gathered and matched in groups of
     *  LwtTileBlock::kMaxLanes lanes. */
    void decodeBucket(const SyndromeBatch &batch,
                      std::span<const uint32_t> shots, uint32_t w,
                      std::vector<DecodeResult> &results,
                      detail::AstreaScratch &s,
                      telemetry::DecodeTracer &tracer);

    const GlobalWeightTable &gwt_;
    AstreaConfig config_;
    Hw6Decoder hw6_;
    AstreaStats stats_;
    KernelKind kernel_ = activeKernelKind();
};

} // namespace astrea

#endif // ASTREA_ASTREA_ASTREA_DECODER_HH
