/**
 * @file
 * Local Weight Table tile: the per-decode dense weight gather.
 *
 * The Global Weight Table is l x l over all detector positions; a
 * decode only ever touches the defects of one syndrome. The LWT tile
 * gathers that submatrix once per decode — quantized effective pair
 * weights and the matching observable masks — into a dense m x m tile
 * (m = defect count, plus one virtual boundary node for odd Hamming
 * weights), so candidate evaluation never touches the l x l table
 * again. The boundary column (each defect's weight/parity of matching
 * straight to the boundary) is read exactly once per defect and reused
 * for every effective-weight min — the old per-call
 * GlobalWeightTable::effectiveWeight() recomputed it for every pair
 * probe in the matcher inner loops.
 *
 * Weights are stored as int32 in the 16-bit tile domain consumed by
 * the SIMD kernels (simd_kernel.hh): finite quantized values pass
 * through unchanged (an 8-bit ceiling entry of 255 stays the finite
 * value 255, exactly as the scalar addWeights() hot path treated it),
 * and diagonal entries are kInfiniteTileWeight, which also satisfies
 * the kernels' "tile[0] is infinite" padding contract.
 *
 * The tile lives in a DecodeScratch extension slot; build() reuses
 * capacity, so a steady-state decode loop (or a whole decodeBatch)
 * performs no allocation after warm-up.
 */

#ifndef ASTREA_ASTREA_LWT_TILE_HH
#define ASTREA_ASTREA_LWT_TILE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "astrea/simd_kernel.hh"
#include "common/weight.hh"
#include "graph/weight_table.hh"

namespace astrea
{

/** Dense per-decode weight/observable tile over one defect set. */
class LwtTile
{
  public:
    /** Pre-size internal buffers for up to max_nodes nodes. */
    void
    reserve(int max_nodes)
    {
        const size_t n =
            static_cast<size_t>(max_nodes) * max_nodes;
        weights_.reserve(n);
        obs_.reserve(n);
        boundaryWeights_.reserve(static_cast<size_t>(max_nodes));
        boundaryObs_.reserve(static_cast<size_t>(max_nodes));
    }

    /**
     * Gather the tile for one defect set. With effective_weights, a
     * pair's weight is min(direct chain, both-to-boundary) and its
     * observable mask follows the same choice (direct wins ties, as
     * GlobalWeightTable::effectiveObs does); without, pairs are
     * restricted to their direct chains. Odd defect counts add one
     * virtual boundary node as the highest index.
     */
    void
    build(const GlobalWeightTable &gwt,
          std::span<const uint32_t> defects, bool effective_weights)
    {
        const int w = static_cast<int>(defects.size());
        m_ = (w % 2 == 0) ? w : w + 1;
        virt_ = (w % 2 == 0) ? -1 : w;

        const size_t n = static_cast<size_t>(m_) * m_;
        weights_.assign(n, static_cast<int32_t>(kInfiniteTileWeight));
        obs_.assign(n, 0);

        // Boundary column: one GWT probe per defect, reused below.
        boundaryWeights_.resize(static_cast<size_t>(w));
        boundaryObs_.resize(static_cast<size_t>(w));
        for (int i = 0; i < w; i++) {
            const uint32_t d = defects[i];
            boundaryWeights_[i] = gwt.pairWeight(d, d);
            boundaryObs_[i] = gwt.pairObs(d, d);
        }

        for (int i = 0; i < w; i++) {
            for (int j = i + 1; j < w; j++) {
                const uint32_t a = defects[i], b = defects[j];
                uint32_t weight = gwt.pairWeight(a, b);
                uint64_t mask = gwt.pairObs(a, b);
                if (effective_weights) {
                    const uint32_t via = boundaryWeights_[i] +
                                         boundaryWeights_[j];
                    if (via < weight) {
                        weight = via;
                        mask = boundaryObs_[i] ^ boundaryObs_[j];
                    }
                }
                set(i, j, static_cast<int32_t>(weight), mask);
            }
            if (virt_ >= 0) {
                set(i, virt_,
                    static_cast<int32_t>(boundaryWeights_[i]),
                    boundaryObs_[i]);
            }
        }
    }

    /** Node count (defects, plus the virtual node when odd). */
    int nodes() const { return m_; }

    /** Virtual boundary node index, or -1 for even defect counts. */
    int virtualNode() const { return virt_; }

    /** Tile-domain weight of pair (i, j). */
    int32_t
    weightAt(int i, int j) const
    {
        return weights_[idx(i, j)];
    }

    /** Observable mask of pair (i, j)'s chosen chain. */
    uint64_t
    obsAt(int i, int j) const
    {
        return obs_[idx(i, j)];
    }

    /** Raw tile for the kernels (m x m row-major int32). */
    const int32_t *weights() const { return weights_.data(); }

    /** Map a kernel tile-domain sum back to addWeights() semantics. */
    static WeightSum
    toWeightSum(uint32_t tile_sum)
    {
        return tile_sum >= kInfiniteTileWeight ? kInfiniteWeightSum
                                               : tile_sum;
    }

  private:
    size_t
    idx(int i, int j) const
    {
        return static_cast<size_t>(i) * m_ + j;
    }

    void
    set(int i, int j, int32_t weight, uint64_t mask)
    {
        weights_[idx(i, j)] = weight;
        weights_[idx(j, i)] = weight;
        obs_[idx(i, j)] = mask;
        obs_[idx(j, i)] = mask;
    }

    int m_ = 0;
    int virt_ = -1;
    std::vector<int32_t> weights_;
    std::vector<uint64_t> obs_;
    std::vector<uint32_t> boundaryWeights_;
    std::vector<uint64_t> boundaryObs_;
};

} // namespace astrea

#endif // ASTREA_ASTREA_LWT_TILE_HH
