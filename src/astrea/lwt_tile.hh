/**
 * @file
 * Local Weight Table tile: the per-decode dense weight gather.
 *
 * The Global Weight Table is l x l over all detector positions; a
 * decode only ever touches the defects of one syndrome. The LWT tile
 * gathers that submatrix once per decode — quantized effective pair
 * weights and the matching observable masks — into a dense m x m tile
 * (m = defect count, plus one virtual boundary node for odd Hamming
 * weights), so candidate evaluation never touches the l x l table
 * again. The boundary column (each defect's weight/parity of matching
 * straight to the boundary) is read exactly once per defect and reused
 * for every effective-weight min — the old per-call
 * GlobalWeightTable::effectiveWeight() recomputed it for every pair
 * probe in the matcher inner loops.
 *
 * Weights are stored as int32 in the 16-bit tile domain consumed by
 * the SIMD kernels (simd_kernel.hh): finite quantized values pass
 * through unchanged (an 8-bit ceiling entry of 255 stays the finite
 * value 255, exactly as the scalar addWeights() hot path treated it),
 * and diagonal entries are kInfiniteTileWeight, which also satisfies
 * the kernels' "tile[0] is infinite" padding contract.
 *
 * Two consumers share one gather core (detail::gatherTile):
 *
 *  - LwtTile: one tile, the per-shot decode path.
 *  - LwtTileBlock: a structure-of-arrays bucket of up to kMaxLanes
 *    same-HW tiles laid out contiguously, filled lane after lane with
 *    the next shot's GWT rows prefetched while the current lane
 *    gathers. The wide decode path (AstreaDecoder::decodeShotsWide)
 *    fills a block per HW bucket and runs the matching kernel
 *    back-to-back over its lanes.
 *
 * Both live in DecodeScratch extension slots; build()/beginBucket()
 * reuse capacity, so a steady-state decode loop (or a whole
 * decodeBatch) performs no allocation after warm-up.
 */

#ifndef ASTREA_ASTREA_LWT_TILE_HH
#define ASTREA_ASTREA_LWT_TILE_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "astrea/simd_kernel.hh"
#include "common/logging.hh"
#include "common/weight.hh"
#include "graph/weight_table.hh"

namespace astrea
{

namespace detail
{

/**
 * Gather one defect set's dense weight/observable tile. weights/obs
 * point at an m x m destination; boundary_weights/boundary_obs at
 * w-entry scratch (w = defects.size(), m = w rounded up to even,
 * virt = w when odd else -1). With effective_weights, a pair's weight
 * is min(direct chain, both-to-boundary) and its observable mask
 * follows the same choice (direct wins ties, as
 * GlobalWeightTable::effectiveObs does). prefetch_next, when
 * non-empty, is the NEXT shot's defect set: its GWT boundary row is
 * prefetched up front so the following gather starts warm.
 *
 * With UpperOnly, only canonical (i, j) entries with i < j are
 * written — no mirror stores and no full-tile init beyond the
 * diagonal (kept infinite for the kernels' tile[0] padding contract).
 * Every entry the matching kernels and the wide verdict loop read is
 * a canonical pair (slot offsets and pairAt() are i < j), and the
 * pair and boundary loops below cover all of them; the mirrors only
 * exist for LwtTile's symmetric weightAt()/obsAt() accessors, so the
 * SoA block path skips them.
 *
 * wstride spreads WEIGHT entries: tile entry e lands at
 * weights[e * wstride] (obs stays dense at obs[e]). LwtTile passes 1;
 * LwtTileBlock passes kMaxLanes for its transposed small-bucket
 * layout, where entry e of lane l lives at block_base[e * kMaxLanes
 * + l] so the lane-major kernel reads consecutive lanes with plain
 * vector loads (simd_kernel.hh matchTileLanesT).
 */
template <bool UpperOnly>
inline void
gatherTile(const GlobalWeightTable &gwt,
           std::span<const uint32_t> defects, bool effective_weights,
           int m, int virt, int32_t *weights, size_t wstride,
           uint64_t *obs, uint32_t *boundary_weights,
           uint64_t *boundary_obs,
           std::span<const uint32_t> prefetch_next)
{
    const int w = static_cast<int>(defects.size());
    if (UpperOnly) {
        for (int i = 0; i < m; i++)
            weights[static_cast<size_t>(i) * (m + 1) * wstride] =
                static_cast<int32_t>(kInfiniteTileWeight);
    } else {
        const size_t n = static_cast<size_t>(m) * m;
        std::fill(weights, weights + n,
                  static_cast<int32_t>(kInfiniteTileWeight));
        std::fill(obs, obs + n, 0);
    }

    // Warm the next lane's GWT entries — boundary AND pair — while
    // this lane's (already prefetched) rows are gathered below. The
    // pair set is exactly what the next gather reads, so nearly all
    // of its scattered table misses overlap with this lane's work.
    for (size_t i = 0; i < prefetch_next.size(); i++) {
        gwt.prefetch(prefetch_next[i], prefetch_next[i]);
        for (size_t j = i + 1; j < prefetch_next.size(); j++)
            gwt.prefetch(prefetch_next[i], prefetch_next[j]);
    }

    // Boundary column: one GWT probe per defect, reused below.
    for (int i = 0; i < w; i++) {
        const uint32_t d = defects[i];
        boundary_weights[i] = gwt.pairWeight(d, d);
        boundary_obs[i] = gwt.pairObs(d, d);
    }

    const auto set = [&](int i, int j, int32_t weight,
                         uint64_t mask) {
        const size_t ij = static_cast<size_t>(i) * m + j;
        weights[ij * wstride] = weight;
        obs[ij] = mask;
        if (!UpperOnly) {
            const size_t ji = static_cast<size_t>(j) * m + i;
            weights[ji * wstride] = weight;
            obs[ji] = mask;
        }
    };

    for (int i = 0; i < w; i++) {
        for (int j = i + 1; j < w; j++) {
            const uint32_t a = defects[i], b = defects[j];
            uint32_t weight = gwt.pairWeight(a, b);
            uint64_t mask = gwt.pairObs(a, b);
            if (effective_weights) {
                const uint32_t via =
                    boundary_weights[i] + boundary_weights[j];
                if (via < weight) {
                    weight = via;
                    mask = boundary_obs[i] ^ boundary_obs[j];
                }
            }
            set(i, j, static_cast<int32_t>(weight), mask);
        }
        if (virt >= 0) {
            set(i, virt, static_cast<int32_t>(boundary_weights[i]),
                boundary_obs[i]);
        }
    }
}

} // namespace detail

/** Dense per-decode weight/observable tile over one defect set. */
class LwtTile
{
  public:
    /** Pre-size internal buffers for up to max_nodes nodes. */
    void
    reserve(int max_nodes)
    {
        const size_t n =
            static_cast<size_t>(max_nodes) * max_nodes;
        weights_.reserve(n);
        obs_.reserve(n);
        boundaryWeights_.reserve(static_cast<size_t>(max_nodes));
        boundaryObs_.reserve(static_cast<size_t>(max_nodes));
    }

    /**
     * Gather the tile for one defect set (see detail::gatherTile for
     * the weight semantics). Odd defect counts add one virtual
     * boundary node as the highest index.
     */
    void
    build(const GlobalWeightTable &gwt,
          std::span<const uint32_t> defects, bool effective_weights)
    {
        const int w = static_cast<int>(defects.size());
        m_ = (w % 2 == 0) ? w : w + 1;
        virt_ = (w % 2 == 0) ? -1 : w;

        weights_.resize(static_cast<size_t>(m_) * m_);
        obs_.resize(static_cast<size_t>(m_) * m_);
        boundaryWeights_.resize(static_cast<size_t>(w));
        boundaryObs_.resize(static_cast<size_t>(w));
        detail::gatherTile<false>(gwt, defects, effective_weights,
                                  m_, virt_, weights_.data(), 1,
                                  obs_.data(),
                                  boundaryWeights_.data(),
                                  boundaryObs_.data(), {});
    }

    /** Node count (defects, plus the virtual node when odd). */
    int nodes() const { return m_; }

    /** Virtual boundary node index, or -1 for even defect counts. */
    int virtualNode() const { return virt_; }

    /** Tile-domain weight of pair (i, j). */
    int32_t
    weightAt(int i, int j) const
    {
        return weights_[idx(i, j)];
    }

    /** Observable mask of pair (i, j)'s chosen chain. */
    uint64_t
    obsAt(int i, int j) const
    {
        return obs_[idx(i, j)];
    }

    /** Raw tile for the kernels (m x m row-major int32). */
    const int32_t *weights() const { return weights_.data(); }

    /** Map a kernel tile-domain sum back to addWeights() semantics. */
    static WeightSum
    toWeightSum(uint32_t tile_sum)
    {
        return tile_sum >= kInfiniteTileWeight ? kInfiniteWeightSum
                                               : tile_sum;
    }

  private:
    size_t
    idx(int i, int j) const
    {
        return static_cast<size_t>(i) * m_ + j;
    }

    int m_ = 0;
    int virt_ = -1;
    std::vector<int32_t> weights_;
    std::vector<uint64_t> obs_;
    std::vector<uint32_t> boundaryWeights_;
    std::vector<uint64_t> boundaryObs_;
};

/**
 * Structure-of-arrays bucket of same-HW weight tiles.
 *
 * A bucket holds up to kMaxLanes shots that share one Hamming weight,
 * hence one tile geometry (nodes, virtual column). Weight storage has
 * two layouts, chosen per bucket:
 *
 *  - transposed (m <= laneMajorMaxNodes(kind) for the matching
 *    kernel — every exhaustive size on the vector tiers): entry-major
 *    — tile entry e of lane l lives at weights_[e * kMaxLanes + l],
 *    so the lane-major kernel (matchTileLanesT) reads 8 / 16
 *    consecutive lanes of one entry with a single vector load, no
 *    gathers;
 *  - lane-contiguous (larger m on the scalar tier): lane l's m x m
 *    weights start at l * m * m, and matching falls back to the
 *    row-major kernel per lane (matchTileLanes), whose contiguous
 *    reads the scalar loop prefers for big tables.
 *
 * Observable masks are always lane-contiguous — the verdict loop
 * reads only the winning row's few pairs per lane.
 */
class LwtTileBlock
{
  public:
    /** Lanes per bucket: two AVX-512 iterations of shots. */
    static constexpr int kMaxLanes = 32;
    /** Largest tile geometry (HW <= 10 always gathers <= 10 nodes). */
    static constexpr int kMaxNodes = 12;

    /** Pre-size for kMaxLanes tiles of up to max_nodes nodes. */
    void
    reserve(int max_nodes)
    {
        const size_t n = static_cast<size_t>(kMaxLanes) * max_nodes *
                         max_nodes;
        weights_.reserve(n);
        obs_.reserve(n);
    }

    /**
     * Start a bucket of `hw`-defect shots: fixes the tile geometry
     * and resets the lane count. Lane storage is resized (up only —
     * capacity persists) to kMaxLanes tiles. `kind` is the kernel
     * that will match the bucket — it selects the weight layout
     * (laneMajorMaxNodes()), never the results.
     */
    void
    beginBucket(int hw, KernelKind kind = KernelKind::kScalar)
    {
        ASTREA_CHECK(hw > 0 && hw <= kMaxNodes,
                     "tile bucket HW out of range");
        m_ = (hw % 2 == 0) ? hw : hw + 1;
        virt_ = (hw % 2 == 0) ? -1 : hw;
        laneStride_ = static_cast<size_t>(m_) * m_;
        transposed_ = m_ <= laneMajorMaxNodes(kind);
        lanes_ = 0;
        weights_.resize(static_cast<size_t>(kMaxLanes) * laneStride_);
        obs_.resize(static_cast<size_t>(kMaxLanes) * laneStride_);
    }

    /**
     * Gather one shot into the next lane; returns the lane index.
     * `next` is the following shot's defect set (empty at the bucket
     * tail) — its GWT rows are prefetched while this lane gathers.
     * defects.size() must match the bucket's HW.
     */
    int
    gatherLane(const GlobalWeightTable &gwt,
               std::span<const uint32_t> defects,
               std::span<const uint32_t> next, bool effective_weights)
    {
        ASTREA_CHECK(lanes_ < kMaxLanes, "tile bucket overflow");
        const int lane = lanes_++;
        int32_t *lane_weights =
            transposed_ ? weights_.data() + lane
                        : weights_.data() + lane * laneStride_;
        const size_t wstride =
            transposed_ ? static_cast<size_t>(kMaxLanes) : 1;
        detail::gatherTile<true>(gwt, defects, effective_weights, m_,
                                 virt_, lane_weights, wstride,
                                 obs_.data() + lane * laneStride_,
                                 boundaryWeights_, boundaryObs_,
                                 next);
        return lane;
    }

    /** Lanes gathered since beginBucket(). */
    int lanes() const { return lanes_; }

    /** Node count of every tile in the bucket. */
    int nodes() const { return m_; }

    /** Virtual boundary node index, or -1 for even HW buckets. */
    int virtualNode() const { return virt_; }

    /**
     * Lane `lane`'s raw tile (m x m row-major int32). Only valid for
     * lane-contiguous buckets (!transposed()).
     */
    const int32_t *
    laneWeights(int lane) const
    {
        ASTREA_CHECK(!transposed_,
                     "lane tiles are entry-major in this bucket");
        return weights_.data() + lane * laneStride_;
    }

    /** Base of the SoA tile storage (lane 0's first entry). */
    const int32_t *weightsData() const { return weights_.data(); }

    /** int32 entries between consecutive lanes' tiles (m x m). */
    size_t laneStride() const { return laneStride_; }

    /** True when this bucket stores weights entry-major. */
    bool transposed() const { return transposed_; }

    /** int32 entries between consecutive tile entries (transposed). */
    static constexpr size_t kEntryStride = kMaxLanes;

    /** Observable mask of pair (i, j) in lane `lane`'s tile. */
    uint64_t
    laneObs(int lane, int i, int j) const
    {
        return obs_[lane * laneStride_ +
                    static_cast<size_t>(i) * m_ + j];
    }

  private:
    int m_ = 0;
    int virt_ = -1;
    int lanes_ = 0;
    bool transposed_ = false;
    size_t laneStride_ = 0;
    std::vector<int32_t> weights_;
    std::vector<uint64_t> obs_;
    uint32_t boundaryWeights_[kMaxNodes] = {};
    uint64_t boundaryObs_[kMaxNodes] = {};
};

} // namespace astrea

#endif // ASTREA_ASTREA_LWT_TILE_HH
