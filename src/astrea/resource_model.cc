#include "astrea/resource_model.hh"

#include "surface_code/memory_circuit.hh"

namespace astrea
{

namespace
{

// ZU9EG-class device budgets (Zynq UltraScale+, ZCU102 board).
constexpr double kDeviceLuts = 274080.0;
constexpr double kDeviceFfs = 548160.0;
constexpr double kDeviceBramBits = 32.1e6;

/** Bytes of one pre-matching entry: mask + weight + score fields. */
size_t
prematchEntryBytes(uint32_t max_hw)
{
    size_t mask_bytes = (max_hw + 7) / 8;
    // Cumulative weight (2B), matched-bit count (1B), observable
    // parity (1B).
    return mask_bytes + 4;
}

} // namespace

AstreaGSram
astreaGSram(uint32_t distance, uint32_t max_hw,
            const AstreaGConfig &config)
{
    AstreaGSram s;
    const uint32_t l = syndromeVectorLength(distance, distance);

    // GWT: l x l 8-bit weights (paper: 36 KB at d = 7, 156 KB at d = 9).
    s.gwtBytes = static_cast<size_t>(l) * l;

    // LWT: per-defect candidate lists; provisioned as a fixed 512 B
    // block (max_hw nodes x 16 candidate slots x 1 B), as in the paper.
    s.lwtBytes = 512;

    // Priority queues: F queues x E entries, plus per-queue head/tail
    // state; candidate pair ids add 2 B per entry.
    const size_t entry = prematchEntryBytes(max_hw) +
                         2 * static_cast<size_t>(config.fetchWidth);
    s.priorityQueueBytes = static_cast<size_t>(config.fetchWidth) *
                               config.queueCapacity * entry * 16 +
                           config.fetchWidth * 8;

    // Pipeline latches: Fetch/Sort/Commit stage registers, one
    // pre-matching plus a candidate row (max_hw weights) per stage.
    s.pipelineLatchBytes =
        3 * (prematchEntryBytes(max_hw) + max_hw) * 32;

    // MWPM register: the best matching seen (max_hw/2 pairs x 2 node
    // ids) plus its weight.
    s.mwpmRegisterBytes = max_hw + 4;

    (void)distance;
    return s;
}

FpgaUtilization
astreaUtilization(uint32_t distance)
{
    FpgaUtilization u;
    const uint32_t l = syndromeVectorLength(distance, distance);

    // Adder/comparator network: 30 8-bit adders plus a 15-way
    // comparator tree (~14 8-bit comparators), the pre-match
    // sequencers, and the weight-array muxing; ~90 LUTs per 8-bit
    // arithmetic unit once routing is included.
    double luts = (30.0 + 14.0) * 90.0 + 11000.0;
    double ffs = 30.0 * 16.0 + 4200.0;
    double bram_bits = static_cast<double>(l) * l * 8.0;

    u.lutPercent = 100.0 * luts / kDeviceLuts;
    u.ffPercent = 100.0 * ffs / kDeviceFfs;
    u.bramPercent = 100.0 * bram_bits / kDeviceBramBits;
    return u;
}

FpgaUtilization
astreaGUtilization(uint32_t distance, uint32_t max_hw,
                   const AstreaGConfig &config)
{
    FpgaUtilization u;
    AstreaGSram sram = astreaGSram(distance, max_hw, config);

    // Astrea-G adds the pipeline (sorters, queue management, scoring
    // dividers) on top of Astrea's matcher.
    double luts = (30.0 + 14.0) * 90.0 +
                  config.fetchWidth * (max_hw * 140.0 + 9000.0) +
                  24000.0;
    double ffs = 3.0 * (prematchEntryBytes(max_hw) + max_hw) * 8.0 *
                     32.0 +
                 config.fetchWidth * 2600.0 + 8000.0;
    double bram_bits = static_cast<double>(sram.totalBytes()) * 8.0;

    u.lutPercent = 100.0 * luts / kDeviceLuts;
    u.ffPercent = 100.0 * ffs / kDeviceFfs;
    u.bramPercent = 100.0 * bram_bits / kDeviceBramBits;
    (void)distance;
    return u;
}

} // namespace astrea
