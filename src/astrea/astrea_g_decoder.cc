#include "astrea/astrea_g_decoder.hh"

#include <algorithm>
#include <cmath>

#include "astrea/lwt_tile.hh"
#include "astrea/matching_tables.hh"
#include "common/logging.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/decode_trace.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

namespace
{

/** One pre-matching flowing through the pipeline. */
struct Prematch
{
    uint64_t mask = 0;        ///< Matched node bits.
    WeightSum weight = 0;     ///< Cumulative quantized weight (s).
    uint64_t obsMask = 0;
    uint32_t matchedCount = 0; ///< Matched bits (b).
    /** Next candidate row to fetch for this pre-matching's extension
     *  bit (continuation cursor; see AstreaGConfig::
     *  requeueContinuations). */
    uint32_t nextCandidate = 0;
    /** Committed pairs, tracked only under recordMatching (empty —
     *  and cheap to copy — otherwise). */
    std::vector<std::pair<int, int>> pairs;
};

/**
 * Priority-queue ordering by score s/b, compared cross-multiplied so
 * no division is needed (matching the hardware's comparator).
 */
bool
scoreLess(const Prematch &a, const Prematch &b)
{
    uint64_t lhs = static_cast<uint64_t>(a.weight) * b.matchedCount;
    uint64_t rhs = static_cast<uint64_t>(b.weight) * a.matchedCount;
    if (lhs != rhs)
        return lhs < rhs;
    // Tie-break: prefer deeper pre-matchings, then lighter ones.
    if (a.matchedCount != b.matchedCount)
        return a.matchedCount > b.matchedCount;
    return a.weight < b.weight;
}

/** Fixed-capacity priority queue modeled as a small sorted buffer. */
class PrematchQueue
{
  public:
    PrematchQueue() = default;
    explicit PrematchQueue(uint32_t capacity) : capacity_(capacity) {}

    /** Empty the queue and (re)program its capacity, keeping the
     *  entry buffer's storage for reuse across decodes. */
    void
    reset(uint32_t capacity)
    {
        capacity_ = capacity;
        entries_.clear();
    }

    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }

    /** Insert; evicts the worst-scored entry when over capacity. */
    void
    push(const Prematch &p)
    {
        entries_.push_back(p);
        if (entries_.size() > capacity_) {
            auto worst = std::max_element(entries_.begin(),
                                          entries_.end(), scoreLess);
            entries_.erase(worst);
        }
    }

    /** Remove and return the best-scored entry. */
    Prematch
    pop()
    {
        auto best = std::min_element(entries_.begin(), entries_.end(),
                                     scoreLess);
        Prematch p = *best;
        entries_.erase(best);
        return p;
    }

  private:
    uint32_t capacity_ = 1;
    std::vector<Prematch> entries_;
};

/** Per-scratch reusable buffers for the matching pipeline. */
struct AstreaGScratch : DecodeScratch::Ext
{
    /** The per-decode dense weight/obs gather. */
    LwtTile tile;
    /** Local Weight Table rows (cleared, not freed, between shots). */
    std::vector<std::vector<std::pair<WeightSum, int>>> lwt;
    /** The F pre-matching priority queues. */
    std::vector<PrematchQueue> queues;
    /** Unmatched node ids for the HW6 tail. */
    std::vector<int> rem;
    /** Pair list of the best complete matching (recordMatching). */
    std::vector<std::pair<int, int>> bestPairs;
    /** Batch shots bound for the exhaustive delegate's wide path. */
    std::vector<uint32_t> wideShots;
};

} // namespace

double
estimateLogicalErrorRate(uint32_t distance, double p)
{
    // Sub-threshold scaling with p_th ~ 5.7e-3 under this circuit-
    // level noise model; A fitted to the measured d = 3..7 LERs.
    const double p_th = 5.7e-3;
    double exponent = static_cast<double>(distance + 1) / 2.0;
    return 0.03 * std::pow(p / p_th, exponent);
}

double
defaultWeightThreshold(uint32_t distance, double p)
{
    double ler = estimateLogicalErrorRate(distance, p);
    double wth = -std::log10(0.01 * ler);
    return std::clamp(wth, 4.0, 24.0);
}

AstreaGDecoder::AstreaGDecoder(const GlobalWeightTable &gwt,
                               AstreaGConfig config)
    : gwt_(gwt), config_(config),
      exhaustive_(gwt, AstreaConfig{config.exhaustiveMaxHw})
{
    ASTREA_CHECK(config_.fetchWidth >= 1 && config_.queueCapacity >= 1,
                 "invalid Astrea-G configuration");
    if (config_.weightThresholdDecades <= 0.0) {
        // Unresolved "auto" threshold: fall back to the paper's d = 7,
        // p = 1e-3 setting (use astreaGFactory for regime-aware
        // resolution).
        config_.weightThresholdDecades = 7.0;
    }
}

void
AstreaGDecoder::describeConfig(telemetry::JsonWriter &w) const
{
    w.kv("fetch_width", uint64_t{config_.fetchWidth});
    w.kv("queue_capacity", uint64_t{config_.queueCapacity});
    w.kv("weight_threshold_decades", config_.weightThresholdDecades);
    w.kv("cycle_budget", config_.cycleBudget);
    w.kv("exhaustive_max_hw", uint64_t{config_.exhaustiveMaxHw});
    w.kv("max_defects", uint64_t{config_.maxDefects});
    w.kv("requeue_continuations", config_.requeueContinuations);
}

std::vector<uint32_t>
AstreaGDecoder::survivingPairCounts(
    const std::vector<uint32_t> &defects) const
{
    const WeightSum wth =
        decadesToQuantized(config_.weightThresholdDecades);
    std::vector<uint32_t> counts(defects.size(), 0);
    for (size_t i = 0; i < defects.size(); i++) {
        for (size_t j = 0; j < defects.size(); j++) {
            if (i == j)
                continue;
            if (gwt_.effectiveWeight(defects[i], defects[j]) <= wth)
                counts[i]++;
        }
    }
    return counts;
}

void
AstreaGDecoder::decodeInto(std::span<const uint32_t> defects,
                           DecodeResult &out, DecodeScratch &scratch)
{
    ASTREA_SPAN("astrea_g.decode");
    stats_.decodes++;
    ASTREA_COUNTER_INC("astrea_g.decodes");
    const uint32_t w = static_cast<uint32_t>(defects.size());
    if (w <= config_.exhaustiveMaxHw) {
        // The exhaustive delegate keeps its own DecodeScratch::Ext
        // slot in the same scratch, so this path stays allocation-free.
        exhaustive_.decodeInto(defects, out, scratch);
        return;
    }
    out.reset();
    if (w > config_.maxDefects) {
        stats_.gaveUps++;
        ASTREA_COUNTER_INC("astrea_g.gave_ups");
        ASTREA_HIST_ADD("astrea_g.give_up_hw", w);
        out.gaveUp = true;
        return;
    }
    stats_.pipelineDecodes++;
    ASTREA_COUNTER_INC("astrea_g.pipeline_decodes");
    decodePipeline(defects, out, scratch);
}

void
AstreaGDecoder::decodeBatch(const SyndromeBatch &batch,
                            std::vector<DecodeResult> &results,
                            DecodeScratch &scratch)
{
    if (results.size() < batch.size())
        results.resize(batch.size());
    AstreaGScratch &s = scratch.ext<AstreaGScratch>();
    s.wideShots.clear();
    for (size_t i = 0; i < batch.size(); i++) {
        if (batch.hw(i) <= config_.exhaustiveMaxHw) {
            s.wideShots.push_back(static_cast<uint32_t>(i));
            continue;
        }
        telemetry::traceShotBegin(static_cast<uint32_t>(i));
        decodeInto(batch.at(i), results[i], scratch);
    }
    if (s.wideShots.empty())
        return;
    // The bookkeeping decodeInto() performs before delegating, in
    // bulk; the delegate's own counters advance inside the wide path.
    // One span covers the whole wide segment rather than one per shot.
    ASTREA_SPAN("astrea_g.decode");
    stats_.decodes += s.wideShots.size();
    ASTREA_COUNTER_ADD("astrea_g.decodes",
                       static_cast<uint64_t>(s.wideShots.size()));
    exhaustive_.decodeShotsWide(batch, s.wideShots, results, scratch);
}

void
AstreaGDecoder::decodePipeline(std::span<const uint32_t> defects,
                               DecodeResult &result,
                               DecodeScratch &scratch)
{
    const uint32_t w = static_cast<uint32_t>(defects.size());
    const uint32_t F = config_.fetchWidth;

    // Hardware-counter attribution, sampled one decode in
    // ASTREA_PERF_STAGE_STRIDE (see perf_counters.hh).
    const bool psample = telemetry::perfSampleThisDecode();

    // One dense gather of the defect submatrix: effective pair weights
    // with the boundary column fetched once per defect (not once per
    // pair probe), plus the virtual boundary node for odd HW.
    AstreaGScratch &s = scratch.ext<AstreaGScratch>();
    {
        telemetry::PerfSection sec(telemetry::PerfStage::Gather, 1,
                                   psample);
        s.tile.build(gwt_, defects, /*effective_weights=*/true);
    }
    const int m = s.tile.nodes();
    const int virt = s.tile.virtualNode();

    auto weight = [&](int i, int j) -> WeightSum {
        return static_cast<WeightSum>(s.tile.weightAt(i, j));
    };
    auto obs = [&](int i, int j) -> uint64_t {
        return s.tile.obsAt(i, j);
    };

    // Local Weight Table: per node, the candidate pairs surviving the
    // Wth filter, sorted lightest first.
    const WeightSum wth =
        decadesToQuantized(config_.weightThresholdDecades);
    auto &lwt = s.lwt;
    if (lwt.size() < static_cast<size_t>(m))
        lwt.resize(static_cast<size_t>(m));
    for (int i = 0; i < m; i++)
        lwt[i].clear();
    uint64_t pairs_kept = 0, pairs_filtered = 0;
    {
        ASTREA_SPAN("astrea_g.lwt_filter");
        // Still the gather stage; shots = 0 so the decode itself is
        // only counted once (by the tile.build section above).
        telemetry::PerfSection sec(telemetry::PerfStage::Gather, 0,
                                   psample);
        for (int i = 0; i < m; i++) {
            for (int j = 0; j < m; j++) {
                if (i == j)
                    continue;
                WeightSum pw = weight(i, j);
                if (pw <= wth)
                    lwt[i].push_back({pw, j});
                else
                    pairs_filtered++;
            }
            pairs_kept += lwt[i].size();
            std::sort(lwt[i].begin(), lwt[i].end());
        }
    }
    stats_.lwtPairsKept += pairs_kept;
    stats_.lwtPairsFiltered += pairs_filtered;
    ASTREA_COUNTER_ADD("astrea_g.lwt_pairs_kept", pairs_kept);
    ASTREA_COUNTER_ADD("astrea_g.lwt_pairs_filtered", pairs_filtered);

    // The matching pipeline.
    auto &queues = s.queues;
    if (queues.size() < F)
        queues.resize(F);
    for (uint32_t f = 0; f < F; f++)
        queues[f].reset(config_.queueCapacity);
    queues[0].push(Prematch{});

    const uint64_t fixed_cycles = (w + 1) + 3;  // Transfer + fill/drain.
    const uint64_t max_iters = config_.cycleBudget > fixed_cycles
                                   ? config_.cycleBudget - fixed_cycles
                                   : 1;

    WeightSum best_weight = kInfiniteWeightSum;
    uint64_t best_obs = 0;
    bool found = false;
    const bool record_pairs = config_.recordMatching;
    auto &best_pairs = s.bestPairs;
    best_pairs.clear();

    const uint64_t full_mask =
        (m == 64) ? ~0ull : ((1ull << m) - 1);

    telemetry::ChromeTraceWriter *chrome =
        telemetry::globalChromeTraceFast();

    uint64_t iterations = 0;
    uint64_t requeues = 0;
    bool any_left = true;
    ASTREA_SPAN("astrea_g.pipeline_search");
    {
    telemetry::PerfSection msec(telemetry::PerfStage::Matching, 1,
                                psample);
    while (iterations < max_iters && any_left) {
        iterations++;
        any_left = false;
        for (uint32_t f = 0; f < F; f++) {
            if (queues[f].empty())
                continue;
            Prematch st = queues[f].pop();

            // Fetch: lowest-index unmatched defect.
            uint64_t unmatched = full_mask & ~st.mask;
            ASTREA_CHECK(unmatched != 0, "popped a complete pre-matching");
            int i = __builtin_ctzll(unmatched);

            // Sort + Commit: walk this defect's candidates lightest
            // first, committing up to F feasible extensions.
            uint32_t committed = 0;
            uint32_t cand = st.nextCandidate;
            for (; cand < lwt[i].size() && committed < F; cand++) {
                auto [pw, j] = lwt[i][cand];
                if (st.mask & (1ull << j))
                    continue;
                Prematch ns;
                ns.mask = st.mask | (1ull << i) | (1ull << j);
                ns.weight = addWeights(st.weight, pw);
                ns.obsMask = st.obsMask ^ obs(i, j);
                ns.matchedCount = st.matchedCount + 2;
                if (record_pairs) {
                    ns.pairs = st.pairs;
                    ns.pairs.push_back({i, j});
                }

                int remaining = m - static_cast<int>(ns.matchedCount);
                if (remaining == 6) {
                    // Finish exhaustively: one flat kernel pass over
                    // the 15-row table on a 6x6 sub-tile gathered from
                    // the LWT tile (the HW6 unit's schedule).
                    auto &rem = s.rem;
                    rem.clear();
                    uint64_t um = full_mask & ~ns.mask;
                    while (um) {
                        rem.push_back(__builtin_ctzll(um));
                        um &= um - 1;
                    }
                    stats_.hw6Invocations++;
                    ASTREA_COUNTER_INC("astrea_g.hw6_invocations");
                    const MatchingTable &table6 =
                        MatchingTable::forNodes(6);
                    KernelMatch tkm;
                    {
                        ASTREA_SPAN("astrea_g.hw6");
                        int32_t sub[6 * 6];
                        for (int a = 0; a < 36; a++)
                            sub[a] = static_cast<int32_t>(
                                kInfiniteTileWeight);
                        for (int a = 0; a < 6; a++)
                            for (int b = a + 1; b < 6; b++)
                                sub[a * 6 + b] =
                                    s.tile.weightAt(rem[a], rem[b]);
                        tkm = matchTile16(table6, sub, kernel_);
                    }
                    WeightSum total = addWeights(
                        ns.weight, LwtTile::toWeightSum(tkm.weight));
                    if (total < best_weight) {
                        best_weight = total;
                        uint64_t o = ns.obsMask;
                        for (int k = 0; k < 3; k++) {
                            auto [a, b] = table6.pairAt(tkm.row, k);
                            o ^= obs(rem[a], rem[b]);
                        }
                        best_obs = o;
                        found = true;
                        if (record_pairs) {
                            best_pairs = ns.pairs;
                            for (int k = 0; k < 3; k++) {
                                auto [a, b] =
                                    table6.pairAt(tkm.row, k);
                                best_pairs.push_back(
                                    {rem[a], rem[b]});
                            }
                        }
                    }
                } else {
                    queues[committed % F].push(ns);
                }
                committed++;
            }
            // Continuation: the pre-matching still has unexplored
            // candidates; re-queue it with the cursor advanced so the
            // search keeps widening until the queues or the budget
            // run out (this is what keeps the paper's pipeline busy
            // for hundreds of cycles on HHW syndromes).
            if (config_.requeueContinuations &&
                cand < lwt[i].size()) {
                Prematch cont = st;
                cont.nextCandidate = cand;
                queues[f].push(cont);
                requeues++;
            }
        }
        size_t occupancy = 0;
        for (uint32_t f = 0; f < F; f++) {
            occupancy += queues[f].size();
            if (!queues[f].empty())
                any_left = true;
        }
        stats_.maxQueueOccupancy =
            std::max<uint64_t>(stats_.maxQueueOccupancy, occupancy);
        if (chrome != nullptr) {
            chrome->counter("astrea_g.queue_occupancy",
                            static_cast<double>(occupancy));
            chrome->counter("astrea_g.requeues",
                            static_cast<double>(requeues));
        }
    }
    }

    telemetry::PerfSection vsec(telemetry::PerfStage::Verdict, 1,
                                psample);
    if (any_left) {
        stats_.budgetExpirations++;
        ASTREA_COUNTER_INC("astrea_g.budget_expirations");
    } else {
        stats_.exhaustedSearches++;
        ASTREA_COUNTER_INC("astrea_g.exhausted_searches");
    }
    stats_.requeues += requeues;
    ASTREA_COUNTER_ADD("astrea_g.requeues", requeues);
    ASTREA_GAUGE_MAX("astrea_g.max_queue_occupancy",
                     static_cast<int64_t>(stats_.maxQueueOccupancy));
    ASTREA_HIST_ADD("astrea_g.pipeline_iterations",
                    static_cast<size_t>(iterations));

    result.cycles = fixed_cycles + iterations;
    result.latencyNs = cyclesToNs(result.cycles);
    if (!found) {
        stats_.gaveUps++;
        ASTREA_COUNTER_INC("astrea_g.gave_ups");
        ASTREA_HIST_ADD("astrea_g.give_up_hw", w);
        result.gaveUp = true;
        return;
    }
    result.obsMask = best_obs;
    result.matchingWeight =
        static_cast<double>(best_weight) / kWeightScale;
    if (record_pairs) {
        result.matchedPairs.reserve(best_pairs.size());
        for (auto [i, j] : best_pairs) {
            // Same convention as the exhaustive path: the virtual
            // boundary node maps to -1 and sorts second.
            int32_t a = (i == virt) ? -1 : static_cast<int32_t>(i);
            int32_t b = (j == virt) ? -1 : static_cast<int32_t>(j);
            if (a < 0)
                std::swap(a, b);
            result.matchedPairs.push_back({a, b});
        }
    }
}

} // namespace astrea
