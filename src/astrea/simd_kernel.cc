#include "astrea/simd_kernel.hh"

#include <atomic>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ASTREA_KERNEL_X86 1
#else
#define ASTREA_KERNEL_X86 0
#endif

namespace astrea
{

namespace
{

/** Test-only ceiling on what cpuHas*() may report (3 = no cap). */
std::atomic<int> g_cpu_cap{3};

} // namespace

bool
cpuHasAvx2()
{
#if ASTREA_KERNEL_X86
    if (g_cpu_cap.load(std::memory_order_relaxed) < 2)
        return false;
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if ASTREA_KERNEL_X86
    if (g_cpu_cap.load(std::memory_order_relaxed) < 3)
        return false;
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0;
#else
    return false;
#endif
}

void
setCpuKernelCapForTest(KernelKind max_kind)
{
    g_cpu_cap.store(static_cast<int>(max_kind) + 1,
                    std::memory_order_relaxed);
}

namespace
{

/** 0 = unresolved, 1 = scalar, 2 = avx2, 3 = avx512. */
std::atomic<int> g_active_kind{0};

int
bestSupportedKind()
{
    if (cpuHasAvx512())
        return 3;
    if (cpuHasAvx2())
        return 2;
    return 1;
}

int
resolveKind()
{
    const int best = bestSupportedKind();

    // ASTREA_FORCE_KERNEL pins a tier by name and takes priority over
    // the legacy boolean knob. An unsupported tier warns and falls
    // back to the best the CPU offers; an unknown name warns and
    // leaves the automatic choice in place.
    const std::string force =
        env::getString("ASTREA_FORCE_KERNEL", "");
    if (!force.empty()) {
        int want = 0;
        if (force == "scalar")
            want = 1;
        else if (force == "avx2")
            want = 2;
        else if (force == "avx512")
            want = 3;

        if (want == 0) {
            warn("ASTREA_FORCE_KERNEL=" + force +
                 ": unknown kernel tier (expected scalar, avx2 or "
                 "avx512); using automatic dispatch");
        } else if (want > best) {
            warn("ASTREA_FORCE_KERNEL=" + force +
                 ": tier unsupported on this CPU; falling back to " +
                 std::string(kernelKindName(
                     static_cast<KernelKind>(best - 1))));
            return best;
        } else {
            return want;
        }
    }

    if (env::getBool("ASTREA_FORCE_SCALAR", false))
        return 1;
    return best;
}

} // namespace

KernelKind
activeKernelKind()
{
    int kind = g_active_kind.load(std::memory_order_relaxed);
    if (kind == 0) {
        kind = resolveKind();
        g_active_kind.store(kind, std::memory_order_relaxed);
    }
    return static_cast<KernelKind>(kind - 1);
}

const char *
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::kAvx512:
        return "avx512";
      case KernelKind::kAvx2:
        return "avx2";
      default:
        return "scalar";
    }
}

void
resetKernelDispatchForTest()
{
    g_active_kind.store(0, std::memory_order_relaxed);
}

namespace
{

/**
 * Portable fallback, unrolled over the pair-slot count. Sums are
 * accumulated in 32 bits and clamped to the 16-bit ceiling, which is
 * arithmetically identical to per-step 16-bit saturating adds for
 * non-negative addends.
 */
template <int P>
KernelMatch
scalarEval16(const MatchingTable &table, const int32_t *tile)
{
    const uint32_t rows = table.rows();
    const int32_t *off[P];
    for (int p = 0; p < P; p++)
        off[p] = table.slotOffsets(p);

    KernelMatch best;
    for (uint32_t r = 0; r < rows; r++) {
        uint32_t sum = static_cast<uint32_t>(tile[off[0][r]]);
        for (int p = 1; p < P; p++)
            sum += static_cast<uint32_t>(tile[off[p][r]]);
        if (sum > kInfiniteTileWeight)
            sum = kInfiniteTileWeight;
        if (sum < best.weight) {
            best.weight = sum;
            best.row = r;
        }
    }
    return best;
}

KernelMatch
scalarEval16Dispatch(const MatchingTable &table, const int32_t *tile)
{
    switch (table.pairsPerRow()) {
      case 1:
        return scalarEval16<1>(table, tile);
      case 2:
        return scalarEval16<2>(table, tile);
      case 3:
        return scalarEval16<3>(table, tile);
      case 4:
        return scalarEval16<4>(table, tile);
      case 5:
        return scalarEval16<5>(table, tile);
      default:
        panic("matching table wider than 5 pair slots");
    }
}

#if ASTREA_KERNEL_X86

/**
 * AVX2 path: 16 candidate rows per iteration. Each pair slot is one
 * gather stream (two 8-lane 32-bit gathers) packed down to unsigned
 * 16-bit with saturation, accumulated with 16-bit saturating adds, and
 * reduced with a vectorized running min + first-argmin. The loop
 * rounds the real row count up to 16 itself (offset arrays are padded
 * to kRowPadding = 32 for the AVX-512 kernel, but reading the full
 * padded tail here would waste an iteration on the small tables);
 * padded rows resolve to tile[0], which the tile contract keeps
 * infinite.
 */
__attribute__((target("avx2"))) KernelMatch
avx2Eval16(const MatchingTable &table, const int32_t *tile)
{
    const uint32_t rows16 = (table.rows() + 15u) & ~15u;
    const int pairs_per_row = table.pairsPerRow();

    const __m256i sign = _mm256_set1_epi16(
        static_cast<short>(0x8000));
    const __m256i step = _mm256_set1_epi16(16);
    __m256i vmin = _mm256_set1_epi16(-1);  // 0xFFFF in every lane.
    __m256i vmin_idx = _mm256_setzero_si256();
    __m256i vidx = _mm256_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                     11, 12, 13, 14, 15);

    for (uint32_t r = 0; r < rows16; r += 16) {
        __m256i sums = _mm256_setzero_si256();
        for (int p = 0; p < pairs_per_row; p++) {
            const int32_t *off = table.slotOffsets(p) + r;
            __m256i idx_lo = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(off));
            __m256i idx_hi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(off + 8));
            __m256i g_lo =
                _mm256_i32gather_epi32(tile, idx_lo, 4);
            __m256i g_hi =
                _mm256_i32gather_epi32(tile, idx_hi, 4);
            // packus saturates int32 -> uint16 and interleaves the two
            // 128-bit lanes; the permute restores row order.
            __m256i packed = _mm256_permute4x64_epi64(
                _mm256_packus_epi32(g_lo, g_hi), 0xD8);
            sums = (p == 0) ? packed
                            : _mm256_adds_epu16(sums, packed);
        }
        // Strict unsigned less-than via the sign-bias trick; strictness
        // keeps the FIRST row attaining each lane minimum, matching
        // the scalar kernel's tie-breaking.
        __m256i lt = _mm256_cmpgt_epi16(
            _mm256_xor_si256(vmin, sign),
            _mm256_xor_si256(sums, sign));
        vmin = _mm256_min_epu16(vmin, sums);
        vmin_idx = _mm256_blendv_epi8(vmin_idx, vidx, lt);
        vidx = _mm256_add_epi16(vidx, step);
    }

    // Horizontal reduction: lane l holds the first row ≡ l (mod 16)
    // attaining its lane minimum, so the global first minimum is the
    // smallest stored row among lanes at the global minimum value.
    alignas(32) uint16_t mins[16];
    alignas(32) uint16_t idxs[16];
    _mm256_store_si256(reinterpret_cast<__m256i *>(mins), vmin);
    _mm256_store_si256(reinterpret_cast<__m256i *>(idxs), vmin_idx);

    KernelMatch best;
    bool found = false;
    for (int l = 0; l < 16; l++) {
        const uint32_t v = mins[l];
        if (v >= kInfiniteTileWeight)
            continue;
        if (!found || v < best.weight ||
            (v == best.weight && idxs[l] < best.row)) {
            best.weight = v;
            best.row = idxs[l];
            found = true;
        }
    }
    return best;
}

/**
 * AVX-512 path: 32 candidate rows per iteration — the full padded
 * stride, so the HW-10 table's 945 rows take 30 iterations instead of
 * the AVX2 path's 60. The structure mirrors avx2Eval16 lane-for-lane:
 * two 16-lane 32-bit gathers per pair slot packed down to unsigned
 * 16-bit (packus interleaves 128-bit sublanes; the qword permute
 * restores row order), saturating 16-bit accumulation, and a running
 * min + first-argmin kept strict through mask compares. Row indices
 * stay in 16 bits (945 padded to 960 < 65536).
 */
__attribute__((target("avx512f,avx512bw"))) KernelMatch
avx512Eval16(const MatchingTable &table, const int32_t *tile)
{
    const uint32_t rows_padded = table.rowsPadded();
    const int pairs_per_row = table.pairsPerRow();

    const __m512i step = _mm512_set1_epi16(32);
    // packus(lo, hi) emits, per 128-bit sublane k, lo's dwords k*4..
    // k*4+3 then hi's; this qword shuffle restores 0..31 row order.
    const __m512i unshuffle =
        _mm512_setr_epi64(0, 2, 4, 6, 1, 3, 5, 7);
    __m512i vmin = _mm512_set1_epi16(-1);  // 0xFFFF in every lane.
    __m512i vmin_idx = _mm512_setzero_si512();
    __m512i vidx = _mm512_setr_epi32(
        0x00010000, 0x00030002, 0x00050004, 0x00070006, 0x00090008,
        0x000B000A, 0x000D000C, 0x000F000E, 0x00110010, 0x00130012,
        0x00150014, 0x00170016, 0x00190018, 0x001B001A, 0x001D001C,
        0x001F001E);  // uint16 lanes 0..31.

    for (uint32_t r = 0; r < rows_padded; r += 32) {
        __m512i sums = _mm512_setzero_si512();
        for (int p = 0; p < pairs_per_row; p++) {
            const int32_t *off = table.slotOffsets(p) + r;
            __m512i idx_lo = _mm512_loadu_si512(off);
            __m512i idx_hi = _mm512_loadu_si512(off + 16);
            __m512i g_lo = _mm512_i32gather_epi32(idx_lo, tile, 4);
            __m512i g_hi = _mm512_i32gather_epi32(idx_hi, tile, 4);
            __m512i packed = _mm512_permutexvar_epi64(
                unshuffle, _mm512_packus_epi32(g_lo, g_hi));
            sums = (p == 0) ? packed
                            : _mm512_adds_epu16(sums, packed);
        }
        // Strict less-than keeps the FIRST row attaining each lane
        // minimum, matching the scalar kernel's tie-breaking.
        const __mmask32 lt =
            _mm512_cmplt_epu16_mask(sums, vmin);
        vmin = _mm512_min_epu16(vmin, sums);
        vmin_idx = _mm512_mask_blend_epi16(lt, vmin_idx, vidx);
        vidx = _mm512_add_epi16(vidx, step);
    }

    // Horizontal reduction: lane l holds the first row ≡ l (mod 32)
    // attaining its lane minimum.
    alignas(64) uint16_t mins[32];
    alignas(64) uint16_t idxs[32];
    _mm512_store_si512(mins, vmin);
    _mm512_store_si512(idxs, vmin_idx);

    KernelMatch best;
    bool found = false;
    for (int l = 0; l < 32; l++) {
        const uint32_t v = mins[l];
        if (v >= kInfiniteTileWeight)
            continue;
        if (!found || v < best.weight ||
            (v == best.weight && idxs[l] < best.row)) {
            best.weight = v;
            best.row = idxs[l];
            found = true;
        }
    }
    return best;
}

/**
 * Lane-major AVX2 bucket kernel over a transposed (entry-major) SoA
 * block: entry e of 8 consecutive lanes is one unaligned vector load
 * at tiles_t + e * entry_stride + l0 — no gathers anywhere. Sums
 * accumulate in 32 bits and clamp to the 16-bit ceiling —
 * arithmetically identical to the row-major kernels' saturating adds
 * for non-negative addends — and the running min / argmin stays
 * vertical (one slot per lane), so there is no horizontal reduction
 * and no padded-row work at all. Candidates and the running best are
 * both <= 0xFFFF, so the signed strict-less compare is exact and,
 * over ascending rows, keeps the first minimum like the scalar loop.
 * Dead lanes past the bucket hold stale storage; their results are
 * computed (integer ops never trap) and never stored to out.
 */
__attribute__((target("avx2"))) void
avx2EvalLanesT(const MatchingTable &table, const int32_t *tiles_t,
               uint32_t lanes, size_t entry_stride, KernelMatch *out)
{
    const uint32_t rows = table.rows();
    const int pairs = table.pairsPerRow();
    const __m256i vinf =
        _mm256_set1_epi32(static_cast<int>(kInfiniteTileWeight));
    const int32_t *off[5] = {};
    for (int p = 0; p < pairs; p++)
        off[p] = table.slotOffsets(p);

    for (uint32_t l0 = 0; l0 < lanes; l0 += 8) {
        const int32_t *base = tiles_t + l0;
        __m256i vbest = vinf;
        __m256i vrow = _mm256_setzero_si256();
        for (uint32_t r = 0; r < rows; r++) {
            __m256i sum = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(
                    base + static_cast<size_t>(off[0][r]) *
                               entry_stride));
            for (int p = 1; p < pairs; p++)
                sum = _mm256_add_epi32(
                    sum, _mm256_loadu_si256(
                             reinterpret_cast<const __m256i *>(
                                 base +
                                 static_cast<size_t>(off[p][r]) *
                                     entry_stride)));
            const __m256i cand = _mm256_min_epu32(sum, vinf);
            const __m256i lt = _mm256_cmpgt_epi32(vbest, cand);
            vbest = _mm256_min_epu32(vbest, cand);
            vrow = _mm256_blendv_epi8(
                vrow, _mm256_set1_epi32(static_cast<int>(r)), lt);
        }

        alignas(32) int32_t bw[8];
        alignas(32) int32_t br[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(bw), vbest);
        _mm256_store_si256(reinterpret_cast<__m256i *>(br), vrow);
        const uint32_t n = lanes - l0 < 8 ? lanes - l0 : 8;
        for (uint32_t k = 0; k < n; k++) {
            out[l0 + k].weight = static_cast<uint32_t>(bw[k]);
            out[l0 + k].row = static_cast<uint32_t>(br[k]);
        }
    }
}

/**
 * Lane-major AVX-512 transposed bucket kernel: 16 lanes per load,
 * mirroring avx2EvalLanesT. Only avx512f is needed — the whole pass
 * stays in the 32-bit integer domain.
 */
__attribute__((target("avx512f"))) void
avx512EvalLanesT(const MatchingTable &table, const int32_t *tiles_t,
                 uint32_t lanes, size_t entry_stride,
                 KernelMatch *out)
{
    const uint32_t rows = table.rows();
    const int pairs = table.pairsPerRow();
    const __m512i vinf =
        _mm512_set1_epi32(static_cast<int>(kInfiniteTileWeight));
    const int32_t *off[5] = {};
    for (int p = 0; p < pairs; p++)
        off[p] = table.slotOffsets(p);

    for (uint32_t l0 = 0; l0 < lanes; l0 += 16) {
        const int32_t *base = tiles_t + l0;
        __m512i vbest = vinf;
        __m512i vrow = _mm512_setzero_si512();
        for (uint32_t r = 0; r < rows; r++) {
            __m512i sum = _mm512_loadu_si512(
                base + static_cast<size_t>(off[0][r]) * entry_stride);
            for (int p = 1; p < pairs; p++)
                sum = _mm512_add_epi32(
                    sum,
                    _mm512_loadu_si512(
                        base + static_cast<size_t>(off[p][r]) *
                                   entry_stride));
            const __m512i cand = _mm512_min_epu32(sum, vinf);
            const __mmask16 lt = _mm512_cmplt_epu32_mask(cand, vbest);
            vbest = _mm512_min_epu32(vbest, cand);
            vrow = _mm512_mask_blend_epi32(
                lt, vrow, _mm512_set1_epi32(static_cast<int>(r)));
        }

        alignas(64) int32_t bw[16];
        alignas(64) int32_t br[16];
        _mm512_store_si512(bw, vbest);
        _mm512_store_si512(br, vrow);
        const uint32_t n = lanes - l0 < 16 ? lanes - l0 : 16;
        for (uint32_t k = 0; k < n; k++) {
            out[l0 + k].weight = static_cast<uint32_t>(bw[k]);
            out[l0 + k].row = static_cast<uint32_t>(br[k]);
        }
    }
}

#endif // ASTREA_KERNEL_X86

/** Portable transposed evaluation: per-lane scalarEval16 semantics. */
template <int P>
void
scalarEvalLanesT(const MatchingTable &table, const int32_t *tiles_t,
                 uint32_t lanes, size_t entry_stride,
                 KernelMatch *out)
{
    const uint32_t rows = table.rows();
    const int32_t *off[P];
    for (int p = 0; p < P; p++)
        off[p] = table.slotOffsets(p);

    for (uint32_t l = 0; l < lanes; l++) {
        const int32_t *base = tiles_t + l;
        KernelMatch best;
        for (uint32_t r = 0; r < rows; r++) {
            uint32_t sum = static_cast<uint32_t>(
                base[static_cast<size_t>(off[0][r]) * entry_stride]);
            for (int p = 1; p < P; p++)
                sum += static_cast<uint32_t>(
                    base[static_cast<size_t>(off[p][r]) *
                         entry_stride]);
            if (sum > kInfiniteTileWeight)
                sum = kInfiniteTileWeight;
            if (sum < best.weight) {
                best.weight = sum;
                best.row = r;
            }
        }
        out[l] = best;
    }
}

void
scalarEvalLanesTDispatch(const MatchingTable &table,
                         const int32_t *tiles_t, uint32_t lanes,
                         size_t entry_stride, KernelMatch *out)
{
    switch (table.pairsPerRow()) {
      case 1:
        return scalarEvalLanesT<1>(table, tiles_t, lanes,
                                   entry_stride, out);
      case 2:
        return scalarEvalLanesT<2>(table, tiles_t, lanes,
                                   entry_stride, out);
      case 3:
        return scalarEvalLanesT<3>(table, tiles_t, lanes,
                                   entry_stride, out);
      case 4:
        return scalarEvalLanesT<4>(table, tiles_t, lanes,
                                   entry_stride, out);
      case 5:
        return scalarEvalLanesT<5>(table, tiles_t, lanes,
                                   entry_stride, out);
      default:
        panic("matching table wider than 5 pair slots");
    }
}

} // namespace

KernelMatch
matchTile16(const MatchingTable &table, const int32_t *tile,
            KernelKind kind)
{
#if ASTREA_KERNEL_X86
    if (kind == KernelKind::kAvx512)
        return avx512Eval16(table, tile);
    if (kind == KernelKind::kAvx2)
        return avx2Eval16(table, tile);
#else
    (void)kind;
#endif
    return scalarEval16Dispatch(table, tile);
}

void
matchTileLanes(const MatchingTable &table, const int32_t *tiles,
               uint32_t lanes, size_t lane_stride, KernelMatch *out,
               KernelKind kind)
{
    for (uint32_t l = 0; l < lanes; l++)
        out[l] = matchTile16(table, tiles + l * lane_stride, kind);
}

void
matchTileLanesT(const MatchingTable &table, const int32_t *tiles_t,
                uint32_t lanes, size_t entry_stride, KernelMatch *out,
                KernelKind kind)
{
#if ASTREA_KERNEL_X86
    if (kind == KernelKind::kAvx512) {
        avx512EvalLanesT(table, tiles_t, lanes, entry_stride, out);
        return;
    }
    if (kind == KernelKind::kAvx2) {
        avx2EvalLanesT(table, tiles_t, lanes, entry_stride, out);
        return;
    }
#else
    (void)kind;
#endif
    scalarEvalLanesTDispatch(table, tiles_t, lanes, entry_stride,
                             out);
}

namespace
{

template <int P>
KernelMatch
scalarEval32(const MatchingTable &table, const WeightSum *tile)
{
    const uint32_t rows = table.rows();
    const int32_t *off[P];
    for (int p = 0; p < P; p++)
        off[p] = table.slotOffsets(p);

    KernelMatch best;
    best.weight = kInfiniteWeightSum;
    for (uint32_t r = 0; r < rows; r++) {
        WeightSum sum = tile[off[0][r]];
        for (int p = 1; p < P; p++)
            sum = addWeights(sum, tile[off[p][r]]);
        if (sum < best.weight) {
            best.weight = sum;
            best.row = r;
        }
    }
    return best;
}

#if ASTREA_KERNEL_X86

/**
 * AVX-512 full-width evaluation: 16 candidate rows per iteration over
 * a WeightSum tile with addWeights() semantics (kInfiniteWeightSum
 * poisons any sum crossing it; finite adds are plain wrapping uint32,
 * exactly as the scalar helper computes them). Gathers are masked to
 * the real row count so callers that only initialize i < j entries
 * (the HW6 unit model's stack tile) never have garbage read.
 */
__attribute__((target("avx512f"))) KernelMatch
avx512Eval32(const MatchingTable &table, const WeightSum *tile)
{
    const uint32_t rows = table.rows();
    const int pairs_per_row = table.pairsPerRow();

    const __m512i vinf = _mm512_set1_epi32(
        static_cast<int>(kInfiniteWeightSum));
    const __m512i step = _mm512_set1_epi32(16);
    __m512i vmin = vinf;
    __m512i vmin_idx = _mm512_setzero_si512();
    __m512i vidx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                     11, 12, 13, 14, 15);

    for (uint32_t r = 0; r < rows; r += 16) {
        const __mmask16 live =
            rows - r >= 16
                ? static_cast<__mmask16>(0xFFFF)
                : static_cast<__mmask16>((1u << (rows - r)) - 1u);
        __m512i sums = vinf;
        __mmask16 poisoned = 0;
        for (int p = 0; p < pairs_per_row; p++) {
            const int32_t *off = table.slotOffsets(p) + r;
            const __m512i idx = _mm512_loadu_si512(off);
            const __m512i g = _mm512_mask_i32gather_epi32(
                vinf, live, idx,
                reinterpret_cast<const int *>(tile), 4);
            poisoned = static_cast<__mmask16>(
                poisoned | _mm512_cmpeq_epi32_mask(g, vinf));
            sums = (p == 0) ? g : _mm512_add_epi32(sums, g);
        }
        // addWeights(): any infinite addend makes the sum infinite.
        sums = _mm512_mask_mov_epi32(
            sums, static_cast<__mmask16>(poisoned | ~live), vinf);
        // Strict unsigned less-than keeps the FIRST row per lane.
        const __mmask16 lt = _mm512_cmplt_epu32_mask(sums, vmin);
        vmin = _mm512_min_epu32(vmin, sums);
        vmin_idx = _mm512_mask_blend_epi32(lt, vmin_idx, vidx);
        vidx = _mm512_add_epi32(vidx, step);
    }

    alignas(64) uint32_t mins[16];
    alignas(64) uint32_t idxs[16];
    _mm512_store_si512(mins, vmin);
    _mm512_store_si512(idxs, vmin_idx);

    KernelMatch best;
    best.weight = kInfiniteWeightSum;
    bool found = false;
    for (int l = 0; l < 16; l++) {
        const uint32_t v = mins[l];
        if (v == kInfiniteWeightSum)
            continue;
        if (!found || v < best.weight ||
            (v == best.weight && idxs[l] < best.row)) {
            best.weight = v;
            best.row = idxs[l];
            found = true;
        }
    }
    return best;
}

#endif // ASTREA_KERNEL_X86

} // namespace

KernelMatch
matchTile32(const MatchingTable &table, const WeightSum *tile,
            KernelKind kind)
{
#if ASTREA_KERNEL_X86
    if (kind == KernelKind::kAvx512)
        return avx512Eval32(table, tile);
#else
    (void)kind;
#endif
    switch (table.pairsPerRow()) {
      case 1:
        return scalarEval32<1>(table, tile);
      case 2:
        return scalarEval32<2>(table, tile);
      case 3:
        return scalarEval32<3>(table, tile);
      case 4:
        return scalarEval32<4>(table, tile);
      case 5:
        return scalarEval32<5>(table, tile);
      default:
        panic("matching table wider than 5 pair slots");
    }
}

} // namespace astrea
