#include "astrea/simd_kernel.hh"

#include <atomic>

#include "common/env.hh"
#include "common/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ASTREA_KERNEL_X86 1
#else
#define ASTREA_KERNEL_X86 0
#endif

namespace astrea
{

bool
cpuHasAvx2()
{
#if ASTREA_KERNEL_X86
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

namespace
{

/** 0 = unresolved, 1 = scalar, 2 = avx2. */
std::atomic<int> g_active_kind{0};

int
resolveKind()
{
    const bool force_scalar =
        env::getBool("ASTREA_FORCE_SCALAR", false);
    return (!force_scalar && cpuHasAvx2()) ? 2 : 1;
}

} // namespace

KernelKind
activeKernelKind()
{
    int kind = g_active_kind.load(std::memory_order_relaxed);
    if (kind == 0) {
        kind = resolveKind();
        g_active_kind.store(kind, std::memory_order_relaxed);
    }
    return kind == 2 ? KernelKind::kAvx2 : KernelKind::kScalar;
}

const char *
kernelKindName(KernelKind kind)
{
    return kind == KernelKind::kAvx2 ? "avx2" : "scalar";
}

void
resetKernelDispatchForTest()
{
    g_active_kind.store(0, std::memory_order_relaxed);
}

namespace
{

/**
 * Portable fallback, unrolled over the pair-slot count. Sums are
 * accumulated in 32 bits and clamped to the 16-bit ceiling, which is
 * arithmetically identical to per-step 16-bit saturating adds for
 * non-negative addends.
 */
template <int P>
KernelMatch
scalarEval16(const MatchingTable &table, const int32_t *tile)
{
    const uint32_t rows = table.rows();
    const int32_t *off[P];
    for (int p = 0; p < P; p++)
        off[p] = table.slotOffsets(p);

    KernelMatch best;
    for (uint32_t r = 0; r < rows; r++) {
        uint32_t sum = static_cast<uint32_t>(tile[off[0][r]]);
        for (int p = 1; p < P; p++)
            sum += static_cast<uint32_t>(tile[off[p][r]]);
        if (sum > kInfiniteTileWeight)
            sum = kInfiniteTileWeight;
        if (sum < best.weight) {
            best.weight = sum;
            best.row = r;
        }
    }
    return best;
}

KernelMatch
scalarEval16Dispatch(const MatchingTable &table, const int32_t *tile)
{
    switch (table.pairsPerRow()) {
      case 1:
        return scalarEval16<1>(table, tile);
      case 2:
        return scalarEval16<2>(table, tile);
      case 3:
        return scalarEval16<3>(table, tile);
      case 4:
        return scalarEval16<4>(table, tile);
      case 5:
        return scalarEval16<5>(table, tile);
      default:
        panic("matching table wider than 5 pair slots");
    }
}

#if ASTREA_KERNEL_X86

/**
 * AVX2 path: 16 candidate rows per iteration. Each pair slot is one
 * gather stream (two 8-lane 32-bit gathers) packed down to unsigned
 * 16-bit with saturation, accumulated with 16-bit saturating adds, and
 * reduced with a vectorized running min + first-argmin. Padded rows
 * resolve to tile[0], which the tile contract keeps infinite.
 */
__attribute__((target("avx2"))) KernelMatch
avx2Eval16(const MatchingTable &table, const int32_t *tile)
{
    const uint32_t rows_padded = table.rowsPadded();
    const int pairs_per_row = table.pairsPerRow();

    const __m256i sign = _mm256_set1_epi16(
        static_cast<short>(0x8000));
    const __m256i step = _mm256_set1_epi16(16);
    __m256i vmin = _mm256_set1_epi16(-1);  // 0xFFFF in every lane.
    __m256i vmin_idx = _mm256_setzero_si256();
    __m256i vidx = _mm256_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                     11, 12, 13, 14, 15);

    for (uint32_t r = 0; r < rows_padded; r += 16) {
        __m256i sums = _mm256_setzero_si256();
        for (int p = 0; p < pairs_per_row; p++) {
            const int32_t *off = table.slotOffsets(p) + r;
            __m256i idx_lo = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(off));
            __m256i idx_hi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(off + 8));
            __m256i g_lo =
                _mm256_i32gather_epi32(tile, idx_lo, 4);
            __m256i g_hi =
                _mm256_i32gather_epi32(tile, idx_hi, 4);
            // packus saturates int32 -> uint16 and interleaves the two
            // 128-bit lanes; the permute restores row order.
            __m256i packed = _mm256_permute4x64_epi64(
                _mm256_packus_epi32(g_lo, g_hi), 0xD8);
            sums = (p == 0) ? packed
                            : _mm256_adds_epu16(sums, packed);
        }
        // Strict unsigned less-than via the sign-bias trick; strictness
        // keeps the FIRST row attaining each lane minimum, matching
        // the scalar kernel's tie-breaking.
        __m256i lt = _mm256_cmpgt_epi16(
            _mm256_xor_si256(vmin, sign),
            _mm256_xor_si256(sums, sign));
        vmin = _mm256_min_epu16(vmin, sums);
        vmin_idx = _mm256_blendv_epi8(vmin_idx, vidx, lt);
        vidx = _mm256_add_epi16(vidx, step);
    }

    // Horizontal reduction: lane l holds the first row ≡ l (mod 16)
    // attaining its lane minimum, so the global first minimum is the
    // smallest stored row among lanes at the global minimum value.
    alignas(32) uint16_t mins[16];
    alignas(32) uint16_t idxs[16];
    _mm256_store_si256(reinterpret_cast<__m256i *>(mins), vmin);
    _mm256_store_si256(reinterpret_cast<__m256i *>(idxs), vmin_idx);

    KernelMatch best;
    bool found = false;
    for (int l = 0; l < 16; l++) {
        const uint32_t v = mins[l];
        if (v >= kInfiniteTileWeight)
            continue;
        if (!found || v < best.weight ||
            (v == best.weight && idxs[l] < best.row)) {
            best.weight = v;
            best.row = idxs[l];
            found = true;
        }
    }
    return best;
}

#endif // ASTREA_KERNEL_X86

} // namespace

KernelMatch
matchTile16(const MatchingTable &table, const int32_t *tile,
            KernelKind kind)
{
#if ASTREA_KERNEL_X86
    if (kind == KernelKind::kAvx2)
        return avx2Eval16(table, tile);
#else
    (void)kind;
#endif
    return scalarEval16Dispatch(table, tile);
}

namespace
{

template <int P>
KernelMatch
scalarEval32(const MatchingTable &table, const WeightSum *tile)
{
    const uint32_t rows = table.rows();
    const int32_t *off[P];
    for (int p = 0; p < P; p++)
        off[p] = table.slotOffsets(p);

    KernelMatch best;
    best.weight = kInfiniteWeightSum;
    for (uint32_t r = 0; r < rows; r++) {
        WeightSum sum = tile[off[0][r]];
        for (int p = 1; p < P; p++)
            sum = addWeights(sum, tile[off[p][r]]);
        if (sum < best.weight) {
            best.weight = sum;
            best.row = r;
        }
    }
    return best;
}

} // namespace

KernelMatch
matchTile32(const MatchingTable &table, const WeightSum *tile)
{
    switch (table.pairsPerRow()) {
      case 1:
        return scalarEval32<1>(table, tile);
      case 2:
        return scalarEval32<2>(table, tile);
      case 3:
        return scalarEval32<3>(table, tile);
      case 4:
        return scalarEval32<4>(table, tile);
      case 5:
        return scalarEval32<5>(table, tile);
      default:
        panic("matching table wider than 5 pair slots");
    }
}

} // namespace astrea
