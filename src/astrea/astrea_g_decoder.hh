/**
 * @file
 * Astrea-G: greedy filtered MWPM search for high Hamming weights
 * (paper Secs. 6 and 7).
 *
 * Low-Hamming-weight syndromes (<= 10) take Astrea's exhaustive path.
 * Higher weights go through the matching pipeline:
 *
 *  1. The Local Weight Table is loaded with each defect's candidate
 *     pairs whose (quantized) weight is at or below the threshold Wth,
 *     sorted by weight — Insight #1: pairs much less likely than the
 *     logical error rate cannot appear in the MWPM.
 *  2. F priority queues hold up to E pre-matchings each, scored by
 *     s/b (cumulative weight over matched bits). Every cycle, each
 *     queue pops its best pre-matching, the lowest-index unmatched
 *     defect fetches its candidate pairs, and the F lightest feasible
 *     extensions are committed — Insight #2: search low weights first.
 *  3. When six defects remain, a flat kernel pass over the 15-row
 *     matching table (the HW6 unit's software analogue; see
 *     simd_kernel.hh) finishes the matching exhaustively and the MWPM
 *     register keeps the best complete matching seen.
 *
 * The pipeline reads all pair weights from a per-decode LwtTile gather:
 * the boundary column is fetched from the Global Weight Table once per
 * defect instead of once per effectiveWeight() probe, and the Wth
 * filter and search then run against the dense tile.
 *
 * The pipeline stops when the queues drain (search space exhausted) or
 * the real-time cycle budget (default 250 cycles = 1 us at 250 MHz)
 * expires; either way the MWPM register holds the answer.
 */

#ifndef ASTREA_ASTREA_ASTREA_G_DECODER_HH
#define ASTREA_ASTREA_ASTREA_G_DECODER_HH

#include "astrea/astrea_decoder.hh"
#include "astrea/simd_kernel.hh"
#include "decoders/decoder.hh"
#include "graph/weight_table.hh"

namespace astrea
{

/** Configuration of the Astrea-G microarchitecture. */
struct AstreaGConfig
{
    uint32_t fetchWidth = 2;     ///< F (paper default).
    uint32_t queueCapacity = 8;  ///< E (paper default).
    /**
     * Wth in decades (paper Sec. 7.3). The paper programs
     * Wth = -log10(0.01 * target LER), i.e. events 100x rarer than the
     * logical error rate are filtered; 0 means "resolve automatically
     * for the experiment's (d, p)" — see defaultWeightThreshold().
     * astreaGFactory() performs that resolution; direct constructions
     * with 0 fall back to 7.0 (the d = 7, p = 1e-3 value).
     */
    double weightThresholdDecades = 0.0;
    uint64_t cycleBudget = 250;      ///< 1 us at 250 MHz.
    uint32_t exhaustiveMaxHw = 10;   ///< Below this, Astrea's path.
    uint32_t maxDefects = 63;        ///< Pipeline mask capacity.
    /**
     * Re-queue a popped pre-matching when it still has unexplored
     * candidate pairs (with its candidate cursor advanced), instead of
     * dropping everything beyond the F committed extensions. Without
     * this the queues drain within tens of cycles and high-Hamming-
     * weight accuracy falls well short of the paper's (Fig. 14 reports
     * Astrea-G within 2.7x of MWPM at d = 9 with an *average* latency
     * of 450 ns — i.e. their pipeline keeps searching for ~100+
     * cycles, which only continuations explain). Default on; the
     * fetch/queue ablation bench covers the off setting.
     */
    bool requeueContinuations = true;
    /**
     * Track the pair list of the best complete matching through the
     * pipeline and report it in DecodeResult::matchedPairs (defect
     * indices, -1 = boundary), as the exhaustive path always does.
     * Off by default: pre-matchings are copied on every queue
     * push/pop, and dragging a vector through that hot path is pure
     * overhead for Monte-Carlo runs. The capture replayer turns it on
     * to show the chosen matching.
     */
    bool recordMatching = false;
};

/**
 * Rough logical error rate of MWPM-decoded memory experiments, from
 * the standard sub-threshold scaling LER ~ A (p/p_th)^((d+1)/2) fitted
 * to this simulator's measurements (and consistent with the paper's
 * Table 4 / Figs. 12, 14). Used only to program Wth.
 */
double estimateLogicalErrorRate(uint32_t distance, double p);

/** The paper's threshold rule: -log10(0.01 * LER(d, p)), clamped. */
double defaultWeightThreshold(uint32_t distance, double p);

/** Running counters for reporting. */
struct AstreaGStats
{
    uint64_t decodes = 0;
    uint64_t pipelineDecodes = 0;
    /** Pipeline runs whose queues drained (search exhausted). */
    uint64_t exhaustedSearches = 0;
    /** Pipeline runs stopped by the cycle budget. */
    uint64_t budgetExpirations = 0;
    /** Runs that produced no complete matching at all. */
    uint64_t gaveUps = 0;
    /** LWT candidate pairs at or below Wth (Fig. 10b numerator). */
    uint64_t lwtPairsKept = 0;
    /** LWT candidate pairs rejected by the Wth filter. */
    uint64_t lwtPairsFiltered = 0;
    /** Pre-matchings re-queued with an advanced candidate cursor. */
    uint64_t requeues = 0;
    /** HW6 exhaustive tail evaluations inside the pipeline. */
    uint64_t hw6Invocations = 0;
    /** Largest total priority-queue occupancy any cycle reached. */
    uint64_t maxQueueOccupancy = 0;
};

/** The Astrea-G greedy real-time decoder. */
class AstreaGDecoder : public Decoder
{
  public:
    explicit AstreaGDecoder(const GlobalWeightTable &gwt,
                            AstreaGConfig config = {});

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;

    /**
     * Batch decode: exhaustive-range shots (HW <= exhaustiveMaxHw —
     * the vast majority at the paper's error rates) are collected and
     * routed through the Astrea delegate's HW-bucketed wide path;
     * pipeline and give-up shots decode per shot in batch order.
     * Results are bit-identical to looping decodeInto().
     */
    void decodeBatch(const SyndromeBatch &batch,
                     std::vector<DecodeResult> &results,
                     DecodeScratch &scratch) override;

    std::string name() const override { return "Astrea-G"; }
    void describeConfig(telemetry::JsonWriter &w) const override;

    const AstreaGStats &stats() const { return stats_; }
    const AstreaGConfig &config() const { return config_; }

    /**
     * Candidate pairs per defect surviving the Wth filter, for one
     * syndrome (Fig. 10b's reduction metric).
     */
    std::vector<uint32_t> survivingPairCounts(
        const std::vector<uint32_t> &defects) const;

  private:
    void decodePipeline(std::span<const uint32_t> defects,
                        DecodeResult &out, DecodeScratch &scratch);

    const GlobalWeightTable &gwt_;
    AstreaGConfig config_;
    AstreaDecoder exhaustive_;
    AstreaGStats stats_;
    KernelKind kernel_ = activeKernelKind();
};

} // namespace astrea

#endif // ASTREA_ASTREA_ASTREA_G_DECODER_HH
