/**
 * @file
 * Precomputed flattened perfect-matching tables (paper Sec. 5.2.3).
 *
 * The HW6 unit hardwires its 15 six-node matchings into an adder
 * network; the software analogue is a once-built flat table of every
 * perfect matching of m nodes for each even m <= 10 (1 / 3 / 15 / 105 /
 * 945 rows of m/2 index pairs), generated from the canonical enumerator
 * and shared by every decoder instance in the process.
 *
 * Two layouts are kept side by side:
 *
 *  - row-major node pairs (pairAt) for reconstructing the winning
 *    matching after the kernel reduction, and
 *  - slot-major flat tile offsets (slotOffsets): for pair slot k,
 *    a contiguous array whose entry r is i*m + j for row r's k-th pair.
 *    Candidate evaluation over an m x m weight tile then needs no
 *    index arithmetic at all — each slot is one gather stream, which is
 *    what the AVX2 kernel in simd_kernel.cc consumes directly.
 *
 * Offset arrays are padded to a multiple of 32 rows — the widest
 * kernel stride (AVX-512 evaluates 32 candidate rows per iteration;
 * AVX2 reads 16-row blocks into the same padded tail). Padding entries
 * point at tile offset 0 (the (0,0) diagonal), which every kernel tile
 * is required to hold an infinite weight at, so padded lanes can never
 * win the min-reduction.
 */

#ifndef ASTREA_ASTREA_MATCHING_TABLES_HH
#define ASTREA_ASTREA_MATCHING_TABLES_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace astrea
{

/** Flat table of all perfect matchings of m nodes (even m <= 10). */
class MatchingTable
{
  public:
    /** Largest node count with a prebuilt table (945 rows). */
    static constexpr int kMaxNodes = 10;

    /** Rows are padded to this multiple for the SIMD kernels (the
     *  widest, AVX-512, consumes 32 offsets per iteration). */
    static constexpr uint32_t kRowPadding = 32;

    /**
     * The process-wide table for m nodes (m even, 2 <= m <= 10).
     * Built once on first use; the reference stays valid forever.
     */
    static const MatchingTable &forNodes(int m);

    int nodes() const { return m_; }
    int pairsPerRow() const { return m_ / 2; }

    /** Number of real candidate matchings: (m-1)!!. */
    uint32_t rows() const { return rows_; }

    /** rows() rounded up to a multiple of kRowPadding. */
    uint32_t rowsPadded() const { return rowsPadded_; }

    /**
     * Slot-major flat tile offsets: slotOffsets(k)[r] == i*m + j where
     * (i, j) is row r's k-th pair. rowsPadded() entries; the padding
     * tail is offset 0.
     */
    const int32_t *
    slotOffsets(int slot) const
    {
        return offsets_.data() +
               static_cast<size_t>(slot) * rowsPadded_;
    }

    /** Row r's k-th node pair (i < j). */
    std::pair<int, int>
    pairAt(uint32_t row, int slot) const
    {
        const uint8_t *p =
            pairs_.data() + static_cast<size_t>(row) * m_ + 2 * slot;
        return {p[0], p[1]};
    }

  private:
    explicit MatchingTable(int m);

    int m_;
    uint32_t rows_;
    uint32_t rowsPadded_;
    /** Slot-major tile offsets, padded (see slotOffsets). */
    std::vector<int32_t> offsets_;
    /** Row-major packed node pairs: m_ bytes per row. */
    std::vector<uint8_t> pairs_;
};

} // namespace astrea

#endif // ASTREA_ASTREA_MATCHING_TABLES_HH
