#include "graph/weight_table_io.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace astrea
{

namespace
{

constexpr char kMagic[4] = {'A', 'G', 'W', 'T'};
constexpr uint32_t kVersion = 1;

void
writeAll(std::FILE *f, const void *data, size_t bytes,
         const std::string &path)
{
    if (std::fwrite(data, 1, bytes, f) != bytes)
        fatal("short write to " + path);
}

void
readAll(std::FILE *f, void *data, size_t bytes, const std::string &path)
{
    if (std::fread(data, 1, bytes, f) != bytes)
        fatal("short read from " + path);
}

} // namespace

void
saveWeightTable(const GlobalWeightTable &gwt, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open " + path + " for writing");

    const uint32_t n = gwt.size();
    writeAll(f, kMagic, sizeof(kMagic), path);
    writeAll(f, &kVersion, sizeof(kVersion), path);
    writeAll(f, &n, sizeof(n), path);

    // Rows are written through the accessors so the on-disk layout is
    // decoupled from the in-memory one.
    std::vector<QWeight> qrow(n);
    std::vector<double> erow(n);
    std::vector<uint64_t> orow(n);
    for (uint32_t i = 0; i < n; i++) {
        for (uint32_t j = 0; j < n; j++)
            qrow[j] = gwt.pairWeight(i, j);
        writeAll(f, qrow.data(), n * sizeof(QWeight), path);
    }
    for (uint32_t i = 0; i < n; i++) {
        for (uint32_t j = 0; j < n; j++)
            orow[j] = gwt.pairObs(i, j);
        writeAll(f, orow.data(), n * sizeof(uint64_t), path);
    }
    for (uint32_t i = 0; i < n; i++) {
        for (uint32_t j = 0; j < n; j++)
            erow[j] = gwt.exactWeight(i, j);
        writeAll(f, erow.data(), n * sizeof(double), path);
    }
    if (std::fclose(f) != 0)
        fatal("error closing " + path);
}

GlobalWeightTable
loadWeightTable(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open " + path);

    char magic[4];
    uint32_t version = 0, n = 0;
    readAll(f, magic, sizeof(magic), path);
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        std::fclose(f);
        fatal(path + " is not a GWT image");
    }
    readAll(f, &version, sizeof(version), path);
    if (version != kVersion) {
        std::fclose(f);
        fatal("unsupported GWT image version in " + path);
    }
    readAll(f, &n, sizeof(n), path);
    if (n == 0 || n > 100000) {
        std::fclose(f);
        fatal("implausible GWT size in " + path);
    }

    const size_t total = static_cast<size_t>(n) * n;
    std::vector<QWeight> quantized(total);
    std::vector<uint64_t> obs(total);
    std::vector<double> exact(total);
    readAll(f, quantized.data(), total * sizeof(QWeight), path);
    readAll(f, obs.data(), total * sizeof(uint64_t), path);
    readAll(f, exact.data(), total * sizeof(double), path);
    std::fclose(f);

    return GlobalWeightTable(n, std::move(quantized), std::move(exact),
                             std::move(obs));
}

} // namespace astrea
