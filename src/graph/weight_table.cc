#include "graph/weight_table.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "graph/dijkstra.hh"

namespace astrea
{

GlobalWeightTable::GlobalWeightTable(const DecodingGraph &graph)
    : size_(graph.numNodes()),
      quantized_(static_cast<size_t>(graph.numNodes()) * graph.numNodes(),
                 kInfiniteWeight),
      exact_(static_cast<size_t>(graph.numNodes()) * graph.numNodes(),
             std::numeric_limits<double>::infinity()),
      obsMask_(static_cast<size_t>(graph.numNodes()) * graph.numNodes(), 0)
{
    // One Dijkstra per row; rows are independent, so shard over threads.
    parallelFor(size_, defaultWorkerCount(),
                [&](unsigned, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; i++) {
            auto src = static_cast<uint32_t>(i);
            ShortestPaths sp = dijkstraFrom(graph, src);
            for (uint32_t j = 0; j < size_; j++) {
                if (j == src)
                    continue;
                exact_[idx(src, j)] = sp.dist[j];
                quantized_[idx(src, j)] = std::isinf(sp.dist[j])
                                              ? kInfiniteWeight
                                              : quantizeWeight(sp.dist[j]);
                obsMask_[idx(src, j)] = sp.obsMask[j];
            }
            exact_[idx(src, src)] = sp.boundaryDist;
            quantized_[idx(src, src)] =
                std::isinf(sp.boundaryDist)
                    ? kInfiniteWeight
                    : quantizeWeight(sp.boundaryDist);
            obsMask_[idx(src, src)] = sp.boundaryObs;
        }
    });
}

GlobalWeightTable::GlobalWeightTable(uint32_t size,
                                     std::vector<QWeight> quantized,
                                     std::vector<double> exact,
                                     std::vector<uint64_t> obs_masks)
    : size_(size), quantized_(std::move(quantized)),
      exact_(std::move(exact)), obsMask_(std::move(obs_masks))
{
    const size_t expect = static_cast<size_t>(size) * size;
    ASTREA_CHECK(quantized_.size() == expect &&
                     exact_.size() == expect &&
                     obsMask_.size() == expect,
                 "weight table array sizes inconsistent");
}

double
GlobalWeightTable::exactEffectiveWeight(uint32_t i, uint32_t j) const
{
    double direct = exactWeight(i, j);
    double via_boundary = exactWeight(i, i) + exactWeight(j, j);
    return direct < via_boundary ? direct : via_boundary;
}

uint64_t
GlobalWeightTable::exactEffectiveObs(uint32_t i, uint32_t j) const
{
    double direct = exactWeight(i, j);
    double via_boundary = exactWeight(i, i) + exactWeight(j, j);
    if (direct <= via_boundary)
        return pairObs(i, j);
    return pairObs(i, i) ^ pairObs(j, j);
}

} // namespace astrea
