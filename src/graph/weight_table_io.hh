/**
 * @file
 * Global Weight Table serialization.
 *
 * The GWT is the decoder's only device-dependent state: it is computed
 * offline from calibration data and programmed into the FPGA's SRAM
 * (and re-programmed when error rates drift, paper Sec. 8.2). This
 * module provides the corresponding host-side workflow: a compact
 * binary image of the quantized weights, observable parities and exact
 * weights that can be written once and loaded by later runs without
 * re-running DEM extraction and all-pairs Dijkstra.
 *
 * Format (little-endian):
 *   magic "AGWT", u32 version, u32 size,
 *   size*size u8 quantized weights,
 *   size*size u64 observable masks,
 *   size*size f64 exact decade weights.
 */

#ifndef ASTREA_GRAPH_WEIGHT_TABLE_IO_HH
#define ASTREA_GRAPH_WEIGHT_TABLE_IO_HH

#include <string>

#include "graph/weight_table.hh"

namespace astrea
{

/** Write a GWT image; calls fatal() on I/O failure. */
void saveWeightTable(const GlobalWeightTable &gwt,
                     const std::string &path);

/** Load a GWT image; calls fatal() on malformed input. */
GlobalWeightTable loadWeightTable(const std::string &path);

} // namespace astrea

#endif // ASTREA_GRAPH_WEIGHT_TABLE_IO_HH
