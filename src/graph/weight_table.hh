/**
 * @file
 * Global Weight Table (paper Sec. 5.1).
 *
 * The GWT is an l x l matrix over the syndrome-vector positions
 * (l = (d+1)(d^2-1)/2 per basis). Entry (i, j) is the 8-bit quantized
 * weight of the most likely error chain flipping detectors i and j; the
 * diagonal entry (i, i) is the weight of matching i to the boundary.
 * Alongside each weight we keep the observable-flip parity of the
 * corresponding chain — applying a matching means XOR-ing the parities
 * of its pairs into the logical correction.
 *
 * The unquantized decade weights are retained for the idealized
 * software-MWPM baseline; the hardware decoders (Astrea, Astrea-G) read
 * only the quantized table, exactly as the FPGA design would.
 */

#ifndef ASTREA_GRAPH_WEIGHT_TABLE_HH
#define ASTREA_GRAPH_WEIGHT_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/weight.hh"
#include "graph/decoding_graph.hh"

namespace astrea
{

/** All-pairs matching weights for one decoding graph. */
class GlobalWeightTable
{
  public:
    /** Build by running Dijkstra from every detector node. */
    explicit GlobalWeightTable(const DecodingGraph &graph);

    /**
     * Rehydrate from raw arrays (deserialization; see
     * graph/weight_table_io.hh). All vectors must be size*size long.
     */
    GlobalWeightTable(uint32_t size, std::vector<QWeight> quantized,
                      std::vector<double> exact,
                      std::vector<uint64_t> obs_masks);

    /** Number of syndrome positions (detectors). */
    uint32_t size() const { return size_; }

    /** Quantized pair weight; diagonal = boundary weight. */
    QWeight
    pairWeight(uint32_t i, uint32_t j) const
    {
        return quantized_[idx(i, j)];
    }

    /** Observable mask of the minimum-weight chain for the pair. */
    uint64_t
    pairObs(uint32_t i, uint32_t j) const
    {
        return obsMask_[idx(i, j)];
    }

    /** Unquantized decade weight (idealized MWPM baseline, tests). */
    double
    exactWeight(uint32_t i, uint32_t j) const
    {
        return exact_[idx(i, j)];
    }

    /**
     * Effective pair weight for pairwise-only matchers: the cheaper of
     * matching i-j directly or sending both to the boundary.
     */
    WeightSum
    effectiveWeight(uint32_t i, uint32_t j) const
    {
        WeightSum direct = pairWeight(i, j);
        WeightSum via_boundary = addWeights(pairWeight(i, i),
                                            pairWeight(j, j));
        return direct < via_boundary ? direct : via_boundary;
    }

    /** Observable mask matching effectiveWeight()'s choice. */
    uint64_t
    effectiveObs(uint32_t i, uint32_t j) const
    {
        WeightSum direct = pairWeight(i, j);
        WeightSum via_boundary = addWeights(pairWeight(i, i),
                                            pairWeight(j, j));
        if (direct <= via_boundary)
            return pairObs(i, j);
        return pairObs(i, i) ^ pairObs(j, j);
    }

    /** Exact-weight analogue of effectiveWeight() (for the baseline). */
    double exactEffectiveWeight(uint32_t i, uint32_t j) const;
    uint64_t exactEffectiveObs(uint32_t i, uint32_t j) const;

    /**
     * Hint the cache that pairWeight(i, j)/pairObs(i, j) are about to
     * be read. The bucketed gather path prefetches the next shot's
     * rows while filling the current lane's tile — the GWT rows of
     * different shots share nothing, so without the hint every lane
     * change starts cold.
     */
    void
    prefetch(uint32_t i, uint32_t j) const
    {
        const size_t k = idx(i, j);
        __builtin_prefetch(quantized_.data() + k, 0, 1);
        __builtin_prefetch(obsMask_.data() + k, 0, 1);
    }

    /** Bytes of on-chip SRAM an l x l 8-bit GWT occupies (Table 6). */
    size_t sramBytes() const { return static_cast<size_t>(size_) * size_; }

  private:
    size_t
    idx(uint32_t i, uint32_t j) const
    {
        return static_cast<size_t>(i) * size_ + j;
    }

    uint32_t size_;
    std::vector<QWeight> quantized_;
    std::vector<double> exact_;
    std::vector<uint64_t> obsMask_;
};

} // namespace astrea

#endif // ASTREA_GRAPH_WEIGHT_TABLE_HH
