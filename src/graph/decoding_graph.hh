/**
 * @file
 * Decoding graph for one detector basis.
 *
 * Nodes are detectors; each error mechanism contributes an edge between
 * the (at most two) detectors it flips, or between one detector and the
 * virtual boundary. Edge weights are -log10(p/(1-p)) in decades, so the
 * weight of a path is (up to an additive constant common to all
 * matchings) the negative log-likelihood of that error chain; each edge
 * also records which logical observables the underlying error flips.
 */

#ifndef ASTREA_GRAPH_DECODING_GRAPH_HH
#define ASTREA_GRAPH_DECODING_GRAPH_HH

#include <cstdint>
#include <vector>

#include "dem/error_model.hh"

namespace astrea
{

/** Virtual boundary node id used in edge endpoints. */
constexpr uint32_t kBoundaryNode = 0xffffffffu;

/** One weighted edge of the decoding graph. */
struct GraphEdge
{
    uint32_t u;
    uint32_t v;  ///< kBoundaryNode for boundary edges.
    double probability;
    double weight;  ///< Decades: log10((1-p)/p).
    uint64_t obsMask;
};

/** Construction statistics, mainly for tests and sanity reporting. */
struct GraphBuildStats
{
    size_t mechanismsUsed = 0;
    /** Mechanisms flipping > 2 detectors, decomposed into edge chains. */
    size_t decomposedMechanisms = 0;
    /** Undetectable mechanisms that still flip an observable (a layout
     *  bug if nonzero for a distance >= 3 code). */
    size_t undetectableLogical = 0;
    /** Parallel edges whose observable masks disagreed; the heavier one
     *  was dropped. */
    size_t obsConflicts = 0;
};

/** Sparse weighted graph over detectors plus a boundary. */
class DecodingGraph
{
  public:
    explicit DecodingGraph(const ErrorModel &model);

    uint32_t numNodes() const { return numNodes_; }
    const std::vector<GraphEdge> &edges() const { return edges_; }
    const GraphBuildStats &stats() const { return stats_; }

    /** (edge index, other endpoint) pairs; boundary edges included with
     *  other == kBoundaryNode. */
    const std::vector<std::pair<uint32_t, uint32_t>> &
    neighbors(uint32_t node) const
    {
        return adjacency_[node];
    }

    /** Index of node's boundary edge, or -1 if it has none. */
    int32_t boundaryEdge(uint32_t node) const
    {
        return boundaryEdge_[node];
    }

  private:
    void addEdge(uint32_t u, uint32_t v, double probability,
                 uint64_t obs_mask);

    uint32_t numNodes_;
    std::vector<GraphEdge> edges_;
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adjacency_;
    std::vector<int32_t> boundaryEdge_;
    GraphBuildStats stats_;
};

} // namespace astrea

#endif // ASTREA_GRAPH_DECODING_GRAPH_HH
