/**
 * @file
 * Single-source shortest paths over the decoding graph.
 *
 * Matching weights between arbitrary detector pairs are the weights of
 * the most likely error chain connecting them: the shortest path in the
 * decoding graph under the decade weights. Paths never pass *through*
 * the boundary (two defects ending on the boundary are two separate
 * boundary matches, handled by the matchers), so Dijkstra runs over
 * detector nodes only and the boundary distance is computed as a final
 * relaxation over boundary edges.
 */

#ifndef ASTREA_GRAPH_DIJKSTRA_HH
#define ASTREA_GRAPH_DIJKSTRA_HH

#include <cstdint>
#include <vector>

#include "graph/decoding_graph.hh"

namespace astrea
{

/** Result of one single-source run. */
struct ShortestPaths
{
    /** Distance in decades to every detector node (inf if unreachable). */
    std::vector<double> dist;
    /** Observable mask XOR-ed along the shortest path to each node. */
    std::vector<uint64_t> obsMask;
    /** Best distance from the source to the boundary. */
    double boundaryDist;
    uint64_t boundaryObs;
};

/** Run Dijkstra from one detector node. */
ShortestPaths dijkstraFrom(const DecodingGraph &graph, uint32_t source);

} // namespace astrea

#endif // ASTREA_GRAPH_DIJKSTRA_HH
