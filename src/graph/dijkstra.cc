#include "graph/dijkstra.hh"

#include <limits>
#include <queue>

namespace astrea
{

ShortestPaths
dijkstraFrom(const DecodingGraph &graph, uint32_t source)
{
    const double inf = std::numeric_limits<double>::infinity();
    const uint32_t n = graph.numNodes();

    ShortestPaths sp;
    sp.dist.assign(n, inf);
    sp.obsMask.assign(n, 0);
    sp.boundaryDist = inf;
    sp.boundaryObs = 0;

    using Entry = std::pair<double, uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;

    sp.dist[source] = 0.0;
    pq.push({0.0, source});

    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > sp.dist[u])
            continue;
        for (auto [edge_idx, v] : graph.neighbors(u)) {
            const GraphEdge &e = graph.edges()[edge_idx];
            if (v == kBoundaryNode) {
                double nd = d + e.weight;
                if (nd < sp.boundaryDist) {
                    sp.boundaryDist = nd;
                    sp.boundaryObs = sp.obsMask[u] ^ e.obsMask;
                }
                continue;
            }
            double nd = d + e.weight;
            if (nd < sp.dist[v]) {
                sp.dist[v] = nd;
                sp.obsMask[v] = sp.obsMask[u] ^ e.obsMask;
                pq.push({nd, v});
            }
        }
    }
    return sp;
}

} // namespace astrea
