#include "graph/decoding_graph.hh"

#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/weight.hh"

namespace astrea
{

namespace
{

double
edgeWeightFromProb(double p)
{
    // log10((1-p)/p): additive along paths under the independent-edge
    // approximation, and ~ -log10(p) for the small p of interest.
    if (p <= 0.0)
        return std::numeric_limits<double>::infinity();
    if (p >= 0.5)
        return 0.0;
    return std::log10((1.0 - p) / p);
}

} // namespace

DecodingGraph::DecodingGraph(const ErrorModel &model)
    : numNodes_(model.numDetectors()),
      adjacency_(model.numDetectors()),
      boundaryEdge_(model.numDetectors(), -1)
{
    // First merge parallel mechanisms keyed by (endpoints, obs mask).
    std::map<std::tuple<uint32_t, uint32_t, uint64_t>, double> merged;

    auto accumulate = [&](uint32_t u, uint32_t v, uint64_t obs, double p) {
        if (u > v)
            std::swap(u, v);
        double &acc = merged[{u, v, obs}];
        acc = acc * (1.0 - p) + p * (1.0 - acc);
    };

    for (const auto &m : model.mechanisms()) {
        const auto &dets = m.detectors;
        if (dets.empty()) {
            if (m.observables)
                stats_.undetectableLogical++;
            continue;
        }
        stats_.mechanismsUsed++;
        if (dets.size() == 1) {
            accumulate(dets[0], kBoundaryNode, m.observables,
                       m.probability);
        } else if (dets.size() == 2) {
            accumulate(dets[0], dets[1], m.observables, m.probability);
        } else {
            // Non-graphlike mechanism: decompose into a chain of pairs,
            // attaching the observable effect to the first pair (the
            // XOR of the chain reproduces the symptom set).
            stats_.decomposedMechanisms++;
            for (size_t i = 0; i + 1 < dets.size(); i += 2) {
                accumulate(dets[i], dets[i + 1],
                           i == 0 ? m.observables : 0, m.probability);
            }
            if (dets.size() % 2 == 1) {
                accumulate(dets.back(), kBoundaryNode, 0, m.probability);
            }
        }
    }

    // Resolve parallel edges that differ only in observable mask: keep
    // the more probable one (they are physically distinct chains; the
    // decoder can only pick one, so we keep the likely one).
    std::map<std::pair<uint32_t, uint32_t>,
             std::pair<double, uint64_t>> best;
    for (const auto &[key, p] : merged) {
        auto [u, v, obs] = key;
        auto it = best.find({u, v});
        if (it == best.end()) {
            best[{u, v}] = {p, obs};
        } else {
            stats_.obsConflicts++;
            if (p > it->second.first)
                it->second = {p, obs};
        }
    }

    for (const auto &[uv, po] : best) {
        auto [u, v] = uv;
        auto [p, obs] = po;
        addEdge(u, v, p, obs);
    }
}

void
DecodingGraph::addEdge(uint32_t u, uint32_t v, double probability,
                       uint64_t obs_mask)
{
    ASTREA_CHECK(u < numNodes_, "edge endpoint out of range");
    uint32_t idx = static_cast<uint32_t>(edges_.size());
    edges_.push_back(
        {u, v, probability, edgeWeightFromProb(probability), obs_mask});
    adjacency_[u].push_back({idx, v});
    if (v == kBoundaryNode) {
        // Keep the lightest boundary edge as the node's boundary link.
        if (boundaryEdge_[u] < 0 ||
            edges_[boundaryEdge_[u]].weight > edges_[idx].weight) {
            boundaryEdge_[u] = static_cast<int32_t>(idx);
        }
    } else {
        ASTREA_CHECK(v < numNodes_, "edge endpoint out of range");
        adjacency_[v].push_back({idx, u});
    }
}

} // namespace astrea
