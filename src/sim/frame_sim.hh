/**
 * @file
 * Pauli-frame simulator.
 *
 * For stabilizer circuits whose detectors are deterministic in the
 * absence of noise (true of the memory experiments generated here), the
 * effect of Pauli noise is fully captured by tracking the Pauli frame —
 * the X/Z flip pattern relative to the noiseless execution — through the
 * Clifford operations. Detection events are the parities of the recorded
 * measurement flips. This is the same semantics as Stim's frame
 * simulator, specialized to the gate set in circuit/gate.hh.
 *
 * The simulator doubles as the propagation engine for detector-error-
 * model extraction: propagateInjection() pushes a single deterministic
 * Pauli fault through the (noiseless) remainder of the circuit and
 * reports which detectors and observables it flips.
 */

#ifndef ASTREA_SIM_FRAME_SIM_HH
#define ASTREA_SIM_FRAME_SIM_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "common/bitvec.hh"
#include "common/rng.hh"

namespace astrea
{

/** A Pauli applied to one qubit (for fault injection). */
struct PauliFlip
{
    uint32_t qubit;
    bool flipX;  ///< Has an X component (X or Y).
    bool flipZ;  ///< Has a Z component (Z or Y).
};

/** Monte-Carlo Pauli-frame sampler for one fixed circuit. */
class FrameSimulator
{
  public:
    explicit FrameSimulator(const Circuit &circuit);

    /**
     * Sample one shot with all noise channels active.
     *
     * @param rng Random stream for the error draws.
     * @param detectors Out: detection events (size numDetectors()).
     * @param observables Out: logical flips (size numObservables()).
     */
    void sample(Rng &rng, BitVec &detectors, BitVec &observables);

    /**
     * Noiseless propagation of one injected fault.
     *
     * The fault is applied just after instruction op_index executes
     * (i.e. where that instruction's noise would act); every noise
     * channel is otherwise disabled. Deterministic.
     *
     * @param op_index Index of the instruction the fault replaces.
     * @param flips Pauli components of the fault.
     * @param detectors Out: flipped detectors.
     * @param observables Out: flipped observables.
     */
    void propagateInjection(size_t op_index,
                            const std::vector<PauliFlip> &flips,
                            BitVec &detectors, BitVec &observables);

    /** One injected fault for propagateFaultSet(). */
    struct Fault
    {
        size_t opIndex;
        std::vector<PauliFlip> flips;
    };

    /**
     * Noiseless propagation of a set of injected faults, each applied
     * at its own instruction (the semi-analytic estimator's "exactly k
     * errors" shots). Faults must be sorted by opIndex.
     */
    void propagateFaultSet(const std::vector<Fault> &faults,
                           BitVec &detectors, BitVec &observables);

    const Circuit &circuit() const { return circuit_; }

  private:
    /**
     * Shared interpreter loop.
     *
     * @param rng Null for noiseless propagation.
     * @param start_op First instruction to execute.
     * @param faults Optional sorted fault list to apply along the way.
     */
    void run(Rng *rng, size_t start_op, BitVec &detectors,
             BitVec &observables,
             const std::vector<Fault> *faults = nullptr);

    void applyNoise(const Instruction &op, Rng &rng);

    const Circuit &circuit_;
    std::vector<uint8_t> xFlip_;
    std::vector<uint8_t> zFlip_;
    std::vector<uint8_t> measFlip_;
    /** Measurement-record index of the next M during a run. */
    uint32_t measCursor_ = 0;
    /**
     * Record index reached before each instruction, so injected runs can
     * start mid-circuit with the correct measurement cursor.
     */
    std::vector<uint32_t> measBase_;
};

} // namespace astrea

#endif // ASTREA_SIM_FRAME_SIM_HH
