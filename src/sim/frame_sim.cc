#include "sim/frame_sim.hh"

#include <cassert>

#include "common/logging.hh"

namespace astrea
{

FrameSimulator::FrameSimulator(const Circuit &circuit)
    : circuit_(circuit),
      xFlip_(circuit.numQubits(), 0),
      zFlip_(circuit.numQubits(), 0),
      measFlip_(circuit.numMeasurements(), 0)
{
    // Precompute the measurement-record offset at each instruction so
    // injected propagations can start mid-circuit.
    measBase_.reserve(circuit.instructions().size() + 1);
    uint32_t cursor = 0;
    for (const auto &op : circuit.instructions()) {
        measBase_.push_back(cursor);
        if (op.type == GateType::M || op.type == GateType::MR)
            cursor += static_cast<uint32_t>(op.targets.size());
    }
    measBase_.push_back(cursor);
}

void
FrameSimulator::sample(Rng &rng, BitVec &detectors, BitVec &observables)
{
    run(&rng, 0, detectors, observables);
}

void
FrameSimulator::propagateInjection(size_t op_index,
                                   const std::vector<PauliFlip> &flips,
                                   BitVec &detectors, BitVec &observables)
{
    ASTREA_CHECK(op_index < circuit_.instructions().size(),
                 "injection index out of range");
    // Reset state, apply the fault, then run noiselessly from the
    // instruction *after* the injected one (the injected instruction is
    // the noise channel itself, which has no other effect).
    for (auto &f : xFlip_)
        f = 0;
    for (auto &f : zFlip_)
        f = 0;
    for (auto &f : measFlip_)
        f = 0;
    for (const auto &pf : flips) {
        assert(pf.qubit < xFlip_.size());
        xFlip_[pf.qubit] ^= pf.flipX;
        zFlip_[pf.qubit] ^= pf.flipZ;
    }
    measCursor_ = measBase_[op_index + 1];
    run(nullptr, op_index + 1, detectors, observables);
}

void
FrameSimulator::propagateFaultSet(const std::vector<Fault> &faults,
                                  BitVec &detectors, BitVec &observables)
{
    for (size_t i = 1; i < faults.size(); i++) {
        ASTREA_CHECK(faults[i - 1].opIndex <= faults[i].opIndex,
                     "fault set must be sorted by instruction");
    }
    run(nullptr, 0, detectors, observables, &faults);
}

void
FrameSimulator::run(Rng *rng, size_t start_op, BitVec &detectors,
                    BitVec &observables,
                    const std::vector<Fault> *faults)
{
    if (start_op == 0) {
        for (auto &f : xFlip_)
            f = 0;
        for (auto &f : zFlip_)
            f = 0;
        for (auto &f : measFlip_)
            f = 0;
        measCursor_ = 0;
    }
    if (detectors.size() != circuit_.numDetectors())
        detectors = BitVec(circuit_.numDetectors());
    else
        detectors.clear();
    if (observables.size() != circuit_.numObservables())
        observables = BitVec(circuit_.numObservables());
    else
        observables.clear();

    uint32_t det_cursor = 0;
    const auto &ops = circuit_.instructions();
    // Detector instructions before start_op still need their indices
    // counted (their parity is zero since measFlip_ starts cleared, but
    // detector numbering must stay aligned).
    for (size_t i = 0; i < start_op; i++) {
        if (ops[i].type == GateType::Detector)
            det_cursor++;
    }

    size_t fault_cursor = 0;
    if (faults) {
        // Faults before start_op would be silently skipped; reject.
        ASTREA_CHECK(faults->empty() ||
                         (*faults)[0].opIndex >= start_op,
                     "fault precedes propagation start");
    }

    for (size_t i = start_op; i < ops.size(); i++) {
        const Instruction &op = ops[i];
        switch (op.type) {
          case GateType::R:
            for (auto q : op.targets) {
                xFlip_[q] = 0;
                zFlip_[q] = 0;
            }
            break;
          case GateType::M:
            for (auto q : op.targets)
                measFlip_[measCursor_++] = xFlip_[q];
            break;
          case GateType::MR:
            for (auto q : op.targets) {
                measFlip_[measCursor_++] = xFlip_[q];
                xFlip_[q] = 0;
                zFlip_[q] = 0;
            }
            break;
          case GateType::H:
            for (auto q : op.targets)
                std::swap(xFlip_[q], zFlip_[q]);
            break;
          case GateType::CX:
            for (size_t t = 0; t + 1 < op.targets.size(); t += 2) {
                uint32_t c = op.targets[t];
                uint32_t tq = op.targets[t + 1];
                xFlip_[tq] ^= xFlip_[c];
                zFlip_[c] ^= zFlip_[tq];
            }
            break;
          case GateType::XError:
          case GateType::ZError:
          case GateType::Depolarize1:
          case GateType::Depolarize2:
            if (rng)
                applyNoise(op, *rng);
            break;
          case GateType::Detector: {
            uint8_t parity = 0;
            for (auto m : op.targets)
                parity ^= measFlip_[m];
            if (parity)
                detectors.set(det_cursor);
            det_cursor++;
            break;
          }
          case GateType::ObservableInclude: {
            uint8_t parity = 0;
            for (auto m : op.targets)
                parity ^= measFlip_[m];
            if (parity)
                observables.flip(static_cast<size_t>(op.arg));
            break;
          }
          case GateType::Tick:
            break;
        }

        // Apply injected faults scheduled at this instruction (they
        // model the instruction's noise channel firing).
        if (faults) {
            while (fault_cursor < faults->size() &&
                   (*faults)[fault_cursor].opIndex == i) {
                for (const auto &pf : (*faults)[fault_cursor].flips) {
                    xFlip_[pf.qubit] ^= pf.flipX;
                    zFlip_[pf.qubit] ^= pf.flipZ;
                }
                fault_cursor++;
            }
        }
    }
}

void
FrameSimulator::applyNoise(const Instruction &op, Rng &rng)
{
    const double p = op.arg;
    switch (op.type) {
      case GateType::XError:
        for (auto q : op.targets) {
            if (rng.bernoulli(p))
                xFlip_[q] ^= 1;
        }
        break;
      case GateType::ZError:
        for (auto q : op.targets) {
            if (rng.bernoulli(p))
                zFlip_[q] ^= 1;
        }
        break;
      case GateType::Depolarize1:
        for (auto q : op.targets) {
            if (rng.bernoulli(p)) {
                // Uniform over {X, Y, Z}: 1 = X, 2 = Z, 3 = Y.
                uint64_t k = rng.uniformInt(3) + 1;
                if (k & 1)
                    xFlip_[q] ^= 1;
                if (k & 2)
                    zFlip_[q] ^= 1;
            }
        }
        break;
      case GateType::Depolarize2:
        for (size_t t = 0; t + 1 < op.targets.size(); t += 2) {
            if (rng.bernoulli(p)) {
                // Uniform over the 15 non-identity two-qubit Paulis:
                // encode as (p1, p2) in {0..3}^2 \ {(0,0)} with
                // bit 0 = X component, bit 1 = Z component.
                uint64_t k = rng.uniformInt(15) + 1;
                uint64_t p1 = k >> 2, p2 = k & 3;
                uint32_t q1 = op.targets[t], q2 = op.targets[t + 1];
                if (p1 & 1)
                    xFlip_[q1] ^= 1;
                if (p1 & 2)
                    zFlip_[q1] ^= 1;
                if (p2 & 1)
                    xFlip_[q2] ^= 1;
                if (p2 & 2)
                    zFlip_[q2] ^= 1;
            }
        }
        break;
      default:
        panic("applyNoise on non-noise instruction");
    }
}

} // namespace astrea
