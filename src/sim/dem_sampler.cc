#include "sim/dem_sampler.hh"

#include <map>

namespace astrea
{

DemSampler::DemSampler(const ErrorModel &model)
    : numDetectors_(model.numDetectors()),
      numObservables_(model.numObservables())
{
    const auto &mechs = model.mechanisms();

    detOffset_.reserve(mechs.size() + 1);
    detOffset_.push_back(0);
    obsMask_.reserve(mechs.size());
    for (const auto &m : mechs) {
        for (auto d : m.detectors)
            detFlat_.push_back(d);
        detOffset_.push_back(static_cast<uint32_t>(detFlat_.size()));
        obsMask_.push_back(m.observables);
    }

    std::map<double, std::vector<uint32_t>> by_prob;
    for (uint32_t i = 0; i < mechs.size(); i++)
        by_prob[mechs[i].probability].push_back(i);
    for (auto &[p, members] : by_prob)
        groups_.push_back({p, std::move(members)});
}

void
DemSampler::sample(Rng &rng, BitVec &detectors, BitVec &observables,
                   std::vector<uint32_t> *fired) const
{
    if (detectors.size() != numDetectors_)
        detectors = BitVec(numDetectors_);
    else
        detectors.clear();
    if (observables.size() != numObservables_)
        observables = BitVec(numObservables_);
    else
        observables.clear();
    if (fired)
        fired->clear();

    for (const auto &g : groups_) {
        uint64_t i = rng.geometricSkip(g.prob);
        while (i < g.members.size()) {
            uint32_t mech = g.members[i];
            for (uint32_t k = detOffset_[mech]; k < detOffset_[mech + 1];
                 k++) {
                detectors.flip(detFlat_[k]);
            }
            uint64_t mask = obsMask_[mech];
            while (mask) {
                int b = __builtin_ctzll(mask);
                observables.flip(static_cast<size_t>(b));
                mask &= mask - 1;
            }
            if (fired)
                fired->push_back(mech);
            uint64_t skip = rng.geometricSkip(g.prob);
            if (skip == ~0ull)
                break;
            i += skip + 1;
        }
    }
}

} // namespace astrea
