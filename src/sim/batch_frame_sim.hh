/**
 * @file
 * Bit-packed batch Pauli-frame simulator.
 *
 * Stim's core performance trick: since frame propagation is linear
 * over GF(2), 64 shots can share one pass through the circuit by
 * storing each qubit's X/Z flip as a 64-bit word (bit k = shot k).
 * Clifford gates become single word operations; only the noise
 * channels need per-shot randomness, and with error probabilities of
 * 1e-3 and below the per-word Bernoulli masks are sampled by geometric
 * skipping in O(#errors).
 *
 * This sampler is exact (no detector-error-model approximation), which
 * makes it the ground-truth engine for bulk statistics; the DEM
 * sampler remains the fastest option for decoder shot loops. The
 * microbenchmarks compare all three.
 */

#ifndef ASTREA_SIM_BATCH_FRAME_SIM_HH
#define ASTREA_SIM_BATCH_FRAME_SIM_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "common/rng.hh"

namespace astrea
{

/** 64-shot batched frame simulator. */
class BatchFrameSimulator
{
  public:
    /** Shots per batch (one bit per shot in every state word). */
    static constexpr uint32_t kBatch = 64;

    explicit BatchFrameSimulator(const Circuit &circuit);

    /**
     * Sample one 64-shot batch.
     *
     * @param rng Random stream.
     * @param detector_words Out, resized to numDetectors(): bit k of
     *        word d is shot k's detection event d.
     * @param observable_words Out, resized to numObservables().
     */
    void sampleBatch(Rng &rng, std::vector<uint64_t> &detector_words,
                     std::vector<uint64_t> &observable_words);

    /** Hamming weight of shot k's syndrome from a batch result. */
    static uint32_t shotWeight(const std::vector<uint64_t> &det_words,
                               uint32_t shot);

    /** Defect list of shot k from a batch result. */
    static std::vector<uint32_t> shotDefects(
        const std::vector<uint64_t> &det_words, uint32_t shot);

  private:
    /** Word with each bit set independently with probability p. */
    uint64_t bernoulliMask(Rng &rng, double p);

    const Circuit &circuit_;
    std::vector<uint64_t> xFlip_;
    std::vector<uint64_t> zFlip_;
    std::vector<uint64_t> measFlip_;
};

} // namespace astrea

#endif // ASTREA_SIM_BATCH_FRAME_SIM_HH
