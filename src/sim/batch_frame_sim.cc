#include "sim/batch_frame_sim.hh"

#include "common/logging.hh"

namespace astrea
{

BatchFrameSimulator::BatchFrameSimulator(const Circuit &circuit)
    : circuit_(circuit),
      xFlip_(circuit.numQubits(), 0),
      zFlip_(circuit.numQubits(), 0),
      measFlip_(circuit.numMeasurements(), 0)
{
}

uint64_t
BatchFrameSimulator::bernoulliMask(Rng &rng, double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return ~0ull;
    // Geometric skipping across the 64 bit positions: O(p * 64 + 1)
    // work per word instead of 64 uniform draws.
    uint64_t mask = 0;
    uint64_t pos = rng.geometricSkip(p);
    while (pos < 64) {
        mask |= (1ull << pos);
        uint64_t skip = rng.geometricSkip(p);
        if (skip == ~0ull)
            break;
        pos += skip + 1;
    }
    return mask;
}

void
BatchFrameSimulator::sampleBatch(Rng &rng,
                                 std::vector<uint64_t> &detector_words,
                                 std::vector<uint64_t> &observable_words)
{
    for (auto &w : xFlip_)
        w = 0;
    for (auto &w : zFlip_)
        w = 0;
    for (auto &w : measFlip_)
        w = 0;
    detector_words.assign(circuit_.numDetectors(), 0);
    observable_words.assign(circuit_.numObservables(), 0);

    uint32_t meas_cursor = 0;
    uint32_t det_cursor = 0;

    for (const auto &op : circuit_.instructions()) {
        switch (op.type) {
          case GateType::R:
            for (auto q : op.targets) {
                xFlip_[q] = 0;
                zFlip_[q] = 0;
            }
            break;
          case GateType::M:
            for (auto q : op.targets)
                measFlip_[meas_cursor++] = xFlip_[q];
            break;
          case GateType::MR:
            for (auto q : op.targets) {
                measFlip_[meas_cursor++] = xFlip_[q];
                xFlip_[q] = 0;
                zFlip_[q] = 0;
            }
            break;
          case GateType::H:
            for (auto q : op.targets)
                std::swap(xFlip_[q], zFlip_[q]);
            break;
          case GateType::CX:
            for (size_t t = 0; t + 1 < op.targets.size(); t += 2) {
                uint32_t c = op.targets[t];
                uint32_t tq = op.targets[t + 1];
                xFlip_[tq] ^= xFlip_[c];
                zFlip_[c] ^= zFlip_[tq];
            }
            break;
          case GateType::XError:
            for (auto q : op.targets)
                xFlip_[q] ^= bernoulliMask(rng, op.arg);
            break;
          case GateType::ZError:
            for (auto q : op.targets)
                zFlip_[q] ^= bernoulliMask(rng, op.arg);
            break;
          case GateType::Depolarize1:
            for (auto q : op.targets) {
                uint64_t fire = bernoulliMask(rng, op.arg);
                // Each firing shot draws X, Y or Z uniformly; the
                // firing set is sparse, so resolve per bit.
                while (fire) {
                    int b = __builtin_ctzll(fire);
                    fire &= fire - 1;
                    uint64_t k = rng.uniformInt(3) + 1;
                    if (k & 1)
                        xFlip_[q] ^= (1ull << b);
                    if (k & 2)
                        zFlip_[q] ^= (1ull << b);
                }
            }
            break;
          case GateType::Depolarize2:
            for (size_t t = 0; t + 1 < op.targets.size(); t += 2) {
                uint32_t q1 = op.targets[t];
                uint32_t q2 = op.targets[t + 1];
                uint64_t fire = bernoulliMask(rng, op.arg);
                while (fire) {
                    int b = __builtin_ctzll(fire);
                    fire &= fire - 1;
                    uint64_t k = rng.uniformInt(15) + 1;
                    uint64_t p1 = k >> 2, p2 = k & 3;
                    if (p1 & 1)
                        xFlip_[q1] ^= (1ull << b);
                    if (p1 & 2)
                        zFlip_[q1] ^= (1ull << b);
                    if (p2 & 1)
                        xFlip_[q2] ^= (1ull << b);
                    if (p2 & 2)
                        zFlip_[q2] ^= (1ull << b);
                }
            }
            break;
          case GateType::Detector: {
            uint64_t parity = 0;
            for (auto m : op.targets)
                parity ^= measFlip_[m];
            detector_words[det_cursor++] = parity;
            break;
          }
          case GateType::ObservableInclude: {
            uint64_t parity = 0;
            for (auto m : op.targets)
                parity ^= measFlip_[m];
            observable_words[static_cast<size_t>(op.arg)] ^= parity;
            break;
          }
          case GateType::Tick:
            break;
        }
    }
}

uint32_t
BatchFrameSimulator::shotWeight(const std::vector<uint64_t> &det_words,
                                uint32_t shot)
{
    ASTREA_CHECK(shot < kBatch, "shot index out of batch range");
    uint32_t weight = 0;
    for (auto w : det_words)
        weight += static_cast<uint32_t>((w >> shot) & 1);
    return weight;
}

std::vector<uint32_t>
BatchFrameSimulator::shotDefects(const std::vector<uint64_t> &det_words,
                                 uint32_t shot)
{
    ASTREA_CHECK(shot < kBatch, "shot index out of batch range");
    std::vector<uint32_t> defects;
    for (uint32_t d = 0; d < det_words.size(); d++) {
        if ((det_words[d] >> shot) & 1)
            defects.push_back(d);
    }
    return defects;
}

} // namespace astrea
