/**
 * @file
 * Sparse Monte-Carlo sampler over a detector error model.
 *
 * Sampling a shot directly from the DEM costs O(#errors that fired)
 * instead of O(circuit length): mechanisms are grouped by probability
 * and each group is scanned with geometric skips, so a d = 9 shot at
 * p = 1e-4 touches only a handful of mechanisms. The harness uses this
 * sampler for its shot loops; its equivalence to the reference frame
 * simulator (identical marginal statistics by construction of the DEM)
 * is exercised in tests.
 */

#ifndef ASTREA_SIM_DEM_SAMPLER_HH
#define ASTREA_SIM_DEM_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "dem/error_model.hh"

namespace astrea
{

/** Immutable sampling plan for one error model. */
class DemSampler
{
  public:
    explicit DemSampler(const ErrorModel &model);

    uint32_t numDetectors() const { return numDetectors_; }
    uint32_t numObservables() const { return numObservables_; }

    /**
     * Sample one shot.
     *
     * @param rng Random stream.
     * @param detectors Out: detection events (resized if needed).
     * @param observables Out: logical observable flips.
     * @param fired Optional out: indices (into the model's mechanism
     *        list) of the mechanisms that fired, in scan order.
     */
    void sample(Rng &rng, BitVec &detectors, BitVec &observables,
                std::vector<uint32_t> *fired = nullptr) const;

  private:
    struct Group
    {
        double prob;
        /** Mechanism indices in this probability class. */
        std::vector<uint32_t> members;
    };

    uint32_t numDetectors_;
    uint32_t numObservables_;
    std::vector<Group> groups_;

    /** Flattened symptom storage: detectors of mechanism i live in
     *  detFlat_[detOffset_[i] .. detOffset_[i+1]). */
    std::vector<uint32_t> detOffset_;
    std::vector<uint32_t> detFlat_;
    std::vector<uint64_t> obsMask_;
};

} // namespace astrea

#endif // ASTREA_SIM_DEM_SAMPLER_HH
