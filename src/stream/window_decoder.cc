#include "stream/window_decoder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/telemetry.hh"

namespace astrea
{

namespace
{

/** Per-scratch reusable window-assembly buffers. */
struct WindowScratch : DecodeScratch::Ext
{
    /** Defects bucketed by round. */
    std::vector<std::vector<uint32_t>> byRound;
    /** Defects deferred past the previous window's commit region. */
    std::vector<uint32_t> carried;
    /** The assembled window handed to the inner decoder. */
    std::vector<uint32_t> window;
    /** The inner decoder's result (reused across windows). */
    DecodeResult inner;
};

} // namespace

WindowDecoder::WindowDecoder(const GlobalWeightTable &gwt,
                             const std::vector<DetectorInfo> &info,
                             uint32_t total_rounds, uint32_t distance,
                             std::unique_ptr<Decoder> inner,
                             StreamingConfig config)
    : gwt_(gwt), detectorInfo_(info), totalRounds_(total_rounds),
      windowRounds_(config.windowRounds ? config.windowRounds
                                        : 2 * distance),
      commitRounds_(config.commitRounds ? config.commitRounds
                                        : distance),
      inner_(std::move(inner))
{
    ASTREA_CHECK(commitRounds_ >= 1 && windowRounds_ > commitRounds_,
                 "window must be larger than the commit region");
    ASTREA_CHECK(inner_ != nullptr, "inner decoder required");
    ASTREA_CHECK(detectorInfo_.size() == gwt_.size(),
                 "detector metadata size mismatch");
}

std::string
WindowDecoder::name() const
{
    return "Windowed(" + inner_->name() + ")";
}

void
WindowDecoder::describeConfig(telemetry::JsonWriter &w) const
{
    w.kv("window_rounds", uint64_t{windowRounds_});
    w.kv("commit_rounds", uint64_t{commitRounds_});
    inner_->describeConfig(w);
}

void
WindowDecoder::decodeInto(std::span<const uint32_t> defects,
                          DecodeResult &result, DecodeScratch &scratch)
{
    stats_.decodes++;
    result.reset();
    if (defects.empty())
        return;

    WindowScratch &s = scratch.ext<WindowScratch>();

    // Hardware-counter attribution of the windowing overhead itself
    // (assembly + commit; the inner decode records its own stages).
    // Sampled one decode in ASTREA_PERF_STAGE_STRIDE.
    const bool psample = telemetry::perfSampleThisDecode();

    {
        // Bucket defects by round.
        telemetry::PerfSection sec(telemetry::PerfStage::Window, 1,
                                   psample);
        auto &by_round = s.byRound;
        if (by_round.size() < totalRounds_)
            by_round.resize(totalRounds_);
        for (uint32_t r = 0; r < totalRounds_; r++)
            by_round[r].clear();
        for (auto d : defects) {
            uint32_t r = detectorInfo_[d].round;
            ASTREA_CHECK(r < totalRounds_, "defect round out of range");
            by_round[r].push_back(d);
        }
    }
    auto &by_round = s.byRound;

    auto &carried = s.carried;
    carried.clear();
    carried.reserve(defects.size());
    auto &window = s.window;
    uint32_t t0 = 0;
    while (true) {
        const uint32_t w_end =
            std::min(t0 + windowRounds_, totalRounds_);
        const bool last = (w_end == totalRounds_);
        const uint32_t commit_end = last ? totalRounds_
                                         : t0 + commitRounds_;

        // Assemble the window: carried past defects plus everything in
        // [t0, w_end). Shots = 0: the decode was counted once by the
        // bucketing section above.
        {
            telemetry::PerfSection sec(telemetry::PerfStage::Window, 0,
                                       psample);
            window.assign(carried.begin(), carried.end());
            window.reserve(defects.size());
            stats_.carriedDefects += carried.size();
            ASTREA_COUNTER_ADD("stream.carried_defects",
                               carried.size());
            carried.clear();
            for (uint32_t r = t0; r < w_end; r++) {
                window.insert(window.end(), by_round[r].begin(),
                              by_round[r].end());
            }
            std::sort(window.begin(), window.end());
        }

        if (!window.empty()) {
            stats_.windows++;
            ASTREA_COUNTER_INC("stream.windows");
            ASTREA_HIST_ADD("stream.window_defects", window.size());
            ASTREA_GAUGE_MAX("stream.max_window_defects",
                             window.size());
            stats_.maxWindowDefects =
                std::max(stats_.maxWindowDefects, window.size());

            // The inner result and scratch live in this scratch, so a
            // shot's windows — and successive shots — reuse the same
            // buffers; matchedPairs is read in place, never copied.
            DecodeResult &dr = s.inner;
            inner_->decodeInto(window, dr, scratch.inner());
            ASTREA_GAUGE_MAX("stream.max_window_matching",
                             dr.matchedPairs.size());
            result.cycles += dr.cycles;
            result.latencyNs = std::max(result.latencyNs, dr.latencyNs);

            if (dr.gaveUp || dr.matchedPairs.empty()) {
                // Either the inner decoder failed on this window or it
                // does not report matchings (e.g. Astrea-G's pipeline
                // path): the commit-region defects are dropped
                // uncorrected and the shot will very likely count as a
                // logical error.
                stats_.giveUpWindows++;
                ASTREA_COUNTER_INC("stream.give_up_windows");
                result.gaveUp = true;
            } else {
                telemetry::PerfSection sec(telemetry::PerfStage::Window,
                                           0, psample);
                for (auto [a, b] : dr.matchedPairs) {
                    uint32_t da = window[a];
                    uint32_t ra = detectorInfo_[da].round;
                    if (b < 0) {
                        // Boundary match: commit once its round is in
                        // the committed region.
                        if (ra < commit_end) {
                            result.obsMask ^= gwt_.pairObs(da, da);
                            result.matchingWeight +=
                                gwt_.exactWeight(da, da);
                            stats_.committedPairs++;
                            ASTREA_COUNTER_INC(
                                "stream.committed_pairs");
                        }
                        continue;
                    }
                    uint32_t db = window[b];
                    uint32_t rb = detectorInfo_[db].round;
                    uint32_t lo = std::min(ra, rb);
                    uint32_t hi = std::max(ra, rb);
                    if (hi < commit_end) {
                        // Entirely inside the commit region: commit.
                        result.obsMask ^=
                            gwt_.exactEffectiveObs(da, db);
                        result.matchingWeight +=
                            gwt_.exactEffectiveWeight(da, db);
                        stats_.committedPairs++;
                        ASTREA_COUNTER_INC("stream.committed_pairs");
                    } else if (lo < commit_end) {
                        // Straddles the commit boundary: the early
                        // defect's decision is deferred; carry it into
                        // the next window (the late defect re-enters
                        // naturally).
                        carried.push_back(ra < rb ? da : db);
                        stats_.deferredPairs++;
                        ASTREA_COUNTER_INC("stream.deferred_pairs");
                    }
                    // Both beyond the commit region: future windows
                    // own the decision.
                }
            }
        }

        if (last)
            break;
        t0 += commitRounds_;
    }
}

} // namespace astrea
