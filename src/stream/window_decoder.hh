/**
 * @file
 * Sliding-window streaming decoder.
 *
 * The paper's experiments decode one logical cycle (d rounds) at a
 * time, but a deployed real-time decoder faces an unbounded stream of
 * syndrome rounds: corrections for old rounds must be committed while
 * new rounds keep arriving, with bounded work per step. The standard
 * solution is overlapping windows: decode W consecutive rounds, commit
 * only the matching decisions whose defects both fall in the oldest C
 * rounds (the commit region), slide forward by C, and carry forward
 * any committed-region defect whose best match reached into the
 * still-uncertain future rounds.
 *
 * This module implements that scheme on top of any inner decoder that
 * reports its matching (DecodeResult::matchedPairs), using the
 * experiment's full-stream Global Weight Table for weights. Tests and
 * the streaming bench show the windowed decoder's logical error rate
 * tracks whole-stream decoding while bounding per-window work.
 */

#ifndef ASTREA_STREAM_WINDOW_DECODER_HH
#define ASTREA_STREAM_WINDOW_DECODER_HH

#include <memory>

#include "decoders/decoder.hh"
#include "circuit/circuit.hh"
#include "graph/weight_table.hh"

namespace astrea
{

/** Windowing parameters. */
struct StreamingConfig
{
    uint32_t windowRounds = 0;  ///< W; 0 means 2 * distance.
    uint32_t commitRounds = 0;  ///< C; 0 means distance.
};

/** Streaming statistics across decodes. */
struct StreamingStats
{
    uint64_t decodes = 0;
    uint64_t windows = 0;
    uint64_t carriedDefects = 0;
    /** Largest defect count any single window decoded. */
    size_t maxWindowDefects = 0;
    /** Matched pairs committed inside a window's commit region. */
    uint64_t committedPairs = 0;
    /** Pairs straddling the commit boundary, deferred to the next
     *  window (their early defect is carried forward). */
    uint64_t deferredPairs = 0;
    /** Windows whose inner decode gave up or reported no matching. */
    uint64_t giveUpWindows = 0;
};

/**
 * Overlapping-window streaming decoder.
 *
 * Decodes full-shot defect lists window by window; usable anywhere a
 * Decoder is (the harness drives it like any other decoder, so LER
 * comparisons against whole-shot decoding are direct).
 */
class WindowDecoder : public Decoder
{
  public:
    /**
     * @param gwt Weight table of the full R-round experiment.
     * @param detector_info Per-detector metadata (for round lookup).
     * @param total_rounds Number of detector rounds including the
     *        final data-measurement comparison round (rounds + 1).
     * @param inner Inner matcher; must fill matchedPairs (MWPM,
     *        Astrea, greedy).
     * @param config Window geometry; distance supplies the defaults.
     */
    WindowDecoder(const GlobalWeightTable &gwt,
                  const std::vector<DetectorInfo> &detector_info,
                  uint32_t total_rounds, uint32_t distance,
                  std::unique_ptr<Decoder> inner,
                  StreamingConfig config = {});

    void decodeInto(std::span<const uint32_t> defects, DecodeResult &out,
                    DecodeScratch &scratch) override;
    std::string name() const override;

    /** Window geometry plus the inner decoder's config, flattened
     *  (key sets are disjoint), so captures round-trip through the
     *  registry. */
    void describeConfig(telemetry::JsonWriter &w) const override;

    const StreamingStats &stats() const { return stats_; }
    uint32_t windowRounds() const { return windowRounds_; }
    uint32_t commitRounds() const { return commitRounds_; }

  private:
    const GlobalWeightTable &gwt_;
    const std::vector<DetectorInfo> &detectorInfo_;
    uint32_t totalRounds_;
    uint32_t windowRounds_;
    uint32_t commitRounds_;
    std::unique_ptr<Decoder> inner_;
    StreamingStats stats_;
};

} // namespace astrea

#endif // ASTREA_STREAM_WINDOW_DECODER_HH
