/**
 * @file
 * Binary syndrome-ingest wire protocol for the decode fleet.
 *
 * Frames are length-prefixed and versioned so malformed or truncated
 * streams fail fast and the connection can close cleanly instead of
 * desynchronizing. All integers are little-endian. The 14-byte header:
 *
 *   offset  size  field
 *   0       2     magic        0xA57A
 *   2       1     version      1
 *   3       1     type         FleetFrameType
 *   4       4     stream_id    logical-qubit stream
 *   8       4     seq          per-stream shot sequence number
 *   12      2     payload_len  bytes following the header (<= 4096)
 *
 * Payloads by type:
 *  - Hello (server -> client, sent once on accept): u32 detector bit
 *    count of the serving workload. stream_id/seq are zero.
 *  - Syndrome (client -> server): u8 priority (higher = more
 *    important, survives shedding longer) followed by a
 *    compression/syndrome_codec self-describing buffer.
 *  - Verdict (server -> client): u64 observable-flip mask + u8 flags
 *    (gave-up / shed / error bits). Echoes the shot's stream_id+seq.
 *
 * Parsing is incremental (NeedMore / Ok / Malformed) so a reader can
 * feed whatever recv() returned; FleetFrameBuffer wraps the
 * accumulate-and-extract loop with a reusable buffer so steady-state
 * ingest touches no allocator.
 */

#ifndef ASTREA_NET_FLEET_PROTOCOL_HH
#define ASTREA_NET_FLEET_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace astrea
{
namespace net
{

constexpr uint16_t kFleetMagic = 0xA57A;
constexpr uint8_t kFleetVersion = 1;
constexpr size_t kFleetHeaderBytes = 14;
/** Hard payload cap; d=13 raw bitmaps are ~150 bytes, 4K is ample. */
constexpr size_t kFleetMaxPayload = 4096;

/** Frame kinds; see file comment for payload layouts. */
enum class FleetFrameType : uint8_t
{
    Hello = 0,
    Syndrome = 1,
    Verdict = 2,
};

/** Verdict payload flag bits. */
constexpr uint8_t kVerdictGaveUp = 1u << 0;
constexpr uint8_t kVerdictShed = 1u << 1;
constexpr uint8_t kVerdictError = 1u << 2;

/** Decoded frame header (host byte order). */
struct FleetFrameHeader
{
    FleetFrameType type = FleetFrameType::Hello;
    uint32_t streamId = 0;
    uint32_t seq = 0;
    uint16_t payloadLen = 0;
};

/** Incremental parse outcome. */
enum class FleetParse
{
    NeedMore,   ///< Not enough bytes yet; read more.
    Ok,         ///< Header (and payload length) validated.
    Malformed,  ///< Bad magic/version/type/length; close the stream.
};

/**
 * Validate and decode a frame header from buf[0..len). Ok means the
 * header fields are trustworthy and the full frame spans
 * kFleetHeaderBytes + payloadLen bytes (which may still exceed len —
 * callers keep reading until the payload is buffered).
 */
FleetParse parseFleetHeader(const uint8_t *buf, size_t len,
                            FleetFrameHeader &out);

/** Append a header with the given fields to out. */
void appendFleetHeader(std::vector<uint8_t> &out, FleetFrameType type,
                       uint32_t stream_id, uint32_t seq,
                       uint16_t payload_len);

/** Append a complete Hello frame. */
void appendFleetHello(std::vector<uint8_t> &out,
                      uint32_t num_detector_bits);

/** Append a complete Syndrome frame wrapping pre-encoded codec bytes. */
void appendFleetSyndrome(std::vector<uint8_t> &out, uint32_t stream_id,
                         uint32_t seq, uint8_t priority,
                         const uint8_t *codec_bytes, size_t codec_len);

/** Append a complete Verdict frame. */
void appendFleetVerdict(std::vector<uint8_t> &out, uint32_t stream_id,
                        uint32_t seq, uint64_t obs_mask,
                        uint8_t flags);

/**
 * Accumulates raw socket bytes and yields complete frames. The
 * internal buffer is compacted in place and only grows to the largest
 * burst seen, so steady-state ingest is allocation-free.
 */
class FleetFrameBuffer
{
  public:
    /** Append n bytes read off the socket. */
    void
    append(const uint8_t *data, size_t n)
    {
        // Compact consumed prefix before growing the tail.
        if (readPos_ > 0) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + static_cast<ptrdiff_t>(readPos_));
            readPos_ = 0;
        }
        buf_.insert(buf_.end(), data, data + n);
    }

    /**
     * Extract the next complete frame. On Ok, `header` is filled and
     * `payload` points at payloadLen bytes owned by the buffer (valid
     * until the next append/next call). NeedMore means append more
     * bytes; Malformed means the stream is unrecoverable.
     */
    FleetParse
    next(FleetFrameHeader &header, const uint8_t *&payload)
    {
        const uint8_t *base = buf_.data() + readPos_;
        const size_t avail = buf_.size() - readPos_;
        FleetParse st = parseFleetHeader(base, avail, header);
        if (st != FleetParse::Ok)
            return st;
        const size_t total = kFleetHeaderBytes + header.payloadLen;
        if (avail < total)
            return FleetParse::NeedMore;
        payload = base + kFleetHeaderBytes;
        readPos_ += total;
        return FleetParse::Ok;
    }

    /** Bytes buffered but not yet consumed (for tests). */
    size_t pending() const { return buf_.size() - readPos_; }

  private:
    std::vector<uint8_t> buf_;
    size_t readPos_ = 0;
};

} // namespace net
} // namespace astrea

#endif // ASTREA_NET_FLEET_PROTOCOL_HH
