#include "net/fleet_client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace astrea
{
namespace net
{

namespace
{

constexpr size_t kFlushThreshold = 32 * 1024;

bool
sendAllFd(int fd, const uint8_t *data, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; i--)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

FleetClient::~FleetClient()
{
    close();
}

void
FleetClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
FleetClient::connect(const std::string &host, uint16_t port,
                     std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg + ": " + std::strerror(errno);
        close();
        return false;
    };

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return fail("bad address '" + host + "'");
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return fail("connect " + host + ":" + std::to_string(port));

    // The server speaks first: Hello with the detector-bit count.
    uint8_t buf[256];
    FleetFrameHeader h;
    const uint8_t *payload = nullptr;
    for (;;) {
        FleetParse st = recvFrames_.next(h, payload);
        if (st == FleetParse::Ok)
            break;
        if (st == FleetParse::Malformed)
            return fail("malformed hello");
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return fail("recv hello");
        }
        recvFrames_.append(buf, static_cast<size_t>(n));
    }
    if (h.type != FleetFrameType::Hello || h.payloadLen != 4)
        return fail("unexpected first frame");
    numDetectorBits_ = static_cast<uint32_t>(payload[0]) |
                       (static_cast<uint32_t>(payload[1]) << 8) |
                       (static_cast<uint32_t>(payload[2]) << 16) |
                       (static_cast<uint32_t>(payload[3]) << 24);
    return true;
}

bool
FleetClient::sendShot(uint32_t stream_id, uint32_t seq,
                      uint8_t priority,
                      std::span<const uint32_t> defects,
                      SyndromeCodec codec)
{
    if (fd_ < 0)
        return false;
    syndrome_.resize(numDetectorBits_);
    for (uint32_t idx : defects)
        syndrome_.set(idx);
    encodeSyndromeInto(syndrome_, codec, codecBuf_);
    appendFleetSyndrome(sendBuf_, stream_id, seq, priority,
                        codecBuf_.data(), codecBuf_.size());
    if (sendBuf_.size() >= kFlushThreshold)
        return flush();
    return true;
}

bool
FleetClient::flush()
{
    if (fd_ < 0)
        return false;
    if (sendBuf_.empty())
        return true;
    const bool ok = sendAllFd(fd_, sendBuf_.data(), sendBuf_.size());
    sendBuf_.clear();
    if (!ok)
        close();
    return ok;
}

bool
FleetClient::readVerdict(FleetClientVerdict &out)
{
    if (fd_ < 0)
        return false;
    uint8_t buf[8192];
    FleetFrameHeader h;
    const uint8_t *payload = nullptr;
    for (;;) {
        FleetParse st = recvFrames_.next(h, payload);
        if (st == FleetParse::Malformed)
            return false;
        if (st == FleetParse::Ok) {
            if (h.type != FleetFrameType::Verdict || h.payloadLen != 9)
                return false;
            out.streamId = h.streamId;
            out.seq = h.seq;
            out.obsMask = get64(payload);
            out.gaveUp = (payload[8] & kVerdictGaveUp) != 0;
            out.shed = (payload[8] & kVerdictShed) != 0;
            out.error = (payload[8] & kVerdictError) != 0;
            return true;
        }
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        recvFrames_.append(buf, static_cast<size_t>(n));
    }
}

} // namespace net
} // namespace astrea
