#include "net/fleet_protocol.hh"

namespace astrea
{
namespace net
{

namespace
{

inline void
put16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v & 0xff));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

inline void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

inline void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

inline uint16_t
get16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t
get32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

FleetParse
parseFleetHeader(const uint8_t *buf, size_t len, FleetFrameHeader &out)
{
    // Validate eagerly on whatever prefix is available so a garbage
    // stream is rejected before it can demand more bytes.
    if (len >= 2 && get16(buf) != kFleetMagic)
        return FleetParse::Malformed;
    if (len >= 3 && buf[2] != kFleetVersion)
        return FleetParse::Malformed;
    if (len >= 4 &&
        buf[3] > static_cast<uint8_t>(FleetFrameType::Verdict))
        return FleetParse::Malformed;
    if (len < kFleetHeaderBytes)
        return FleetParse::NeedMore;
    const uint16_t payload_len = get16(buf + 12);
    if (payload_len > kFleetMaxPayload)
        return FleetParse::Malformed;
    out.type = static_cast<FleetFrameType>(buf[3]);
    out.streamId = get32(buf + 4);
    out.seq = get32(buf + 8);
    out.payloadLen = payload_len;
    return FleetParse::Ok;
}

void
appendFleetHeader(std::vector<uint8_t> &out, FleetFrameType type,
                  uint32_t stream_id, uint32_t seq,
                  uint16_t payload_len)
{
    put16(out, kFleetMagic);
    out.push_back(kFleetVersion);
    out.push_back(static_cast<uint8_t>(type));
    put32(out, stream_id);
    put32(out, seq);
    put16(out, payload_len);
}

void
appendFleetHello(std::vector<uint8_t> &out, uint32_t num_detector_bits)
{
    appendFleetHeader(out, FleetFrameType::Hello, 0, 0, 4);
    put32(out, num_detector_bits);
}

void
appendFleetSyndrome(std::vector<uint8_t> &out, uint32_t stream_id,
                    uint32_t seq, uint8_t priority,
                    const uint8_t *codec_bytes, size_t codec_len)
{
    appendFleetHeader(out, FleetFrameType::Syndrome, stream_id, seq,
                      static_cast<uint16_t>(1 + codec_len));
    out.push_back(priority);
    out.insert(out.end(), codec_bytes, codec_bytes + codec_len);
}

void
appendFleetVerdict(std::vector<uint8_t> &out, uint32_t stream_id,
                   uint32_t seq, uint64_t obs_mask, uint8_t flags)
{
    appendFleetHeader(out, FleetFrameType::Verdict, stream_id, seq, 9);
    put64(out, obs_mask);
    out.push_back(flags);
}

} // namespace net
} // namespace astrea
