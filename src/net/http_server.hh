/**
 * @file
 * Minimal dependency-free blocking HTTP/1.1 server for scrape
 * endpoints (/metrics, /statusz, /healthz).
 *
 * One acceptor thread serves connections serially: read the request
 * head, dispatch on the exact path (query string stripped) or the
 * longest registered prefix, write the response with Content-Length.
 * HTTP/1.1 connections are kept alive for a bounded number of
 * requests (HttpLimits::maxRequestsPerConnection, with a short idle
 * allowance between them), so scrape loops and the fleet status plane
 * stop paying per-request connection setup; there is still no
 * chunking, no TLS and no concurrency. Because the
 * server is serial, a slow or abusive client is the whole service's
 * problem, so each connection gets a hard head deadline (not just a
 * per-recv timeout — a slow-loris client trickling one byte per
 * second resets per-recv timers forever) and hard size caps on the
 * request line and header block (408 / 431 on violation; see
 * HttpLimits). Binds to loopback by default so running a decode
 * service does not silently open a port to the network.
 */

#ifndef ASTREA_NET_HTTP_SERVER_HH
#define ASTREA_NET_HTTP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace astrea
{
namespace net
{

/** One parsed request (head only; bodies are read and discarded). */
struct HttpRequest
{
    std::string method;
    std::string path;   ///< Without the query string.
    std::string query;  ///< Raw text after '?', "" if none.
    /** Header (name, value) pairs in arrival order; names lowercased. */
    std::vector<std::pair<std::string, std::string>> headers;

    /** First value of `name` (ASCII case-insensitive), "" if absent. */
    std::string header(const std::string &name) const;
};

/** One response; the server adds Content-Length and Connection. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

/** Per-connection abuse limits; defaults suit scrape traffic. */
struct HttpLimits
{
    /** Whole-head deadline: the client must deliver the full request
     *  head within this budget, no matter how it paces its bytes.
     *  Applies per request — keep-alive does not extend it. */
    uint64_t headDeadlineMillis = 5000;
    /** Cap on the whole request head (request line + headers). */
    size_t maxHeadBytes = 64 * 1024;
    /** Cap on the request line alone (method + target + version). */
    size_t maxRequestLineBytes = 8 * 1024;
    /** HTTP/1.1 keep-alive: serve at most this many requests on one
     *  connection (1 = the old close-per-request behavior). The
     *  server is serial, so the bound keeps one chatty client from
     *  monopolizing it indefinitely. */
    unsigned maxRequestsPerConnection = 32;
    /** Head deadline for the 2nd..Nth request on a kept-alive
     *  connection: an idle keeper only blocks the serial server this
     *  long before the connection is dropped. */
    uint64_t keepAliveIdleMillis = 1000;
};

class HttpServer
{
  public:
    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Register a handler for an exact path. Call before start(). */
    void handle(const std::string &path, HttpHandler handler);

    /**
     * Register a handler for any path starting with `prefix`
     * ("/traces/" serves /traces/<id>). Exact matches win; among
     * prefixes the longest wins. Call before start().
     */
    void handlePrefix(const std::string &prefix, HttpHandler handler);

    /** Replace the per-connection limits. Call before start(). */
    void setLimits(const HttpLimits &limits) { limits_ = limits; }
    const HttpLimits &limits() const { return limits_; }

    /**
     * Bind and start the acceptor thread. port 0 picks an ephemeral
     * port (read it back with port()). Returns false with *error set
     * on failure.
     */
    bool start(const std::string &bind_addr, uint16_t port,
               std::string *error);

    /** The bound port; 0 before a successful start(). */
    uint16_t port() const { return port_; }

    /** Stop accepting, close the socket, join the acceptor thread. */
    void stop();

    bool running() const { return running_; }

    /** Requests dispatched so far (including 404s). */
    uint64_t requestsServed() const { return requests_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);
    /** One keep-alive iteration; true = keep the connection open. */
    bool serveOneRequest(int fd, std::string &carry, unsigned served,
                         unsigned max_requests);

    std::map<std::string, HttpHandler> handlers_;
    std::map<std::string, HttpHandler> prefixHandlers_;
    mutable std::mutex handlersMu_;
    HttpLimits limits_;
    std::thread acceptor_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> requests_{0};
};

/** Status line text for the codes this server emits. */
std::string httpStatusText(int status);

/**
 * Value of `key` in a raw "a=1&b=2" query string, "" when absent.
 * No %-decoding: the query parameters this server consumes
 * (/pprof/profile's seconds/hz/format) are plain tokens.
 */
std::string queryParam(const std::string &query,
                       const std::string &key);

} // namespace net
} // namespace astrea

#endif // ASTREA_NET_HTTP_SERVER_HH
