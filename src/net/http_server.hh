/**
 * @file
 * Minimal dependency-free blocking HTTP/1.1 server for scrape
 * endpoints (/metrics, /statusz, /healthz).
 *
 * One acceptor thread serves connections serially: read the request
 * head, dispatch on the exact path (query string stripped), write the
 * response with Content-Length, close. That is deliberately all — a
 * Prometheus scraper or a curl probe issues one short GET every few
 * seconds, so there is no keep-alive, no chunking, no TLS and no
 * concurrency; a receive timeout bounds how long a stalled client can
 * hold the acceptor. Binds to loopback by default so running a decode
 * service does not silently open a port to the network.
 */

#ifndef ASTREA_NET_HTTP_SERVER_HH
#define ASTREA_NET_HTTP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace astrea
{
namespace net
{

/** One parsed request (head only; bodies are read and discarded). */
struct HttpRequest
{
    std::string method;
    std::string path;   ///< Without the query string.
    std::string query;  ///< Raw text after '?', "" if none.
};

/** One response; the server adds Content-Length and Connection. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest &)>;

class HttpServer
{
  public:
    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Register a handler for an exact path. Call before start(). */
    void handle(const std::string &path, HttpHandler handler);

    /**
     * Bind and start the acceptor thread. port 0 picks an ephemeral
     * port (read it back with port()). Returns false with *error set
     * on failure.
     */
    bool start(const std::string &bind_addr, uint16_t port,
               std::string *error);

    /** The bound port; 0 before a successful start(). */
    uint16_t port() const { return port_; }

    /** Stop accepting, close the socket, join the acceptor thread. */
    void stop();

    bool running() const { return running_; }

    /** Requests dispatched so far (including 404s). */
    uint64_t requestsServed() const { return requests_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);

    std::map<std::string, HttpHandler> handlers_;
    mutable std::mutex handlersMu_;
    std::thread acceptor_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<uint64_t> requests_{0};
};

/** Status line text for the codes this server emits. */
std::string httpStatusText(int status);

/**
 * Value of `key` in a raw "a=1&b=2" query string, "" when absent.
 * No %-decoding: the query parameters this server consumes
 * (/pprof/profile's seconds/hz/format) are plain tokens.
 */
std::string queryParam(const std::string &query,
                       const std::string &key);

} // namespace net
} // namespace astrea

#endif // ASTREA_NET_HTTP_SERVER_HH
