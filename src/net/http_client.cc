#include "net/http_client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace astrea
{
namespace net
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

bool
httpGet(const std::string &host, uint16_t port,
        const std::string &path, HttpResult &out, std::string *error)
{
    auto fail = [&](int fd, const std::string &msg) {
        if (error != nullptr)
            *error = msg + ": " + std::strerror(errno);
        if (fd >= 0)
            ::close(fd);
        return false;
    };

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return fail(fd, "socket");

    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return fail(fd, "bad address '" + host + "'");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return fail(fd, "connect " + host + ":" +
                            std::to_string(port));

    std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                      "\r\nConnection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < req.size()) {
        ssize_t n = ::send(fd, req.data() + sent, req.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return fail(fd, "send");
        sent += static_cast<size_t>(n);
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return fail(fd, "recv");
        }
        if (n == 0)
            break;
        raw.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);

    size_t head_end = raw.find("\r\n\r\n");
    size_t line_end = raw.find("\r\n");
    if (head_end == std::string::npos || line_end == std::string::npos)
        return fail(-1, "truncated response");

    // Status line: HTTP/1.1 SP CODE SP TEXT.
    std::string status_line = raw.substr(0, line_end);
    size_t sp = status_line.find(' ');
    if (sp == std::string::npos)
        return fail(-1, "bad status line");
    out.status = std::atoi(status_line.c_str() + sp + 1);

    std::string head = lowered(raw.substr(0, head_end));
    size_t ct = head.find("content-type:");
    if (ct != std::string::npos) {
        size_t eol = head.find("\r\n", ct);
        std::string v = raw.substr(ct + 13, eol - ct - 13);
        while (!v.empty() && v.front() == ' ')
            v.erase(v.begin());
        out.contentType = v;
    }
    out.body = raw.substr(head_end + 4);
    return true;
}

} // namespace net
} // namespace astrea
