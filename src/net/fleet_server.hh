/**
 * @file
 * TCP ingest front-end for the decode fleet.
 *
 * Accepts connections on the fleet port, sends a Hello frame carrying
 * the workload's detector-bit count, then reads Syndrome frames
 * (net/fleet_protocol.hh) off each connection, decodes their codec
 * payload into defect lists and submits them to the DecodeFleet.
 * Verdict frames are written back on the connection the shot arrived
 * on (streams are logical: one connection multiplexes any number of
 * stream ids, so a thousand streams do not need a thousand sockets —
 * one reader thread per connection suffices).
 *
 * A malformed frame (bad magic/version/type, oversized payload,
 * undecodable codec bytes) closes that connection cleanly after
 * counting it; other connections are unaffected. Per-connection state
 * (frame buffer, decode BitVec, defect scratch, write buffer) is
 * reused, so steady-state ingest performs no heap allocations.
 */

#ifndef ASTREA_NET_FLEET_SERVER_HH
#define ASTREA_NET_FLEET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/fleet.hh"
#include "net/fleet_protocol.hh"

namespace astrea
{
namespace net
{

class FleetServer
{
  public:
    explicit FleetServer(DecodeFleet &fleet);
    ~FleetServer();

    FleetServer(const FleetServer &) = delete;
    FleetServer &operator=(const FleetServer &) = delete;

    /** Bind + accept; port 0 picks an ephemeral port (see port()). */
    bool start(const std::string &bind_addr, uint16_t port,
               std::string *error);
    void stop();

    uint16_t port() const { return port_; }

    /**
     * Write a verdict frame back to the connection the shot arrived
     * on (FleetVerdict::connId); drops silently if it is gone. This
     * is the fleet's verdict sink; thread-safe.
     */
    void deliver(const FleetVerdict &v);

  private:
    struct Conn;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);

    DecodeFleet &fleet_;
    std::thread acceptor_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};

    std::mutex connsMu_;
    std::vector<std::shared_ptr<Conn>> conns_;  ///< Indexed by connId.
    std::vector<std::thread> readers_;
};

} // namespace net
} // namespace astrea

#endif // ASTREA_NET_FLEET_SERVER_HH
