/**
 * @file
 * Blocking client for the fleet ingest protocol.
 *
 * Shared by the saturation bench, the integration tests and the
 * `astrea_cli fleet-client` traffic generator. One client is one TCP
 * connection multiplexing any number of logical stream ids; typical
 * use pairs one sending thread (sendShot/flush) with one receiving
 * thread (readVerdict) — the two directions are independent, but each
 * direction must be driven by a single thread at a time.
 */

#ifndef ASTREA_NET_FLEET_CLIENT_HH
#define ASTREA_NET_FLEET_CLIENT_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bitvec.hh"
#include "compression/syndrome_codec.hh"
#include "net/fleet_protocol.hh"

namespace astrea
{
namespace net
{

/** A decoded Verdict frame. */
struct FleetClientVerdict
{
    uint32_t streamId = 0;
    uint32_t seq = 0;
    uint64_t obsMask = 0;
    bool gaveUp = false;
    bool shed = false;
    bool error = false;
};

class FleetClient
{
  public:
    FleetClient() = default;
    ~FleetClient();

    FleetClient(const FleetClient &) = delete;
    FleetClient &operator=(const FleetClient &) = delete;

    /**
     * Connect (numeric IPv4 only) and read the server Hello; false
     * with *error set on failure. After success numDetectorBits()
     * holds the syndrome width to encode.
     */
    bool connect(const std::string &host, uint16_t port,
                 std::string *error);

    void close();
    bool connected() const { return fd_ >= 0; }
    uint32_t numDetectorBits() const { return numDetectorBits_; }

    /**
     * Stage one shot (defect indices, strictly increasing) into the
     * send buffer as a Syndrome frame; actually written on flush() or
     * when the buffer passes ~32 KiB. Returns false on a lost
     * connection. Buffers are reused — steady state never allocates.
     */
    bool sendShot(uint32_t stream_id, uint32_t seq, uint8_t priority,
                  std::span<const uint32_t> defects,
                  SyndromeCodec codec = SyndromeCodec::Sparse);

    /** Write out any staged frames. */
    bool flush();

    /** Block until one Verdict frame arrives; false on EOF/error. */
    bool readVerdict(FleetClientVerdict &out);

  private:
    int fd_ = -1;
    uint32_t numDetectorBits_ = 0;

    BitVec syndrome_;
    std::vector<uint8_t> codecBuf_;
    std::vector<uint8_t> sendBuf_;
    FleetFrameBuffer recvFrames_;
};

} // namespace net
} // namespace astrea

#endif // ASTREA_NET_FLEET_CLIENT_HH
