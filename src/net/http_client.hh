/**
 * @file
 * Tiny blocking HTTP/1.1 GET client.
 *
 * Just enough to scrape the decode service's own endpoints: the unit
 * tests hit a live HttpServer over a real socket, and `astrea_cli`
 * could probe a running service. Numeric IPv4 addresses only (no DNS),
 * Connection: close, whole response buffered.
 */

#ifndef ASTREA_NET_HTTP_CLIENT_HH
#define ASTREA_NET_HTTP_CLIENT_HH

#include <cstdint>
#include <string>

namespace astrea
{
namespace net
{

/** Parsed response from httpGet(). */
struct HttpResult
{
    int status = 0;
    std::string contentType;
    std::string body;
};

/**
 * Issue one GET and read the response to EOF. host must be a numeric
 * IPv4 address ("127.0.0.1"). Returns false with *error set on
 * connect/IO/parse failure; an HTTP error status is a *successful*
 * call (check out.status).
 */
bool httpGet(const std::string &host, uint16_t port,
             const std::string &path, HttpResult &out,
             std::string *error);

} // namespace net
} // namespace astrea

#endif // ASTREA_NET_HTTP_CLIENT_HH
