#include "net/fleet_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/bitvec.hh"
#include "compression/syndrome_codec.hh"

namespace astrea
{
namespace net
{

namespace
{

bool
sendAllFd(int fd, const uint8_t *data, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

/** One ingest connection; all buffers reused across frames. */
struct FleetServer::Conn
{
    int fd = -1;
    uint32_t id = 0;
    std::atomic<bool> open{true};

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }

    // Reader-thread-owned decode state.
    FleetFrameBuffer frames;
    BitVec syndrome;
    std::vector<uint32_t> defects;

    // Verdict writes come from shard workers and the submit path.
    std::mutex writeMu;
    std::vector<uint8_t> writeBuf;
};

FleetServer::FleetServer(DecodeFleet &fleet) : fleet_(fleet)
{
}

FleetServer::~FleetServer()
{
    stop();
}

bool
FleetServer::start(const std::string &bind_addr, uint16_t port,
                   std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    if (running_)
        return fail("fleet server already running");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");

    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1)
        return fail("bad bind address '" + bind_addr + "'");

    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + bind_addr + ":" + std::to_string(port));
    if (::listen(listenFd_, 64) != 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    running_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
FleetServer::stop()
{
    if (!running_.exchange(false)) {
        if (!acceptor_.joinable())
            return;
    }
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable())
        acceptor_.join();
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        for (auto &c : conns_) {
            if (c && c->open.load())
                ::shutdown(c->fd, SHUT_RDWR);
        }
    }
    for (auto &t : readers_)
        t.join();
    readers_.clear();
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        conns_.clear();
    }
}

void
FleetServer::acceptLoop()
{
    while (running_) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;  // Closed by stop(), or fatal.
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            conn->id = static_cast<uint32_t>(conns_.size());
            conns_.push_back(conn);
            readers_.emplace_back(
                [this, conn] { readerLoop(conn); });
        }
        fleet_.noteConnectionOpened();

        // Hello tells the client the syndrome width to encode for.
        std::vector<uint8_t> hello;
        appendFleetHello(hello, fleet_.numDetectorBits());
        if (!sendAllFd(fd, hello.data(), hello.size())) {
            conn->open = false;
            ::shutdown(fd, SHUT_RDWR);
        }
    }
}

void
FleetServer::readerLoop(std::shared_ptr<Conn> conn)
{
    const uint8_t max_priority = fleet_.config().maxPriority;
    uint8_t buf[8192];
    bool malformed = false;

    while (running_ && !malformed) {
        ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n == 0)
            break;  // Peer closed.
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        conn->frames.append(buf, static_cast<size_t>(n));

        FleetFrameHeader h;
        const uint8_t *payload = nullptr;
        for (;;) {
            FleetParse st = conn->frames.next(h, payload);
            if (st == FleetParse::NeedMore)
                break;
            if (st == FleetParse::Malformed) {
                fleet_.noteMalformed();
                malformed = true;
                break;
            }
            fleet_.noteFrame();
            // Only clients send Syndrome frames; anything else on an
            // ingest connection is a protocol violation.
            if (h.type != FleetFrameType::Syndrome ||
                h.payloadLen < 1) {
                fleet_.noteMalformed();
                malformed = true;
                break;
            }
            if (!tryDecodeSyndromeInto(payload + 1, h.payloadLen - 1,
                                       fleet_.numDetectorBits(),
                                       conn->syndrome)) {
                fleet_.noteMalformed();
                malformed = true;
                break;
            }
            conn->syndrome.onesIndicesInto(conn->defects);

            FleetJob job;
            job.streamId = h.streamId;
            job.seq = h.seq;
            job.connId = conn->id;
            job.priority =
                std::min<uint8_t>(payload[0], max_priority);
            if (conn->defects.size() > kFleetMaxDefects) {
                // Beyond the inline cap (decoders give up long before
                // HW 64): answer with an error verdict, keep going.
                FleetVerdict v;
                v.streamId = h.streamId;
                v.seq = h.seq;
                v.connId = conn->id;
                v.gaveUp = true;
                v.error = true;
                deliver(v);
                continue;
            }
            job.hw = static_cast<uint16_t>(conn->defects.size());
            for (size_t i = 0; i < conn->defects.size(); i++)
                job.defects[i] = conn->defects[i];
            fleet_.submit(job);
        }
    }

    // Shut down but leave the fd open until the Conn is destroyed:
    // deliver() may race this exit, and a shut-down fd fails sends
    // harmlessly where a recycled descriptor would corrupt a stranger.
    conn->open = false;
    ::shutdown(conn->fd, SHUT_RDWR);
}

void
FleetServer::deliver(const FleetVerdict &v)
{
    std::shared_ptr<Conn> conn;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        if (v.connId < conns_.size())
            conn = conns_[v.connId];
    }
    if (!conn || !conn->open.load())
        return;

    uint8_t flags = 0;
    if (v.gaveUp)
        flags |= kVerdictGaveUp;
    if (v.shed)
        flags |= kVerdictShed;
    if (v.error)
        flags |= kVerdictError;

    std::lock_guard<std::mutex> lock(conn->writeMu);
    conn->writeBuf.clear();
    appendFleetVerdict(conn->writeBuf, v.streamId, v.seq, v.obsMask,
                       flags);
    if (!sendAllFd(conn->fd, conn->writeBuf.data(),
                   conn->writeBuf.size()))
        conn->open = false;
}

} // namespace net
} // namespace astrea
