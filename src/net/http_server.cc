#include "net/http_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"

namespace astrea
{
namespace net
{

namespace
{

uint64_t
nowMillis()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

char
asciiLower(char c)
{
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string
trimOws(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

bool
sendAll(int fd, const char *data, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

std::string
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 408:
        return "Request Timeout";
      case 431:
        return "Request Header Fields Too Large";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

std::string
queryParam(const std::string &query, const std::string &key)
{
    size_t pos = 0;
    while (pos < query.size()) {
        size_t end = query.find('&', pos);
        if (end == std::string::npos)
            end = query.size();
        const size_t eq = query.find('=', pos);
        if (eq != std::string::npos && eq < end &&
            query.compare(pos, eq - pos, key) == 0) {
            return query.substr(eq + 1, end - eq - 1);
        }
        pos = end + 1;
    }
    return "";
}

std::string
HttpRequest::header(const std::string &name) const
{
    std::string want;
    want.reserve(name.size());
    for (char c : name)
        want.push_back(asciiLower(c));
    for (const auto &[k, v] : headers) {
        if (k == want)
            return v;
    }
    return "";
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::handle(const std::string &path, HttpHandler handler)
{
    std::lock_guard<std::mutex> lock(handlersMu_);
    handlers_[path] = std::move(handler);
}

void
HttpServer::handlePrefix(const std::string &prefix,
                         HttpHandler handler)
{
    std::lock_guard<std::mutex> lock(handlersMu_);
    prefixHandlers_[prefix] = std::move(handler);
}

bool
HttpServer::start(const std::string &bind_addr, uint16_t port,
                  std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    if (running_)
        return fail("server already running");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");

    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1)
        return fail("bad bind address '" + bind_addr + "'");

    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + bind_addr + ":" + std::to_string(port));
    if (::listen(listenFd_, 16) != 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    running_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_ && !acceptor_.joinable())
        return;
    running_ = false;
    if (listenFd_ >= 0) {
        // Unblock accept(): shutdown makes the blocked call return on
        // Linux; close releases the port.
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable())
        acceptor_.join();
}

void
HttpServer::acceptLoop()
{
    while (running_) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;  // Socket closed by stop(), or a fatal error.
        }
        timeval tv{};
        tv.tv_sec = 5;  // A stalled reader may not wedge the acceptor.
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        serveConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    // Bounded keep-alive: serve up to maxRequestsPerConnection
    // HTTP/1.1 requests on this connection, carrying pipelined bytes
    // between iterations. Each request re-arms the whole-head
    // deadline (the slow-loris defense is per request, not amortized
    // across the connection).
    std::string carry;
    const unsigned max_requests =
        std::max(1u, limits_.maxRequestsPerConnection);
    for (unsigned served = 0; served < max_requests; served++) {
        const bool keep =
            serveOneRequest(fd, carry, served, max_requests);
        if (!keep)
            return;
    }
}

bool
HttpServer::serveOneRequest(int fd, std::string &carry,
                            unsigned served, unsigned max_requests)
{
    // Read the whole head against one fixed deadline. A per-recv
    // timeout alone lets a slow-loris client trickle a byte every few
    // seconds and hold this (serial) server forever; here each recv
    // gets only the budget that remains. On a kept-alive connection
    // the follow-up budget is the (shorter) idle allowance.
    const uint64_t budget_ms = served == 0
                                   ? limits_.headDeadlineMillis
                                   : limits_.keepAliveIdleMillis;
    const uint64_t deadline = nowMillis() + budget_ms;
    bool timed_out = false;
    std::string head = std::move(carry);
    carry.clear();
    char buf[4096];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.size() <= limits_.maxHeadBytes) {
        const uint64_t now = nowMillis();
        if (now >= deadline) {
            timed_out = true;
            break;
        }
        const uint64_t remain_ms = deadline - now;
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(remain_ms / 1000);
        tv.tv_usec =
            static_cast<suseconds_t>((remain_ms % 1000) * 1000);
        if (tv.tv_sec == 0 && tv.tv_usec == 0)
            tv.tv_usec = 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n == 0)
            return false;  // Closed before a full head.
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                timed_out = true;
                break;
            }
            return false;  // Reset or another hard error.
        }
        head.append(buf, static_cast<size_t>(n));
    }

    HttpResponse resp;
    HttpRequest req;
    bool http11 = false;
    const size_t head_end = head.find("\r\n\r\n");
    const size_t line_end = head.find("\r\n");

    if (timed_out && head_end == std::string::npos) {
        // An idle keeper timing out before sending anything is the
        // normal end of a kept-alive connection, not an error.
        if (served > 0 && head.empty())
            return false;
        resp.status = 408;
        resp.body = "request head not received in time\n";
    } else if (head_end == std::string::npos ||
               head.size() > limits_.maxHeadBytes + 4) {
        // No terminator within the size cap: oversized head.
        resp.status = 431;
        resp.body = "request head too large\n";
    } else if (line_end > limits_.maxRequestLineBytes) {
        resp.status = 431;
        resp.body = "request line too long\n";
    } else {
        std::string line = head.substr(0, line_end);
        size_t sp1 = line.find(' ');
        size_t sp2 = line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos) {
            resp.status = 400;
            resp.body = "bad request\n";
        } else {
            req.method = line.substr(0, sp1);
            http11 = line.compare(sp2 + 1, std::string::npos,
                                  "HTTP/1.1") == 0;
            std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
            size_t q = target.find('?');
            req.path = target.substr(0, q);
            if (q != std::string::npos)
                req.query = target.substr(q + 1);

            // Header lines between the request line and the blank
            // line; names lowercased, OWS trimmed, bad lines skipped.
            size_t pos = line_end + 2;
            while (pos < head_end) {
                size_t eol = head.find("\r\n", pos);
                if (eol == std::string::npos || eol > head_end)
                    eol = head_end;
                const std::string hline =
                    head.substr(pos, eol - pos);
                pos = eol + 2;
                const size_t colon = hline.find(':');
                if (colon == std::string::npos || colon == 0)
                    continue;
                std::string key = hline.substr(0, colon);
                for (char &c : key)
                    c = asciiLower(c);
                req.headers.emplace_back(
                    std::move(key), trimOws(hline.substr(colon + 1)));
            }

            if (req.method != "GET" && req.method != "HEAD") {
                resp.status = 405;
                resp.body = "method not allowed\n";
            } else {
                HttpHandler handler;
                {
                    std::lock_guard<std::mutex> lock(handlersMu_);
                    auto it = handlers_.find(req.path);
                    if (it != handlers_.end()) {
                        handler = it->second;
                    } else {
                        // Longest matching prefix (map order makes the
                        // last match the longest among matches).
                        for (const auto &[prefix, h] : prefixHandlers_) {
                            if (req.path.compare(0, prefix.size(),
                                                 prefix) == 0)
                                handler = h;
                        }
                    }
                }
                if (!handler) {
                    resp.status = 404;
                    resp.body = "not found\n";
                } else {
                    resp = handler(req);
                }
            }
        }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    // Keep the connection only for a cleanly-parsed HTTP/1.1 request
    // that did not ask to close, has no body to desynchronize the
    // stream, and leaves room under the per-connection request bound.
    const bool keep = http11 && resp.status < 400 &&
                      served + 1 < max_requests &&
                      req.header("connection") != "close" &&
                      req.header("content-length").empty() &&
                      head_end != std::string::npos;

    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      httpStatusText(resp.status) + "\r\n";
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
           "\r\n";
    out += keep ? "Connection: keep-alive\r\n\r\n"
                : "Connection: close\r\n\r\n";
    if (req.method != "HEAD")
        out += resp.body;
    if (!sendAll(fd, out.data(), out.size()))
        return false;

    if (keep && head_end != std::string::npos)
        carry = head.substr(head_end + 4);  // Pipelined bytes.
    return keep;
}

} // namespace net
} // namespace astrea
