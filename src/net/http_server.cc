#include "net/http_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace astrea
{
namespace net
{

namespace
{

/** Cap on the request head; anything larger is a bad client. */
constexpr size_t kMaxRequestBytes = 64 * 1024;

bool
sendAll(int fd, const char *data, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

std::string
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

std::string
queryParam(const std::string &query, const std::string &key)
{
    size_t pos = 0;
    while (pos < query.size()) {
        size_t end = query.find('&', pos);
        if (end == std::string::npos)
            end = query.size();
        const size_t eq = query.find('=', pos);
        if (eq != std::string::npos && eq < end &&
            query.compare(pos, eq - pos, key) == 0) {
            return query.substr(eq + 1, end - eq - 1);
        }
        pos = end + 1;
    }
    return "";
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::handle(const std::string &path, HttpHandler handler)
{
    std::lock_guard<std::mutex> lock(handlersMu_);
    handlers_[path] = std::move(handler);
}

bool
HttpServer::start(const std::string &bind_addr, uint16_t port,
                  std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    if (running_)
        return fail("server already running");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");

    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1)
        return fail("bad bind address '" + bind_addr + "'");

    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + bind_addr + ":" + std::to_string(port));
    if (::listen(listenFd_, 16) != 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    running_ = true;
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_ && !acceptor_.joinable())
        return;
    running_ = false;
    if (listenFd_ >= 0) {
        // Unblock accept(): shutdown makes the blocked call return on
        // Linux; close releases the port.
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable())
        acceptor_.join();
}

void
HttpServer::acceptLoop()
{
    while (running_) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;  // Socket closed by stop(), or a fatal error.
        }
        timeval tv{};
        tv.tv_sec = 5;  // A stalled client may not wedge the acceptor.
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        serveConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    std::string head;
    char buf[4096];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.size() < kMaxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return;  // Timeout, reset, or close before a full head.
        head.append(buf, static_cast<size_t>(n));
    }

    // Request line: METHOD SP TARGET SP VERSION.
    size_t line_end = head.find("\r\n");
    if (line_end == std::string::npos)
        return;
    std::string line = head.substr(0, line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = line.find(' ', sp1 + 1);

    HttpResponse resp;
    HttpRequest req;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        resp.status = 400;
        resp.body = "bad request\n";
    } else {
        req.method = line.substr(0, sp1);
        std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        size_t q = target.find('?');
        req.path = target.substr(0, q);
        if (q != std::string::npos)
            req.query = target.substr(q + 1);

        if (req.method != "GET" && req.method != "HEAD") {
            resp.status = 405;
            resp.body = "method not allowed\n";
        } else {
            HttpHandler handler;
            {
                std::lock_guard<std::mutex> lock(handlersMu_);
                auto it = handlers_.find(req.path);
                if (it != handlers_.end())
                    handler = it->second;
            }
            if (!handler) {
                resp.status = 404;
                resp.body = "not found\n";
            } else {
                resp = handler(req);
            }
        }
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      httpStatusText(resp.status) + "\r\n";
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
           "\r\n";
    out += "Connection: close\r\n\r\n";
    if (req.method != "HEAD")
        out += resp.body;
    sendAll(fd, out.data(), out.size());
}

} // namespace net
} // namespace astrea
