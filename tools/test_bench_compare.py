#!/usr/bin/env python3
"""Unit tests for bench_compare.py (run by ctest as a python test).

These exercise the gate logic itself — threshold math, missing-metric
failures, min-count noise gating, exact metrics and result matching —
against synthetic reports written to a temp directory, so the perf gate
in CI is itself regression-tested.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare


def memory_report(bench="astrea_latency", **overrides):
    """One results-array report entry in the memory-experiment shape."""
    result = {
        "d": 9,
        "shots": 20000,
        "logical_errors": 120,
        "ler": 6e-3,
        "gave_ups": 40,
        "latency_ns": {"p50": 400.0, "p90": 600.0, "p99": 800.0},
        "latency_nontrivial_ns": {"p99": 900.0},
    }
    result.update(overrides)
    return {"bench": bench, "schema_version": 1, "results": [result]}


def blossom_report(**overrides):
    """A results-object report in the wall-clock distribution shape."""
    result = {
        "samples": 1523,
        "mean_ns": 9000.0,
        "p50_ns": 7000.0,
        "p90_ns": 20000.0,
        "p99_ns": 52000.0,
        "fraction_above_1us": 1.0,
    }
    result.update(overrides)
    return {"bench": "blossom_latency", "schema_version": 1,
            "results": result}


def micro_report(**overrides):
    """One kernel-microbench entry in the matching_micro shape."""
    result = {
        "m": 10,
        "rows": 945,
        "legacy_ns": 40000.0,
        "scalar_ns": 4000.0,
        "simd_ns": 1000.0,
        "speedup_scalar": 10.0,
        "speedup_simd": 40.0,
    }
    result.update(overrides)
    return {"bench": "matching_micro", "schema_version": 1,
            "results": [result]}


def throughput_report(**overrides):
    """One decode-throughput entry with per-kernel-tier blocks."""
    tier = {"single_ns": 400.0, "batched_ns": 150.0,
            "single_per_sec": 2.5e6, "batched_per_sec": 6.6e6,
            "batched_vs_single": 2.64}
    result = {
        "d": 7,
        "shots": 8192,
        "scalar": dict(tier),
        "avx2": dict(tier),
        "avx512": dict(tier),
    }
    result.update(overrides)
    return {"bench": "decode_throughput", "schema_version": 1,
            "results": [result]}


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, name, report):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(report, f)
        return path

    def run_compare(self, baseline, current, extra=None):
        argv = ["--baseline", self.write("base.json", baseline),
                "--current", self.write("cur.json", current)]
        return bench_compare.main(argv + (extra or []))

    def test_identical_reports_pass(self):
        self.assertEqual(
            self.run_compare(memory_report(), memory_report()), 0)

    def test_improvement_passes(self):
        faster = memory_report(
            latency_ns={"p50": 300.0, "p90": 500.0, "p99": 700.0})
        self.assertEqual(
            self.run_compare(memory_report(), faster), 0)

    def test_within_threshold_passes(self):
        near = memory_report(
            latency_ns={"p50": 400.0, "p90": 600.0, "p99": 880.0})
        self.assertEqual(
            self.run_compare(memory_report(), near), 0)

    def test_p99_regression_fails(self):
        slow = memory_report(
            latency_ns={"p50": 400.0, "p90": 600.0, "p99": 1000.0})
        self.assertEqual(
            self.run_compare(memory_report(), slow), 1)

    def test_metric_override_tightens_threshold(self):
        near = memory_report(
            latency_ns={"p50": 400.0, "p90": 600.0, "p99": 880.0})
        self.assertEqual(
            self.run_compare(memory_report(), near,
                             ["--metric", "latency_ns.p99=0.05"]), 1)

    def test_missing_metric_fails(self):
        gutted = memory_report()
        del gutted["results"][0]["latency_ns"]["p99"]
        self.assertEqual(
            self.run_compare(memory_report(), gutted), 1)

    def test_missing_result_row_fails(self):
        empty = dict(memory_report(), results=[])
        self.assertEqual(
            self.run_compare(memory_report(), empty), 1)

    def test_ler_regression_fails(self):
        worse = memory_report(ler=9e-3, logical_errors=180)
        self.assertEqual(
            self.run_compare(memory_report(), worse), 1)

    def test_low_count_rate_is_skipped(self):
        # 3 vs 9 logical errors is a 3x "regression" but statistically
        # meaningless; both sides below --min-count must be skipped.
        base = memory_report(ler=1.5e-4, logical_errors=3)
        cur = memory_report(ler=4.5e-4, logical_errors=9)
        self.assertEqual(self.run_compare(base, cur), 0)
        # But once either side has enough events, the gate applies.
        cur_big = memory_report(ler=4.5e-4, logical_errors=90)
        self.assertEqual(self.run_compare(base, cur_big), 1)

    def test_exact_metric_fails_on_any_change(self):
        base = blossom_report()
        cur = blossom_report(samples=1524)
        self.assertEqual(self.run_compare(base, cur), 1)

    def test_blossom_within_loose_threshold_passes(self):
        cur = blossom_report(p99_ns=80000.0, mean_ns=15000.0,
                             p50_ns=9000.0, p90_ns=30000.0)
        self.assertEqual(
            self.run_compare(blossom_report(), cur,
                             ["--threshold", "3.0"]), 0)

    def test_zero_baseline_fails_on_new_nonzero(self):
        base = memory_report(gave_ups=0)
        cur = memory_report(gave_ups=25)
        self.assertEqual(self.run_compare(base, cur), 1)

    def test_bench_name_mismatch_is_usage_error(self):
        self.assertEqual(
            self.run_compare(memory_report(), blossom_report()), 2)

    def test_speedup_increase_passes(self):
        cur = micro_report(speedup_simd=80.0, speedup_scalar=20.0)
        self.assertEqual(self.run_compare(micro_report(), cur), 0)

    def test_speedup_within_threshold_passes(self):
        # -20% is inside the default -30% floor.
        cur = micro_report(speedup_simd=32.0)
        self.assertEqual(self.run_compare(micro_report(), cur), 0)

    def test_speedup_collapse_fails(self):
        cur = micro_report(speedup_simd=10.0)
        self.assertEqual(self.run_compare(micro_report(), cur), 1)

    def test_speedup_threshold_flag_loosens_floor(self):
        cur = micro_report(speedup_simd=10.0)
        self.assertEqual(
            self.run_compare(micro_report(), cur,
                             ["--speedup-threshold", "0.9"]), 0)

    def test_kernel_rows_are_exact(self):
        cur = micro_report(rows=944)
        self.assertEqual(self.run_compare(micro_report(), cur), 1)

    def test_results_matched_by_m(self):
        base = micro_report()
        base["results"].append(dict(base["results"][0], m=8, rows=105))
        cur = micro_report()
        cur["results"].append(dict(cur["results"][0], m=8, rows=105))
        cur["results"].reverse()
        self.assertEqual(self.run_compare(base, cur), 0)

    def test_dropped_unlisted_field_fails_coverage(self):
        # "shots" is not in DEFAULT_METRICS; dropping it must still
        # fail — the coverage walk catches silently removed fields.
        gutted = memory_report()
        del gutted["results"][0]["shots"]
        self.assertEqual(
            self.run_compare(memory_report(), gutted), 1)

    def test_dropped_nested_unlisted_field_fails_coverage(self):
        gutted = memory_report()
        del gutted["results"][0]["latency_ns"]["p90"]
        # p90 IS listed; also drop an unlisted nested sibling to prove
        # the walk reaches nested objects.
        base = memory_report()
        base["results"][0]["latency_ns"]["overflow"] = 0
        self.assertEqual(self.run_compare(base, gutted), 1)

    def test_extra_current_fields_pass_coverage(self):
        # New fields in the current report are fine (the baseline will
        # pick them up when regenerated).
        grown = memory_report()
        grown["results"][0]["new_metric"] = 1.0
        self.assertEqual(
            self.run_compare(memory_report(), grown), 0)

    def test_histogram_bins_exempt_from_coverage(self):
        # Bin keys are data-dependent: a different sampled HW mix must
        # not fail the structural check.
        base = memory_report()
        base["results"][0]["hw_histogram"] = {
            "total": 100, "bins": {"1": 50, "6": 2}}
        cur = memory_report()
        cur["results"][0]["hw_histogram"] = {
            "total": 100, "bins": {"1": 52}}
        self.assertEqual(self.run_compare(base, cur), 0)

    def perf_block(self, available=True, ipc=1.5, llc=0.02):
        if not available:
            return {"available": False, "counters_enabled": True,
                    "stage_stride": 64, "stages": {}}
        return {"available": True, "counters_enabled": True,
                "stage_stride": 64, "ipc": ipc, "llc_miss_rate": llc,
                "cycles_per_shot": 900.0, "stages": {}}

    def test_perf_skipped_when_baseline_unavailable(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block(available=False)
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(ipc=0.1, llc=0.9)
        self.assertEqual(self.run_compare(base, cur), 0)

    def test_perf_skipped_when_current_unavailable(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block()
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(available=False)
        self.assertEqual(self.run_compare(base, cur), 0)

    def test_perf_block_absence_is_not_a_regression(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block()
        self.assertEqual(self.run_compare(base, memory_report()), 0)

    def test_ipc_floor_fails_on_collapse(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block(ipc=2.0)
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(ipc=1.0)
        self.assertEqual(self.run_compare(base, cur), 1)

    def test_ipc_within_threshold_passes(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block(ipc=2.0)
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(ipc=1.8)
        self.assertEqual(self.run_compare(base, cur), 0)

    def test_ipc_increase_passes(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block(ipc=1.0)
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(ipc=3.0)
        self.assertEqual(self.run_compare(base, cur), 0)

    def test_llc_miss_rate_ceiling_fails_on_jump(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block(llc=0.02)
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(llc=0.10)
        self.assertEqual(self.run_compare(base, cur), 1)

    def test_llc_miss_rate_improvement_passes(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block(llc=0.10)
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(llc=0.02)
        self.assertEqual(self.run_compare(base, cur), 0)

    def test_perf_threshold_flag_loosens_gate(self):
        base = memory_report()
        base["results"][0]["perf"] = self.perf_block(ipc=2.0)
        cur = memory_report()
        cur["results"][0]["perf"] = self.perf_block(ipc=1.0)
        self.assertEqual(
            self.run_compare(base, cur, ["--perf-threshold", "0.6"]),
            0)

    def test_null_avx512_column_is_skipped(self):
        # Baseline measured AVX-512; current host lacks it and emits
        # null. Optional kernel columns skip instead of failing.
        base = micro_report(avx512_ns=500.0, speedup_avx512=80.0)
        cur = micro_report(avx512_ns=None, speedup_avx512=None)
        self.assertEqual(self.run_compare(base, cur), 0)

    def test_absent_avx512_column_is_skipped(self):
        base = micro_report(avx512_ns=500.0, speedup_avx512=80.0)
        self.assertEqual(self.run_compare(base, micro_report()), 0)

    def test_present_avx512_column_still_gated(self):
        base = micro_report(avx512_ns=500.0, speedup_avx512=80.0)
        cur = micro_report(avx512_ns=500.0, speedup_avx512=20.0)
        self.assertEqual(self.run_compare(base, cur), 1)

    def test_throughput_identical_passes(self):
        self.assertEqual(
            self.run_compare(throughput_report(), throughput_report()),
            0)

    def test_throughput_batched_collapse_fails(self):
        cur = throughput_report()
        cur["results"][0]["avx2"] = dict(
            cur["results"][0]["avx2"],
            batched_per_sec=2.5e6, batched_vs_single=1.0)
        self.assertEqual(
            self.run_compare(throughput_report(), cur), 1)

    def test_throughput_null_tier_block_is_skipped(self):
        # A host without AVX-512 emits the whole tier block as null;
        # the per-metric checks and the coverage walk both skip it.
        cur = throughput_report(avx512=None)
        self.assertEqual(
            self.run_compare(throughput_report(), cur), 0)

    def test_throughput_scalar_tier_is_required(self):
        # The scalar tier is not optional: dropping it must fail.
        cur = throughput_report(scalar=None)
        self.assertEqual(
            self.run_compare(throughput_report(), cur), 1)

    def test_results_matched_by_distance_not_order(self):
        base = memory_report()
        base["results"].append(
            dict(base["results"][0], d=11,
                 latency_ns={"p50": 500.0, "p90": 700.0, "p99": 900.0}))
        cur = memory_report()
        cur["results"].append(
            dict(cur["results"][0], d=11,
                 latency_ns={"p50": 500.0, "p90": 700.0, "p99": 900.0}))
        cur["results"].reverse()
        self.assertEqual(self.run_compare(base, cur), 0)


if __name__ == "__main__":
    unittest.main()
