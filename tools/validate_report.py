#!/usr/bin/env python3
"""Validate a bench --json-out report against the expected schema.

Usage: validate_report.py [--require-audit] REPORT.json [...]

Checks that each file parses as JSON and carries the standard envelope
written by bench_util.hh (beginBenchReport/finishBenchReport):

  {
    "bench": "<id>",
    "schema_version": 1,
    "config": { ... },
    "results": [...] or { ... },
    "metrics": {
      "counters": {...}, "gauges": {...},
      "int_histograms": {...}, "latency_histograms": {...}
    }
  }

Files whose top level carries a "service" key are instead validated
against the decode service's /statusz schema (DecodeServiceCore::
statuszJson), so CI can point this script at a scraped snapshot.
Schema version 1 (no auditor), 2 (with an "audit" object), 3 (adds a
"perf" object with hardware-counter attribution), 4 (adds a
"trace_store" object for the tail-sampled decode tracer) and 5 (adds
an always-present "fleet" object for the sharded ingest fleet;
enabled:false when serve runs without --fleet) are all accepted;
--require-audit additionally demands schema >= 2 with a running
auditor that completed at least one audit and dropped no samples.

Exits nonzero with a message on the first violation, so CI fails when a
bench silently stops producing valid reports.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_audit(path, audit, require_audit):
    """Validate the statusz 'audit' object (schema version 2)."""
    if not isinstance(audit, dict):
        fail(path, "'audit' must be an object")
    for key in ("enabled", "rate", "offered", "sampled", "completed",
                "queue_depth", "queue_capacity", "queue_drops",
                "oversize_drops", "optimal", "suboptimal",
                "observable_mismatches", "optimality_rate",
                "give_ups_offered", "give_ups_audited",
                "give_up_oracle_success", "give_up_coverage",
                "captures"):
        if key not in audit:
            fail(path, f"audit missing '{key}'")
    for key in ("offered", "sampled", "completed", "queue_drops",
                "oversize_drops", "optimal", "suboptimal",
                "observable_mismatches", "captures"):
        v = audit[key]
        if not isinstance(v, int) or v < 0:
            fail(path, f"audit.{key} must be a non-negative integer")
    rate = audit["optimality_rate"]
    if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
        fail(path, "audit.optimality_rate must be in [0, 1]")
    if require_audit:
        if not audit["enabled"]:
            fail(path, "audit.enabled is false (--require-audit)")
        if audit["completed"] < 1:
            fail(path, "audit.completed is 0 (--require-audit)")
        if audit["queue_drops"] != 0:
            fail(path, f"audit.queue_drops is "
                       f"{audit['queue_drops']} (--require-audit)")


def validate_perf(path, perf):
    """Validate the statusz 'perf' object (schema version 3)."""
    if not isinstance(perf, dict):
        fail(path, "'perf' must be an object")
    for key in ("counters_enabled", "available", "stage_stride",
                "stages"):
        if key not in perf:
            fail(path, f"perf missing '{key}'")
    for key in ("counters_enabled", "available"):
        if not isinstance(perf[key], bool):
            fail(path, f"perf.{key} must be a bool")
    # A degradation reason is only required when counters were actually
    # requested: with --perf-counters off the layer never probes, so
    # "available: false" with no reason is the normal idle state.
    if (perf["counters_enabled"] and not perf["available"]
            and "reason" not in perf):
        fail(path, "perf unavailable but no 'reason' given")
    if not isinstance(perf["stages"], dict):
        fail(path, "perf.stages must be an object")
    for stage, t in perf["stages"].items():
        for key in ("sections", "shots", "cycles", "instructions",
                    "ipc", "llc_miss_rate", "cycles_per_shot"):
            if key not in t:
                fail(path, f"perf.stages.{stage} missing '{key}'")


def validate_trace_store(path, trace):
    """Validate the statusz 'trace_store' object (schema version 4)."""
    if not isinstance(trace, dict):
        fail(path, "'trace_store' must be an object")
    for key in ("enabled", "considered", "kept", "dropped", "evicted",
                "spans_dropped", "occupancy", "capacity",
                "tail_threshold_ns", "tail_effective_ns",
                "head_stride"):
        if key not in trace:
            fail(path, f"trace_store missing '{key}'")
    if not isinstance(trace["enabled"], bool):
        fail(path, "trace_store.enabled must be a bool")
    for key in ("considered", "kept", "dropped", "evicted",
                "spans_dropped", "occupancy", "capacity",
                "head_stride"):
        v = trace[key]
        if not isinstance(v, int) or v < 0:
            fail(path,
                 f"trace_store.{key} must be a non-negative integer")
    if trace["occupancy"] > trace["capacity"]:
        fail(path, "trace_store.occupancy exceeds capacity")
    for key in ("tail_threshold_ns", "tail_effective_ns"):
        v = trace[key]
        if not isinstance(v, (int, float)) or v < 0:
            fail(path, f"trace_store.{key} must be >= 0")


def validate_fleet(path, fleet):
    """Validate the statusz 'fleet' object (schema version 5)."""
    if not isinstance(fleet, dict):
        fail(path, "'fleet' must be an object")
    if "enabled" not in fleet:
        fail(path, "fleet missing 'enabled'")
    if not isinstance(fleet["enabled"], bool):
        fail(path, "fleet.enabled must be a bool")
    if not fleet["enabled"]:
        return  # serve without --fleet: just the enabled flag.
    for key in ("shards", "ring_capacity", "max_batch", "max_delay_ns",
                "shed_low_watermark", "shed_high_watermark",
                "max_priority", "connections", "frames",
                "malformed_frames", "enqueued", "shed", "ring_full",
                "coalesced_batches", "decoded_shots", "queue_depths"):
        if key not in fleet:
            fail(path, f"fleet missing '{key}'")
    for key in ("shards", "ring_capacity", "max_batch", "max_priority",
                "connections", "frames", "malformed_frames",
                "enqueued", "shed", "ring_full", "coalesced_batches",
                "decoded_shots"):
        v = fleet[key]
        if not isinstance(v, int) or v < 0:
            fail(path, f"fleet.{key} must be a non-negative integer")
    if fleet["shards"] < 1:
        fail(path, "fleet.shards must be >= 1")
    for key in ("shed_low_watermark", "shed_high_watermark"):
        v = fleet[key]
        if not isinstance(v, (int, float)) or not 0.0 <= v <= 1.0:
            fail(path, f"fleet.{key} must be a fraction in [0, 1]")
    depths = fleet["queue_depths"]
    if not isinstance(depths, list) or len(depths) != fleet["shards"]:
        fail(path, "fleet.queue_depths must be an array with one "
                   "entry per shard")
    for i, v in enumerate(depths):
        if not isinstance(v, int) or v < 0:
            fail(path, f"fleet.queue_depths[{i}] must be a "
                       f"non-negative integer")


def validate_statusz(path, doc, require_audit=False):
    """Validate a decode-service /statusz snapshot."""
    if doc.get("service") != "astrea_serve":
        fail(path, f"unknown service {doc.get('service')!r}")
    schema = doc.get("schema_version")
    if schema not in (1, 2, 3, 4, 5):
        fail(path, f"unknown schema_version {schema!r}")
    if require_audit and schema < 2:
        fail(path, "--require-audit needs schema_version >= 2")
    for key in ("healthy", "uptime_ticks", "config", "totals",
                "window", "slo", "drift"):
        if key not in doc:
            fail(path, f"missing top-level key '{key}'")
    if schema >= 2:
        if "audit" not in doc:
            fail(path, "schema_version 2 requires an 'audit' object")
        validate_audit(path, doc["audit"], require_audit)
    if schema >= 3:
        if "perf" not in doc:
            fail(path, "schema_version 3 requires a 'perf' object")
        validate_perf(path, doc["perf"])
    if schema >= 4:
        if "trace_store" not in doc:
            fail(path,
                 "schema_version 4 requires a 'trace_store' object")
        validate_trace_store(path, doc["trace_store"])
    if schema >= 5:
        if "fleet" not in doc:
            fail(path, "schema_version 5 requires a 'fleet' object")
        validate_fleet(path, doc["fleet"])

    config = doc["config"]
    for key in ("d", "p", "decoder", "workers", "budget_ns",
                "slo_target", "window_seconds"):
        if key not in config:
            fail(path, f"config missing '{key}'")

    totals = doc["totals"]
    for key in ("decodes", "nontrivial_decodes", "logical_errors",
                "give_ups", "deadline_misses"):
        if key not in totals:
            fail(path, f"totals missing '{key}'")
        if not isinstance(totals[key], int) or totals[key] < 0:
            fail(path, f"totals.{key} must be a non-negative integer")

    window = doc["window"]
    for key in ("decodes", "decode_rate_hz", "deadline_miss_fraction",
                "give_up_fraction", "logical_error_fraction",
                "latency_ns"):
        if key not in window:
            fail(path, f"window missing '{key}'")
    for key in ("count", "p50", "p90", "p99", "p999"):
        if key not in window["latency_ns"]:
            fail(path, f"window.latency_ns missing '{key}'")
    for key in ("deadline_miss_fraction", "give_up_fraction",
                "logical_error_fraction"):
        v = window[key]
        if not isinstance(v, (int, float)) or not 0.0 <= v <= 1.0:
            fail(path, f"window.{key} must be a fraction in [0, 1]")

    for key in ("target", "error_budget", "fast_burn", "slow_burn"):
        if key not in doc["slo"]:
            fail(path, f"slo missing '{key}'")
    for key in ("chi_square", "threshold", "baseline_ready",
                "alarmed"):
        if key not in doc["drift"]:
            fail(path, f"drift missing '{key}'")
    chi = doc["drift"]["chi_square"]
    if not isinstance(chi, (int, float)) or not 0.0 <= chi <= 1.0:
        fail(path, "drift.chi_square must be in [0, 1]")

    print(f"{path}: ok (service={doc['service']}, "
          f"decodes={totals['decodes']})")


def validate(path, require_audit=False):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable as JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")

    if "service" in doc:
        validate_statusz(path, doc, require_audit)
        return
    if require_audit:
        fail(path, "--require-audit only applies to /statusz "
                   "snapshots")

    for key in ("bench", "schema_version", "config", "results",
                "metrics"):
        if key not in doc:
            fail(path, f"missing top-level key '{key}'")

    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail(path, "'bench' must be a nonempty string")
    if doc["schema_version"] != 1:
        fail(path, f"unknown schema_version {doc['schema_version']!r}")
    if not isinstance(doc["config"], dict):
        fail(path, "'config' must be an object")
    if not isinstance(doc["results"], (dict, list)):
        fail(path, "'results' must be an object or array")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        fail(path, "'metrics' must be an object")
    for section in ("counters", "gauges", "int_histograms",
                    "latency_histograms"):
        if section not in metrics:
            fail(path, f"metrics missing section '{section}'")
        if not isinstance(metrics[section], dict):
            fail(path, f"metrics section '{section}' is not an object")

    for name, snap in metrics["latency_histograms"].items():
        for field in ("count", "mean_ns", "min_ns", "max_ns", "p50_ns",
                      "p90_ns", "p99_ns"):
            if field not in snap:
                fail(path,
                     f"latency histogram '{name}' missing '{field}'")

    # Optional: allocations-per-decode block (bench_astrea_latency).
    if "allocations" in doc:
        alloc = doc["allocations"]
        if not isinstance(alloc, dict):
            fail(path, "'allocations' must be an object")
        for key in ("hook_installed", "decodes", "total", "per_decode"):
            if key not in alloc:
                fail(path, f"allocations missing '{key}'")
        if not isinstance(alloc["hook_installed"], bool):
            fail(path, "allocations.hook_installed must be a bool")
        for key in ("decodes", "total"):
            if not isinstance(alloc[key], int) or alloc[key] < 0:
                fail(path,
                     f"allocations.{key} must be a non-negative "
                     f"integer")
        per = alloc["per_decode"]
        if not isinstance(per, (int, float)) or per < 0:
            fail(path, "allocations.per_decode must be >= 0")
        if alloc["hook_installed"] and alloc["per_decode"] != 0:
            fail(path,
                 "allocations.per_decode must be 0 when the counting "
                 "hook is installed (steady-state decode must not "
                 "allocate)")

    print(f"{path}: ok (bench={doc['bench']})")


def main(argv):
    require_audit = False
    paths = []
    for arg in argv[1:]:
        if arg == "--require-audit":
            require_audit = True
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in paths:
        validate(path, require_audit)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
