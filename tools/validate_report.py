#!/usr/bin/env python3
"""Validate a bench --json-out report against the expected schema.

Usage: validate_report.py REPORT.json [REPORT.json ...]

Checks that each file parses as JSON and carries the standard envelope
written by bench_util.hh (beginBenchReport/finishBenchReport):

  {
    "bench": "<id>",
    "schema_version": 1,
    "config": { ... },
    "results": [...] or { ... },
    "metrics": {
      "counters": {...}, "gauges": {...},
      "int_histograms": {...}, "latency_histograms": {...}
    }
  }

Exits nonzero with a message on the first violation, so CI fails when a
bench silently stops producing valid reports.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable as JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")

    for key in ("bench", "schema_version", "config", "results",
                "metrics"):
        if key not in doc:
            fail(path, f"missing top-level key '{key}'")

    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail(path, "'bench' must be a nonempty string")
    if doc["schema_version"] != 1:
        fail(path, f"unknown schema_version {doc['schema_version']!r}")
    if not isinstance(doc["config"], dict):
        fail(path, "'config' must be an object")
    if not isinstance(doc["results"], (dict, list)):
        fail(path, "'results' must be an object or array")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        fail(path, "'metrics' must be an object")
    for section in ("counters", "gauges", "int_histograms",
                    "latency_histograms"):
        if section not in metrics:
            fail(path, f"metrics missing section '{section}'")
        if not isinstance(metrics[section], dict):
            fail(path, f"metrics section '{section}' is not an object")

    for name, snap in metrics["latency_histograms"].items():
        for field in ("count", "mean_ns", "min_ns", "max_ns", "p50_ns",
                      "p90_ns", "p99_ns"):
            if field not in snap:
                fail(path,
                     f"latency histogram '{name}' missing '{field}'")

    print(f"{path}: ok (bench={doc['bench']})")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
