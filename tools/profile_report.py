#!/usr/bin/env python3
"""Summarize a sampling-profiler capture.

Input is either collapsed/folded stacks ("frame;frame;frame count"
lines, as /pprof/profile and --profile-out emit) or speedscope JSON
(/pprof/profile?format=speedscope). The report lists the hottest
frames two ways:

  self  - samples where the frame was the leaf (on-CPU);
  total - samples where the frame appeared anywhere on the stack.

Usage:
  profile_report.py PROFILE [--top=N] [--filter=SUBSTR]
  profile_report.py --self-test

The collapsed input is also exactly what flamegraph.pl and
speedscope.app accept, so this tool is a summary, not a replacement:
  curl 'localhost:9500/pprof/profile?seconds=5' > prof.folded
  ./profile_report.py prof.folded
  flamegraph.pl prof.folded > prof.svg
"""

import json
import sys


def parse_collapsed(text):
    """Parse folded stacks into a list of (frames, count) pairs."""
    stacks = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        head, sep, count = line.rpartition(" ")
        if not sep:
            raise ValueError(f"line {lineno}: no count field")
        try:
            n = int(count)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad count {count!r}") from None
        frames = head.split(";")
        if not head or not all(frames):
            raise ValueError(f"line {lineno}: empty frame")
        stacks.append((frames, n))
    return stacks


def parse_speedscope(doc):
    """Parse a speedscope 'sampled' document into (frames, count)."""
    frames = [f["name"] for f in doc["shared"]["frames"]]
    prof = doc["profiles"][0]
    if prof.get("type") != "sampled":
        raise ValueError("only 'sampled' speedscope profiles")
    stacks = []
    for sample, weight in zip(prof["samples"], prof["weights"]):
        stacks.append(([frames[i] for i in sample], int(weight)))
    return stacks


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return parse_speedscope(json.loads(text))
    return parse_collapsed(text)


def summarize(stacks):
    """Return (total, self_counts, total_counts) frame tallies."""
    self_counts = {}
    total_counts = {}
    grand = 0
    for frames, count in stacks:
        grand += count
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        # A frame recursing onto itself still counts its samples once.
        for frame in set(frames):
            total_counts[frame] = total_counts.get(frame, 0) + count
    return grand, self_counts, total_counts


def print_table(title, counts, grand, top, needle):
    print(title)
    shown = 0
    for frame, count in sorted(counts.items(),
                               key=lambda kv: (-kv[1], kv[0])):
        if needle and needle not in frame:
            continue
        pct = 100.0 * count / grand if grand else 0.0
        print(f"  {count:8d} {pct:6.2f}%  {frame}")
        shown += 1
        if shown >= top:
            break
    if shown == 0:
        print("  (no frames)")


def report(stacks, top=15, needle=""):
    grand, self_counts, total_counts = summarize(stacks)
    distinct = len({f for frames, _ in stacks for f in frames})
    print(f"{grand} samples, {len(stacks)} distinct stacks, "
          f"{distinct} distinct frames")
    print()
    print_table("top frames by self time:", self_counts, grand, top,
                needle)
    print()
    print_table("top frames by total time:", total_counts, grand, top,
                needle)
    return grand


def self_test():
    collapsed = "main;decode;gather 3\nmain;decode;match 5\nmain;io 2\n"
    stacks = parse_collapsed(collapsed)
    assert stacks == [(["main", "decode", "gather"], 3),
                      (["main", "decode", "match"], 5),
                      (["main", "io"], 2)], stacks
    grand, self_c, total_c = summarize(stacks)
    assert grand == 10, grand
    assert self_c == {"gather": 3, "match": 5, "io": 2}, self_c
    assert total_c["main"] == 10 and total_c["decode"] == 8, total_c

    # Recursion: the frame's total counts the sample once.
    g2, _, t2 = summarize(parse_collapsed("a;b;a 4\n"))
    assert g2 == 4 and t2["a"] == 4, t2

    doc = {
        "shared": {"frames": [{"name": "main"}, {"name": "hot"}]},
        "profiles": [{"type": "sampled",
                      "samples": [[0, 1], [0]],
                      "weights": [7, 3]}],
    }
    stacks2 = parse_speedscope(doc)
    assert stacks2 == [(["main", "hot"], 7), (["main"], 3)], stacks2

    for bad in ("nocount\n", "a;b x\n", "; 3\n"):
        try:
            parse_collapsed(bad)
        except ValueError:
            pass
        else:
            raise AssertionError(f"accepted bad input {bad!r}")

    print("profile_report.py self-test: OK")
    return 0


def main(argv):
    top = 15
    needle = ""
    paths = []
    for arg in argv[1:]:
        if arg == "--self-test":
            return self_test()
        if arg.startswith("--top="):
            top = int(arg.split("=", 1)[1])
        elif arg.startswith("--filter="):
            needle = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        stacks = load(paths[0])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: cannot parse {paths[0]}: {e}", file=sys.stderr)
        return 1
    if not stacks:
        print("empty profile (no samples captured)")
        return 1
    report(stacks, top=top, needle=needle)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
