#!/usr/bin/env python3
"""Compare a bench JSON report against a committed baseline.

The bench binaries emit schema-versioned reports (see bench_util.hh /
tools/validate_report.py). This tool diffs the headline metrics of a
fresh report against a baseline committed under bench/baselines/ and
fails when a metric regressed beyond its threshold, giving CI a
perf-regression gate.

Two metric families are treated differently:

* Latency percentiles (modeled cycles for the hardware decoders, so
  deterministic given seed and thread count; wall-clock for software
  baselines, so noisy). A relative increase beyond the per-metric
  threshold fails; improvements always pass.
* Rates backed by event counts (ler, gave_ups). These are Monte-Carlo
  estimates: with fewer than --min-count events in both runs the
  comparison is skipped as statistically meaningless, otherwise a
  relative increase beyond the threshold fails.

Results are matched between the two reports by their "d" entry when
present, by position otherwise. A metric present in the baseline but
missing from the current report fails the gate: silently dropping a
metric is exactly the kind of regression this tool exists to catch.
That guarantee is structural, not list-based: after the per-metric
comparisons, every leaf field of each baseline result must still
exist in the current report (histogram bins and the host-dependent
"perf" block excepted), so a renamed or dropped field fails even if
it was never in DEFAULT_METRICS.

Hardware perf-counter metrics (perf.ipc, perf.llc_miss_rate) are
gated only when both reports were collected with working counters
(perf.available true on both sides); a run on a locked-down host
skips them instead of failing.

Optional kernel columns (the avx512 microbench columns and the
per-tier avx2/avx512 throughput blocks) are emitted as JSON null on
hosts that lack the instruction set; when either side of the
comparison lacks such a value, the metric is skipped rather than
failed, and the structural coverage check exempts it.

Exit codes: 0 pass, 1 regression (or missing metric), 2 usage/IO error.

Usage:
    bench_compare.py --baseline bench/baselines/astrea_latency.json \
        --current astrea_report.json [--threshold 0.15]
        [--metric latency_ns.p99=0.10] [--min-count 10]
"""

import argparse
import json
import sys

# Metrics compared by default: (dotted path, kind). Only paths present
# in the baseline are checked, so one list serves every bench schema.
# Kinds: "latency" (relative limit --threshold), "rate" (relative limit
# --rate-threshold, skipped below --min-count events), "exact" (must
# match bit-for-bit: these are deterministic given seed and threads),
# "speedup" (a ratio that must not FALL more than --speedup-threshold
# below the baseline; increases always pass).
DEFAULT_METRICS = [
    # Memory-experiment reports (results array, e.g. astrea_latency).
    ("latency_ns.p50", "latency"),
    ("latency_ns.p90", "latency"),
    ("latency_ns.p99", "latency"),
    ("latency_nontrivial_ns.p99", "latency"),
    ("ler", "rate"),
    ("gave_ups", "rate"),
    # Wall-clock distribution reports (results object, e.g.
    # blossom_latency).
    ("samples", "exact"),
    ("mean_ns", "latency"),
    ("p50_ns", "latency"),
    ("p90_ns", "latency"),
    ("p99_ns", "latency"),
    ("fraction_above_1us", "latency"),
    # Kernel microbench reports (results array keyed by "m", e.g.
    # matching_micro).
    ("rows", "exact"),
    ("legacy_ns", "latency"),
    ("scalar_ns", "latency"),
    ("simd_ns", "latency"),
    ("avx512_ns", "latency"),
    ("speedup_scalar", "speedup"),
    ("speedup_simd", "speedup"),
    ("speedup_avx512", "speedup"),
    # Decode-throughput macro-bench (results array keyed by "d",
    # per-kernel-tier blocks; decodes/sec and the batched-vs-single
    # ratio are floors).
    ("scalar.single_per_sec", "speedup"),
    ("scalar.batched_per_sec", "speedup"),
    ("scalar.batched_vs_single", "speedup"),
    ("avx2.single_per_sec", "speedup"),
    ("avx2.batched_per_sec", "speedup"),
    ("avx2.batched_vs_single", "speedup"),
    ("avx512.single_per_sec", "speedup"),
    ("avx512.batched_per_sec", "speedup"),
    ("avx512.batched_vs_single", "speedup"),
    # Fleet saturation macro-bench (results array keyed by "case" =
    # STREAMSxSHARDS). Throughput and the fleet-vs-synchronous ratio
    # are floors; the client-observed ingest latency percentiles are
    # ceilings.
    ("shots_per_sec", "speedup"),
    ("single_per_sec", "speedup"),
    ("fleet_vs_single", "speedup"),
    ("p50_ingest_ns", "latency"),
    ("p99_ingest_ns", "latency"),
    # Hardware perf counters (reports run with --perf-counters on a
    # perf-capable host). IPC is a floor, the LLC miss rate a ceiling;
    # both are skipped unless perf.available is true in BOTH reports.
    ("perf.ipc", "perf_floor"),
    ("perf.llc_miss_rate", "perf_ceiling"),
]

# Event-count fields guarding each rate metric (noise gate).
RATE_COUNT_FIELDS = {
    "ler": "logical_errors",
    "gave_ups": "gave_ups",
}

# Optional kernel columns: benches emit these as null (or an entire
# null block) on hosts that lack the instruction set. When either side
# of the comparison lacks the value, the metric is skipped rather than
# failed — "not measured here" is not a regression. They are likewise
# exempt from the structural coverage check.
OPTIONAL_METRIC_PREFIXES = (
    "avx512_ns",
    "speedup_avx512",
    "avx2",
    "avx512",
)


def is_optional_metric(path):
    return any(path == p or path.startswith(p + ".")
               for p in OPTIONAL_METRIC_PREFIXES)

# Subtrees exempt from the structural coverage check: histogram bin
# keys are data-dependent (which Hamming weights a run happens to
# sample), and the perf block depends on host counter access.
COVERAGE_EXEMPT_PREFIXES = (
    "hw_histogram.bins",
    "gave_up_hw.bins",
    "perf",
)


def leaf_paths(obj, prefix=""):
    """Yield the dotted path of every non-dict leaf under obj."""
    if not isinstance(obj, dict):
        yield prefix
        return
    for key, value in obj.items():
        sub = "%s.%s" % (prefix, key) if prefix else key
        for path in leaf_paths(value, sub):
            yield path


def check_coverage(label, base_res, cur_res, checked, failures,
                   lines):
    """Fail when any baseline leaf vanished from the current result.

    `checked` paths were already compared (and failed loudly if
    missing) by compare_metric; exempt subtrees are data- or
    host-dependent. Everything else present in the baseline must
    still exist: a silently dropped field is a regression.
    """
    missing = []
    for path in leaf_paths(base_res):
        if path in checked:
            continue
        if any(path == p or path.startswith(p + ".")
               for p in COVERAGE_EXEMPT_PREFIXES):
            continue
        if is_optional_metric(path):
            continue
        if lookup(cur_res, path) is None:
            missing.append(path)
    for path in sorted(missing):
        failures.append(
            "%s %s: present in baseline but missing from current "
            "report" % (label, path))
        lines.append("  %-28s baseline field MISSING from current "
                     "report  FAIL" % path)


def lookup(obj, dotted):
    """Resolve a dotted path; None when any component is missing."""
    node = obj
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


# Keys identifying a result row, tried in order: decoding distance for
# the memory-experiment benches, tile node count for the kernel
# microbenches, the STREAMSxSHARDS case name for the fleet saturation
# bench.
RESULT_KEYS = ("d", "m", "case")


def result_key(result):
    if isinstance(result, dict):
        for key in RESULT_KEYS:
            if key in result:
                return key
    return None


def result_label(result, index):
    key = result_key(result)
    if key is not None:
        return "%s=%s" % (key, result[key])
    return "result[%d]" % index


def match_results(baseline, current):
    """Pair up result entries by "d"/"m" when present, else by index."""
    base_list = baseline.get("results", [])
    cur_list = current.get("results", [])
    # Single-result benches emit one results object instead of a list.
    if isinstance(base_list, dict):
        return [("results", base_list,
                 cur_list if isinstance(cur_list, dict) else None)]
    cur_by_key = {
        (result_key(r), r[result_key(r)]): r
        for r in cur_list if result_key(r) is not None
    }
    pairs = []
    for i, base in enumerate(base_list):
        key = result_key(base)
        if key is not None:
            pairs.append((result_label(base, i), base,
                          cur_by_key.get((key, base[key]))))
        else:
            cur = cur_list[i] if i < len(cur_list) else None
            pairs.append((result_label(base, i), base, cur))
    return pairs


def compare_metric(label, path, kind, threshold, base_res, cur_res,
                   min_count, failures, lines):
    if kind in ("perf_floor", "perf_ceiling"):
        # Counter-derived metrics only compare when both runs had
        # working counters; a locked-down host is not a regression.
        base_avail = lookup(base_res, "perf.available")
        cur_avail = (lookup(cur_res, "perf.available")
                     if cur_res is not None else None)
        if base_avail is not True or cur_avail is not True:
            lines.append(
                "  %-28s skip (perf counters unavailable)" % path)
            return

    base_val = lookup(base_res, path)
    if base_val is None:
        # The baseline never had this metric; nothing to guard.
        return
    cur_val = lookup(cur_res, path) if cur_res is not None else None
    if cur_val is None:
        if is_optional_metric(path):
            lines.append(
                "  %-28s %12g -> null  skip (optional kernel column "
                "absent)" % (path, base_val))
            return
        failures.append("%s %s: missing from current report" %
                        (label, path))
        lines.append("  %-28s %12g -> MISSING  FAIL" %
                     (path, base_val))
        return

    if kind == "rate":
        count_field = RATE_COUNT_FIELDS.get(path.split(".")[0])
        if count_field is not None:
            base_n = base_res.get(count_field, 0)
            cur_n = cur_res.get(count_field, 0)
            if base_n < min_count and cur_n < min_count:
                lines.append(
                    "  %-28s %12g -> %-12g skip (<%d events)" %
                    (path, base_val, cur_val, min_count))
                return

    if kind == "exact":
        regressed = cur_val != base_val
        delta_text = "changed" if regressed else "identical"
        verdict = "FAIL" if regressed else "ok"
        lines.append("  %-28s %12g -> %-12g %s (%s, exact)" %
                     (path, base_val, cur_val, delta_text, verdict))
        if regressed:
            failures.append(
                "%s %s: %g -> %g (deterministic metric changed)" %
                (label, path, base_val, cur_val))
        return

    if kind in ("speedup", "perf_floor"):
        # A speedup (or IPC) is a floor: falling below the baseline
        # beyond the threshold fails, getting faster always passes.
        if base_val <= 0:
            return
        delta = (cur_val - base_val) / base_val
        regressed = delta < -threshold
        verdict = "FAIL" if regressed else "ok"
        lines.append("  %-28s %12g -> %-12g %+.1f%% (%s, limit "
                     "-%.0f%%)" %
                     (path, base_val, cur_val, 100.0 * delta, verdict,
                      100.0 * threshold))
        if regressed:
            failures.append("%s %s: %gx -> %gx fell more than %.0f%%" %
                            (label, path, base_val, cur_val,
                             100.0 * threshold))
        return

    if base_val <= 0:
        regressed = cur_val > 0
        delta_text = "new-nonzero" if regressed else "ok"
    else:
        delta = (cur_val - base_val) / base_val
        regressed = delta > threshold
        delta_text = "%+.1f%%" % (100.0 * delta)

    verdict = "FAIL" if regressed else "ok"
    lines.append("  %-28s %12g -> %-12g %s (%s, limit +%.0f%%)" %
                 (path, base_val, cur_val, delta_text, verdict,
                  100.0 * threshold))
    if regressed:
        failures.append("%s %s: %g -> %g exceeds +%.0f%%" %
                        (label, path, base_val, cur_val,
                         100.0 * threshold))


def parse_metric_overrides(specs):
    overrides = {}
    for spec in specs:
        if "=" not in spec:
            raise ValueError(
                "--metric expects PATH=THRESHOLD, got %r" % spec)
        path, _, value = spec.partition("=")
        overrides[path] = float(value)
    return overrides


def load_report(path):
    with open(path) as f:
        return json.load(f)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff a bench report against a baseline.")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative limit for latency metrics "
                             "(default 0.15 = +15%%)")
    parser.add_argument("--rate-threshold", type=float, default=0.25,
                        help="relative limit for rate metrics "
                             "(default 0.25)")
    parser.add_argument("--speedup-threshold", type=float, default=0.30,
                        help="how far a speedup ratio may fall below "
                             "its baseline (default 0.30 = -30%%)")
    parser.add_argument("--perf-threshold", type=float, default=0.25,
                        help="relative limit for hardware perf-counter "
                             "metrics (default 0.25)")
    parser.add_argument("--min-count", type=int, default=10,
                        help="skip rate metrics when both runs saw "
                             "fewer events than this (default 10)")
    parser.add_argument("--metric", action="append", default=[],
                        metavar="PATH=THRESHOLD",
                        help="override one metric's threshold; "
                             "repeatable")
    args = parser.parse_args(argv)

    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
        overrides = parse_metric_overrides(args.metric)
    except (OSError, ValueError) as exc:
        print("bench_compare: %s" % exc, file=sys.stderr)
        return 2

    if baseline.get("bench") != current.get("bench"):
        print("bench_compare: comparing different benches: %r vs %r" %
              (baseline.get("bench"), current.get("bench")),
              file=sys.stderr)
        return 2

    failures = []
    print("bench_compare: %s (baseline %s vs current %s)" %
          (baseline.get("bench"), args.baseline, args.current))
    pairs = match_results(baseline, current)
    if not pairs:
        print("bench_compare: baseline has no results", file=sys.stderr)
        return 2
    for label, base_res, cur_res in pairs:
        print("%s:" % label)
        if cur_res is None:
            failures.append("%s: missing from current report" % label)
            print("  MISSING from current report  FAIL")
            continue
        lines = []
        for path, kind in DEFAULT_METRICS:
            if kind == "latency":
                default = args.threshold
            elif kind == "speedup":
                default = args.speedup_threshold
            elif kind in ("perf_floor", "perf_ceiling"):
                default = args.perf_threshold
            else:
                default = args.rate_threshold
            threshold = overrides.get(path, default)
            compare_metric(label, path, kind, threshold, base_res,
                           cur_res, args.min_count, failures, lines)
        checked = {path for path, _ in DEFAULT_METRICS}
        check_coverage(label, base_res, cur_res, checked, failures,
                       lines)
        for line in lines:
            print(line)

    if failures:
        print("\nbench_compare: %d regression(s):" % len(failures))
        for failure in failures:
            print("  " + failure)
        return 1
    print("\nbench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
