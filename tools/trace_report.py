#!/usr/bin/env python3
"""Render tail-sampled decode traces as stage-latency waterfalls.

Input is the decode service's trace endpoints (telemetry/
trace_store.hh): a /traces/<id> detail JSON renders as a waterfall of
the decode's stage spans (gather -> matching -> verdict, offsets
relative to the batch start), and a /traces index JSON renders as a
table of the kept traces, slowest first. A bare http:// URL is fetched
directly, so chasing an exemplar is one command:

  curl -H 'Accept: application/openmetrics-text' host:9500/metrics \\
      | grep -o 'trace_id="[0-9a-f]*"'
  ./trace_report.py http://host:9500/traces/<id>

Usage:
  trace_report.py FILE.json|URL [--width=N]
  trace_report.py --self-test
"""

import json
import sys

BAR = "#"

# Retention reasons in display order (trace_store.hh bit order).
REASON_ORDER = ["slow", "give_up", "audit", "stride",
                "logical_error"]


def load(source):
    if source.startswith("http://") or source.startswith("https://"):
        from urllib.request import urlopen

        with urlopen(source) as resp:
            return json.loads(resp.read().decode("utf-8"))
    with open(source, "r", encoding="utf-8") as f:
        return json.load(f)


def format_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def reasons_text(reasons):
    ordered = [r for r in REASON_ORDER if r in reasons]
    ordered += [r for r in reasons if r not in REASON_ORDER]
    return ",".join(ordered) if ordered else "-"


def render_detail(doc, width=48, out=sys.stdout):
    """Waterfall for one /traces/<id> detail document."""
    spans = doc.get("spans", [])
    audit = doc.get("audit", {})

    out.write(f"trace {doc.get('trace_id', '?')}: "
              f"{doc.get('decoder', '?')} decode, "
              f"shot {doc.get('shot', '?')} on stream "
              f"{doc.get('stream', '?')}\n")
    out.write(f"  hw {doc.get('hw', 0)}, latency "
              f"{format_ns(doc.get('latency_ns', 0.0))}, "
              f"{doc.get('cycles', 0)} cycles, outcome "
              f"{doc.get('outcome', '?')}, kept for "
              f"{reasons_text(doc.get('reasons', []))}\n")
    if audit.get("done"):
        gap = audit.get("weight_gap_decades", 0.0)
        out.write(f"  audit: "
                  f"{'OBSERVABLE MISMATCH' if audit.get('mismatch') else 'verdict matches oracle'}"
                  f", weight gap {gap:.4g} decades\n")
    elif audit.get("sampled"):
        out.write("  audit: sampled, verdict pending\n")
    if doc.get("capture_seq", 0):
        out.write(f"  flight-recorder capture seq "
                  f"{doc['capture_seq']}\n")

    if not spans:
        out.write("  (no spans recorded)\n")
        return

    # Scale the waterfall to the window the spans cover.
    start = min(s["start_ns"] for s in spans)
    end = max(s["start_ns"] + s["dur_ns"] for s in spans)
    total = max(end - start, 1)
    name_w = max(len(s["stage"]) for s in spans)

    out.write(f"  spans (offsets relative to batch start, "
              f"{format_ns(total)} window):\n")
    for s in spans:
        off = s["start_ns"] - start
        lead = int(round(width * off / total))
        bar = max(1, int(round(width * s["dur_ns"] / total)))
        bar = min(bar, width - min(lead, width - 1))
        scope = "batch" if s.get("shot", -1) < 0 else "shot "
        out.write(f"    {s['stage']:<{name_w}} {scope} "
                  f"{format_ns(s['start_ns']):>9} +"
                  f"{format_ns(s['dur_ns']):>9}  "
                  f"|{' ' * min(lead, width - 1)}{BAR * bar}"
                  f"{' ' * max(0, width - lead - bar)}|\n")
    dropped = doc.get("dropped_spans", 0)
    if dropped:
        out.write(f"    [+{dropped} spans dropped at the buffer cap]\n")


def render_index(doc, out=sys.stdout):
    """Table for a /traces index document, slowest first."""
    traces = doc.get("traces", [])
    out.write(f"{len(traces)} kept traces "
              f"(store occupancy {doc.get('occupancy', '?')}, "
              f"{doc.get('kept', '?')} kept since start)\n")
    if not traces:
        return
    rows = sorted(traces, key=lambda t: -t.get("latency_ns", 0.0))
    out.write(f"{'trace_id':<17} {'latency':>9} {'hw':>3} "
              f"{'outcome':<13} {'audit':<6} reasons\n")
    for t in rows:
        if "audit_mismatch" in t:
            audit = "MISM" if t["audit_mismatch"] else "ok"
        elif t.get("audited"):
            audit = "wait"
        else:
            audit = "-"
        out.write(f"{t.get('trace_id', '?'):<17} "
                  f"{format_ns(t.get('latency_ns', 0.0)):>9} "
                  f"{t.get('hw', 0):>3} "
                  f"{t.get('outcome', '?'):<13} "
                  f"{audit:<6} "
                  f"{reasons_text(t.get('reasons', []))}\n")


def render(doc, width=48, out=sys.stdout):
    if "traces" in doc:
        render_index(doc, out=out)
    elif "trace_id" in doc:
        render_detail(doc, width=width, out=out)
    else:
        raise ValueError("neither a /traces index nor a /traces/<id> "
                         "detail document")


# ---------------------------------------------------------------------------
# Self-test

DETAIL_FIXTURE = {
    "trace_schema_version": 1,
    "trace_id": "00c0ffee00c0ffee",
    "shot": 123,
    "stream": 1,
    "decoder": "astrea",
    "hw": 8,
    "latency_ns": 5123.0,
    "cycles": 870,
    "outcome": "ok",
    "reasons": ["slow", "audit"],
    "capture_seq": 2,
    "audit": {"sampled": True, "done": True, "mismatch": False,
              "weight_gap_decades": 0.125, "oracle_weight": 10.5,
              "oracle_obs": 0},
    "spans": [
        {"stage": "batch", "shot": -1, "start_ns": 0,
         "dur_ns": 9000},
        {"stage": "gather", "shot": 3, "start_ns": 1200,
         "dur_ns": 300},
        {"stage": "matching", "shot": 3, "start_ns": 1500,
         "dur_ns": 3000},
        {"stage": "verdict", "shot": 3, "start_ns": 4500,
         "dur_ns": 100},
    ],
    "dropped_spans": 0,
    "defects": [1, 2, 3],
}

INDEX_FIXTURE = {
    "trace_schema_version": 1,
    "kept": 12,
    "occupancy": 2,
    "traces": [
        {"trace_id": "00c0ffee00c0ffee", "latency_ns": 5123.0,
         "hw": 8, "outcome": "ok", "reasons": ["slow"],
         "audited": True, "audit_mismatch": False},
        {"trace_id": "deadbeefdeadbeef", "latency_ns": 99123.0,
         "hw": 14, "outcome": "give_up", "reasons": ["give_up"]},
    ],
}


def self_test():
    import io

    out = io.StringIO()
    render(DETAIL_FIXTURE, width=24, out=out)
    text = out.getvalue()
    assert "trace 00c0ffee00c0ffee" in text, text
    for stage in ("batch", "gather", "matching", "verdict"):
        assert stage in text, text
    assert "5.12us" in text, text
    assert "slow,audit" in text, text
    assert "weight gap 0.125 decades" in text, text
    assert "capture seq 2" in text, text
    # The matching bar must be longer than the verdict bar.
    bars = {line.split()[0]: line.count(BAR)
            for line in text.splitlines() if BAR in line}
    assert bars["matching"] > bars["verdict"], bars

    out = io.StringIO()
    render(INDEX_FIXTURE, out=out)
    text = out.getvalue()
    assert "2 kept traces" in text, text
    # Slowest first: the give-up sorts above the ok trace.
    assert text.find("deadbeef") < text.find("c0ffee"), text
    assert "give_up" in text, text

    try:
        render({"nope": 1})
    except ValueError:
        pass
    else:
        raise AssertionError("accepted an unrecognized document")

    print("trace_report.py self-test: OK")
    return 0


def main(argv):
    width = 48
    sources = []
    for arg in argv[1:]:
        if arg == "--self-test":
            return self_test()
        if arg.startswith("--width="):
            width = max(10, int(arg.split("=", 1)[1]))
        elif arg.startswith("--"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            sources.append(arg)
    if len(sources) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        doc = load(sources[0])
    except (OSError, ValueError, KeyError,
            json.JSONDecodeError) as e:
        print(f"error: cannot load {sources[0]}: {e}",
              file=sys.stderr)
        return 1
    try:
        render(doc, width=width)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()
        return 0
    except (ValueError, KeyError, TypeError) as e:
        print(f"error: cannot render {sources[0]}: {e}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
