/**
 * @file
 * Artifact-compatible command-line driver (paper Appendix B).
 *
 * The paper's Zenodo artifact exposes experiments through
 *
 *     mpirun -np <X> ./astrea <output-file> <experiment-no> <args...>
 *
 * This binary reproduces that interface (threads stand in for MPI
 * ranks) for the experiments the appendix documents:
 *
 *   experiment 6  <d> <p>                 - Table 2: Hamming-weight
 *       occurrence counts; appends "HW, count" lines.
 *   experiment 1  <d>                     - Figs. 12/14: LER sweep
 *       p = 1e-4..1e-3 (step 1e-4); appends one line per p whose
 *       1st entry is d, 2nd is p, 6th is the MWPM LER and 7th the
 *       Astrea-G LER (artifact column convention).
 *   experiment 12 <d> <t0> <t1> <step>    - Table 7: Astrea-G with
 *       decode-time budgets t0..t1 ns; appends lines whose 7th entry
 *       is the Astrea-G LER and 13th the time allotted for decoding.
 *
 * Beyond the artifact surface, `astrea_cli replay <capture.json>`
 * re-decodes a flight-recorder capture (see harness/replay.hh) and
 * asserts the recorded verdicts reproduce; --verbose narrates the
 * trigger decode and --all narrates every record. The replayer also
 * accepts a /traces/<id> trace-detail JSON (or a capture plus
 * --trace-id=HEX) and narrates that decode specifically.
 *
 * `astrea_cli serve` runs the live decode service (see
 * harness/decode_service.hh): a continuous memory-experiment workload
 * with Prometheus /metrics, JSON /statusz and /healthz endpoints.
 * Flags override the ASTREA_SERVE_* environment knobs.
 *
 * All modes accept the shared forensics flags --log-level=LVL,
 * --trace-file=PATH and --chrome-trace=PATH (flags win over their
 * ASTREA_* environment equivalents).
 *
 * Shot budgets default to laptop scale; override with ASTREA_SHOTS or
 * --shots. Results append to the output file, as the artifact does.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/cli.hh"
#include "common/env.hh"
#include "decoders/registry.hh"
#include "harness/decode_service.hh"
#include "harness/hw_histogram.hh"
#include "harness/memory_experiment.hh"
#include "harness/replay.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace_store.hh"

using namespace astrea;

namespace
{

std::FILE *
openAppend(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    return f;
}

int
experimentHwHistogram(const std::string &out_path, uint32_t d, double p,
                      uint64_t shots, uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);
    HwDistribution dist = measureHwDistribution(ctx, shots, seed);

    std::FILE *f = openAppend(out_path);
    for (size_t h = 0; h <= dist.hist.maxObserved(); h++) {
        std::fprintf(f, "%zu, %llu\n", h,
                     static_cast<unsigned long long>(dist.hist.at(h)));
    }
    std::fclose(f);
    std::printf("experiment 6: %llu shots at d=%u p=%g -> %s\n",
                static_cast<unsigned long long>(shots), d, p,
                out_path.c_str());
    return 0;
}

int
experimentLerSweep(const std::string &out_path, uint32_t d,
                   uint64_t shots, uint64_t seed)
{
    std::FILE *f = openAppend(out_path);
    for (int step = 1; step <= 10; step++) {
        double p = 1e-4 * step;
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        auto mwpm = runMemoryExperiment(ctx, mwpmFactory(), shots,
                                        seed);
        auto ag =
            runMemoryExperiment(ctx, astreaGFactory(), shots, seed);

        // Artifact column convention: 1st = d, 2nd = p, 6th = MWPM
        // LER, 7th = Astrea-G LER; the rest is supplementary.
        std::fprintf(f, "%u %.6e %llu %llu %llu %.6e %.6e %llu\n", d,
                     p, static_cast<unsigned long long>(shots),
                     static_cast<unsigned long long>(
                         mwpm.logicalErrors.successes),
                     static_cast<unsigned long long>(
                         ag.logicalErrors.successes),
                     mwpm.ler(), ag.ler(),
                     static_cast<unsigned long long>(ag.gaveUps));
        std::printf("  d=%u p=%g: MWPM %s, Astrea-G %s\n", d, p,
                    formatProb(mwpm.ler()).c_str(),
                    formatProb(ag.ler()).c_str());
    }
    std::fclose(f);
    return 0;
}

int
experimentBandwidth(const std::string &out_path, uint32_t d, double t0,
                    double t1, double step, uint64_t shots,
                    uint64_t seed)
{
    const double p = 1e-3;
    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);

    std::FILE *f = openAppend(out_path);
    for (double t = t0; t <= t1 + 1e-9; t += step) {
        AstreaGConfig agc;
        agc.cycleBudget = static_cast<uint64_t>(t * kFpgaClockGHz);
        auto r = runMemoryExperiment(ctx, astreaGFactory(agc), shots,
                                     seed);
        // 13 columns with the artifact's documented positions: 7th =
        // Astrea-G LER, 13th = time allotted for decoding.
        std::fprintf(f,
                     "%u %.6e %llu 0 0 0 %.6e 0 0 0 0 0 %.0f\n", d, p,
                     static_cast<unsigned long long>(shots), r.ler(),
                     t);
        std::printf("  d=%u t=%.0fns: Astrea-G %s\n", d, t,
                    formatProb(r.ler()).c_str());
    }
    std::fclose(f);
    return 0;
}

int
commandReplay(const std::vector<std::string> &pos, const Options &opts)
{
    if (pos.size() < 2) {
        std::fprintf(stderr,
                     "usage: astrea_cli replay <capture.json> "
                     "[--verbose] [--all] [--trace-id=HEX]\n");
        return 1;
    }
    ReplayCapture capture;
    std::string error;
    if (!loadCapture(pos[1], capture, &error)) {
        std::fprintf(stderr, "replay: %s\n", error.c_str());
        return 2;
    }
    ReplayOptions ropts;
    ropts.verbose = opts.has("verbose") || opts.has("all");
    ropts.verboseAll = opts.has("all");
    const std::string trace_id = opts.getString("trace-id", "");
    if (!trace_id.empty()) {
        ropts.traceId = telemetry::parseTraceIdHex(trace_id);
        if (ropts.traceId == 0) {
            std::fprintf(stderr, "replay: bad --trace-id '%s'\n",
                         trace_id.c_str());
            return 1;
        }
        ropts.verbose = true;  // Narrating the trace is the point.
    }
    ReplaySummary summary = replayCapture(capture, ropts, std::cout);
    return summary.ok() ? 0 : 1;
}

/**
 * `astrea_cli list-decoders`: print the registry's metadata — the one
 * source of truth for every name the harness, service, benches and
 * replayer accept.
 */
int
commandListDecoders()
{
    const auto infos = DecoderRegistry::global().listDecoders();
    size_t name_w = 0;
    for (const DecoderInfo &info : infos) {
        std::string names = info.name;
        for (const std::string &a : info.aliases)
            names += ", " + a;
        name_w = std::max(name_w, names.size());
    }
    for (const DecoderInfo &info : infos) {
        std::string names = info.name;
        for (const std::string &a : info.aliases)
            names += ", " + a;
        std::printf("%-*s  %-8s  %s\n", static_cast<int>(name_w),
                    names.c_str(), decoderKindName(info.kind),
                    info.description.c_str());
    }
    return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void
serveSignalHandler(int)
{
    g_serve_stop = 1;
}

/**
 * `astrea_cli serve`: run the live decode service until a duration
 * elapses or SIGINT/SIGTERM arrives. Flags override the ASTREA_SERVE_*
 * environment knobs.
 */
int
commandServe(const Options &opts)
{
    ServeConfig cfg;
    cfg.distance = static_cast<uint32_t>(
        opts.getUint("d", env::getUint("ASTREA_SERVE_D", 5, 3)));
    cfg.rounds = static_cast<uint32_t>(opts.getUint("rounds", 0));
    cfg.physicalErrorRate =
        opts.getDouble("p", env::getDouble("ASTREA_SERVE_P", 1e-3));
    cfg.decoder = opts.getString(
        "decoder", env::getString("ASTREA_SERVE_DECODER", "astrea"));
    cfg.workers = static_cast<unsigned>(opts.getUint(
        "threads", env::getUint("ASTREA_SERVE_THREADS", 2, 1)));
    cfg.seed = opts.getUint("seed", 1);
    cfg.budgetNs = opts.getDouble(
        "budget-ns", env::getDouble("ASTREA_SERVE_BUDGET_NS", 1000.0));
    cfg.sloTarget = opts.getDouble(
        "slo-target", env::getDouble("ASTREA_SERVE_SLO_TARGET", 0.999));
    cfg.auditRate = opts.getDouble(
        "audit-rate", env::getDouble("ASTREA_AUDIT_RATE", 0.0));
    cfg.auditThreads = static_cast<unsigned>(opts.getUint(
        "audit-threads", env::getUint("ASTREA_AUDIT_THREADS", 1, 1)));
    cfg.auditQueue = opts.getUint(
        "audit-queue", env::getUint("ASTREA_AUDIT_QUEUE", 1024, 2));
    cfg.auditDpMaxHw = static_cast<uint32_t>(opts.getUint(
        "audit-dp-max-hw", env::getUint("ASTREA_AUDIT_DP_MAX_HW", 16)));
    cfg.traceEnabled =
        opts.getUint("trace", env::getBool("ASTREA_TRACE", true) ? 1
                                                                 : 0) != 0;
    cfg.traceTailNs = opts.getDouble(
        "trace-tail-ns", env::getDouble("ASTREA_TRACE_TAIL_NS", 0.0));
    cfg.traceStride = opts.getUint(
        "trace-stride", env::getUint("ASTREA_TRACE_STRIDE", 8192));
    cfg.traceRing = opts.getUint(
        "trace-ring", env::getUint("ASTREA_TRACE_RING", 1024, 1));

    const std::string bind = opts.getString(
        "bind", env::getString("ASTREA_SERVE_BIND", "127.0.0.1"));
    const uint16_t port = static_cast<uint16_t>(
        opts.getUint("port", env::getUint("ASTREA_SERVE_PORT", 0)));
    const std::string duration_text = opts.getString(
        "duration", env::getString("ASTREA_SERVE_DURATION", ""));
    const std::string port_file = opts.getString("port-file", "");

    uint64_t duration_ms = 0;  // 0 = run until a signal.
    if (!duration_text.empty() &&
        !parseDurationMillis(duration_text, &duration_ms)) {
        std::fprintf(stderr, "serve: bad --duration '%s'\n",
                     duration_text.c_str());
        return 1;
    }

    // The service is pointless without its own metrics.
    telemetry::setEnabled(true);

    DecodeService svc(cfg);
    std::string error;
    if (!svc.start(bind, port, &error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 2;
    }

    if (!port_file.empty()) {
        std::ofstream pf(port_file, std::ios::trunc);
        pf << svc.port() << "\n";
        if (!pf) {
            std::fprintf(stderr, "serve: cannot write %s\n",
                         port_file.c_str());
            svc.stop();
            return 2;
        }
    }

    std::printf("serve: %s decoder, d=%u p=%g, %u workers on "
                "http://%s:%u (/metrics /statusz /healthz /traces "
                "/pprof/profile)\n",
                cfg.decoder.c_str(), cfg.distance,
                cfg.physicalErrorRate, cfg.workers, bind.c_str(),
                svc.port());
    if (cfg.auditRate > 0.0)
        std::printf("serve: auditing %g of decodes (%u audit "
                    "thread%s, queue %llu)\n",
                    cfg.auditRate, cfg.auditThreads,
                    cfg.auditThreads == 1 ? "" : "s",
                    static_cast<unsigned long long>(cfg.auditQueue));
    if (cfg.traceEnabled) {
        std::string tail =
            cfg.traceTailNs > 0.0
                ? std::to_string(
                      static_cast<long long>(cfg.traceTailNs)) +
                      "ns"
                : "auto-p99";
        std::printf("serve: tail tracing on (tail %s, stride %llu, "
                    "ring %llu) -> /traces\n",
                    tail.c_str(),
                    static_cast<unsigned long long>(cfg.traceStride),
                    static_cast<unsigned long long>(cfg.traceRing));
    }
    std::fflush(stdout);

    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    const auto start = std::chrono::steady_clock::now();
    while (!g_serve_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (duration_ms != 0) {
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (static_cast<uint64_t>(elapsed) >= duration_ms)
                break;
        }
    }

    svc.stop();
    std::printf("serve: stopped after %llu decodes\n",
                static_cast<unsigned long long>(
                    svc.core().totalDecodes()));
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <output-file> <experiment-no> <args...>\n"
        "  6  <d> <p>              Hamming-weight histogram\n"
        "  1  <d>                  LER sweep p=1e-4..1e-3\n"
        "  12 <d> <t0> <t1> <dt>   decode-budget sweep (ns)\n"
        "or:    %s replay <capture.json|trace.json> [--verbose] "
        "[--all] [--trace-id=HEX]\n"
        "or:    %s serve [--d=N] [--p=P] [--decoder=NAME] "
        "[--threads=N] [--port=N] [--bind=ADDR] [--duration=2s] "
        "[--port-file=PATH] [--budget-ns=NS] [--audit-rate=F] "
        "[--audit-threads=N] [--audit-queue=N] "
        "[--audit-dp-max-hw=N] [--trace=0|1] [--trace-tail-ns=NS] "
        "[--trace-stride=N] [--trace-ring=N]\n"
        "or:    %s list-decoders\n"
        "flags: --shots=N --seed=N --log-level=LVL "
        "--trace-file=PATH --chrome-trace=PATH --perf-counters\n"
        "       (serve exposes /pprof/profile?seconds=N&hz=H"
        "&format=collapsed|speedscope)\n",
        argv0, argv0, argv0, argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    applyForensicsOptions(opts);

    // Positional arguments: everything that is not a --flag.
    std::vector<std::string> pos;
    for (int i = 1; i < argc; i++) {
        if (std::string(argv[i]).rfind("--", 0) != 0)
            pos.push_back(argv[i]);
    }

    if (!pos.empty() && pos[0] == "replay")
        return commandReplay(pos, opts);
    if (!pos.empty() && pos[0] == "serve")
        return commandServe(opts);
    if (!pos.empty() && pos[0] == "list-decoders")
        return commandListDecoders();

    if (pos.size() < 2)
        return usage(argv[0]);
    const uint64_t seed = opts.getUint("seed", 1);
    const std::string &out_path = pos[0];
    int experiment = std::atoi(pos[1].c_str());

    switch (experiment) {
      case 6: {
        if (pos.size() < 4) {
            std::fprintf(stderr, "experiment 6 needs <d> <p>\n");
            return 1;
        }
        uint64_t shots = opts.getUint("shots", 2000000);
        return experimentHwHistogram(
            out_path, static_cast<uint32_t>(std::atoi(pos[2].c_str())),
            std::atof(pos[3].c_str()), shots, seed);
      }
      case 1: {
        if (pos.size() < 3) {
            std::fprintf(stderr, "experiment 1 needs <d>\n");
            return 1;
        }
        uint64_t shots = opts.getUint("shots", 100000);
        return experimentLerSweep(
            out_path, static_cast<uint32_t>(std::atoi(pos[2].c_str())),
            shots, seed);
      }
      case 12: {
        if (pos.size() < 6) {
            std::fprintf(stderr,
                         "experiment 12 needs <d> <t0> <t1> <dt>\n");
            return 1;
        }
        uint64_t shots = opts.getUint("shots", 50000);
        return experimentBandwidth(
            out_path, static_cast<uint32_t>(std::atoi(pos[2].c_str())),
            std::atof(pos[3].c_str()), std::atof(pos[4].c_str()),
            std::atof(pos[5].c_str()), shots, seed);
      }
      default:
        std::fprintf(stderr, "unknown experiment %d\n", experiment);
        return 1;
    }
}
