/**
 * @file
 * Artifact-compatible command-line driver (paper Appendix B).
 *
 * The paper's Zenodo artifact exposes experiments through
 *
 *     mpirun -np <X> ./astrea <output-file> <experiment-no> <args...>
 *
 * This binary reproduces that interface (threads stand in for MPI
 * ranks) for the experiments the appendix documents:
 *
 *   experiment 6  <d> <p>                 - Table 2: Hamming-weight
 *       occurrence counts; appends "HW, count" lines.
 *   experiment 1  <d>                     - Figs. 12/14: LER sweep
 *       p = 1e-4..1e-3 (step 1e-4); appends one line per p whose
 *       1st entry is d, 2nd is p, 6th is the MWPM LER and 7th the
 *       Astrea-G LER (artifact column convention).
 *   experiment 12 <d> <t0> <t1> <step>    - Table 7: Astrea-G with
 *       decode-time budgets t0..t1 ns; appends lines whose 7th entry
 *       is the Astrea-G LER and 13th the time allotted for decoding.
 *
 * Beyond the artifact surface, `astrea_cli replay <capture.json>`
 * re-decodes a flight-recorder capture (see harness/replay.hh) and
 * asserts the recorded verdicts reproduce; --verbose narrates the
 * trigger decode and --all narrates every record. The replayer also
 * accepts a /traces/<id> trace-detail JSON (or a capture plus
 * --trace-id=HEX) and narrates that decode specifically.
 *
 * `astrea_cli serve` runs the live decode service (see
 * harness/decode_service.hh): a continuous memory-experiment workload
 * with Prometheus /metrics, JSON /statusz and /healthz endpoints.
 * Flags override the ASTREA_SERVE_* environment knobs.
 *
 * All modes accept the shared forensics flags --log-level=LVL,
 * --trace-file=PATH and --chrome-trace=PATH (flags win over their
 * ASTREA_* environment equivalents).
 *
 * Shot budgets default to laptop scale; override with ASTREA_SHOTS or
 * --shots. Results append to the output file, as the artifact does.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <random>

#include "bench_util.hh"
#include "common/cli.hh"
#include "common/env.hh"
#include "decoders/registry.hh"
#include "harness/decode_service.hh"
#include "net/fleet_client.hh"
#include "harness/hw_histogram.hh"
#include "harness/memory_experiment.hh"
#include "harness/replay.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace_store.hh"

using namespace astrea;

namespace
{

std::FILE *
openAppend(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    return f;
}

int
experimentHwHistogram(const std::string &out_path, uint32_t d, double p,
                      uint64_t shots, uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);
    HwDistribution dist = measureHwDistribution(ctx, shots, seed);

    std::FILE *f = openAppend(out_path);
    for (size_t h = 0; h <= dist.hist.maxObserved(); h++) {
        std::fprintf(f, "%zu, %llu\n", h,
                     static_cast<unsigned long long>(dist.hist.at(h)));
    }
    std::fclose(f);
    std::printf("experiment 6: %llu shots at d=%u p=%g -> %s\n",
                static_cast<unsigned long long>(shots), d, p,
                out_path.c_str());
    return 0;
}

int
experimentLerSweep(const std::string &out_path, uint32_t d,
                   uint64_t shots, uint64_t seed)
{
    std::FILE *f = openAppend(out_path);
    for (int step = 1; step <= 10; step++) {
        double p = 1e-4 * step;
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        auto mwpm = runMemoryExperiment(ctx, mwpmFactory(), shots,
                                        seed);
        auto ag =
            runMemoryExperiment(ctx, astreaGFactory(), shots, seed);

        // Artifact column convention: 1st = d, 2nd = p, 6th = MWPM
        // LER, 7th = Astrea-G LER; the rest is supplementary.
        std::fprintf(f, "%u %.6e %llu %llu %llu %.6e %.6e %llu\n", d,
                     p, static_cast<unsigned long long>(shots),
                     static_cast<unsigned long long>(
                         mwpm.logicalErrors.successes),
                     static_cast<unsigned long long>(
                         ag.logicalErrors.successes),
                     mwpm.ler(), ag.ler(),
                     static_cast<unsigned long long>(ag.gaveUps));
        std::printf("  d=%u p=%g: MWPM %s, Astrea-G %s\n", d, p,
                    formatProb(mwpm.ler()).c_str(),
                    formatProb(ag.ler()).c_str());
    }
    std::fclose(f);
    return 0;
}

int
experimentBandwidth(const std::string &out_path, uint32_t d, double t0,
                    double t1, double step, uint64_t shots,
                    uint64_t seed)
{
    const double p = 1e-3;
    ExperimentConfig cfg;
    cfg.distance = d;
    cfg.physicalErrorRate = p;
    ExperimentContext ctx(cfg);

    std::FILE *f = openAppend(out_path);
    for (double t = t0; t <= t1 + 1e-9; t += step) {
        AstreaGConfig agc;
        agc.cycleBudget = static_cast<uint64_t>(t * kFpgaClockGHz);
        auto r = runMemoryExperiment(ctx, astreaGFactory(agc), shots,
                                     seed);
        // 13 columns with the artifact's documented positions: 7th =
        // Astrea-G LER, 13th = time allotted for decoding.
        std::fprintf(f,
                     "%u %.6e %llu 0 0 0 %.6e 0 0 0 0 0 %.0f\n", d, p,
                     static_cast<unsigned long long>(shots), r.ler(),
                     t);
        std::printf("  d=%u t=%.0fns: Astrea-G %s\n", d, t,
                    formatProb(r.ler()).c_str());
    }
    std::fclose(f);
    return 0;
}

int
commandReplay(const std::vector<std::string> &pos, const Options &opts)
{
    if (pos.size() < 2) {
        std::fprintf(stderr,
                     "usage: astrea_cli replay <capture.json> "
                     "[--verbose] [--all] [--trace-id=HEX]\n");
        return 1;
    }
    ReplayCapture capture;
    std::string error;
    if (!loadCapture(pos[1], capture, &error)) {
        std::fprintf(stderr, "replay: %s\n", error.c_str());
        return 2;
    }
    ReplayOptions ropts;
    ropts.verbose = opts.has("verbose") || opts.has("all");
    ropts.verboseAll = opts.has("all");
    const std::string trace_id = opts.getString("trace-id", "");
    if (!trace_id.empty()) {
        ropts.traceId = telemetry::parseTraceIdHex(trace_id);
        if (ropts.traceId == 0) {
            std::fprintf(stderr, "replay: bad --trace-id '%s'\n",
                         trace_id.c_str());
            return 1;
        }
        ropts.verbose = true;  // Narrating the trace is the point.
    }
    ReplaySummary summary = replayCapture(capture, ropts, std::cout);
    return summary.ok() ? 0 : 1;
}

/**
 * `astrea_cli list-decoders`: print the registry's metadata — the one
 * source of truth for every name the harness, service, benches and
 * replayer accept.
 */
int
commandListDecoders()
{
    const auto infos = DecoderRegistry::global().listDecoders();
    size_t name_w = 0;
    for (const DecoderInfo &info : infos) {
        std::string names = info.name;
        for (const std::string &a : info.aliases)
            names += ", " + a;
        name_w = std::max(name_w, names.size());
    }
    for (const DecoderInfo &info : infos) {
        std::string names = info.name;
        for (const std::string &a : info.aliases)
            names += ", " + a;
        std::printf("%-*s  %-8s  %s\n", static_cast<int>(name_w),
                    names.c_str(), decoderKindName(info.kind),
                    info.description.c_str());
    }
    return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void
serveSignalHandler(int)
{
    g_serve_stop = 1;
}

/**
 * `astrea_cli serve`: run the live decode service until a duration
 * elapses or SIGINT/SIGTERM arrives. Flags override the ASTREA_SERVE_*
 * environment knobs.
 */
int
commandServe(const Options &opts)
{
    ServeConfig cfg;
    cfg.distance = static_cast<uint32_t>(
        opts.getUint("d", env::getUint("ASTREA_SERVE_D", 5, 3)));
    cfg.rounds = static_cast<uint32_t>(opts.getUint("rounds", 0));
    cfg.physicalErrorRate =
        opts.getDouble("p", env::getDouble("ASTREA_SERVE_P", 1e-3));
    cfg.decoder = opts.getString(
        "decoder", env::getString("ASTREA_SERVE_DECODER", "astrea"));
    cfg.workers = static_cast<unsigned>(opts.getUint(
        "threads", env::getUint("ASTREA_SERVE_THREADS", 2, 1)));
    cfg.seed = opts.getUint("seed", 1);
    cfg.budgetNs = opts.getDouble(
        "budget-ns", env::getDouble("ASTREA_SERVE_BUDGET_NS", 1000.0));
    cfg.sloTarget = opts.getDouble(
        "slo-target", env::getDouble("ASTREA_SERVE_SLO_TARGET", 0.999));
    cfg.auditRate = opts.getDouble(
        "audit-rate", env::getDouble("ASTREA_AUDIT_RATE", 0.0));
    cfg.auditThreads = static_cast<unsigned>(opts.getUint(
        "audit-threads", env::getUint("ASTREA_AUDIT_THREADS", 1, 1)));
    cfg.auditQueue = opts.getUint(
        "audit-queue", env::getUint("ASTREA_AUDIT_QUEUE", 1024, 2));
    cfg.auditDpMaxHw = static_cast<uint32_t>(opts.getUint(
        "audit-dp-max-hw", env::getUint("ASTREA_AUDIT_DP_MAX_HW", 16)));
    cfg.traceEnabled =
        opts.getUint("trace", env::getBool("ASTREA_TRACE", true) ? 1
                                                                 : 0) != 0;
    cfg.traceTailNs = opts.getDouble(
        "trace-tail-ns", env::getDouble("ASTREA_TRACE_TAIL_NS", 0.0));
    cfg.traceStride = opts.getUint(
        "trace-stride", env::getUint("ASTREA_TRACE_STRIDE", 8192));
    cfg.traceRing = opts.getUint(
        "trace-ring", env::getUint("ASTREA_TRACE_RING", 1024, 1));

    cfg.fleetEnabled =
        opts.getUint("fleet",
                     env::getBool("ASTREA_FLEET", false) ? 1 : 0) != 0;
    cfg.fleet.shards = static_cast<size_t>(opts.getUint(
        "fleet-shards", env::getUint("ASTREA_FLEET_SHARDS", 2, 1)));
    cfg.fleet.ringCapacity = static_cast<size_t>(opts.getUint(
        "fleet-ring", env::getUint("ASTREA_FLEET_RING", 1024, 2)));
    cfg.fleet.maxBatch = static_cast<size_t>(opts.getUint(
        "fleet-max-batch",
        env::getUint("ASTREA_FLEET_MAX_BATCH", 64, 1)));
    cfg.fleet.maxDelayNs =
        1000.0 * opts.getDouble(
                     "fleet-max-delay-us",
                     env::getDouble("ASTREA_FLEET_MAX_DELAY_US", 200.0));
    cfg.fleet.shedLowWatermark = opts.getDouble(
        "fleet-shed-low", env::getDouble("ASTREA_FLEET_SHED_LOW", 0.5));
    cfg.fleet.shedHighWatermark = opts.getDouble(
        "fleet-shed-high",
        env::getDouble("ASTREA_FLEET_SHED_HIGH", 0.9));
    cfg.fleetBind = opts.getString(
        "fleet-bind", env::getString("ASTREA_FLEET_BIND", "127.0.0.1"));
    cfg.fleetPort = static_cast<uint16_t>(opts.getUint(
        "fleet-port", env::getUint("ASTREA_FLEET_PORT", 0)));

    const std::string bind = opts.getString(
        "bind", env::getString("ASTREA_SERVE_BIND", "127.0.0.1"));
    const uint16_t port = static_cast<uint16_t>(
        opts.getUint("port", env::getUint("ASTREA_SERVE_PORT", 0)));
    const std::string duration_text = opts.getString(
        "duration", env::getString("ASTREA_SERVE_DURATION", ""));
    const std::string port_file = opts.getString("port-file", "");
    const std::string fleet_port_file =
        opts.getString("fleet-port-file", "");

    uint64_t duration_ms = 0;  // 0 = run until a signal.
    if (!duration_text.empty() &&
        !parseDurationMillis(duration_text, &duration_ms)) {
        std::fprintf(stderr, "serve: bad --duration '%s'\n",
                     duration_text.c_str());
        return 1;
    }

    // The service is pointless without its own metrics.
    telemetry::setEnabled(true);

    DecodeService svc(cfg);
    std::string error;
    if (!svc.start(bind, port, &error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 2;
    }

    if (!port_file.empty()) {
        std::ofstream pf(port_file, std::ios::trunc);
        pf << svc.port() << "\n";
        if (!pf) {
            std::fprintf(stderr, "serve: cannot write %s\n",
                         port_file.c_str());
            svc.stop();
            return 2;
        }
    }
    if (!fleet_port_file.empty() && cfg.fleetEnabled) {
        std::ofstream pf(fleet_port_file, std::ios::trunc);
        pf << svc.fleetPort() << "\n";
        if (!pf) {
            std::fprintf(stderr, "serve: cannot write %s\n",
                         fleet_port_file.c_str());
            svc.stop();
            return 2;
        }
    }

    std::printf("serve: %s decoder, d=%u p=%g, %u workers on "
                "http://%s:%u (/metrics /statusz /healthz /traces "
                "/pprof/profile)\n",
                cfg.decoder.c_str(), cfg.distance,
                cfg.physicalErrorRate, cfg.workers, bind.c_str(),
                svc.port());
    if (cfg.auditRate > 0.0)
        std::printf("serve: auditing %g of decodes (%u audit "
                    "thread%s, queue %llu)\n",
                    cfg.auditRate, cfg.auditThreads,
                    cfg.auditThreads == 1 ? "" : "s",
                    static_cast<unsigned long long>(cfg.auditQueue));
    if (cfg.traceEnabled) {
        std::string tail =
            cfg.traceTailNs > 0.0
                ? std::to_string(
                      static_cast<long long>(cfg.traceTailNs)) +
                      "ns"
                : "auto-p99";
        std::printf("serve: tail tracing on (tail %s, stride %llu, "
                    "ring %llu) -> /traces\n",
                    tail.c_str(),
                    static_cast<unsigned long long>(cfg.traceStride),
                    static_cast<unsigned long long>(cfg.traceRing));
    }
    if (cfg.fleetEnabled)
        std::printf("serve: fleet ingest on %s:%u (%llu shards, "
                    "ring %llu, batch %llu, delay %gus)\n",
                    cfg.fleetBind.c_str(), svc.fleetPort(),
                    static_cast<unsigned long long>(cfg.fleet.shards),
                    static_cast<unsigned long long>(
                        cfg.fleet.ringCapacity),
                    static_cast<unsigned long long>(cfg.fleet.maxBatch),
                    cfg.fleet.maxDelayNs / 1000.0);
    std::fflush(stdout);

    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    const auto start = std::chrono::steady_clock::now();
    while (!g_serve_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (duration_ms != 0) {
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (static_cast<uint64_t>(elapsed) >= duration_ms)
                break;
        }
    }

    svc.stop();
    std::printf("serve: stopped after %llu decodes\n",
                static_cast<unsigned long long>(
                    svc.core().totalDecodes()));
    return 0;
}

/**
 * `astrea_cli fleet-client`: blast synthetic syndrome traffic at a
 * fleet ingest port and account for every verdict. Exists for the CI
 * smoke leg and for eyeballing a live fleet; exits nonzero when any
 * sent shot goes unanswered.
 */
int
commandFleetClient(const Options &opts)
{
    const std::string host = opts.getString("host", "127.0.0.1");
    uint16_t port = static_cast<uint16_t>(opts.getUint("port", 0));
    const std::string port_file = opts.getString("port-file", "");
    if (port == 0 && !port_file.empty()) {
        std::ifstream pf(port_file);
        unsigned p = 0;
        if (!(pf >> p) || p == 0 || p > 65535) {
            std::fprintf(stderr, "fleet-client: cannot read port "
                                 "from %s\n",
                         port_file.c_str());
            return 1;
        }
        port = static_cast<uint16_t>(p);
    }
    if (port == 0) {
        std::fprintf(stderr,
                     "fleet-client: need --port=N or --port-file\n");
        return 1;
    }

    const uint32_t streams = static_cast<uint32_t>(
        std::max<uint64_t>(1, opts.getUint("streams", 8)));
    const uint32_t shots_per_stream = static_cast<uint32_t>(
        std::max<uint64_t>(1, opts.getUint("shots", 64)));
    const uint32_t max_hw =
        static_cast<uint32_t>(opts.getUint("max-hw", 4));
    const uint64_t seed = opts.getUint("seed", 1);

    net::FleetClient client;
    std::string error;
    if (!client.connect(host, port, &error)) {
        std::fprintf(stderr, "fleet-client: %s\n", error.c_str());
        return 2;
    }
    const uint32_t bits = client.numDetectorBits();
    std::printf("fleet-client: connected to %s:%u (%u detector "
                "bits); %u streams x %u shots\n",
                host.c_str(), port, bits, streams, shots_per_stream);

    const uint64_t total =
        static_cast<uint64_t>(streams) * shots_per_stream;
    std::atomic<uint64_t> decoded{0}, shed{0}, gave_up{0}, errors{0};
    std::atomic<uint64_t> verdicts{0};
    std::thread reader([&] {
        net::FleetClientVerdict v;
        while (verdicts.load(std::memory_order_relaxed) < total &&
               client.readVerdict(v)) {
            verdicts.fetch_add(1, std::memory_order_relaxed);
            if (v.error)
                errors.fetch_add(1, std::memory_order_relaxed);
            else if (v.shed)
                shed.fetch_add(1, std::memory_order_relaxed);
            else if (v.gaveUp)
                gave_up.fetch_add(1, std::memory_order_relaxed);
            else
                decoded.fetch_add(1, std::memory_order_relaxed);
        }
    });

    // Round-robin the streams so every shard sees interleaved
    // traffic, the worst case for the coalescer.
    std::mt19937_64 rng(seed);
    std::vector<uint32_t> defects;
    uint64_t sent = 0;
    bool send_ok = true;
    for (uint32_t s = 0; s < shots_per_stream && send_ok; s++) {
        for (uint32_t st = 0; st < streams && send_ok; st++) {
            defects.clear();
            if (bits > 0 && max_hw > 0) {
                const uint32_t hw = static_cast<uint32_t>(
                    rng() % (std::min(max_hw, bits) + 1));
                while (defects.size() < hw) {
                    const uint32_t d =
                        static_cast<uint32_t>(rng() % bits);
                    if (std::find(defects.begin(), defects.end(), d) ==
                        defects.end())
                        defects.push_back(d);
                }
                std::sort(defects.begin(), defects.end());
            }
            const uint8_t priority =
                static_cast<uint8_t>(rng() % 8);
            send_ok = client.sendShot(st, s, priority, defects);
            if (send_ok)
                sent++;
        }
    }
    if (send_ok)
        send_ok = client.flush();
    reader.join();
    client.close();

    std::printf("fleet-client: sent %llu, verdicts %llu "
                "(decoded %llu, shed %llu, gave_up %llu, "
                "error %llu)\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(verdicts.load()),
                static_cast<unsigned long long>(decoded.load()),
                static_cast<unsigned long long>(shed.load()),
                static_cast<unsigned long long>(gave_up.load()),
                static_cast<unsigned long long>(errors.load()));
    if (!send_ok) {
        std::fprintf(stderr, "fleet-client: connection lost while "
                             "sending\n");
        return 2;
    }
    return verdicts.load() == total ? 0 : 1;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <output-file> <experiment-no> <args...>\n"
        "  6  <d> <p>              Hamming-weight histogram\n"
        "  1  <d>                  LER sweep p=1e-4..1e-3\n"
        "  12 <d> <t0> <t1> <dt>   decode-budget sweep (ns)\n"
        "or:    %s replay <capture.json|trace.json> [--verbose] "
        "[--all] [--trace-id=HEX]\n"
        "or:    %s serve [--d=N] [--p=P] [--decoder=NAME] "
        "[--threads=N] [--port=N] [--bind=ADDR] [--duration=2s] "
        "[--port-file=PATH] [--budget-ns=NS] [--audit-rate=F] "
        "[--audit-threads=N] [--audit-queue=N] "
        "[--audit-dp-max-hw=N] [--trace=0|1] [--trace-tail-ns=NS] "
        "[--trace-stride=N] [--trace-ring=N] [--fleet=0|1] "
        "[--fleet-shards=N] [--fleet-ring=N] [--fleet-max-batch=N] "
        "[--fleet-max-delay-us=US] [--fleet-shed-low=F] "
        "[--fleet-shed-high=F] [--fleet-bind=ADDR] [--fleet-port=N] "
        "[--fleet-port-file=PATH]\n"
        "or:    %s fleet-client [--host=ADDR] --port=N|"
        "--port-file=PATH [--streams=M] [--shots=K] [--max-hw=N] "
        "[--seed=N]\n"
        "or:    %s list-decoders\n"
        "flags: --shots=N --seed=N --log-level=LVL "
        "--trace-file=PATH --chrome-trace=PATH --perf-counters\n"
        "       (serve exposes /pprof/profile?seconds=N&hz=H"
        "&format=collapsed|speedscope)\n",
        argv0, argv0, argv0, argv0, argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    applyForensicsOptions(opts);

    // Positional arguments: everything that is not a --flag.
    std::vector<std::string> pos;
    for (int i = 1; i < argc; i++) {
        if (std::string(argv[i]).rfind("--", 0) != 0)
            pos.push_back(argv[i]);
    }

    if (!pos.empty() && pos[0] == "replay")
        return commandReplay(pos, opts);
    if (!pos.empty() && pos[0] == "serve")
        return commandServe(opts);
    if (!pos.empty() && pos[0] == "fleet-client")
        return commandFleetClient(opts);
    if (!pos.empty() && pos[0] == "list-decoders")
        return commandListDecoders();

    if (pos.size() < 2)
        return usage(argv[0]);
    const uint64_t seed = opts.getUint("seed", 1);
    const std::string &out_path = pos[0];
    int experiment = std::atoi(pos[1].c_str());

    switch (experiment) {
      case 6: {
        if (pos.size() < 4) {
            std::fprintf(stderr, "experiment 6 needs <d> <p>\n");
            return 1;
        }
        uint64_t shots = opts.getUint("shots", 2000000);
        return experimentHwHistogram(
            out_path, static_cast<uint32_t>(std::atoi(pos[2].c_str())),
            std::atof(pos[3].c_str()), shots, seed);
      }
      case 1: {
        if (pos.size() < 3) {
            std::fprintf(stderr, "experiment 1 needs <d>\n");
            return 1;
        }
        uint64_t shots = opts.getUint("shots", 100000);
        return experimentLerSweep(
            out_path, static_cast<uint32_t>(std::atoi(pos[2].c_str())),
            shots, seed);
      }
      case 12: {
        if (pos.size() < 6) {
            std::fprintf(stderr,
                         "experiment 12 needs <d> <t0> <t1> <dt>\n");
            return 1;
        }
        uint64_t shots = opts.getUint("shots", 50000);
        return experimentBandwidth(
            out_path, static_cast<uint32_t>(std::atoi(pos[2].c_str())),
            std::atof(pos[3].c_str()), std::atof(pos[4].c_str()),
            std::atof(pos[5].c_str()), shots, seed);
      }
      default:
        std::fprintf(stderr, "unknown experiment %d\n", experiment);
        return 1;
    }
}
