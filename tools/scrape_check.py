#!/usr/bin/env python3
"""Check a Prometheus text-exposition dump for well-formedness.

Usage: scrape_check.py METRICS.prom [--require name,name,...]
                                    [--require-audit] [--require-perf]
                                    [--require-traces] [--require-fleet]
       scrape_check.py --self-test

Parses an exposition-format (0.0.4) dump — such as a scrape of the
decode service's /metrics — and asserts the structural contract the
C++ side (telemetry/prometheus.cc) promises. OpenMetrics output
(Accept: application/openmetrics-text) is accepted too: "# EOF"
terminator lines are tolerated and `# {labels} value` exemplar
suffixes on histogram bucket samples are parsed and validated rather
than rejected. The checks:

  - every sample line parses as  name{labels} value  (with an optional
    OpenMetrics exemplar suffix) with a legal metric name and a finite
    (or +/-Inf / NaN) value;
  - every sample belongs to a family announced by a # TYPE line, and
    each family has exactly one # TYPE;
  - counter samples end in `_total` (or `_count`/`_sum`/`_bucket` for
    histogram internals) and are non-negative and finite;
  - histogram families have `_count`, `_sum` and a `le="+Inf"` bucket;
    bucket counts are cumulative (non-decreasing in `le` order) and
    the +Inf bucket equals `_count`;
  - the families in --require (default: the decode service's headline
    families) are all present; --require-audit additionally demands
    the accuracy auditor's families (serve with --audit-rate > 0);
    --require-perf demands astrea_perf_available, and — only when its
    sample value is 1 (hardware counters actually open) — the raw and
    derived perf families too, so the check passes on locked-down
    hosts while still catching a perf-capable host that silently
    stopped exporting;
  - --require-traces demands the tail-sampled tracer's families
    (telemetry/trace_store.hh) and at least one trace_id exemplar on
    the astrea_serve_window_latency_ns histogram buckets, so CI
    catches a service that silently stopped attaching exemplars;
  - --require-fleet demands the sharded ingest fleet's families
    (harness/fleet.cc) including the per-shard
    astrea_fleet_queue_depth gauge (serve with --fleet).

Exits nonzero with a message on the first violation.
"""

import math
import re
import sys
import tempfile

# Default required families: the decode service's headline metrics.
DEFAULT_REQUIRED = [
    "astrea_serve_up",
    "astrea_serve_decodes_total",
    "astrea_serve_deadline_misses_total",
    "astrea_serve_window_latency_ns",
    "astrea_serve_slo_fast_burn",
    "astrea_serve_slo_slow_burn",
    "astrea_serve_drift_chi_square",
]

# Families the accuracy auditor exposes when serve runs with
# --audit-rate > 0; demanded via --require-audit.
AUDIT_REQUIRED = [
    "astrea_audit_enabled",
    "astrea_audit_completed_total",
    "astrea_audit_optimality_rate",
    "astrea_audit_weight_gap_decades",
    "astrea_audit_queue_drops_total",
    "astrea_audit_observable_mismatches_total",
]

# Families the tail-sampled decode tracer exports; demanded via
# --require-traces (serve with tracing on, the default).
TRACES_REQUIRED = [
    "astrea_trace_enabled",
    "astrea_trace_considered_total",
    "astrea_trace_kept_total",
    "astrea_trace_dropped_total",
    "astrea_trace_store_occupancy",
    "astrea_trace_store_capacity",
]

# The histogram whose buckets must carry trace_id exemplars under
# --require-traces.
EXEMPLAR_FAMILY = "astrea_serve_window_latency_ns"

# Families the sharded decode fleet exports when serve runs with
# --fleet; demanded via --require-fleet.
FLEET_REQUIRED = [
    "astrea_fleet_connections_total",
    "astrea_fleet_frames_total",
    "astrea_fleet_malformed_frames_total",
    "astrea_fleet_enqueued_total",
    "astrea_fleet_shed_total",
    "astrea_fleet_ring_full_total",
    "astrea_fleet_coalesced_batches_total",
    "astrea_fleet_decoded_shots_total",
    "astrea_fleet_queue_depth",
]

# Families the perf-counter layer exports when hardware counters are
# actually available; demanded via --require-perf only when the
# always-present astrea_perf_available gauge reads 1.
PERF_REQUIRED = [
    "astrea_perf_sections_total",
    "astrea_perf_shots_total",
    "astrea_perf_cycles_total",
    "astrea_perf_instructions_total",
    "astrea_perf_ipc",
    "astrea_perf_llc_miss_rate",
    "astrea_perf_cycles_per_shot",
]

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# Sample line with an optional OpenMetrics exemplar suffix
# ("... # {trace_id=\"...\"} value [timestamp]").
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: # \{(?P<exemplar>[^}]*)\} (?P<exvalue>\S+)"
    r"(?: \S+)?)?$")
LABEL_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

HISTO_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(msg):
    print(f"scrape_check: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text, where):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: unparseable value {text!r}")


def parse_labels(text, where):
    if not text:
        return {}
    labels = {}
    # Split on commas not inside quotes.
    parts = re.findall(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"',
                       text)
    joined = ",".join(parts)
    if joined != text:
        fail(f"{where}: malformed label set {{{text}}}")
    for part in parts:
        m = LABEL_RE.match(part)
        labels[m.group("name")] = m.group("value")
    return labels


def base_family(name, types):
    """Family a sample belongs to: strips histogram suffixes."""
    if name in types:
        return name
    for suffix in HISTO_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check(text, required, require_perf=False, require_traces=False):
    types = {}          # family -> type
    samples = []        # (name, labels, value, lineno)
    exemplars = []      # (sample name, exemplar labels, lineno)
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                fail(f"{where}: malformed TYPE line")
            _, _, family, kind = parts
            if not NAME_RE.match(family):
                fail(f"{where}: illegal family name {family!r}")
            if kind not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                fail(f"{where}: unknown type {kind!r}")
            if family in types:
                fail(f"{where}: duplicate TYPE for {family}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # HELP, comment or the OpenMetrics "# EOF".
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{where}: unparseable sample {line!r}")
        labels = parse_labels(m.group("labels") or "", where)
        value = parse_value(m.group("value"), where)
        if m.group("exemplar") is not None:
            ex_labels = parse_labels(m.group("exemplar"), where)
            parse_value(m.group("exvalue"), where)
            if not m.group("name").endswith("_bucket"):
                fail(f"{where}: exemplar on non-bucket sample "
                     f"{m.group('name')}")
            exemplars.append((m.group("name"), ex_labels, lineno))
        samples.append((m.group("name"), labels, value, lineno))

    # Every sample belongs to an announced family.
    histograms = {}  # family -> {"buckets": [(le, v)], counts...}
    for name, labels, value, lineno in samples:
        family = base_family(name, types)
        if family is None:
            fail(f"line {lineno}: sample {name} has no # TYPE")
        kind = types[family]
        if kind == "counter":
            if not name.endswith("_total"):
                fail(f"line {lineno}: counter sample {name} does not "
                     f"end in _total")
            if math.isnan(value) or value < 0:
                fail(f"line {lineno}: counter {name} value {value} "
                     f"is negative or NaN")
        if kind == "histogram":
            h = histograms.setdefault(
                family, {"buckets": [], "count": None, "sum": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    fail(f"line {lineno}: bucket without le label")
                h["buckets"].append(
                    (parse_value(labels["le"], f"line {lineno}"),
                     value))
            elif name.endswith("_count"):
                h["count"] = value
            elif name.endswith("_sum"):
                h["sum"] = value

    for family, h in histograms.items():
        if h["count"] is None:
            fail(f"histogram {family} missing _count")
        if h["sum"] is None:
            fail(f"histogram {family} missing _sum")
        if not h["buckets"]:
            fail(f"histogram {family} has no buckets")
        les = [le for le, _ in h["buckets"]]
        if les != sorted(les):
            fail(f"histogram {family} le edges out of order")
        counts = [v for _, v in h["buckets"]]
        if counts != sorted(counts):
            fail(f"histogram {family} bucket counts not cumulative")
        if not math.isinf(les[-1]):
            fail(f"histogram {family} missing le=\"+Inf\" bucket")
        if counts[-1] != h["count"]:
            fail(f"histogram {family} +Inf bucket {counts[-1]} != "
                 f"_count {h['count']}")

    for family in required:
        if family not in types:
            fail(f"required family {family} not present")

    if require_perf:
        if "astrea_perf_available" not in types:
            fail("--require-perf: astrea_perf_available not present")
        available = [value for name, _, value, _ in samples
                     if name == "astrea_perf_available"]
        if available and available[0] == 1:
            for family in PERF_REQUIRED:
                if family not in types:
                    fail(f"--require-perf: counters available but "
                         f"family {family} not present")

    if require_traces:
        for family in TRACES_REQUIRED:
            if family not in types:
                fail(f"--require-traces: family {family} not present")
        trace_exemplars = [
            labels for name, labels, _ in exemplars
            if name == EXEMPLAR_FAMILY + "_bucket"
            and "trace_id" in labels]
        if not trace_exemplars:
            fail(f"--require-traces: no trace_id exemplar on "
                 f"{EXEMPLAR_FAMILY} buckets (scrape with Accept: "
                 f"application/openmetrics-text)")

    return len(types), len(samples)


# ---------------------------------------------------------------------------
# Self-test

GOOD = """\
# HELP astrea_serve_up 1 while healthy
# TYPE astrea_serve_up gauge
astrea_serve_up 1
# TYPE astrea_serve_decodes_total counter
astrea_serve_decodes_total 1234
# TYPE astrea_serve_deadline_misses_total counter
astrea_serve_deadline_misses_total 0
# TYPE astrea_serve_window_latency_ns histogram
astrea_serve_window_latency_ns_bucket{le="1"} 3
astrea_serve_window_latency_ns_bucket{le="2"} 5
astrea_serve_window_latency_ns_bucket{le="+Inf"} 7
astrea_serve_window_latency_ns_sum 400.5
astrea_serve_window_latency_ns_count 7
# TYPE astrea_serve_slo_fast_burn gauge
astrea_serve_slo_fast_burn 0.25
# TYPE astrea_serve_slo_slow_burn gauge
astrea_serve_slo_slow_burn 0
# TYPE astrea_serve_drift_chi_square gauge
astrea_serve_drift_chi_square 0.003
# TYPE astrea_serve_info gauge
astrea_serve_info{decoder="astrea",d="3",p="0.001"} 1
"""

# Appended to GOOD when exercising --require-audit in the self-test.
GOOD_AUDIT = """\
# TYPE astrea_audit_enabled gauge
astrea_audit_enabled 1
# TYPE astrea_audit_completed_total counter
astrea_audit_completed_total 42
# TYPE astrea_audit_optimality_rate gauge
astrea_audit_optimality_rate{hw="all"} 0.98
# TYPE astrea_audit_weight_gap_decades histogram
astrea_audit_weight_gap_decades_bucket{le="0"} 40
astrea_audit_weight_gap_decades_bucket{le="+Inf"} 42
astrea_audit_weight_gap_decades_sum 0.25
astrea_audit_weight_gap_decades_count 42
# TYPE astrea_audit_queue_drops_total counter
astrea_audit_queue_drops_total 0
# TYPE astrea_audit_observable_mismatches_total counter
astrea_audit_observable_mismatches_total 1
"""

# --require-perf fixtures: the degraded host exports only the
# availability gauge (value 0); the capable host must export the
# full set. GOOD_PERF_FULL covers the capable case.
GOOD_PERF_DEGRADED = """\
# TYPE astrea_perf_available gauge
astrea_perf_available 0
"""

GOOD_PERF_FULL = """\
# TYPE astrea_perf_available gauge
astrea_perf_available 1
# TYPE astrea_perf_sections_total counter
astrea_perf_sections_total{stage="matching"} 10
# TYPE astrea_perf_shots_total counter
astrea_perf_shots_total{stage="matching"} 640
# TYPE astrea_perf_cycles_total counter
astrea_perf_cycles_total{stage="matching"} 120000
# TYPE astrea_perf_instructions_total counter
astrea_perf_instructions_total{stage="matching"} 260000
# TYPE astrea_perf_ipc gauge
astrea_perf_ipc{stage="matching"} 2.17
# TYPE astrea_perf_llc_miss_rate gauge
astrea_perf_llc_miss_rate{stage="matching"} 0.02
# TYPE astrea_perf_cycles_per_shot gauge
astrea_perf_cycles_per_shot{stage="matching"} 187.5
"""

# A perf-capable host (available 1) that dropped the derived gauges.
BAD_PERF_PARTIAL = GOOD_PERF_FULL.replace(
    "# TYPE astrea_perf_ipc gauge\n"
    'astrea_perf_ipc{stage="matching"} 2.17\n', "")

# OpenMetrics scrape with trace families and trace_id exemplars on the
# latency buckets, ending in "# EOF" — what serve's /metrics returns
# under Accept: application/openmetrics-text with tracing on.
GOOD_TRACES = GOOD.replace(
    'astrea_serve_window_latency_ns_bucket{le="2"} 5\n',
    'astrea_serve_window_latency_ns_bucket{le="2"} 5 '
    '# {trace_id="00c0ffee00c0ffee"} 1.5\n'
).replace(
    'astrea_serve_window_latency_ns_bucket{le="+Inf"} 7\n',
    'astrea_serve_window_latency_ns_bucket{le="+Inf"} 7 '
    '# {trace_id="deadbeefdeadbeef"} 5000\n'
) + """\
# TYPE astrea_trace_enabled gauge
astrea_trace_enabled 1
# TYPE astrea_trace_considered_total counter
astrea_trace_considered_total 900
# TYPE astrea_trace_kept_total counter
astrea_trace_kept_total 12
# TYPE astrea_trace_dropped_total counter
astrea_trace_dropped_total 888
# TYPE astrea_trace_store_occupancy gauge
astrea_trace_store_occupancy 12
# TYPE astrea_trace_store_capacity gauge
astrea_trace_store_capacity 1024
# EOF
"""

# Appended to GOOD when exercising --require-fleet: the full family
# set harness/fleet.cc exports, with per-shard queue-depth samples.
GOOD_FLEET = """\
# TYPE astrea_fleet_connections_total counter
astrea_fleet_connections_total 3
# TYPE astrea_fleet_frames_total counter
astrea_fleet_frames_total 4096
# TYPE astrea_fleet_malformed_frames_total counter
astrea_fleet_malformed_frames_total 0
# TYPE astrea_fleet_enqueued_total counter
astrea_fleet_enqueued_total 4000
# TYPE astrea_fleet_shed_total counter
astrea_fleet_shed_total 96
# TYPE astrea_fleet_ring_full_total counter
astrea_fleet_ring_full_total 2
# TYPE astrea_fleet_coalesced_batches_total counter
astrea_fleet_coalesced_batches_total 80
# TYPE astrea_fleet_decoded_shots_total counter
astrea_fleet_decoded_shots_total 4000
# TYPE astrea_fleet_queue_depth gauge
astrea_fleet_queue_depth{shard="0"} 3
astrea_fleet_queue_depth{shard="1"} 0
"""

# A fleet dump that lost its shed counter (admission control silently
# stopped exporting) — must fail under --require-fleet.
BAD_FLEET_PARTIAL = GOOD_FLEET.replace(
    "# TYPE astrea_fleet_shed_total counter\n"
    "astrea_fleet_shed_total 96\n", "")

# Trace families present but no exemplar (a 0.0.4 scrape).
BAD_TRACES_NO_EXEMPLAR = GOOD_TRACES.replace(
    ' # {trace_id="00c0ffee00c0ffee"} 1.5', "").replace(
    ' # {trace_id="deadbeefdeadbeef"} 5000', "")

BAD_CASES = [
    # Sample without a TYPE line.
    "orphan_metric 1\n",
    # Counter not ending in _total.
    "# TYPE bad counter\nbad 1\n",
    # Negative counter.
    "# TYPE bad_total counter\nbad_total -1\n",
    # Histogram bucket counts not cumulative.
    ("# TYPE h histogram\n"
     'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
     'h_bucket{le="+Inf"} 5\nh_sum 1\nh_count 5\n'),
    # +Inf bucket != _count.
    ("# TYPE h histogram\n"
     'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 2\n'
     "h_sum 1\nh_count 3\n"),
    # Histogram without +Inf.
    ("# TYPE h histogram\n"
     'h_bucket{le="1"} 2\nh_sum 1\nh_count 2\n'),
    # Unparseable sample line.
    "# TYPE g gauge\ng one\n",
    # Duplicate TYPE.
    "# TYPE g gauge\n# TYPE g gauge\ng 1\n",
    # Exemplar on a non-bucket sample.
    '# TYPE g gauge\ng 1 # {trace_id="aa"} 2\n',
    # Malformed exemplar label set.
    ("# TYPE h histogram\n"
     'h_bucket{le="+Inf"} 1 # {trace_id=} 2\n'
     "h_sum 1\nh_count 1\n"),
]


def self_test():
    families, samples = check(GOOD, DEFAULT_REQUIRED)
    assert families == 8 and samples == 12, (families, samples)

    # Audit families pass when present, fail when absent.
    check(GOOD + GOOD_AUDIT, DEFAULT_REQUIRED + AUDIT_REQUIRED)
    code = run_expecting_failure(GOOD, AUDIT_REQUIRED[:1])
    assert code != 0

    # Required family missing.
    code = run_expecting_failure(GOOD, ["not_there"])
    assert code != 0

    # --require-perf: degraded (available 0) needs only the gauge;
    # capable (available 1) needs the full family set; a dump with no
    # perf gauge at all fails.
    check(GOOD + GOOD_PERF_DEGRADED, DEFAULT_REQUIRED,
          require_perf=True)
    check(GOOD + GOOD_PERF_FULL, DEFAULT_REQUIRED, require_perf=True)
    code = run_expecting_failure(GOOD, DEFAULT_REQUIRED,
                                 ("--require-perf",))
    assert code != 0, "--require-perf passed without the gauge"
    code = run_expecting_failure(GOOD + BAD_PERF_PARTIAL,
                                 DEFAULT_REQUIRED, ("--require-perf",))
    assert code != 0, "--require-perf passed a partial capable dump"

    # --require-traces: the OpenMetrics dump with exemplars passes
    # (and its "# EOF" is tolerated); a dump whose buckets carry no
    # trace_id exemplar, or without the trace families, fails.
    check(GOOD_TRACES, DEFAULT_REQUIRED, require_traces=True)
    code = run_expecting_failure(BAD_TRACES_NO_EXEMPLAR,
                                 DEFAULT_REQUIRED,
                                 ("--require-traces",))
    assert code != 0, "--require-traces passed without exemplars"
    code = run_expecting_failure(GOOD, DEFAULT_REQUIRED,
                                 ("--require-traces",))
    assert code != 0, "--require-traces passed without the families"

    # --require-fleet: full family set passes; a dump missing any
    # fleet family (or with no fleet families at all) fails.
    check(GOOD + GOOD_FLEET, DEFAULT_REQUIRED + FLEET_REQUIRED)
    code = run_expecting_failure(GOOD, DEFAULT_REQUIRED,
                                 ("--require-fleet",))
    assert code != 0, "--require-fleet passed without the families"
    code = run_expecting_failure(GOOD + BAD_FLEET_PARTIAL,
                                 DEFAULT_REQUIRED, ("--require-fleet",))
    assert code != 0, "--require-fleet passed a partial fleet dump"

    for i, bad in enumerate(BAD_CASES):
        code = run_expecting_failure(bad, [])
        assert code != 0, f"BAD_CASES[{i}] passed unexpectedly"
    print("scrape_check: self-test ok")
    return 0


def run_expecting_failure(text, required, extra_flags=()):
    """Run check() in a subprocess so fail()'s exit is observable."""
    import subprocess

    with tempfile.NamedTemporaryFile("w", suffix=".prom",
                                     delete=False) as f:
        f.write(text)
        path = f.name
    cmd = [sys.executable, __file__, path]
    if required:
        cmd.append("--require=" + ",".join(required))
    cmd.extend(extra_flags)
    return subprocess.run(cmd, capture_output=True).returncode


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    required = list(DEFAULT_REQUIRED)
    require_audit = False
    require_perf = False
    require_traces = False
    require_fleet = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--require="):
            required = [r for r in arg[len("--require="):].split(",")
                        if r]
        elif arg == "--require-audit":
            require_audit = True
        elif arg == "--require-perf":
            require_perf = True
        elif arg == "--require-traces":
            require_traces = True
        elif arg == "--require-fleet":
            require_fleet = True
        else:
            paths.append(arg)
    if require_audit:
        required += [f for f in AUDIT_REQUIRED if f not in required]
    if require_fleet:
        required += [f for f in FLEET_REQUIRED if f not in required]

    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            fail(f"cannot read {path}: {e}")
        families, samples = check(text, required, require_perf,
                                  require_traces)
        print(f"{path}: ok ({families} families, {samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
