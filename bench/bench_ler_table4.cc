/**
 * @file
 * Reproduces Table 4: logical error rate of MWPM, Astrea, LILLIPUT
 * (LUT), Clique, and AFS (Union-Find) at p = 1e-4 for d = 3, 5, 7,
 * using the semi-analytic estimator with shared fault sets.
 *
 * LILLIPUT is evaluated only where its lookup table is hardware
 * feasible (d = 3), exactly as in the paper ("N/A" otherwise).
 *
 * Usage: bench_ler_table4 [--shots-per-k=20000] [--kmax=8]
 *                         [--json-out=report.json]
 */

#include <cstdio>

#include "bench_util.hh"
#include "decoders/lut_decoder.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 10000);
    sa.targetFailures = opts.getUint("target-failures", 20);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 300000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 8));
    sa.seed = opts.getUint("seed", 13);
    const double p = opts.getDouble("p", 1e-4);
    const std::string json_out = initBenchReport(opts);

    telemetry::JsonWriter report;
    if (!json_out.empty()) {
        beginBenchReport(report, "ler_table4");
        report.kv("p", p)
            .kv("shots_per_k", sa.shotsPerK)
            .kv("target_failures", sa.targetFailures)
            .kv("max_shots_per_k", sa.maxShotsPerK)
            .kv("kmax", uint64_t{sa.maxFaults})
            .kv("seed", sa.seed);
        report.endObject();  // config
        report.key("results").beginArray();
    }

    benchBanner("Table 4", "LER by decoder at p = 1e-4 "
                           "(semi-analytic, Eq. 3)");
    std::printf("p=%g, %llu shots per fault count, k <= %u\n\n", p,
                static_cast<unsigned long long>(sa.shotsPerK),
                sa.maxFaults);

    std::printf("%-4s %-12s %-12s %-12s %-12s %-12s\n", "d", "MWPM",
                "Astrea", "LILLIPUT", "Clique", "AFS(UF)");
    for (uint32_t d : {3u, 5u, 7u}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        std::vector<DecoderFactory> factories{
            mwpmFactory(), astreaFactory(), cliqueFactory(),
            unionFindFactory()};
        LutDecoder probe(ctx.gwt());
        const bool lut_feasible = probe.hardwareFeasible();
        if (lut_feasible)
            factories.push_back(lutFactory());

        auto r = estimateLerSemiAnalyticMulti(ctx, factories, sa);
        std::string lut_str =
            lut_feasible ? formatProb(r[4].ler) : "N/A";

        std::printf("%-4u %-12s %-12s %-12s %-12s %-12s\n", d,
                    formatProb(r[0].ler).c_str(),
                    formatProb(r[1].ler).c_str(), lut_str.c_str(),
                    formatProb(r[2].ler).c_str(),
                    formatProb(r[3].ler).c_str());

        if (!json_out.empty()) {
            report.beginObject().kv("d", uint64_t{d});
            report.key("ler_by_decoder").beginObject();
            report.kv("mwpm", r[0].ler);
            report.kv("astrea", r[1].ler);
            report.kv("clique", r[2].ler);
            report.kv("union_find", r[3].ler);
            if (lut_feasible)
                report.kv("lut", r[4].ler);
            else
                report.key("lut").null();
            report.endObject();
            report.kv("tail_mass", r[0].tailMass);
            report.endObject();
        }
    }
    if (!json_out.empty()) {
        report.endArray();  // results
        finishBenchReport(report, json_out);
    }
    std::printf("\n");
    printPaperRef("Table 4 d=3",
                  "8.1e-6 / 8.1e-6 / 8.1e-6 / 8.3e-6 / 9.4e-5");
    printPaperRef("Table 4 d=7",
                  "6.0e-9 / 6.0e-9 / N/A / 2.3e-8 / 5.7e-7");
    return 0;
}
