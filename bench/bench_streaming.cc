/**
 * @file
 * Extension: sliding-window streaming decoding.
 *
 * A deployed decoder receives syndromes every 1 us indefinitely (paper
 * Sec. 3.4); decoding whole logical cycles offline is not an option.
 * This bench runs long multi-cycle streams (R >> d rounds) and
 * compares whole-stream decoding against the overlapping-window
 * streaming decoder: logical error rate, the largest matching problem
 * any window had to solve (the real-time-relevant quantity), and
 * give-up behavior when Astrea's HW-10 limit applies per window
 * instead of per stream.
 *
 * Usage: bench_streaming [--shots=30000] [--rounds=30] [--p=2e-3]
 *                        [--json-out=report.json]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "telemetry/telemetry.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t shots = opts.getUint("shots", 30000);
    const uint32_t rounds =
        static_cast<uint32_t>(opts.getUint("rounds", 30));
    const double p = opts.getDouble("p", 2e-3);
    const uint64_t seed = opts.getUint("seed", 67);
    const std::string json_out = initBenchReport(opts);

    benchBanner("Extension", "sliding-window streaming decoding");

    telemetry::JsonWriter report;
    if (!json_out.empty()) {
        beginBenchReport(report, "streaming");
        report.kv("rounds", uint64_t{rounds})
            .kv("p", p)
            .kv("shots", shots)
            .kv("seed", seed);
        report.endObject();  // config
        report.key("results").beginArray();
    }

    for (uint32_t d : {3u, 5u}) {
        ExperimentConfig cfg;
        cfg.distance = d;
        cfg.rounds = rounds;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        std::printf("\nd=%u, %u rounds (%u logical cycles), p=%g, "
                    "%llu shots\n",
                    d, rounds, rounds / d, p,
                    static_cast<unsigned long long>(shots));

        auto whole =
            runMemoryExperiment(ctx, mwpmFactory(), shots, seed);
        auto win_mwpm = runMemoryExperiment(
            ctx, windowedFactory(mwpmFactory()), shots, seed);
        auto win_astrea = runMemoryExperiment(
            ctx, windowedFactory(astreaFactory()), shots, seed);
        auto whole_astrea =
            runMemoryExperiment(ctx, astreaFactory(), shots, seed);

        // Same telemetry family the live decode service emits, so a
        // bench run and a `serve` scrape are comparable.
        ASTREA_COUNTER_ADD("experiment.give_ups",
                           whole.gaveUps + win_mwpm.gaveUps +
                               whole_astrea.gaveUps +
                               win_astrea.gaveUps);

        std::printf("%-24s %-14s %-10s\n", "decoder", "LER",
                    "gave up");
        std::printf("%-24s %-14s %llu\n", "whole-stream MWPM",
                    formatProb(whole.ler()).c_str(),
                    static_cast<unsigned long long>(whole.gaveUps));
        std::printf("%-24s %-14s %llu\n", "windowed MWPM",
                    formatProb(win_mwpm.ler()).c_str(),
                    static_cast<unsigned long long>(
                        win_mwpm.gaveUps));
        std::printf("%-24s %-14s %llu\n", "whole-stream Astrea",
                    formatProb(whole_astrea.ler()).c_str(),
                    static_cast<unsigned long long>(
                        whole_astrea.gaveUps));
        std::printf("%-24s %-14s %llu\n", "windowed Astrea",
                    formatProb(win_astrea.ler()).c_str(),
                    static_cast<unsigned long long>(
                        win_astrea.gaveUps));

        if (!json_out.empty()) {
            report.beginObject().kv("d", uint64_t{d});
            auto variant = [&](const char *name,
                               const ExperimentResult &r) {
                report.key(name).beginObject();
                appendExperimentResultJson(report, r);
                report.endObject();
            };
            variant("whole_stream_mwpm", whole);
            variant("windowed_mwpm", win_mwpm);
            variant("whole_stream_astrea", whole_astrea);
            variant("windowed_astrea", win_astrea);
            report.endObject();
        }
    }
    if (!json_out.empty()) {
        report.endArray();  // results
        finishBenchReport(report, json_out);
    }

    std::printf("\nWindowed decoding bounds the per-step matching "
                "problem (window = 2d rounds,\ncommit = d), so a "
                "fixed-capacity decoder like Astrea survives streams "
                "whose\ntotal Hamming weight would far exceed its "
                "limit — at a bounded LER cost\nrelative to "
                "whole-stream MWPM.\n");
    return 0;
}
