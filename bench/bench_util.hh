/**
 * @file
 * Shared helpers for the benchmark binaries.
 *
 * Every bench binary regenerates one table or figure from the paper.
 * They accept --shots=N style overrides (or ASTREA_SHOTS environment
 * variables) so the full-fidelity runs the paper used (1e9+ trials on
 * a cluster) can be approximated or scaled down to laptop budgets; the
 * defaults are sized for minutes, not days, and every output states
 * the budget it used.
 */

#ifndef ASTREA_BENCH_BENCH_UTIL_HH
#define ASTREA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "common/stats.hh"

namespace astrea
{

/** Print the standard bench banner. */
inline void
benchBanner(const char *id, const char *what)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s: %s\n", id, what);
    std::printf("==================================================="
                "=========\n");
}

/** Format a probability with its 95%% Wilson interval. */
inline std::string
formatEstimate(const BinomialEstimate &e)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s [%s, %s]",
                  formatProb(e.pointEstimate()).c_str(),
                  formatProb(e.lower95()).c_str(),
                  formatProb(e.upper95()).c_str());
    return buf;
}

/** Note a paper-reported reference value next to a measurement. */
inline void
printPaperRef(const char *label, const char *value)
{
    std::printf("    (paper %s: %s)\n", label, value);
}

} // namespace astrea

#endif // ASTREA_BENCH_BENCH_UTIL_HH
