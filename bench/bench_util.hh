/**
 * @file
 * Shared helpers for the benchmark binaries.
 *
 * Every bench binary regenerates one table or figure from the paper.
 * They accept --shots=N style overrides (or ASTREA_SHOTS environment
 * variables) so the full-fidelity runs the paper used (1e9+ trials on
 * a cluster) can be approximated or scaled down to laptop budgets; the
 * defaults are sized for minutes, not days, and every output states
 * the budget it used.
 *
 * Benches additionally accept --json-out=PATH: alongside the text
 * table, a machine-readable JSON report is written containing the
 * bench id, its configuration, its headline results, and a snapshot of
 * the telemetry registry (decoder-internal counters). Passing
 * --json-out also turns telemetry collection on. The schema is
 * validated in CI by tools/validate_report.py.
 */

#ifndef ASTREA_BENCH_BENCH_UTIL_HH
#define ASTREA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "harness/memory_experiment.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/export.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/perf_counters.hh"
#include "telemetry/sampling_profiler.hh"

namespace astrea
{

/** Print the standard bench banner. */
inline void
benchBanner(const char *id, const char *what)
{
    std::printf("==================================================="
                "=========\n");
    std::printf("%s: %s\n", id, what);
    std::printf("==================================================="
                "=========\n");
}

/** Format a probability with its 95%% Wilson interval. */
inline std::string
formatEstimate(const BinomialEstimate &e)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s [%s, %s]",
                  formatProb(e.pointEstimate()).c_str(),
                  formatProb(e.lower95()).c_str(),
                  formatProb(e.upper95()).c_str());
    return buf;
}

/** Note a paper-reported reference value next to a measurement. */
inline void
printPaperRef(const char *label, const char *value)
{
    std::printf("    (paper %s: %s)\n", label, value);
}

/**
 * Apply the shared forensics flags every bench (and astrea_cli)
 * understands, each with an ASTREA_<KEY> environment fallback where
 * the flag wins:
 *
 *  --log-level=LVL      logging threshold (debug/info/warn/error/off);
 *  --trace-file=PATH    JSONL span/shot trace (export.hh);
 *  --chrome-trace=PATH  Perfetto timeline (chrome_trace.hh);
 *  --perf-counters      per-stage hardware counters (perf_counters.hh;
 *                       degrades to a no-op where unavailable);
 *  --profile-out=PATH   collapsed-stack CPU profile of the whole run
 *                       (sampling_profiler.hh; .speedscope.json paths
 *                       get speedscope format);
 *  --profile-hz=N       sampling rate for --profile-out (default 199).
 *
 * Either trace flag switches telemetry collection on — a timeline
 * without spans would be empty.
 */
inline void
applyForensicsOptions(const Options &opts)
{
    if (opts.has("log-level"))
        setLogLevel(logLevelFromString(opts.getString("log-level", "")));
    if (opts.has("trace-file")) {
        telemetry::setGlobalTraceFile(
            opts.getString("trace-file", ""));
        telemetry::setEnabled(true);
    }
    if (opts.has("chrome-trace")) {
        telemetry::setGlobalChromeTraceFile(
            opts.getString("chrome-trace", ""));
        telemetry::setEnabled(true);
    }
    if (opts.has("perf-counters"))
        telemetry::setPerfCountersEnabled(true);
    if (opts.has("profile-out")) {
        std::string error;
        const unsigned hz = static_cast<unsigned>(
            opts.getUint("profile-hz", 199));
        if (!telemetry::SamplingProfiler::global().start(hz, &error))
            warn("sampling profiler not started: " + error);
    }
}

/**
 * Stop the --profile-out profiler (started by applyForensicsOptions)
 * and write the collected profile: speedscope JSON when the path ends
 * in ".speedscope.json", collapsed/folded stacks otherwise. No-op
 * when --profile-out was absent or the profiler never started.
 */
inline void
finishBenchProfile(const Options &opts)
{
    if (!opts.has("profile-out"))
        return;
    auto &prof = telemetry::SamplingProfiler::global();
    if (!prof.running())
        return;
    prof.stop();
    const std::string path = opts.getString("profile-out", "");
    const std::string suffix = ".speedscope.json";
    const bool speedscope =
        path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
    const std::string out =
        speedscope ? prof.speedscopeJson() : prof.collapsed();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot open --profile-out file: " + path);
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("profile (%zu samples) written to %s\n",
                prof.sampleCount(), path.c_str());
}

/**
 * Resolve --json-out (or ASTREA_JSON_OUT) and, when a report was
 * requested, switch telemetry collection on so the report can include
 * the decoder-internal counters. Also applies the shared forensics
 * flags (applyForensicsOptions()). Returns the output path, or ""
 * when no report was requested.
 */
inline std::string
initBenchReport(const Options &opts)
{
    applyForensicsOptions(opts);
    std::string path = opts.getString("json-out", "");
    if (!path.empty()) {
        // Fail fast on an unwritable path: discovering it only after a
        // long run would discard the results.
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            fatal("cannot open --json-out file: " + path);
        std::fclose(f);
        telemetry::setEnabled(true);
    }
    return path;
}

/** Serialize an integer histogram as {"bins":{key:count},...}. */
inline void
appendHistogramJson(telemetry::JsonWriter &w, const Histogram &h)
{
    w.beginObject();
    w.kv("total", h.total());
    w.kv("overflow", h.overflow());
    w.key("bins").beginObject();
    for (size_t k = 0; k <= h.maxKey(); k++) {
        if (h.at(k))
            w.kv(std::to_string(k), h.at(k));
    }
    w.endObject();
    w.endObject();
}

/**
 * Serialize one ExperimentResult's headline numbers: shots, LER with
 * its Wilson interval, latency mean/max and p50/p90/p99/p99.9 (over all
 * shots and over nontrivial HW > 2 shots), the Hamming-weight
 * histogram, and give-up counts with the HW at which they happened.
 * Emits keys into the writer's current object.
 */
inline void
appendExperimentResultJson(telemetry::JsonWriter &w,
                           const ExperimentResult &r)
{
    w.kv("shots", r.logicalErrors.trials);
    w.kv("logical_errors", r.logicalErrors.successes);
    w.kv("ler", r.logicalErrors.pointEstimate());
    w.kv("ler_lower95", r.logicalErrors.lower95());
    w.kv("ler_upper95", r.logicalErrors.upper95());

    w.key("latency_ns").beginObject();
    w.kv("mean", r.latencyNs.mean());
    w.kv("max", r.latencyNs.max());
    w.kv("p50", r.latencyHist.p50Ns());
    w.kv("p90", r.latencyHist.p90Ns());
    w.kv("p99", r.latencyHist.p99Ns());
    w.kv("p999", r.latencyHist.p999Ns());
    w.kv("overflow", r.latencyHist.overflowCount());
    w.endObject();

    w.key("latency_nontrivial_ns").beginObject();
    w.kv("mean", r.latencyNontrivialNs.mean());
    w.kv("max", r.latencyNontrivialNs.max());
    w.kv("p50", r.latencyNontrivialHist.p50Ns());
    w.kv("p90", r.latencyNontrivialHist.p90Ns());
    w.kv("p99", r.latencyNontrivialHist.p99Ns());
    w.kv("p999", r.latencyNontrivialHist.p999Ns());
    w.kv("overflow", r.latencyNontrivialHist.overflowCount());
    w.endObject();

    w.key("hw_histogram");
    appendHistogramJson(w, r.hammingWeights);

    w.kv("gave_ups", r.gaveUps);
    w.key("gave_up_hw");
    appendHistogramJson(w, r.gaveUpHw);
}

/**
 * Write a finished report document and tell the user. The writer must
 * hold a complete (balanced) JSON document.
 */
inline void
writeBenchReport(const std::string &path,
                 const telemetry::JsonWriter &w)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot open --json-out file: " + path);
    const std::string &json = w.str();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("json report written to %s\n", path.c_str());
}

/**
 * Open the standard report envelope: {"bench":id,"config":{...
 * Caller fills the config object, closes it, adds a "results" entry,
 * then calls finishBenchReport().
 */
inline void
beginBenchReport(telemetry::JsonWriter &w, const char *bench_id)
{
    w.beginObject();
    w.kv("bench", bench_id);
    w.kv("schema_version", uint64_t{1});
    w.key("config").beginObject();
}

/**
 * Close the envelope opened by beginBenchReport() — the caller must
 * be back at the top-level object — appending the telemetry registry
 * snapshot under "metrics", then write the file.
 */
inline void
finishBenchReport(telemetry::JsonWriter &w, const std::string &path)
{
    // Fold the perf-counter gauges (perf.*) into the registry first so
    // the snapshot below carries them.
    telemetry::publishPerfMetrics(telemetry::MetricsRegistry::global());
    w.key("metrics");
    telemetry::appendMetricsJson(w,
                                 telemetry::MetricsRegistry::global());
    w.endObject();
    writeBenchReport(path, w);
}

} // namespace astrea

#endif // ASTREA_BENCH_BENCH_UTIL_HH
