/**
 * @file
 * Reproduces Fig. 12: logical error rate of idealized MWPM vs Astrea-G
 * for d = 7 as the physical error rate sweeps 1e-4 .. 1e-3.
 *
 * Both estimators are reported: direct Monte Carlo (meaningful at the
 * high-p end with laptop budgets) and the paper's semi-analytic Eq. 3
 * (resolves the low-p tail; the paper itself ran 1e9 trials per point
 * on a cluster).
 *
 * Usage: bench_ler_vs_p_d7 [--shots=100000] [--shots-per-k=5000]
 */

#include <cstdio>

#include "bench_util.hh"
#include "harness/memory_experiment.hh"
#include "harness/semi_analytic.hh"

using namespace astrea;

int
main(int argc, char **argv)
{
    Options opts = Options::parse(argc, argv);
    const uint64_t mc_shots = opts.getUint("shots", 100000);
    SemiAnalyticConfig sa;
    sa.shotsPerK = opts.getUint("shots-per-k", 10000);
    sa.targetFailures = opts.getUint("target-failures", 20);
    sa.maxShotsPerK = opts.getUint("max-shots-per-k", 100000);
    sa.maxFaults = static_cast<uint32_t>(opts.getUint("kmax", 10));
    sa.seed = opts.getUint("seed", 19);

    benchBanner("Fig 12", "LER vs p at d = 7: MWPM vs Astrea-G");
    std::printf("MC shots per point: %llu (paper: 1e9); semi-analytic "
                "%llu shots/k, k <= %u\n\n",
                static_cast<unsigned long long>(mc_shots),
                static_cast<unsigned long long>(sa.shotsPerK),
                sa.maxFaults);

    std::printf("%-8s %-13s %-13s %-13s %-13s\n", "p(1e-4)",
                "MWPM(sa)", "AstreaG(sa)", "MWPM(mc)", "AstreaG(mc)");
    for (int step = 1; step <= 10; step++) {
        double p = 1e-4 * step;
        ExperimentConfig cfg;
        cfg.distance = 7;
        cfg.physicalErrorRate = p;
        ExperimentContext ctx(cfg);

        auto sa_r = estimateLerSemiAnalyticMulti(
            ctx, {mwpmFactory(), astreaGFactory()}, sa);
        const auto &mwpm_sa = sa_r[0];
        const auto &ag_sa = sa_r[1];
        auto mwpm_mc =
            runMemoryExperiment(ctx, mwpmFactory(), mc_shots, sa.seed);
        auto ag_mc = runMemoryExperiment(ctx, astreaGFactory(),
                                         mc_shots, sa.seed);

        std::printf("%-8d %-13s %-13s %-13s %-13s\n", step,
                    formatProb(mwpm_sa.ler).c_str(),
                    formatProb(ag_sa.ler).c_str(),
                    formatProb(mwpm_mc.ler()).c_str(),
                    formatProb(ag_mc.ler()).c_str());
    }
    std::printf("\n");
    printPaperRef("Fig 12", "Astrea-G tracks MWPM from ~6e-9 (p=1e-4) "
                            "to ~2e-5 (p=1e-3)");
    return 0;
}
